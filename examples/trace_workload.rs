//! Trace workloads: run the 14 PARSEC/SPLASH-like benchmarks on a
//! Slim NoC vs. a Flattened Butterfly and compare latency and
//! energy-delay product — a miniature of the paper's Figure 18 study.
//!
//! Run with: `cargo run --release --example trace_workload`

use slim_noc::core::{format_float, BufferPreset, Setup, TextTable};
use slim_noc::power::TechNode;
use slim_noc::traffic::benchmark_workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cycles = 10_000;
    let sn = Setup::paper("sn_s")?
        .with_smart(true)
        .with_buffers(BufferPreset::EbVar);
    let fbf = Setup::paper("fbf3")?
        .with_smart(true)
        .with_buffers(BufferPreset::EbVar);

    let mut table = TextTable::new(
        "PARSEC/SPLASH-like workloads: SN vs FBF (SMART, 45nm)",
        &["benchmark", "SN lat", "FBF lat", "SN EDP/FBF EDP"],
    );
    let mut geomean = 1.0f64;
    let mut count = 0u32;
    for w in benchmark_workloads() {
        let eval = |s: &Setup| {
            let report = s.run_trace_workload(&w, cycles);
            let power = s.power_model(TechNode::N45).evaluate(
                &s.topology,
                &s.layout,
                s.buffer_flits_per_router(),
                &report,
            );
            (report.avg_packet_latency(), power.energy_delay())
        };
        let (sn_lat, sn_edp) = eval(&sn);
        let (fbf_lat, fbf_edp) = eval(&fbf);
        let ratio = sn_edp / fbf_edp;
        geomean *= ratio;
        count += 1;
        table.push_row(vec![
            w.name.to_string(),
            format_float(sn_lat, 2),
            format_float(fbf_lat, 2),
            format_float(ratio, 3),
        ]);
    }
    table.print(false);
    println!(
        "geometric-mean EDP ratio SN/FBF: {:.3} (paper: ≈0.45, i.e. 55% lower)",
        geomean.powf(1.0 / f64::from(count))
    );
    Ok(())
}
