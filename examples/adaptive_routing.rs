//! Adaptive routing: the §6 study in miniature — Slim NoC under MIN,
//! UGAL-L and UGAL-G against asymmetric traffic, showing Valiant
//! detours trading latency for throughput.
//!
//! Run with: `cargo run --release --example adaptive_routing`

use slim_noc::core::Setup;
use slim_noc::sim::RoutingKind;
use slim_noc::traffic::TrafficPattern;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<10} {:<8} {:>8} {:>12} {:>10} {:>10}",
        "routing", "load", "latency", "throughput", "avg hops", "accepted"
    );
    for (name, routing) in [
        ("MIN", RoutingKind::Minimal),
        ("UGAL-L", RoutingKind::UgalL),
        ("UGAL-G", RoutingKind::UgalG),
    ] {
        for load in [0.05, 0.2, 0.4] {
            let setup = Setup::paper("sn_s")?.with_routing(routing);
            let report = setup.run_load(TrafficPattern::Asymmetric, load, 1_000, 6_000);
            println!(
                "{:<10} {:<8} {:>8.2} {:>12.4} {:>10.3} {:>9.0}%",
                name,
                load,
                report.avg_packet_latency(),
                report.throughput(),
                report.avg_hops(),
                100.0 * report.acceptance(),
            );
        }
    }
    println!("\nUGAL detours (hops > minimal) appear as load grows, lifting throughput.");
    Ok(())
}
