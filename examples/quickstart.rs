//! Quickstart: build the paper's SN-S Slim NoC (200 nodes), place it
//! with the subgroup layout, simulate random traffic, and print the key
//! §5 metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use slim_noc::layout::{BufferModel, BufferSpec, Layout, SnLayout};
use slim_noc::power::{PowerModel, TechNode};
use slim_noc::prelude::*;
use slim_noc::sim::Simulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Topology: q = 5 gives 50 routers; concentration 4 gives 200
    //    cores — the paper's SN-S design.
    let topo = Topology::slim_noc(5, 4)?;
    println!("topology       : {topo}");
    println!("diameter       : {}", topo.diameter());
    println!("avg path length: {:.3} hops", topo.average_path_length());

    // 2. Layout: the subgroup layout minimizes average wire length for
    //    this size (§3.3).
    let layout = Layout::slim_noc(&topo, SnLayout::Subgroup)?;
    println!("die grid       : {:?} tiles", layout.grid());
    println!(
        "avg wire length: {:.3} tiles",
        layout.average_wire_length(&topo)
    );

    // 3. Buffers: RTT-sized edge buffers (Eq. 5).
    let buffers = BufferModel::edge_buffers(&topo, &layout, BufferSpec::standard());
    println!(
        "buffers/router : {:.0} flits (Δ_eb = {} flits)",
        buffers.average_per_router(),
        buffers.total()
    );

    // 4. Simulate uniform random traffic at a moderate load.
    let mut sim = Simulator::build_with_layout(&topo, &layout, &SimConfig::default())?;
    let report = sim.run_synthetic(TrafficPattern::Random, 0.10, 2_000, 10_000);
    println!(
        "latency        : {:.2} cycles (p99 {})",
        report.avg_packet_latency(),
        report.latency_percentile(0.99)
    );
    println!(
        "throughput     : {:.4} flits/node/cycle",
        report.throughput()
    );

    // 5. Area and power at 45 nm.
    let model = PowerModel::new(TechNode::N45);
    let result = model.evaluate(
        &topo,
        &layout,
        buffers.average_per_router() as usize,
        &report,
    );
    println!(
        "area           : {:.1} mm^2 ({:.2e} cm^2/node)",
        result.area.total_mm2(),
        result.area.per_node_cm2()
    );
    println!("static power   : {:.2} W", result.static_power.total_w());
    println!("dynamic power  : {:.2} W", result.dynamic_power.total_w());
    println!(
        "thpt/power     : {:.3e} flits/J",
        result.throughput_per_power()
    );
    Ok(())
}
