//! Topology zoo: construct every topology family in the library at a
//! comparable scale and print the structural comparison the paper's §2
//! builds its case on — radix, diameter, path lengths, link counts and
//! Moore-bound proximity.
//!
//! Run with: `cargo run --release --example topology_zoo`

use slim_noc::field::SlimFlyParams;
use slim_noc::layout::Layout;
use slim_noc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let zoo: Vec<Topology> = vec![
        Topology::slim_noc(5, 4)?,
        Topology::flattened_butterfly(10, 5, 4),
        Topology::partitioned_fbf(2, 1, 5, 5, 4),
        Topology::torus(10, 5, 4),
        Topology::mesh(10, 5, 4),
        Topology::dragonfly(3),
        Topology::folded_clos(25, 8, 8),
    ];
    println!(
        "{:<18} {:>5} {:>4} {:>4} {:>3} {:>4} {:>9} {:>7} {:>9}",
        "topology", "N", "N_r", "k'", "k", "D", "avg path", "links", "bisection"
    );
    for t in &zoo {
        let layout = Layout::natural(t);
        println!(
            "{:<18} {:>5} {:>4} {:>4} {:>3} {:>4} {:>9.3} {:>7} {:>9}",
            t.name(),
            t.node_count(),
            t.router_count(),
            t.network_radix(),
            t.router_radix(),
            t.diameter(),
            t.average_path_length(),
            t.link_count(),
            layout.bisection_links(t),
        );
    }

    // Moore-bound proximity: why MMS graphs scale (§2.1).
    println!("\nMoore-bound proximity of Slim NoC (D = 2): N_r vs k'^2 + 1");
    for q in [5usize, 7, 8, 9, 11, 13] {
        let p = SlimFlyParams::new(q)?;
        println!(
            "  q = {:>2}: N_r = {:>4}, Moore bound = {:>4}, fraction = {:.2}",
            q,
            p.router_count(),
            p.moore_bound(),
            p.moore_fraction()
        );
    }
    Ok(())
}
