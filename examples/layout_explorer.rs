//! Layout explorer: compare the four Slim NoC layouts of §3.3 for any
//! configuration — wire lengths, buffer sizes, wiring-constraint slack
//! and the resulting simulated latency.
//!
//! Run with: `cargo run --release --example layout_explorer [q] [p]`
//! (defaults to the paper's SN-L: q = 9, p = 8).

use slim_noc::layout::{max_wires_per_tile, BufferModel, BufferSpec, Layout, SnLayout, TechNode};
use slim_noc::prelude::*;
use slim_noc::sim::Simulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let q: usize = args.next().map_or(Ok(9), |s| s.parse())?;
    let p: usize = args.next().map_or(Ok(8), |s| s.parse())?;
    let topo = Topology::slim_noc(q, p)?;
    println!("{topo}\n");
    println!(
        "{:<10} {:>7} {:>9} {:>10} {:>8} {:>9} {:>9}",
        "layout", "grid", "avg wire", "max wire", "max W", "buf/rtr", "latency"
    );

    let w_limit = max_wires_per_tile(TechNode::N22, p);
    for (name, kind) in [
        ("sn_basic", SnLayout::Basic),
        ("sn_rand", SnLayout::Random(7)),
        ("sn_gr", SnLayout::Group),
        ("sn_subgr", SnLayout::Subgroup),
    ] {
        let layout = Layout::slim_noc(&topo, kind)?;
        let stats = layout.wire_stats(&topo);
        assert!(
            stats.satisfies_limit(w_limit),
            "{name} violates the Eq. 3 constraint"
        );
        let buffers = BufferModel::edge_buffers(&topo, &layout, BufferSpec::standard());
        let mut sim = Simulator::build_with_layout(&topo, &layout, &SimConfig::default())?;
        let report = sim.run_synthetic(TrafficPattern::Random, 0.06, 1_000, 5_000);
        println!(
            "{:<10} {:>3}x{:<3} {:>9.3} {:>10} {:>8} {:>9.0} {:>8.2}",
            name,
            layout.grid().0,
            layout.grid().1,
            layout.average_wire_length(&topo),
            layout.max_wire_length(&topo),
            stats.max_crossings,
            buffers.average_per_router(),
            report.avg_packet_latency(),
        );
    }
    println!("\n(22nm wiring bound per tile: {w_limit} wires — all layouts satisfy Eq. 3)");
    Ok(())
}
