//! Integration tests spanning all crates: full build-place-simulate-
//! evaluate pipelines on the paper's configurations.

use slim_noc::core::{BufferPreset, Setup};
use slim_noc::layout::{Layout, SnLayout};
use slim_noc::power::TechNode;
use slim_noc::prelude::*;
use slim_noc::sim::Simulator;
use slim_noc::traffic::TraceWorkload;

#[test]
fn every_paper_configuration_simulates_and_drains() {
    for name in slim_noc::topology::paper_config_names() {
        // Keep the heavy 1296-node runs short; this is a smoke pass.
        let setup = Setup::paper(name).expect("config");
        let report = setup.run_load(TrafficPattern::Random, 0.02, 200, 800);
        assert!(report.delivered_packets > 0, "{name}: {report}");
        assert!(report.drained, "{name} failed to drain: {report}");
    }
}

#[test]
fn slim_noc_latency_beats_low_radix_networks() {
    // §5.2.2 / Figs 12-13 / Fig 19 (all with SMART links): SN has lower
    // latency than mesh and torus. Without SMART, SN's longer wires can
    // cost latency at small scales — which is exactly Fig 14's point.
    let lat = |name: &str| {
        Setup::paper(name)
            .expect("config")
            .with_smart(true)
            .run_load(TrafficPattern::Random, 0.05, 500, 2_500)
            .avg_packet_latency()
    };
    let sn = lat("sn54");
    let t2d = lat("t2d54");
    let cm = lat("cm54");
    assert!(sn < t2d, "sn {sn} vs t2d {t2d}");
    assert!(sn < cm, "sn {sn} vs cm {cm}");
}

#[test]
fn slim_noc_throughput_beats_low_radix_networks() {
    let sat = |name: &str| {
        Setup::paper(name).expect("config").saturation_throughput(
            TrafficPattern::Random,
            300,
            1_500,
        )
    };
    let sn = sat("sn54");
    let t2d = sat("t2d54");
    assert!(
        sn > 1.5 * t2d,
        "SN saturation {sn} should dwarf torus {t2d}"
    );
}

#[test]
fn zero_load_latency_matches_analytic_model() {
    // At near-zero load, packet latency ≈ injection (1) + per-hop router
    // pipeline (2) + link (1 cycle each at H=1, unit wires) + final
    // ejection (2 + 1) + serialization (len − 1). For a diameter-2 SN
    // with 6-flit packets: ~2 hops avg -> between 10 and 20 cycles.
    let topo = Topology::slim_noc(3, 3).unwrap();
    let mut sim = Simulator::build(&topo, &SimConfig::default()).unwrap();
    let report = sim.run_synthetic(TrafficPattern::Random, 0.005, 1_000, 6_000);
    let lat = report.avg_packet_latency();
    assert!((10.0..20.0).contains(&lat), "zero-load latency {lat}");
}

#[test]
fn cbr_with_smart_is_the_best_sn_design_point() {
    // §5.2.1's conclusion (3): SN with small CBs performs best; check
    // CBR-20 at least matches EB-Small in saturation throughput.
    let base = Setup::paper("sn54").expect("sn54").with_smart(true);
    let eb = base.clone();
    let cbr = base.with_buffers(BufferPreset::Cbr(20));
    let eb_sat = eb.saturation_throughput(TrafficPattern::Random, 300, 1_500);
    let cbr_sat = cbr.saturation_throughput(TrafficPattern::Random, 300, 1_500);
    assert!(
        cbr_sat > 0.7 * eb_sat,
        "CBR {cbr_sat} should be competitive with EB {eb_sat}"
    );
}

#[test]
fn trace_protocol_round_trip() {
    // Reads trigger replies; everything drains; latency is sane.
    let setup = Setup::paper("sn54").expect("sn54");
    let w = TraceWorkload::by_name("streamcluster").unwrap();
    let report = setup.run_trace_workload(&w, 4_000);
    assert!(report.drained, "{report}");
    assert!(report.avg_packet_latency() > 5.0);
    assert!(report.delivered_packets > 100);
}

#[test]
fn power_pipeline_end_to_end() {
    let setup = Setup::paper("sn54")
        .expect("sn54")
        .with_buffers(BufferPreset::EbVar);
    let r = setup.evaluate_power(TechNode::N45, TrafficPattern::Random, 0.08, 300, 2_000);
    assert!(r.area.total_mm2() > 0.0);
    assert!(r.static_power.total_w() > 0.0);
    assert!(r.dynamic_power.total_w() > 0.0);
    assert!(r.throughput_per_power() > 0.0);
    assert!(r.energy_delay() > 0.0);
    // Dynamic power at 8% load stays below static+dynamic bound sanity.
    assert!(r.dynamic_power.total_w() < 100.0, "{:?}", r.dynamic_power);
}

#[test]
fn facade_prelude_compiles_and_exposes_the_api() {
    // The prelude carries the whole workflow.
    let topo = Topology::slim_noc(3, 3).expect("sn");
    let layout = Layout::slim_noc(&topo, SnLayout::Subgroup).expect("layout");
    let cfg = SimConfig::default();
    let mut sim = Simulator::build_with_layout(&topo, &layout, &cfg).expect("sim");
    let report = sim.run_synthetic(TrafficPattern::BitShuffle, 0.03, 200, 1_000);
    assert!(report.delivered_packets > 0);
}

#[test]
fn sn_1024_power_of_two_design_works() {
    // The §3.4 power-of-two design: q = 8 (non-prime field), 1024 nodes.
    let setup = Setup::paper("sn_p2").expect("sn_p2");
    assert_eq!(setup.topology.node_count(), 1024);
    assert_eq!(setup.topology.diameter(), 2);
    let report = setup.run_load(TrafficPattern::Random, 0.02, 200, 800);
    assert!(report.drained, "{report}");
}
