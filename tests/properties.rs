//! Property-based tests (proptest) over the core invariants of the
//! reproduction: field axioms, routing delivery, layout uniqueness,
//! wire-path geometry, and flit conservation.

use proptest::prelude::*;
use slim_noc::field::{factor_prime_power, GeneratorSets, Gf, SlimFlyParams};
use slim_noc::layout::{Layout, SnLayout};
use slim_noc::prelude::*;
use slim_noc::sim::Simulator;

/// Prime powers small enough for exhaustive checking.
fn prime_powers() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![2usize, 3, 4, 5, 7, 8, 9, 11, 13, 16])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn field_axioms_hold(q in prime_powers(), a_idx in 0usize..16, b_idx in 0usize..16) {
        let f = Gf::new(q).unwrap();
        let a = f.element(a_idx % q).unwrap();
        let b = f.element(b_idx % q).unwrap();
        // Commutativity.
        prop_assert_eq!(f.add(a, b), f.add(b, a));
        prop_assert_eq!(f.mul(a, b), f.mul(b, a));
        // Identities and inverses.
        prop_assert_eq!(f.add(a, f.zero()), a);
        prop_assert_eq!(f.mul(a, f.one()), a);
        prop_assert_eq!(f.add(a, f.neg(a)), f.zero());
        if a != f.zero() {
            prop_assert_eq!(f.mul(a, f.inv(a)), f.one());
        }
        // Subtraction/division consistency.
        prop_assert_eq!(f.add(f.sub(a, b), b), a);
        if b != f.zero() {
            prop_assert_eq!(f.mul(f.div(a, b), b), a);
        }
    }

    #[test]
    fn generator_sets_always_validate(q in prime_powers()) {
        let f = Gf::new(q).unwrap();
        let sets = GeneratorSets::generate(&f).unwrap();
        prop_assert!(sets.is_valid(&f));
        let params = SlimFlyParams::new(q).unwrap();
        prop_assert_eq!(sets.x().len(), params.generator_set_size());
    }

    #[test]
    fn slim_noc_structure_invariants(q in prime_powers(), p in 1usize..6) {
        let t = Topology::slim_noc(q, p).unwrap();
        let params = SlimFlyParams::new(q).unwrap();
        prop_assert!(t.is_regular());
        prop_assert_eq!(t.network_radix(), params.network_radix());
        prop_assert_eq!(t.diameter(), 2);
        prop_assert_eq!(t.node_count(), 2 * q * q * p);
        // Handshake: total degree = 2 * links.
        let degree_sum: usize = t.routers().map(|r| t.neighbors(r).len()).sum();
        prop_assert_eq!(degree_sum, 2 * t.link_count());
    }

    #[test]
    fn layouts_place_uniquely_and_within_grid(
        q in prop::sample::select(vec![3usize, 4, 5, 7, 8, 9]),
        seed in 0u64..1000,
    ) {
        let t = Topology::slim_noc(q, 1).unwrap();
        for kind in [
            SnLayout::Basic,
            SnLayout::Subgroup,
            SnLayout::Group,
            SnLayout::Random(seed),
        ] {
            let l = Layout::slim_noc(&t, kind).unwrap();
            let (gx, gy) = l.grid();
            let mut seen = std::collections::HashSet::new();
            for r in t.routers() {
                let c = l.coord(r);
                prop_assert!(c.0 < gx && c.1 < gy);
                prop_assert!(seen.insert(c), "duplicate coordinate {c:?}");
            }
        }
    }

    #[test]
    fn wire_paths_connect_endpoints(
        x1 in 0usize..20, y1 in 0usize..20, x2 in 0usize..20, y2 in 0usize..20,
    ) {
        let t = Topology::mesh(2, 1, 1);
        let l = Layout::natural(&t);
        let _ = l; // wire_path is exposed through Layout; use free geometry:
        let path = slim_noc::layout::Layout::natural(&Topology::mesh(2, 1, 1))
            .wire_path(slim_noc::topology::RouterId(0), slim_noc::topology::RouterId(1));
        prop_assert_eq!(path.length(), 1);
        // Generic geometry via WirePath on arbitrary coordinates is
        // validated in the layout crate's unit tests; here we check the
        // Manhattan identity on the lattice.
        let d = x1.abs_diff(x2) + y1.abs_diff(y2);
        prop_assert_eq!(d, x2.abs_diff(x1) + y2.abs_diff(y1));
    }

    #[test]
    fn mesh_path_lengths_match_manhattan(x in 2usize..6, y in 2usize..6) {
        let t = Topology::mesh(x, y, 1);
        let stats = t.path_stats();
        // Mesh diameter = (x-1) + (y-1).
        prop_assert_eq!(stats.diameter, x + y - 2);
    }

    #[test]
    fn prime_power_factorization_roundtrip(p in prop::sample::select(vec![2usize, 3, 5, 7]), n in 1usize..5) {
        let q: usize = (0..n).fold(1, |acc, _| acc * p);
        if q > 1 {
            prop_assert_eq!(factor_prime_power(q), Some((p, n)));
        }
    }
}

proptest! {
    // Simulation properties are expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn flit_conservation_under_random_loads(
        rate in 0.01f64..0.12,
        seed in 0u64..100,
    ) {
        let topo = Topology::slim_noc(3, 2).unwrap();
        let cfg = SimConfig::default().with_seed(seed);
        let mut sim = Simulator::build(&topo, &cfg).unwrap();
        let report = sim.run_synthetic(TrafficPattern::Random, rate, 300, 1_500);
        prop_assert!(report.drained);
        prop_assert_eq!(sim.in_flight_flits(), 0);
        prop_assert_eq!(report.delivered_packets, report.injected_packets);
        prop_assert_eq!(
            report.delivered_flits,
            report.delivered_packets * 6
        );
    }

    #[test]
    fn every_pattern_delivers(
        pattern in prop::sample::select(vec![
            TrafficPattern::Random,
            TrafficPattern::BitShuffle,
            TrafficPattern::BitReversal,
            TrafficPattern::Adversarial1,
            TrafficPattern::Adversarial2,
            TrafficPattern::Asymmetric,
            TrafficPattern::Transpose,
        ]),
    ) {
        let topo = Topology::slim_noc(3, 2).unwrap();
        let mut sim = Simulator::build(&topo, &SimConfig::default()).unwrap();
        let report = sim.run_synthetic(pattern, 0.03, 300, 1_500);
        prop_assert!(report.drained, "{}: {}", pattern, report);
        prop_assert!(report.delivered_packets > 0);
        // Diameter-2 network: no minimal route exceeds 2 hops.
        prop_assert!(report.avg_hops() <= 2.0 + 1e-9);
    }
}
