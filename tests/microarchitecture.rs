//! Integration tests of the router microarchitecture matrix: every
//! (router architecture × link mode × buffer sizing × SMART) combination
//! must deliver traffic, drain, and conserve flits on every topology
//! family.

use slim_noc::layout::Layout;
use slim_noc::prelude::*;
use slim_noc::sim::{BufferSizing, LinkMode, RouterArch, Simulator};

fn configs() -> Vec<(String, SimConfig)> {
    let mut out = Vec::new();
    for (arch_name, arch) in [
        ("eb", RouterArch::EdgeBuffer),
        ("cbr", RouterArch::CentralBuffer { cb_flits: 20 }),
    ] {
        for (link_name, link) in [
            ("credited", LinkMode::Credited),
            ("elastic", LinkMode::Elastic),
        ] {
            for (smart_name, h) in [("h1", 1usize), ("h9", 9)] {
                // CBR pairs with 1-flit staging; EB uses 5-flit buffers.
                let sizing = match arch {
                    RouterArch::EdgeBuffer => BufferSizing::Fixed(5),
                    RouterArch::CentralBuffer { .. } => BufferSizing::Fixed(1),
                };
                let cfg = SimConfig {
                    router_arch: arch,
                    link_mode: link,
                    buffer_sizing: sizing,
                    smart_hops: h,
                    ..SimConfig::default()
                };
                out.push((format!("{arch_name}/{link_name}/{smart_name}"), cfg));
            }
        }
    }
    out
}

#[test]
fn full_microarchitecture_matrix_on_slim_noc() {
    let topo = Topology::slim_noc(3, 3).unwrap();
    let layout = Layout::natural(&topo);
    for (name, cfg) in configs() {
        let mut sim = Simulator::build_with_layout(&topo, &layout, &cfg)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = sim.run_synthetic(TrafficPattern::Random, 0.04, 300, 1_500);
        assert!(report.drained, "{name}: {report}");
        assert!(report.delivered_packets > 50, "{name}: {report}");
        assert_eq!(
            report.delivered_packets, report.injected_packets,
            "{name}: flit conservation"
        );
        assert_eq!(sim.in_flight_flits(), 0, "{name}");
    }
}

#[test]
fn microarchitecture_matrix_on_baselines() {
    for topo in [
        Topology::mesh(4, 4, 2),
        Topology::torus(4, 4, 2),
        Topology::flattened_butterfly(4, 4, 2),
    ] {
        let layout = Layout::natural(&topo);
        for (name, cfg) in configs() {
            let mut sim = Simulator::build_with_layout(&topo, &layout, &cfg)
                .unwrap_or_else(|e| panic!("{}/{name}: {e}", topo.name()));
            let report = sim.run_synthetic(TrafficPattern::Random, 0.03, 200, 1_000);
            assert!(report.drained, "{}/{name}: {report}", topo.name());
            assert!(
                report.delivered_packets > 20,
                "{}/{name}: {report}",
                topo.name()
            );
        }
    }
}

#[test]
fn variable_rtt_buffers_match_link_latency() {
    // With EB-Var the network still works at high load and the latency
    // stays finite even with long wires (100% link utilization claim).
    let topo = Topology::slim_noc(5, 4).unwrap();
    let layout = Layout::natural(&topo);
    let cfg = SimConfig {
        buffer_sizing: BufferSizing::VariableRtt,
        ..SimConfig::default()
    };
    let mut sim = Simulator::build_with_layout(&topo, &layout, &cfg).unwrap();
    let report = sim.run_synthetic(TrafficPattern::Random, 0.15, 500, 3_000);
    assert!(report.delivered_packets > 500, "{report}");
    // RTT-sized buffers should accept most of this sub-saturation load.
    assert!(report.acceptance() > 0.9, "{report}");
}

#[test]
fn small_edge_buffers_hurt_throughput_on_long_wires() {
    // §5.2.1: without SMART links, small edge buffers cannot cover the
    // round-trip time of multi-tile wires, capping link utilization.
    let topo = Topology::slim_noc(5, 4).unwrap();
    let layout = Layout::natural(&topo);
    let run = |sizing: BufferSizing| {
        let cfg = SimConfig {
            buffer_sizing: sizing,
            ..SimConfig::default()
        };
        let mut sim = Simulator::build_with_layout(&topo, &layout, &cfg).unwrap();
        sim.run_synthetic(TrafficPattern::Random, 0.30, 500, 3_000)
            .throughput()
    };
    let small = run(BufferSizing::Fixed(2));
    let var = run(BufferSizing::VariableRtt);
    assert!(
        var > small,
        "RTT-sized buffers ({var}) must outperform 2-flit buffers ({small})"
    );
}

#[test]
fn deeper_central_buffers_absorb_more_conflicts() {
    let topo = Topology::slim_noc(3, 3).unwrap();
    let run = |cb: usize| {
        let mut sim = Simulator::build(&topo, &SimConfig::cbr(cb)).unwrap();
        sim.run_synthetic(TrafficPattern::Random, 0.25, 500, 2_500)
    };
    let small = run(6);
    let large = run(40);
    // Larger CBs hold more packets; both must work, and the large CB
    // should not lose throughput.
    assert!(large.throughput() >= small.throughput() * 0.9);
}
