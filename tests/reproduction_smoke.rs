//! Smoke tests of the reproduction pipeline itself: miniature versions
//! of each figure's computation, asserting the shape the corresponding
//! `repro_*` binary reports at full scale. These guard the experiment
//! harness (not just the library) against regressions.

use slim_noc::core::{BufferPreset, Series, Setup, TextTable};
use slim_noc::field::Gf;
use slim_noc::layout::{max_wires_per_tile, BufferModel, BufferSpec, Layout, SnLayout, TechNode};
use slim_noc::prelude::*;
use slim_noc::topology::table2_rows;

/// Table 2 smoke: the generator enumerates exactly the paper's 24 rows
/// at the 1300-node limit.
#[test]
fn table2_row_count() {
    let rows = table2_rows(1300);
    assert_eq!(rows.len(), 24, "Table 2 has 24 rows");
    assert_eq!(rows.iter().filter(|r| !r.prime_field).count(), 12);
}

/// Table 3 smoke: the paper's exact GF(9) multiplication row for `u`.
#[test]
fn table3_gf9_u_row() {
    let f9 = Gf::new(9).unwrap();
    let u = f9.element(3).unwrap();
    let row: String = f9
        .elements()
        .map(|b| f9.element_name(f9.mul(u, b)))
        .collect();
    assert_eq!(row, "0ux2wz1vy", "paper Table 3, GF(9) product row u");
}

/// Fig 5 smoke: M ordering and Eq. 3 compliance at the SN-L point.
#[test]
fn fig5_shape() {
    let t = Topology::slim_noc(9, 8).unwrap();
    let m = |k| Layout::slim_noc(&t, k).unwrap().average_wire_length(&t);
    assert!(m(SnLayout::Subgroup) < m(SnLayout::Basic));
    assert!(m(SnLayout::Group) < m(SnLayout::Random(1)));
    let stats = Layout::slim_noc(&t, SnLayout::Group)
        .unwrap()
        .wire_stats(&t);
    assert!(stats.satisfies_limit(max_wires_per_tile(TechNode::N22, 8)));
}

/// Fig 6 smoke: at N = 200 the subgroup layout uses fewer of the
/// longest links than the group layout (the paper's §3.4 reason for
/// choosing sn_subgr for SN-S).
#[test]
fn fig6_longest_link_comparison() {
    let t = Topology::slim_noc(5, 4).unwrap();
    // Compare the probability mass of long links (distance ≥ 9 tiles,
    // i.e. bins 5 and beyond) — a fixed threshold, since the two
    // layouts have different maximum wire lengths.
    let tail = |k: SnLayout| {
        let l = Layout::slim_noc(&t, k).unwrap();
        let d = l.link_distance_density(&t, 2);
        d.iter().skip(4).sum::<f64>()
    };
    assert!(
        tail(SnLayout::Subgroup) < tail(SnLayout::Group),
        "sn_subgr should use fewer whole-die links at N=200"
    );
}

/// Fig 11 smoke: without SMART, RTT-sized buffers beat 5-flit buffers
/// in saturation throughput on a network with multi-tile wires.
#[test]
fn fig11_buffer_shape() {
    let base = Setup::paper("sn_s").unwrap();
    let small = base.clone(); // EB-Small default
    let var = base.with_buffers(BufferPreset::EbVar);
    let sat = |s: &Setup| s.saturation_throughput(TrafficPattern::Random, 300, 1_200);
    assert!(
        sat(&var) > sat(&small),
        "EB-Var must out-saturate EB-Small without SMART"
    );
}

/// Fig 12 smoke: with SMART, SN's low-load latency sits well below the
/// concentrated mesh's under bit-reversal.
#[test]
fn fig12_shape() {
    let lat = |name: &str| {
        Setup::paper(name)
            .unwrap()
            .with_smart(true)
            .run_load(TrafficPattern::BitReversal, 0.008, 300, 1_200)
            .avg_packet_latency()
    };
    let sn = lat("sn_s");
    let cm = lat("cm3");
    assert!(
        sn < 0.85 * cm,
        "SN {sn:.1} should be well below CM {cm:.1} (paper: ≈54-62%)"
    );
}

/// Fig 15 smoke: the per-network area ordering FBF > PFBF > SN > T2D > CM.
#[test]
fn fig15_area_ordering() {
    let area = |name: &str| {
        let s = Setup::paper(name)
            .unwrap()
            .with_buffers(BufferPreset::EbVar);
        s.power_model(slim_noc::power::TechNode::N45)
            .area(&s.topology, &s.layout, s.buffer_flits_per_router())
            .total_mm2()
    };
    let fbf = area("fbf4");
    let pfbf = area("pfbf4");
    let sn = area("sn_s");
    let t2d = area("t2d4");
    assert!(fbf > pfbf, "fbf {fbf} > pfbf {pfbf}");
    assert!(pfbf > sn, "pfbf {pfbf} > sn {sn}");
    assert!(sn > t2d, "sn {sn} > t2d {t2d}");
}

/// Buffer-model cross-check used throughout the harness: the average
/// per-router edge-buffer total equals Eq. 5 divided by N_r.
#[test]
fn buffer_model_consistency() {
    let t = Topology::slim_noc(5, 4).unwrap();
    let l = Layout::slim_noc(&t, SnLayout::Subgroup).unwrap();
    let model = BufferModel::edge_buffers(&t, &l, BufferSpec::standard());
    let avg = model.average_per_router();
    assert!((avg * t.router_count() as f64 - model.total() as f64).abs() < 1e-9);
    // Eq. 5 recomputed by hand over links.
    let spec = BufferSpec::standard();
    let manual: usize = t
        .links()
        .map(|(a, b)| 2 * spec.edge_buffer_flits(l.manhattan(a, b)))
        .sum();
    assert_eq!(model.total(), manual);
}

/// Reporting smoke: series tabulation renders every curve of a sweep.
#[test]
fn series_tabulation_roundtrip() {
    let setup = Setup::paper("sn54").unwrap();
    let points = setup.latency_load_curve(TrafficPattern::Random, &[0.01, 0.03], 200, 800);
    let mut series = Series::new("sn54");
    for p in &points {
        series.push(p.load, p.latency);
    }
    let table = Series::tabulate("smoke", "load", &[series]);
    assert_eq!(table.rows.len(), points.len());
    let rendered = table.render();
    assert!(rendered.contains("sn54"));
    let _csv: TextTable = table; // type check: tables are plain data
}
