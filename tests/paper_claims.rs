//! Tests pinning the paper's headline quantitative claims (the "shape"
//! targets recorded in EXPERIMENTS.md). Absolute constants differ from
//! the authors' testbed; each assertion checks the direction and rough
//! factor of a published comparison.

use slim_noc::core::{BufferPreset, Setup};
use slim_noc::field::SlimFlyParams;
use slim_noc::layout::{BufferModel, BufferSpec, Layout, SnLayout};
use slim_noc::power::TechNode;
use slim_noc::prelude::*;

/// §2.1: "SF reduces the number of routers by ≈25% and increases their
/// network radix by ≈40% in comparison to a DF with a comparable N."
#[test]
fn slim_fly_uses_fewer_routers_than_dragonfly() {
    let sn = Topology::slim_noc(7, 4).unwrap(); // N = 392
    let df = Topology::dragonfly(3); // N = 342
    let router_ratio = df.router_count() as f64 / sn.router_count() as f64;
    assert!(
        router_ratio > 1.1,
        "DF should need noticeably more routers (ratio {router_ratio:.2})"
    );
    assert!(sn.network_radix() > df.network_radix());
}

/// §3.3 / Fig 5a: the subgroup and group layouts reduce the average wire
/// length by roughly a quarter versus random placement.
#[test]
fn layouts_cut_wire_length_by_about_a_quarter() {
    let t = Topology::slim_noc(9, 8).unwrap();
    let m = |k: SnLayout| Layout::slim_noc(&t, k).unwrap().average_wire_length(&t);
    let m_rand = m(SnLayout::Random(1));
    let m_subgr = m(SnLayout::Subgroup);
    let reduction = 1.0 - m_subgr / m_rand;
    assert!(
        (0.10..0.50).contains(&reduction),
        "wire-length reduction {reduction:.2} (paper: ≈25%)"
    );
}

/// §3.3 / Fig 5b: the group layout cuts Δ_eb by double-digit percent.
#[test]
fn group_layout_cuts_edge_buffer_total() {
    let t = Topology::slim_noc(9, 8).unwrap();
    let total = |k: SnLayout| {
        let l = Layout::slim_noc(&t, k).unwrap();
        BufferModel::edge_buffers(&t, &l, BufferSpec::standard()).total() as f64
    };
    let reduction = 1.0 - total(SnLayout::Group) / total(SnLayout::Random(1));
    assert!(
        reduction > 0.08,
        "Δ_eb reduction {reduction:.2} (paper: ≈18%)"
    );
}

/// Figs 5b–5c: central buffers give the lowest total buffer size.
#[test]
fn central_buffers_minimize_total_buffer_space() {
    let t = Topology::slim_noc(9, 8).unwrap();
    let l = Layout::slim_noc(&t, SnLayout::Group).unwrap();
    let eb = BufferModel::edge_buffers(&t, &l, BufferSpec::standard()).total();
    let cb = slim_noc::layout::total_central_buffers(&t, 20, 2);
    assert!(cb < eb / 2, "CB total {cb} vs EB total {eb}");
}

/// §3.3.2 / Fig 5d: all layouts satisfy the Eq. 3 wiring constraint.
#[test]
fn wiring_constraints_hold_for_all_paper_designs() {
    for (q, p) in [(5usize, 4usize), (8, 8), (9, 8)] {
        let t = Topology::slim_noc(q, p).unwrap();
        for kind in [
            SnLayout::Basic,
            SnLayout::Subgroup,
            SnLayout::Group,
            SnLayout::Random(3),
        ] {
            let l = Layout::slim_noc(&t, kind).unwrap();
            let stats = l.wire_stats(&t);
            for tech in [TechNode::N45, TechNode::N22, TechNode::N11] {
                let bound = slim_noc::layout::max_wires_per_tile(tech, p);
                assert!(
                    stats.satisfies_limit(bound),
                    "q={q} {kind:?} {tech}: {} > {bound}",
                    stats.max_crossings
                );
            }
        }
    }
}

/// §6 "SN vs High-Radix Networks": area and static power far below FBF.
#[test]
fn sn_beats_fbf_in_area_and_static_power() {
    let eval = |name: &str| {
        let s = Setup::paper(name)
            .unwrap()
            .with_buffers(BufferPreset::EbVar);
        let model = s.power_model(TechNode::N45);
        let area = model.area(&s.topology, &s.layout, s.buffer_flits_per_router());
        let stat = model.static_power(&s.topology, &s.layout, &area);
        (area.total_mm2(), stat.total_w())
    };
    let (sn_area, sn_pwr) = eval("sn_s");
    let (fbf_area, fbf_pwr) = eval("fbf3");
    let area_saving = 1.0 - sn_area / fbf_area;
    let power_saving = 1.0 - sn_pwr / fbf_pwr;
    assert!(
        area_saving > 0.2,
        "area saving {area_saving:.2} (paper: >36%)"
    );
    assert!(
        power_saving > 0.3,
        "static power saving {power_saving:.2} (paper: >49%)"
    );
}

/// §6 "SN vs Low-Radix Networks": SN pays area but wins performance.
#[test]
fn sn_trades_area_for_performance_against_torus() {
    let s_sn = Setup::paper("sn_s")
        .unwrap()
        .with_buffers(BufferPreset::EbVar);
    let s_t2d = Setup::paper("t2d4")
        .unwrap()
        .with_buffers(BufferPreset::EbVar);
    let area = |s: &Setup| {
        s.power_model(TechNode::N45)
            .area(&s.topology, &s.layout, s.buffer_flits_per_router())
            .total_mm2()
    };
    assert!(area(&s_sn) > area(&s_t2d), "SN uses more area than T2D");
    let sat_sn = s_sn.saturation_throughput(TrafficPattern::Random, 300, 1_500);
    let sat_t2d = s_t2d.saturation_throughput(TrafficPattern::Random, 300, 1_500);
    assert!(
        sat_sn > 2.0 * sat_t2d,
        "SN throughput {sat_sn} vs T2D {sat_t2d} (paper: 3x)"
    );
}

/// Table 2's most important property: Slim NoC admits power-of-two node
/// counts through non-prime fields (impossible with prime q alone at
/// these radixes).
#[test]
fn non_prime_fields_unlock_power_of_two_sizes() {
    for (q, p, n) in [
        (4usize, 2usize, 64usize),
        (4, 4, 128),
        (8, 4, 512),
        (8, 8, 1024),
    ] {
        let params = SlimFlyParams::new(q).unwrap();
        assert_eq!(params.nodes_with(p), n);
        assert!(n.is_power_of_two());
        let t = Topology::slim_noc(q, p).unwrap();
        assert_eq!(t.diameter(), 2, "q={q}");
    }
}

/// §5.2.1: SMART links accelerate Slim NoC (the paper reports up to
/// ≈35% for sn_subgr; we require a clear double-digit gain at moderate
/// load with RTT-sized buffers).
#[test]
fn smart_links_accelerate_slim_noc() {
    let lat = |smart: bool| {
        Setup::paper("sn_s")
            .unwrap()
            .with_buffers(BufferPreset::EbVar)
            .with_smart(smart)
            .run_load(TrafficPattern::Random, 0.06, 500, 3_000)
            .avg_packet_latency()
    };
    let without = lat(false);
    let with = lat(true);
    let gain = 1.0 - with / without;
    assert!(
        gain > 0.10,
        "SMART gain {gain:.2} ({with:.1} vs {without:.1} cycles)"
    );
}

/// Fig 18's direction: Slim NoC's EDP beats FBF's on traces.
#[test]
fn sn_edp_beats_fbf_on_a_trace() {
    let w = slim_noc::traffic::TraceWorkload::by_name("fft").unwrap();
    let edp = |name: &str| {
        let s = Setup::paper(name)
            .unwrap()
            .with_smart(true)
            .with_buffers(BufferPreset::EbVar);
        let report = s.run_trace_workload(&w, 6_000);
        s.power_model(TechNode::N45)
            .evaluate(&s.topology, &s.layout, s.buffer_flits_per_router(), &report)
            .energy_delay()
    };
    let sn = edp("sn_s");
    let fbf = edp("fbf3");
    assert!(sn < fbf, "SN EDP {sn:.3e} vs FBF {fbf:.3e}");
}
