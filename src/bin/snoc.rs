//! `snoc` — command-line front end to the Slim NoC reproduction.
//!
//! Runs a single simulation (or an analysis) from the shell without
//! writing Rust:
//!
//! ```text
//! snoc sim --config sn_s --pattern rnd --load 0.1 --smart
//! snoc sim --topology sn --q 9 --p 8 --buffers cbr20 --pattern adv1
//! snoc analyze --config sn_l
//! snoc list
//! snoc serve --cache-dir .snoc-cache
//! snoc submit --spec campaign.json
//! ```

use slim_noc::core::{format_float, BufferPreset, Setup, TextTable};
use slim_noc::layout::SnLayout;
use slim_noc::power::TechNode;
use slim_noc::prelude::*;
use slim_noc::sim::RoutingKind;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("sim") => cmd_sim(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("list") => {
            cmd_list();
            Ok(())
        }
        Some("--help" | "-h") | None => {
            usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try --help)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn usage() {
    println!(
        "snoc — Slim NoC reproduction CLI

USAGE:
  snoc sim [OPTIONS]       run one simulation
  snoc analyze [OPTIONS]   print topology/layout/cost analysis
  snoc list                list named paper configurations
  snoc serve [OPTIONS]     run the campaign server (see README:
                           \"Campaign server & cache\")
  snoc submit [OPTIONS]    submit a spec file to a running server

SERVE / SUBMIT OPTIONS:
  --addr <host:port>  server address (default 127.0.0.1:7077)
  --cache-dir <dir>   serve: shared content-addressed point cache
  --threads <n>       serve: worker threads per job (0 = per core)
  --spec <file>       submit: slim_noc-spec-v1 campaign file

SIM / ANALYZE OPTIONS:
  --config <name>     a paper configuration (see `snoc list`)
  --topology <kind>   sn | mesh | torus | fbf (with --x/--y or --q)
  --q <q> --p <p>     Slim NoC parameters (default q=5 p=4)
  --x <x> --y <y>     grid dimensions for mesh/torus/fbf (default 8x8)
  --layout <name>     basic | subgr | gr | rand (Slim NoC only)
  --buffers <name>    eb-small | eb-large | eb-var | el-links | cbr<N>
  --pattern <name>    rnd | shf | rev | adv1 | adv2 | asym | trn
  --routing <name>    min | ugal-l | ugal-g | xy
  --load <f>          offered load in flits/node/cycle (default 0.05)
  --warmup <cycles>   default 2000
  --measure <cycles>  default 10000
  --smart             enable SMART links (H = 9)
  --tech <node>       45 | 22 | 11 (default 45)
  --seed <n>          RNG seed"
    );
}

struct Options {
    setup: Setup,
    pattern: TrafficPattern,
    load: f64,
    warmup: u64,
    measure: u64,
    tech: TechNode,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut config: Option<String> = None;
    let mut topology = String::from("sn");
    let (mut q, mut p) = (5usize, 4usize);
    let (mut x, mut y) = (8usize, 8usize);
    let mut layout: Option<String> = None;
    let mut buffers: Option<String> = None;
    let mut pattern = String::from("rnd");
    let mut routing = String::from("min");
    let mut load = 0.05f64;
    let mut warmup = 2_000u64;
    let mut measure = 10_000u64;
    let mut smart = false;
    let mut tech = String::from("45");
    let mut seed: Option<u64> = None;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--config" => config = Some(value("--config")?),
            "--topology" => topology = value("--topology")?,
            "--q" => q = value("--q")?.parse().map_err(|e| format!("--q: {e}"))?,
            "--p" => p = value("--p")?.parse().map_err(|e| format!("--p: {e}"))?,
            "--x" => x = value("--x")?.parse().map_err(|e| format!("--x: {e}"))?,
            "--y" => y = value("--y")?.parse().map_err(|e| format!("--y: {e}"))?,
            "--layout" => layout = Some(value("--layout")?),
            "--buffers" => buffers = Some(value("--buffers")?),
            "--pattern" => pattern = value("--pattern")?,
            "--routing" => routing = value("--routing")?,
            "--load" => {
                load = value("--load")?
                    .parse()
                    .map_err(|e| format!("--load: {e}"))?
            }
            "--warmup" => {
                warmup = value("--warmup")?
                    .parse()
                    .map_err(|e| format!("--warmup: {e}"))?;
            }
            "--measure" => {
                measure = value("--measure")?
                    .parse()
                    .map_err(|e| format!("--measure: {e}"))?;
            }
            "--smart" => smart = true,
            "--tech" => tech = value("--tech")?,
            "--seed" => {
                seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                )
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }

    let mut setup = if let Some(name) = config {
        Setup::paper(&name).map_err(|e| e.to_string())?
    } else {
        let topo = match topology.as_str() {
            "sn" => Topology::slim_noc(q, p).map_err(|e| e.to_string())?,
            "mesh" => Topology::mesh(x, y, p),
            "torus" => Topology::torus(x, y, p),
            "fbf" => Topology::flattened_butterfly(x, y, p),
            other => return Err(format!("unknown topology `{other}`")),
        };
        Setup::from_topology(&format!("{topology} (custom)"), topo, 0.5)
            .map_err(|e| e.to_string())?
    };
    if let Some(l) = layout {
        let kind = match l.as_str() {
            "basic" => SnLayout::Basic,
            "subgr" => SnLayout::Subgroup,
            "gr" => SnLayout::Group,
            "rand" => SnLayout::Random(seed.unwrap_or(1)),
            other => return Err(format!("unknown layout `{other}`")),
        };
        setup = setup.with_sn_layout(kind).map_err(|e| e.to_string())?;
    }
    if let Some(b) = buffers {
        let preset = match b.as_str() {
            "eb-small" => BufferPreset::EbSmall,
            "eb-large" => BufferPreset::EbLarge,
            "eb-var" => BufferPreset::EbVar,
            "el-links" => BufferPreset::ElLinks,
            other => match other.strip_prefix("cbr") {
                Some(n) => {
                    BufferPreset::Cbr(n.parse().map_err(|e| format!("--buffers cbr<N>: {e}"))?)
                }
                None => return Err(format!("unknown buffers `{other}`")),
            },
        };
        setup = setup.with_buffers(preset);
    }
    setup = setup.with_routing(match routing.as_str() {
        "min" => RoutingKind::Minimal,
        "ugal-l" => RoutingKind::UgalL,
        "ugal-g" => RoutingKind::UgalG,
        "xy" => RoutingKind::XyAdaptive,
        other => return Err(format!("unknown routing `{other}`")),
    });
    setup = setup.with_smart(smart);
    if let Some(s) = seed {
        setup = setup.with_seed(s);
    }
    let pattern = match pattern.as_str() {
        "rnd" => TrafficPattern::Random,
        "shf" => TrafficPattern::BitShuffle,
        "rev" => TrafficPattern::BitReversal,
        "adv1" => TrafficPattern::Adversarial1,
        "adv2" => TrafficPattern::Adversarial2,
        "asym" => TrafficPattern::Asymmetric,
        "trn" => TrafficPattern::Transpose,
        other => return Err(format!("unknown pattern `{other}`")),
    };
    let tech = match tech.as_str() {
        "45" => TechNode::N45,
        "22" => TechNode::N22,
        "11" => TechNode::N11,
        other => return Err(format!("unknown tech node `{other}`")),
    };
    Ok(Options {
        setup,
        pattern,
        load,
        warmup,
        measure,
        tech,
    })
}

fn cmd_sim(args: &[String]) -> Result<(), String> {
    let opt = parse(args)?;
    let report = opt
        .setup
        .run_load(opt.pattern, opt.load, opt.warmup, opt.measure);
    let power = opt.setup.power_model(opt.tech).evaluate(
        &opt.setup.topology,
        &opt.setup.layout,
        opt.setup.buffer_flits_per_router(),
        &report,
    );
    let mut t = TextTable::new(
        format!(
            "{} | {} @ {} flits/node/cycle | buffers {} | H={}",
            opt.setup.name, opt.pattern, opt.load, opt.setup.buffers, opt.setup.sim.smart_hops
        ),
        &["metric", "value"],
    );
    let mut row = |k: &str, v: String| t.push_row(vec![k.to_string(), v]);
    row(
        "avg latency [cycles]",
        format_float(report.avg_packet_latency(), 2),
    );
    row(
        "p99 latency [cycles]",
        report.latency_percentile(0.99).to_string(),
    );
    row(
        "throughput [flits/node/cycle]",
        format_float(report.throughput(), 4),
    );
    row("acceptance", format_float(report.acceptance(), 3));
    row("avg hops", format_float(report.avg_hops(), 3));
    row("delivered packets", report.delivered_packets.to_string());
    row("drained", report.drained.to_string());
    row("area [mm^2]", format_float(power.area.total_mm2(), 1));
    row(
        "static power [W]",
        format_float(power.static_power.total_w(), 2),
    );
    row(
        "dynamic power [W]",
        format_float(power.dynamic_power.total_w(), 2),
    );
    row(
        "throughput/power [flits/J]",
        format_float(power.throughput_per_power(), 3),
    );
    t.print(false);
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let opt = parse(args)?;
    let topo = &opt.setup.topology;
    let layout = &opt.setup.layout;
    let stats = topo.path_stats();
    let wires = layout.wire_stats(topo);
    let mut t = TextTable::new(
        format!("analysis: {}", opt.setup.name),
        &["metric", "value"],
    );
    let mut row = |k: &str, v: String| t.push_row(vec![k.to_string(), v]);
    row("nodes", topo.node_count().to_string());
    row("routers", topo.router_count().to_string());
    row("network radix k'", topo.network_radix().to_string());
    row("router radix k", topo.router_radix().to_string());
    row("diameter", stats.diameter.to_string());
    row("avg path [hops]", format_float(stats.average, 3));
    row("links", topo.link_count().to_string());
    row(
        "die grid",
        format!("{}x{}", layout.grid().0, layout.grid().1),
    );
    row(
        "avg wire [tiles]",
        format_float(layout.average_wire_length(topo), 3),
    );
    row("max wire [tiles]", layout.max_wire_length(topo).to_string());
    row("max wire crossings W", wires.max_crossings.to_string());
    row("bisection links", layout.bisection_links(topo).to_string());
    row(
        "buffers/router [flits]",
        opt.setup.buffer_flits_per_router().to_string(),
    );
    t.print(false);
    Ok(())
}

fn cmd_list() {
    let mut t = TextTable::new("paper configurations", &["name", "N", "k'", "D"]);
    for name in slim_noc::topology::paper_config_names() {
        if let Ok(cfg) = slim_noc::topology::paper_config(name) {
            t.push_row(vec![
                name.to_string(),
                cfg.topology.node_count().to_string(),
                cfg.topology.network_radix().to_string(),
                cfg.topology.diameter().to_string(),
            ]);
        }
    }
    t.print(false);
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut addr = String::from("127.0.0.1:7077");
    let mut cache_dir: Option<String> = None;
    let mut threads = 0usize;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr")?,
            "--cache-dir" => cache_dir = Some(value("--cache-dir")?),
            "--threads" => {
                threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let server = snoc_bench::serve::Server::bind(&addr, cache_dir.as_deref(), threads)
        .map_err(|e| format!("bind {addr}: {e}"))?;
    match server.local_addr() {
        Ok(bound) => eprintln!("snoc serve: listening on {bound}"),
        Err(_) => eprintln!("snoc serve: listening on {addr}"),
    }
    if let Some(dir) = &cache_dir {
        eprintln!("snoc serve: shared cache at {dir}");
    }
    server.run().map_err(|e| format!("serve: {e}"))
}

fn cmd_submit(args: &[String]) -> Result<(), String> {
    let mut addr = String::from("127.0.0.1:7077");
    let mut spec_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr")?,
            "--spec" => spec_path = Some(value("--spec")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let path = spec_path.ok_or("submit needs --spec <file>")?;
    let spec_json = std::fs::read_to_string(&path).map_err(|e| format!("read `{path}`: {e}"))?;
    let outcome = snoc_bench::serve::submit(&addr, &spec_json, |line| println!("{line}"))
        .map_err(|e| format!("submit to {addr}: {e}"))?;
    eprintln!(
        "snoc-submit-stats: points={} hits={} misses={}",
        outcome.points, outcome.cache_hits, outcome.cache_misses
    );
    Ok(())
}
