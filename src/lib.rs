//! # Slim NoC — facade crate
//!
//! A complete reproduction of *"Slim NoC: A Low-Diameter On-Chip Network
//! Topology for High Energy Efficiency and Scalability"* (ASPLOS 2018).
//!
//! This crate re-exports the whole workspace behind one roof:
//!
//! - [`field`] — finite fields `GF(p^n)` and MMS generator sets,
//! - [`topology`] — Slim NoC and all baseline topologies (mesh, torus,
//!   concentrated mesh, Flattened Butterfly, partitioned FBF, Dragonfly,
//!   folded Clos),
//! - [`layout`] — on-chip placement, wire, buffer and cost models,
//! - [`traffic`] — synthetic traffic patterns and trace workloads,
//! - [`sim`] — the cycle-accurate flit-level network simulator,
//! - [`refsim`] — the golden reference simulator used to differentially
//!   verify [`sim`] (executable specification),
//! - [`power`] — the DSENT-style area/power/energy model,
//! - [`core`] — experiment configurations, runners and reporting.
//!
//! # Quickstart
//!
//! ```
//! use slim_noc::prelude::*;
//!
//! // Build the paper's SN-S network: q = 5, 50 routers, 200 nodes.
//! let topo = Topology::slim_noc(5, 4)?;
//! assert_eq!(topo.router_count(), 50);
//! assert_eq!(topo.node_count(), 200);
//! assert_eq!(topo.diameter(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # The `core` re-export
//!
//! [`core`] deliberately shadows the name of the built-in `core` crate.
//! This is safe: downstream users always reach it through the qualified
//! path `slim_noc::core::…`, which cannot collide with the extern
//! prelude, and this facade itself never writes a bare `core::…` path
//! (which, in edition 2018+, would be an E0659 ambiguity between the
//! built-in crate and the crate-root re-export). The doctest pins the
//! resolution:
//!
//! ```
//! use slim_noc::core::Setup;
//!
//! let setup = Setup::paper("sn54")?;
//! assert!(setup.topology.router_count() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub use snoc_core as core;
pub use snoc_field as field;
pub use snoc_layout as layout;
pub use snoc_power as power;
pub use snoc_refsim as refsim;
pub use snoc_sim as sim;
pub use snoc_topology as topology;
pub use snoc_traffic as traffic;

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use snoc_core::prelude::*;
    pub use snoc_field::{Gf, SlimFlyParams};
    pub use snoc_layout::{Layout, LayoutKind};
    pub use snoc_power::{PowerReport, TechNode};
    pub use snoc_sim::{SimConfig, SimReport, Simulator};
    pub use snoc_topology::{Topology, TopologyKind};
    pub use snoc_traffic::{TraceWorkload, TrafficPattern};
}
