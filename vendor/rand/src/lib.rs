//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements exactly the API surface the workspace uses:
//!
//! - [`RngCore`] / [`Rng`] — the core random source abstraction,
//! - [`RngExt`] — `random`, `random_bool`, `random_range` convenience
//!   methods (blanket-implemented for every `RngCore`),
//! - [`SeedableRng`] — `seed_from_u64` deterministic construction,
//! - [`seq::SliceRandom`] — Fisher–Yates `shuffle` and `choose`.
//!
//! The statistical quality only has to be good enough for simulation
//! workloads and loose uniformity tests; generators here are built on
//! 64-bit SplitMix/xoshiro-style mixing, which comfortably clears that
//! bar while staying dependency-free.

#![forbid(unsafe_code)]

/// Core source of randomness: an infinite stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Marker alias kept for source compatibility with real `rand`, where
/// generic code is bounded `R: Rng + ?Sized`.
pub trait Rng: RngCore {}

impl<R: RngCore + ?Sized> Rng for R {}

/// A type that can be sampled uniformly from a full value domain
/// (`f64`/`f32` from `[0, 1)`, integers and `bool` from all values).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform double in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end - start) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (width + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every RNG.
pub trait RngExt: RngCore {
    /// Draws a value of `T` from its standard domain (`[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p` (clamped into `[0, 1]`;
    /// `NaN` yields `false`). Note: real `rand` panics on out-of-range
    /// `p` instead — don't rely on the clamp in portable code.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p.clamp(0.0, 1.0)
    }

    /// Draws a uniform value from `range`. Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Deterministic construction of an RNG from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod seq {
    //! Sequence helpers (`shuffle`, `choose`) on slices.

    use super::{RngCore, RngExt};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

/// Well-mixed 64-bit generator usable as a default RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn floats_land_in_unit_interval() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SplitMix64::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::seed_from_u64(13);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = SplitMix64::seed_from_u64(17);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits = {hits}");
    }
}
