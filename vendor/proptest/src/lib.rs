//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! - [`Strategy`] with implementations for integer/float ranges,
//! - [`prop::sample::select`] over a `Vec`,
//! - [`prop_assert!`] / [`prop_assert_eq!`] early-return assertions,
//! - [`ProptestConfig::with_cases`].
//!
//! Semantics: each `#[test]` body runs `cases` times with fresh random
//! inputs drawn from a deterministic per-test RNG. There is no shrinking;
//! a failure reports the case index and generated inputs so runs can be
//! reproduced (the RNG is seeded from the test name, so re-running the
//! test replays the identical sequence).

#![forbid(unsafe_code)]

use std::fmt;

/// Error carried out of a failing property body by `prop_assert*`.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Subset of proptest's run configuration: the number of cases per test.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// The case count actually run: the configured value, unless the
    /// `PROPTEST_CASES` environment variable overrides it (matching the
    /// real proptest crate's override, used for deep-soak runs like the
    /// nightly `verify` CI job).
    ///
    /// # Panics
    ///
    /// Panics if `PROPTEST_CASES` is set but not a positive integer — a
    /// typo in a soak invocation must fail loudly, not silently run the
    /// small default case count.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("PROPTEST_CASES must be a positive integer, got `{v}`")),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic RNG driving input generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator deterministically from a test name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name keeps per-test streams independent yet
        // reproducible across runs.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self { state: h }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let width = (end - start) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (width + 1)) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Strategy yielding a uniformly chosen element of a fixed list.
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone + fmt::Debug> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.options.is_empty(), "select over empty list");
        self.options[(rng.next_u64() % self.options.len() as u64) as usize].clone()
    }
}

pub mod prop {
    //! Namespaced strategy constructors (`prop::sample::select`).

    pub mod sample {
        //! Sampling strategies.

        use super::super::Select;

        /// Strategy drawing uniformly from `options`.
        pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
            Select { options }
        }
    }
}

/// Asserts a condition inside a `proptest!` body, returning a
/// `TestCaseError` (rather than panicking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body, returning a
/// `TestCaseError` (rather than panicking) on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    }};
}

/// Declares property tests. Each function runs `config.cases` times with
/// inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let cases = config.effective_cases();
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let inputs = format!(
                    concat!("{{", $(stringify!($arg), " = {:?}, ",)* "}}"),
                    $($arg),*
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{} with inputs {}: {}",
                        stringify!($name),
                        case + 1,
                        cases,
                        inputs,
                        err
                    );
                }
            }
        }
    )*};
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Select, Strategy, TestCaseError, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = usize> {
        prop::sample::select(vec![1usize, 2, 3])
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.25..0.75).contains(&y), "y out of range: {y}");
        }

        #[test]
        fn select_picks_members(v in small()) {
            prop_assert!((1..=3).contains(&v));
            prop_assert_eq!(v, v);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(1))]
        #[test]
        #[should_panic(expected = "property `always_fails` failed")]
        fn always_fails(x in 0usize..4) {
            prop_assert!(x > 100, "x was {x}");
        }
    }

    #[test]
    fn effective_cases_defaults_to_configured_value() {
        // (When `PROPTEST_CASES` is unset — the test runner never sets
        // it — the override must not engage.)
        if std::env::var_os("PROPTEST_CASES").is_none() {
            assert_eq!(ProptestConfig::with_cases(17).effective_cases(), 17);
        }
    }
}
