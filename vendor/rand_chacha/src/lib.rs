//! Minimal offline stand-in for `rand_chacha`.
//!
//! Provides [`ChaCha8Rng`] and [`ChaCha20Rng`] with the same construction
//! surface the workspace uses (`SeedableRng::seed_from_u64`). The internal
//! generator is xoshiro256++ seeded through SplitMix64 — deterministic per
//! seed and statistically strong enough for simulation workloads, which is
//! what the callers need (they use ChaCha for reproducibility, not for
//! cryptography).

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

macro_rules! define_chacha_like {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            s: [u64; 4],
        }

        impl SeedableRng for $name {
            fn seed_from_u64(seed: u64) -> Self {
                // SplitMix64 expansion of the seed into the full state, as
                // recommended by the xoshiro authors.
                let mut sm = seed;
                let mut next = || {
                    sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                    let mut z = sm;
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                    z ^ (z >> 31)
                };
                Self {
                    s: [next(), next(), next(), next()],
                }
            }
        }

        impl RngCore for $name {
            fn next_u64(&mut self) -> u64 {
                // xoshiro256++
                let result = self.s[0]
                    .wrapping_add(self.s[3])
                    .rotate_left(23)
                    .wrapping_add(self.s[0]);
                let t = self.s[1] << 17;
                self.s[2] ^= self.s[0];
                self.s[3] ^= self.s[1];
                self.s[1] ^= self.s[2];
                self.s[0] ^= self.s[3];
                self.s[2] ^= t;
                self.s[3] = self.s[3].rotate_left(45);
                result
            }
        }
    };
}

define_chacha_like!(
    /// Drop-in replacement for `rand_chacha::ChaCha8Rng` (deterministic,
    /// seedable; NOT the real ChaCha stream cipher).
    ChaCha8Rng
);
define_chacha_like!(
    /// Drop-in replacement for `rand_chacha::ChaCha20Rng` (deterministic,
    /// seedable; NOT the real ChaCha stream cipher).
    ChaCha20Rng
);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_enough_for_small_ranges() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut counts = [0usize; 13];
        for _ in 0..13_000 {
            counts[rng.random_range(0..13usize)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((700..1300).contains(&c), "bucket {i} count {c}");
        }
    }
}
