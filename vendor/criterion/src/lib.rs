//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Implements just the API surface this workspace uses —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`],
//! [`Throughput`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — with a deliberately simple measurement protocol:
//!
//! - one untimed warmup iteration, whose duration estimates the
//!   per-iteration cost;
//! - up to `sample_size` timed iterations (default 50), trimmed so the
//!   timed phase stays within a **250 ms budget per benchmark** (at
//!   least one iteration always runs);
//! - the *mean wall-clock nanoseconds per iteration* is reported.
//!
//! Every benchmark prints two lines: a human-readable `bench:` line and
//! a machine-readable `CRITERION_JSONL: {...}` object that the
//! `bench_compare` tool scrapes (see `BENCH_baseline.json`). Compare
//! trends, not absolutes, across machines.

use std::fmt;
use std::time::{Duration, Instant};

/// Timed-phase wall-clock budget per benchmark.
const BUDGET: Duration = Duration::from_millis(250);

/// Default number of timed iterations (before the budget trim).
const DEFAULT_SAMPLE_SIZE: usize = 50;

/// Throughput annotation (accepted for API compatibility; the stand-in
/// reports plain ns/iter and leaves rate math to consumers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds an id rendered as `function/parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{function}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.full)
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    /// Filled by [`Bencher::iter`]: (mean ns/iter, timed iterations).
    result: Option<(f64, u64)>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            result: None,
        }
    }

    /// Runs the closure under timing: one untimed warmup call sizes the
    /// iteration count against the budget, then the timed phase runs and
    /// the mean is recorded.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warmup_start = Instant::now();
        std::hint::black_box(f());
        let est = warmup_start.elapsed();
        let mut iters = self.sample_size.max(1);
        if !est.is_zero() {
            let fit = (BUDGET.as_nanos() / est.as_nanos().max(1)) as usize;
            iters = iters.min(fit.max(1));
        }
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let total = start.elapsed();
        let mean_ns = total.as_nanos() as f64 / iters as f64;
        self.result = Some((mean_ns, iters as u64));
    }
}

/// Runs one named benchmark and prints the two report lines.
fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher::new(sample_size);
    f(&mut b);
    let Some((mean_ns, iters)) = b.result else {
        // The closure never called `iter` — nothing was measured.
        println!("bench: {name:<44} (no measurement)");
        return;
    };
    println!(
        "bench: {name:<44} {:>12.3} ms/iter [{iters} iters]",
        mean_ns / 1e6
    );
    println!("CRITERION_JSONL: {{\"name\":\"{name}\",\"mean_ns\":{mean_ns:.1},\"iters\":{iters}}}");
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group; member names are prefixed
    /// `group/`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            prefix: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Benchmarks one function without a group prefix.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl fmt::Display, f: F) {
        run_benchmark(&name.to_string(), DEFAULT_SAMPLE_SIZE, f);
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    prefix: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepts a throughput annotation (reporting stays ns/iter).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks one function as `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl fmt::Display, f: F) {
        let full = format!("{}/{name}", self.prefix);
        run_benchmark(&full, self.sample_size, f);
    }

    /// Benchmarks one function over an input as `group/function/param`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let full = format!("{}/{id}", self.prefix);
        run_benchmark(&full, self.sample_size, |b| f(b, input));
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Declares a function running the listed benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed benchmark groups in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_mean_and_iters() {
        let mut b = Bencher::new(5);
        b.iter(|| std::hint::black_box(3u64.pow(7)));
        let (mean, iters) = b.result.expect("measured");
        assert!(mean >= 0.0);
        assert!((1..=5).contains(&iters));
    }

    #[test]
    fn benchmark_id_renders_function_slash_param() {
        assert_eq!(BenchmarkId::new("gf", 5).to_string(), "gf/5");
    }

    #[test]
    fn group_names_are_prefixed() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(2).throughput(Throughput::Elements(10));
        assert_eq!(g.prefix, "grp");
        assert_eq!(g.sample_size, 2);
        g.finish();
    }
}
