//! Simulator configuration (§5.1's microarchitectural parameters).

use snoc_layout::LayoutError;
use snoc_topology::TopologyError;
use std::error::Error;
use std::fmt;

/// Router microarchitecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterArch {
    /// Input-queued router with per-VC edge buffers and a standard
    /// 2-stage pipeline (§5.1's "edge router").
    EdgeBuffer,
    /// Central Buffer Router (§4): 1-flit staging per VC, a shared
    /// central buffer of the given capacity in flits, 2-cycle bypass and
    /// 4-cycle buffered paths.
    CentralBuffer {
        /// Central buffer capacity in flits (the paper evaluates 6, 10,
        /// 20, 40, 70, 100).
        cb_flits: usize,
    },
}

/// How the per-VC input (edge) buffers are sized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferSizing {
    /// All edge buffers have the same capacity (EB-Small = 5,
    /// EB-Large = 15 in the paper).
    Fixed(usize),
    /// Each link's downstream buffer is sized to its round-trip time
    /// (EB-Var-S / EB-Var-N): `δ_ij = T_ij · |VC|` flits split evenly
    /// across VCs. Requires a layout to measure wire lengths.
    VariableRtt,
}

/// Link flow-control mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkMode {
    /// Credit-based flow control over pipelined wires: up to one flit per
    /// cycle in flight per link, downstream buffering per
    /// [`BufferSizing`].
    Credited,
    /// Elastic links with ElastiStore (EL-Links, §4.2): the wire pipeline
    /// itself buffers flits — one slave latch per VC per stage plus a
    /// shared master latch (at most one flit advances per stage per
    /// cycle).
    Elastic,
}

/// Routing algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingKind {
    /// Deterministic minimal routing (Dijkstra/BFS paths, §5.1) with
    /// hop-indexed VCs; dimension-order with dateline VCs on meshes and
    /// tori.
    Minimal,
    /// UGAL with local queue information (§6): choose minimal vs. Valiant
    /// at the source using local output-queue occupancy.
    UgalL,
    /// UGAL with global queue information (§6).
    UgalG,
    /// The XY-adaptive scheme the paper gives FBF (§6): pick the less
    /// loaded of the two minimal dimension orders.
    XyAdaptive,
}

impl RoutingKind {
    /// The stable name used by the `snoc` CLI and the campaign-spec
    /// wire format.
    #[must_use]
    pub fn spec_name(self) -> &'static str {
        match self {
            RoutingKind::Minimal => "min",
            RoutingKind::UgalL => "ugal-l",
            RoutingKind::UgalG => "ugal-g",
            RoutingKind::XyAdaptive => "xy",
        }
    }

    /// The inverse of [`RoutingKind::spec_name`].
    #[must_use]
    pub fn from_spec_name(name: &str) -> Option<RoutingKind> {
        Some(match name {
            "min" => RoutingKind::Minimal,
            "ugal-l" => RoutingKind::UgalL,
            "ugal-g" => RoutingKind::UgalG,
            "xy" => RoutingKind::XyAdaptive,
            _ => return None,
        })
    }
}

/// Full simulator configuration.
///
/// Defaults follow §5.1: 2 VCs, edge routers with 5-flit input buffers,
/// 1-flit output buffers, 20-flit injection/ejection queues, 6-flit
/// packets, credited links, no SMART (`smart_hops = 1`).
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Virtual channels per link (`|VC|`).
    pub vcs: usize,
    /// Router microarchitecture.
    pub router_arch: RouterArch,
    /// Edge-buffer sizing policy.
    pub buffer_sizing: BufferSizing,
    /// Output buffer capacity per VC in flits.
    pub output_buffer_flits: usize,
    /// Link mode (credited vs. elastic).
    pub link_mode: LinkMode,
    /// Grid hops traversed per link cycle (`H`; 1 = no SMART, 9 = SMART).
    pub smart_hops: usize,
    /// Injection queue capacity per node, in flits.
    pub injection_queue_flits: usize,
    /// Packet size in flits for synthetic traffic.
    pub packet_flits: usize,
    /// Routing algorithm.
    pub routing: RoutingKind,
    /// RNG seed (simulation is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            vcs: 2,
            router_arch: RouterArch::EdgeBuffer,
            buffer_sizing: BufferSizing::Fixed(5),
            output_buffer_flits: 1,
            link_mode: LinkMode::Credited,
            smart_hops: 1,
            injection_queue_flits: 20,
            packet_flits: 6,
            routing: RoutingKind::Minimal,
            seed: 0xC0FFEE,
        }
    }
}

impl SimConfig {
    /// The paper's EB-Small configuration (5-flit edge buffers).
    #[must_use]
    pub fn eb_small() -> Self {
        SimConfig::default()
    }

    /// The paper's EB-Large configuration (15-flit edge buffers).
    #[must_use]
    pub fn eb_large() -> Self {
        SimConfig {
            buffer_sizing: BufferSizing::Fixed(15),
            ..SimConfig::default()
        }
    }

    /// The paper's EB-Var configuration (RTT-sized edge buffers; pass a
    /// layout to [`crate::Simulator::build_with_layout`]).
    #[must_use]
    pub fn eb_var() -> Self {
        SimConfig {
            buffer_sizing: BufferSizing::VariableRtt,
            ..SimConfig::default()
        }
    }

    /// The paper's CBR-x configuration (central buffer of `cb_flits`,
    /// 1-flit staging, elastic links for full wire utilization, §4.4).
    #[must_use]
    pub fn cbr(cb_flits: usize) -> Self {
        SimConfig {
            router_arch: RouterArch::CentralBuffer { cb_flits },
            buffer_sizing: BufferSizing::Fixed(1),
            link_mode: LinkMode::Elastic,
            ..SimConfig::default()
        }
    }

    /// The paper's EL-Links configuration (elastic links only: minimal
    /// 1-flit staging, no large edge buffers).
    #[must_use]
    pub fn elastic_links() -> Self {
        SimConfig {
            buffer_sizing: BufferSizing::Fixed(1),
            link_mode: LinkMode::Elastic,
            ..SimConfig::default()
        }
    }

    /// Enables SMART links with the paper's `H = 9`.
    #[must_use]
    pub fn with_smart(mut self) -> Self {
        self.smart_hops = 9;
        self
    }

    /// Sets the number of virtual channels.
    #[must_use]
    pub fn with_vcs(mut self, vcs: usize) -> Self {
        self.vcs = vcs;
        self
    }

    /// Sets the routing algorithm.
    #[must_use]
    pub fn with_routing(mut self, routing: RoutingKind) -> Self {
        self.routing = routing;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when a parameter is out of
    /// range (zero VCs, zero packet length, `smart_hops == 0`, …).
    pub fn validate(&self) -> Result<(), SimError> {
        let fail = |what: &str| {
            Err(SimError::InvalidConfig {
                reason: what.to_string(),
            })
        };
        if self.vcs == 0 {
            return fail("vcs must be at least 1");
        }
        if self.packet_flits == 0 {
            return fail("packet_flits must be at least 1");
        }
        if self.smart_hops == 0 {
            return fail("smart_hops must be at least 1 (1 = no SMART)");
        }
        if let BufferSizing::Fixed(0) = self.buffer_sizing {
            return fail("input buffers need at least 1 flit");
        }
        if self.output_buffer_flits == 0 {
            return fail("output buffers need at least 1 flit");
        }
        if self.injection_queue_flits < self.packet_flits {
            return fail("injection queue must hold at least one packet");
        }
        if let RouterArch::CentralBuffer { cb_flits } = self.router_arch {
            if cb_flits < self.packet_flits {
                return fail("central buffer must hold at least one packet");
            }
        }
        Ok(())
    }
}

/// Errors produced by simulator construction and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration parameter is out of range.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// Topology construction failed.
    Topology(TopologyError),
    /// Layout construction failed.
    Layout(LayoutError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            SimError::Topology(e) => write!(f, "topology error: {e}"),
            SimError::Layout(e) => write!(f, "layout error: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Topology(e) => Some(e),
            SimError::Layout(e) => Some(e),
            SimError::InvalidConfig { .. } => None,
        }
    }
}

impl From<TopologyError> for SimError {
    fn from(e: TopologyError) -> Self {
        SimError::Topology(e)
    }
}

impl From<LayoutError> for SimError {
    fn from(e: LayoutError) -> Self {
        SimError::Layout(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_section_5_1() {
        let c = SimConfig::default();
        assert_eq!(c.vcs, 2);
        assert_eq!(c.buffer_sizing, BufferSizing::Fixed(5));
        assert_eq!(c.output_buffer_flits, 1);
        assert_eq!(c.injection_queue_flits, 20);
        assert_eq!(c.packet_flits, 6);
        assert_eq!(c.smart_hops, 1);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn presets_validate() {
        for c in [
            SimConfig::eb_small(),
            SimConfig::eb_large(),
            SimConfig::eb_var(),
            SimConfig::cbr(20),
            SimConfig::cbr(40),
            SimConfig::elastic_links(),
            SimConfig::default().with_smart(),
        ] {
            assert!(c.validate().is_ok(), "{c:?}");
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(SimConfig {
            vcs: 0,
            ..SimConfig::default()
        }
        .validate()
        .is_err());
        assert!(SimConfig {
            packet_flits: 0,
            ..SimConfig::default()
        }
        .validate()
        .is_err());
        assert!(SimConfig {
            smart_hops: 0,
            ..SimConfig::default()
        }
        .validate()
        .is_err());
        assert!(SimConfig {
            injection_queue_flits: 2,
            ..SimConfig::default()
        }
        .validate()
        .is_err());
        assert!(SimConfig::cbr(2).validate().is_err());
    }

    #[test]
    fn smart_builder_sets_h9() {
        assert_eq!(SimConfig::default().with_smart().smart_hops, 9);
    }

    #[test]
    fn cbr_preset_uses_elastic_staging() {
        let c = SimConfig::cbr(20);
        assert_eq!(c.link_mode, LinkMode::Elastic);
        assert_eq!(c.buffer_sizing, BufferSizing::Fixed(1));
        assert!(matches!(
            c.router_arch,
            RouterArch::CentralBuffer { cb_flits: 20 }
        ));
    }
}
