//! Cycle-accurate flit-level NoC simulator.
//!
//! This crate is the reproduction's stand-in for the paper's in-house
//! Manifold-based simulator (§5.1) and for Booksim (§6). It models:
//!
//! - **wormhole switching** with virtual channels and credit-based flow
//!   control;
//! - **edge-buffer routers**: standard 2-stage pipeline (allocation, then
//!   switch traversal), per-VC input buffers;
//! - **central-buffer routers (CBR)**: 1-flit input staging per VC, a
//!   shared central buffer with atomic per-packet allocation, a 2-cycle
//!   bypass path at low load and a 4-cycle buffered path under conflicts
//!   (§4.1, §4.3);
//! - **elastic links / ElastiStore**: per-stage pipeline latches with a
//!   per-VC slave latch and a shared master latch (at most one flit
//!   advances per stage per cycle across VCs, §4.2);
//! - **SMART links**: `H` grid hops per link cycle (§3.2.2);
//! - **routing**: deterministic minimal routing with hop-indexed VCs
//!   (VC0 on hop 1, VC1 on hop 2 — the paper's §4.3 scheme; its
//!   deadlock-freedom is conditional on `|VC|` covering the hop count,
//!   and [`verify_deadlock_free`] states the exact per-table-kind
//!   contract), dimension-order routing with
//!   dateline VCs for tori, up*/down* repair tables under faults, and
//!   the adaptive schemes of §6 (UGAL-L, UGAL-G, XY-adaptive);
//! - **deadlock analysis**: a channel-dependency-graph cycle checker
//!   ([`verify_deadlock_free`]) run at every degraded-table swap in
//!   debug builds, and a no-progress watchdog that turns a wedged run
//!   into a structured [`DeadlockDiagnostic`] instead of a hang.
//!
//! # Example
//!
//! ```
//! use snoc_topology::Topology;
//! use snoc_sim::{SimConfig, Simulator};
//! use snoc_traffic::TrafficPattern;
//!
//! let topo = Topology::slim_noc(3, 3)?; // 54-node Slim NoC
//! let cfg = SimConfig::default();
//! let mut sim = Simulator::build(&topo, &cfg)?;
//! let report = sim.run_synthetic(TrafficPattern::Random, 0.05, 2_000, 6_000);
//! assert!(report.delivered_packets > 0);
//! assert!(report.avg_packet_latency() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod deadlock;
mod fault;
mod flit;
mod link;
mod network;
mod router;
mod routing;
#[doc(hidden)]
pub mod soa_harness;
mod stats;

pub use config::{BufferSizing, LinkMode, RouterArch, RoutingKind, SimConfig, SimError};
pub use deadlock::{
    default_watchdog_bound, verify_deadlock_free, verify_route_deadlock_free, DeadlockDiagnostic,
    StuckPacket, WaitForEdge,
};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use flit::{Flit, FlitArena, FlitKind, FlitRef, PacketId};
pub use network::shard::ShardedSimulator;
pub use network::Simulator;
pub use routing::{RouteDecision, RoutingTable};
pub use stats::{
    saturation_heuristic, ActivityCounters, Conformance, LatencyLoadPoint, SimReport, Snapshot,
};
