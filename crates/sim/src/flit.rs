//! Flits and packets.

use snoc_topology::{NodeId, RouterId};
use std::fmt;

/// Unique packet identifier (monotonic per simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlitKind {
    /// First flit of a multi-flit packet; carries routing state.
    Head,
    /// Interior flit.
    Body,
    /// Last flit; releases resources.
    Tail,
    /// Single-flit packet (head and tail at once).
    HeadTail,
}

impl FlitKind {
    /// Whether this flit starts a packet.
    #[must_use]
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// Whether this flit ends a packet.
    #[must_use]
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// A flit in flight.
///
/// All routing state lives on the flit so body flits can follow their
/// head through the wormhole (in hardware only the head carries it; the
/// duplication here is a simulator convenience).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Owning packet.
    pub packet: PacketId,
    /// Position within the packet.
    pub kind: FlitKind,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Destination router (cached from the topology).
    pub dst_router: RouterId,
    /// Valiant intermediate router for UGAL non-minimal routes.
    pub intermediate: Option<RouterId>,
    /// Whether the Valiant intermediate has been reached.
    pub intermediate_done: bool,
    /// Router hops completed so far (selects the VC layer).
    pub hops: u32,
    /// Cycle the packet was created (start of latency measurement).
    pub created: u64,
    /// Cycle the head entered the network (left the injection queue).
    pub injected: u64,
    /// Packet length in flits.
    pub packet_len: u32,
    /// `true` if this packet belongs to the measured phase (injected
    /// after warmup).
    pub measured: bool,
    /// Trace integration: `true` if delivery must trigger a reply packet.
    pub wants_reply: bool,
}

impl Flit {
    /// Builds the `len` flits of one packet, in order.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn packet(
        id: PacketId,
        src: NodeId,
        dst: NodeId,
        dst_router: RouterId,
        len: u32,
        created: u64,
        measured: bool,
        wants_reply: bool,
    ) -> Vec<Flit> {
        assert!(len >= 1, "packets need at least one flit");
        (0..len)
            .map(|i| Flit {
                packet: id,
                kind: match (i, len) {
                    (0, 1) => FlitKind::HeadTail,
                    (0, _) => FlitKind::Head,
                    (i, l) if i == l - 1 => FlitKind::Tail,
                    _ => FlitKind::Body,
                },
                src,
                dst,
                dst_router,
                intermediate: None,
                intermediate_done: false,
                hops: 0,
                created,
                injected: created,
                packet_len: len,
                measured,
                wants_reply,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flit_packet_is_headtail() {
        let flits = Flit::packet(
            PacketId(1),
            NodeId(0),
            NodeId(5),
            RouterId(1),
            1,
            10,
            true,
            false,
        );
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind, FlitKind::HeadTail);
        assert!(flits[0].kind.is_head() && flits[0].kind.is_tail());
    }

    #[test]
    fn six_flit_packet_structure() {
        let flits = Flit::packet(
            PacketId(2),
            NodeId(3),
            NodeId(9),
            RouterId(2),
            6,
            0,
            false,
            true,
        );
        assert_eq!(flits.len(), 6);
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[5].kind, FlitKind::Tail);
        for f in &flits[1..5] {
            assert_eq!(f.kind, FlitKind::Body);
        }
        assert!(flits.iter().all(|f| f.wants_reply));
        assert!(flits.iter().all(|f| f.packet_len == 6));
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_length_packet_panics() {
        let _ = Flit::packet(
            PacketId(0),
            NodeId(0),
            NodeId(1),
            RouterId(0),
            0,
            0,
            false,
            false,
        );
    }
}
