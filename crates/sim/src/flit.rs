//! Flits, packets, and the flit arena.

use snoc_topology::{NodeId, RouterId};
use std::fmt;

/// Unique packet identifier (monotonic per simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlitKind {
    /// First flit of a multi-flit packet; carries routing state.
    Head,
    /// Interior flit.
    Body,
    /// Last flit; releases resources.
    Tail,
    /// Single-flit packet (head and tail at once).
    HeadTail,
}

impl FlitKind {
    /// Whether this flit starts a packet.
    #[must_use]
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// Whether this flit ends a packet.
    #[must_use]
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// "No Valiant intermediate" sentinel of the packed encoding.
const INTERMEDIATE_NONE: u32 = u32::MAX;
/// Flag bit: the intermediate has been reached.
const INTERMEDIATE_DONE: u32 = 1 << 31;

/// A flit in flight.
///
/// All routing state lives on the flit so body flits can follow their
/// head through the wormhole (in hardware only the head carries it; the
/// duplication here is a simulator convenience). The payload is kept to
/// one cache line (≤ 64 bytes, asserted below) because the arena stores
/// one copy per live flit; the Valiant intermediate is packed into a
/// single `u32` (31-bit router id + done flag, `u32::MAX` = none).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Owning packet.
    pub packet: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Destination router (cached from the topology).
    pub dst_router: RouterId,
    /// Cycle the packet was created (start of latency measurement).
    pub created: u64,
    /// Cycle the head entered the network (left the injection queue).
    pub injected: u64,
    /// Packed Valiant intermediate (see the accessors below).
    intermediate: u32,
    /// Packet length in flits.
    pub packet_len: u32,
    /// Router hops completed so far (selects the VC layer).
    pub hops: u16,
    /// Position within the packet.
    pub kind: FlitKind,
    /// `true` if this packet belongs to the measured phase (injected
    /// after warmup).
    pub measured: bool,
    /// Trace integration: `true` if delivery must trigger a reply packet.
    pub wants_reply: bool,
}

// The arena payload must stay within one cache line: every buffer slot,
// CB queue entry, and link stage holds a 4-byte `FlitRef` instead, and
// only the arena pays this footprint once per live flit.
const _: () = assert!(
    std::mem::size_of::<Flit>() <= 64,
    "Flit payload grew past 64 bytes"
);

impl Flit {
    /// Builds flit `index` of a `len`-flit packet.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or `index >= len`.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn nth_of_packet(
        id: PacketId,
        index: u32,
        len: u32,
        src: NodeId,
        dst: NodeId,
        dst_router: RouterId,
        created: u64,
        measured: bool,
        wants_reply: bool,
    ) -> Flit {
        assert!(len >= 1, "packets need at least one flit");
        assert!(index < len, "flit index out of range");
        Flit {
            packet: id,
            kind: match (index, len) {
                (0, 1) => FlitKind::HeadTail,
                (0, _) => FlitKind::Head,
                (i, l) if i == l - 1 => FlitKind::Tail,
                _ => FlitKind::Body,
            },
            src,
            dst,
            dst_router,
            intermediate: INTERMEDIATE_NONE,
            hops: 0,
            created,
            injected: created,
            packet_len: len,
            measured,
            wants_reply,
        }
    }

    /// Builds the `len` flits of one packet, in order.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn packet(
        id: PacketId,
        src: NodeId,
        dst: NodeId,
        dst_router: RouterId,
        len: u32,
        created: u64,
        measured: bool,
        wants_reply: bool,
    ) -> Vec<Flit> {
        assert!(len >= 1, "packets need at least one flit");
        (0..len)
            .map(|i| {
                Flit::nth_of_packet(
                    id,
                    i,
                    len,
                    src,
                    dst,
                    dst_router,
                    created,
                    measured,
                    wants_reply,
                )
            })
            .collect()
    }

    /// The Valiant intermediate router, if one was assigned.
    #[must_use]
    pub fn intermediate(&self) -> Option<RouterId> {
        if self.intermediate == INTERMEDIATE_NONE {
            None
        } else {
            Some(RouterId((self.intermediate & !INTERMEDIATE_DONE) as usize))
        }
    }

    /// Whether the Valiant intermediate has been reached.
    #[must_use]
    pub fn intermediate_done(&self) -> bool {
        self.intermediate != INTERMEDIATE_NONE && self.intermediate & INTERMEDIATE_DONE != 0
    }

    /// Assigns a Valiant intermediate (not yet reached).
    ///
    /// # Panics
    ///
    /// Panics if the router index does not fit the 31-bit encoding.
    pub fn set_intermediate(&mut self, mid: RouterId) {
        let id = u32::try_from(mid.index()).expect("router id fits u32");
        assert!(
            id & INTERMEDIATE_DONE == 0 && id != INTERMEDIATE_NONE,
            "router id fits 31 bits"
        );
        self.intermediate = id;
    }

    /// Marks the Valiant intermediate as reached.
    pub fn mark_intermediate_done(&mut self) {
        if self.intermediate != INTERMEDIATE_NONE {
            self.intermediate |= INTERMEDIATE_DONE;
        }
    }
}

/// Index of a flit stored in a [`FlitArena`]: 4 bytes moved through
/// buffers, staging queues, link stages, and ST registers instead of the
/// full payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlitRef(u32);

impl FlitRef {
    /// "Empty slot" sentinel for the flattened struct-of-arrays router
    /// and link state: occupancy is tracked by bitmask words, and empty
    /// slots hold this reserved index. [`FlitArena::insert`] never hands
    /// it out.
    pub(crate) const INVALID: FlitRef = FlitRef(u32::MAX);

    /// Whether this reference is a real arena index (not the
    /// [`FlitRef::INVALID`] sentinel).
    #[must_use]
    pub(crate) fn is_valid(self) -> bool {
        self.0 != u32::MAX
    }
}

/// Slab storage for in-flight flits: each flit lives in exactly one slot
/// from injection to ejection, and every queue in the simulator carries
/// [`FlitRef`] indices. A free list recycles slots, so steady-state
/// simulation performs no allocation per flit.
#[derive(Debug, Clone, Default)]
pub struct FlitArena {
    slots: Vec<Flit>,
    free: Vec<u32>,
    /// Debug-only per-slot liveness: turns a double `remove` (which
    /// would silently alias the slot between two later `insert`s) or an
    /// access through a stale [`FlitRef`] into an immediate assertion
    /// failure instead of corrupted statistics. Compiled out of release
    /// builds — the hot path pays nothing.
    #[cfg(debug_assertions)]
    live: Vec<bool>,
}

impl FlitArena {
    #[cfg(debug_assertions)]
    fn assert_live(&self, idx: u32) {
        assert!(
            self.live[idx as usize],
            "access through a stale FlitRef: slot {idx} was freed"
        );
    }

    #[cfg(not(debug_assertions))]
    #[inline]
    fn assert_live(&self, _idx: u32) {}

    /// Stores a flit, returning its reference.
    ///
    /// # Panics
    ///
    /// Panics if the arena exceeds `u32::MAX` slots.
    pub fn insert(&mut self, flit: Flit) -> FlitRef {
        match self.free.pop() {
            Some(idx) => {
                #[cfg(debug_assertions)]
                {
                    self.live[idx as usize] = true;
                }
                self.slots[idx as usize] = flit;
                FlitRef(idx)
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("arena fits u32 indices");
                assert!(
                    idx != u32::MAX,
                    "arena full: u32::MAX is the reserved invalid index"
                );
                self.slots.push(flit);
                #[cfg(debug_assertions)]
                self.live.push(true);
                FlitRef(idx)
            }
        }
    }

    /// Reads a stored flit.
    #[must_use]
    pub fn get(&self, r: FlitRef) -> &Flit {
        self.assert_live(r.0);
        &self.slots[r.0 as usize]
    }

    /// Mutably accesses a stored flit.
    pub fn get_mut(&mut self, r: FlitRef) -> &mut Flit {
        self.assert_live(r.0);
        &mut self.slots[r.0 as usize]
    }

    /// Removes a flit, recycling its slot.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the slot was already freed (a double
    /// free would alias the slot between two later inserts).
    pub fn remove(&mut self, r: FlitRef) -> Flit {
        #[cfg(debug_assertions)]
        {
            assert!(self.live[r.0 as usize], "double free of flit slot {}", r.0);
            self.live[r.0 as usize] = false;
        }
        self.free.push(r.0);
        self.slots[r.0 as usize]
    }

    /// Number of live flits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Whether no flit is live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slots ever allocated (live + free). Because the free list
    /// recycles slots, this is bounded by the peak live count — the
    /// property the arena's slab design exists to provide.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flit_packet_is_headtail() {
        let flits = Flit::packet(
            PacketId(1),
            NodeId(0),
            NodeId(5),
            RouterId(1),
            1,
            10,
            true,
            false,
        );
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind, FlitKind::HeadTail);
        assert!(flits[0].kind.is_head() && flits[0].kind.is_tail());
    }

    #[test]
    fn six_flit_packet_structure() {
        let flits = Flit::packet(
            PacketId(2),
            NodeId(3),
            NodeId(9),
            RouterId(2),
            6,
            0,
            false,
            true,
        );
        assert_eq!(flits.len(), 6);
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[5].kind, FlitKind::Tail);
        for f in &flits[1..5] {
            assert_eq!(f.kind, FlitKind::Body);
        }
        assert!(flits.iter().all(|f| f.wants_reply));
        assert!(flits.iter().all(|f| f.packet_len == 6));
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_length_packet_panics() {
        let _ = Flit::packet(
            PacketId(0),
            NodeId(0),
            NodeId(1),
            RouterId(0),
            0,
            0,
            false,
            false,
        );
    }

    #[test]
    fn intermediate_encoding_round_trips() {
        let mut f = Flit::packet(
            PacketId(0),
            NodeId(0),
            NodeId(1),
            RouterId(0),
            1,
            0,
            false,
            false,
        )[0];
        assert_eq!(f.intermediate(), None);
        assert!(!f.intermediate_done());
        // Marking done without an intermediate is a no-op.
        f.mark_intermediate_done();
        assert_eq!(f.intermediate(), None);
        assert!(!f.intermediate_done());
        f.set_intermediate(RouterId(1_234_567));
        assert_eq!(f.intermediate(), Some(RouterId(1_234_567)));
        assert!(!f.intermediate_done());
        f.mark_intermediate_done();
        assert_eq!(f.intermediate(), Some(RouterId(1_234_567)));
        assert!(f.intermediate_done());
    }

    #[test]
    fn flit_fits_one_cache_line() {
        assert!(std::mem::size_of::<Flit>() <= 64);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free of flit slot")]
    fn double_remove_is_caught_in_debug_builds() {
        let mut arena = FlitArena::default();
        let f = Flit::packet(
            PacketId(1),
            NodeId(0),
            NodeId(1),
            RouterId(0),
            1,
            0,
            true,
            false,
        )[0];
        let r = arena.insert(f);
        arena.remove(r);
        arena.remove(r); // would alias the slot between two later inserts
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "stale FlitRef")]
    fn stale_access_is_caught_in_debug_builds() {
        let mut arena = FlitArena::default();
        let f = Flit::packet(
            PacketId(1),
            NodeId(0),
            NodeId(1),
            RouterId(0),
            1,
            0,
            true,
            false,
        )[0];
        let r = arena.insert(f);
        arena.remove(r);
        let _ = arena.get(r);
    }

    #[test]
    fn arena_recycles_slots() {
        let mut arena = FlitArena::default();
        let f = Flit::packet(
            PacketId(7),
            NodeId(0),
            NodeId(1),
            RouterId(0),
            1,
            0,
            true,
            false,
        )[0];
        let a = arena.insert(f);
        let b = arena.insert(f);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(a).packet, PacketId(7));
        arena.get_mut(b).hops = 3;
        assert_eq!(arena.remove(b).hops, 3);
        assert_eq!(arena.len(), 1);
        // The freed slot is reused before the slab grows.
        let c = arena.insert(f);
        assert_eq!(c, b);
        assert_eq!(arena.len(), 2);
        assert!(!arena.is_empty());
    }
}
