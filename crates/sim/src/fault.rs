//! Deterministic live fault injection (§2.1's resilience claim, made
//! dynamic).
//!
//! A [`FaultPlan`] is a seeded, pre-computed schedule of topology
//! faults — links dying, links recovering, routers dying — that the
//! simulator applies *mid-run*: in-flight flits on dead hardware are
//! dropped and counted, routing self-heals by rebuilding its table on
//! the surviving graph, and traffic between severed pairs quiesces.
//! Everything is a pure function of the plan and the simulation seed,
//! so a faulted run is exactly as reproducible as a fault-free one.
//!
//! The plan itself is engine-agnostic: the optimized simulator and the
//! reference simulator consume the same schedule, which is what lets
//! the differential harness validate degraded-mode behavior.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use snoc_topology::{RouterId, Topology};

/// One kind of topology fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The undirected link between two adjacent routers fails: both
    /// directed channels die and flits on them are dropped.
    LinkDown {
        /// One endpoint (stored with `a < b`).
        a: RouterId,
        /// The other endpoint.
        b: RouterId,
    },
    /// A previously failed link recovers with empty wires and full
    /// credits.
    LinkUp {
        /// One endpoint (stored with `a < b`).
        a: RouterId,
        /// The other endpoint.
        b: RouterId,
    },
    /// A router fails permanently: every flit inside it is dropped and
    /// all of its links go down with it.
    RouterDown {
        /// The failing router.
        router: RouterId,
    },
}

impl FaultKind {
    /// Normalizes link endpoints to `a < b` so the same physical fault
    /// always has one representation.
    #[must_use]
    fn normalized(self) -> FaultKind {
        match self {
            FaultKind::LinkDown { a, b } if b < a => FaultKind::LinkDown { a: b, b: a },
            FaultKind::LinkUp { a, b } if b < a => FaultKind::LinkUp { a: b, b: a },
            other => other,
        }
    }
}

/// A fault scheduled at a specific simulation cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle at the start of which the fault takes effect.
    pub cycle: u64,
    /// What fails (or recovers).
    pub kind: FaultKind,
}

/// A deterministic schedule of faults, sorted by cycle.
///
/// Events at the same cycle apply in the order given (the sort is
/// stable), so a plan is a total order and two engines replaying it
/// reach identical degraded topologies at every cycle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Builds a plan from an arbitrary event list; events are sorted by
    /// cycle (stable, so same-cycle order is preserved) and link
    /// endpoints are normalized to `a < b`.
    #[must_use]
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        for e in &mut events {
            e.kind = e.kind.normalized();
        }
        events.sort_by_key(|e| e.cycle);
        FaultPlan { events }
    }

    /// A seeded "fault storm": `count` distinct links of `topo` fail,
    /// chosen by shuffling the link list with ChaCha8 (the same idiom
    /// as `snoc_topology`'s static resilience analysis), with failure
    /// cycles spread evenly over `[start, start + window)` — fault `i`
    /// lands at `start + i·window/count`.
    ///
    /// `count` is clamped to the number of links.
    #[must_use]
    pub fn storm(topo: &Topology, count: usize, start: u64, window: u64, seed: u64) -> Self {
        let mut links: Vec<(RouterId, RouterId)> = topo.links().collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        links.shuffle(&mut rng);
        let count = count.min(links.len());
        let events = links[..count]
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| FaultEvent {
                cycle: start + (i as u64 * window) / count.max(1) as u64,
                kind: FaultKind::LinkDown { a, b }.normalized(),
            })
            .collect();
        FaultPlan::new(events)
    }

    /// The scheduled events in application order.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// `true` if the plan schedules nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Checks the plan against a topology: link events must name
    /// adjacent routers and router events must be in range. Returns a
    /// human-readable reason for the first violation.
    ///
    /// # Errors
    ///
    /// Returns `Err(reason)` when an event references hardware the
    /// topology does not have.
    pub fn validate(&self, topo: &Topology) -> Result<(), String> {
        let nr = topo.router_count();
        for e in &self.events {
            match e.kind {
                FaultKind::LinkDown { a, b } | FaultKind::LinkUp { a, b } => {
                    if a.index() >= nr || b.index() >= nr || !topo.connected(a, b) {
                        return Err(format!(
                            "fault at cycle {}: no link {} -- {}",
                            e.cycle,
                            a.index(),
                            b.index()
                        ));
                    }
                }
                FaultKind::RouterDown { router } => {
                    if router.index() >= nr {
                        return Err(format!(
                            "fault at cycle {}: router {} out of range (nr = {nr})",
                            e.cycle,
                            router.index()
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_by_cycle_and_normalizes_endpoints() {
        let plan = FaultPlan::new(vec![
            FaultEvent {
                cycle: 50,
                kind: FaultKind::LinkDown {
                    a: RouterId(3),
                    b: RouterId(1),
                },
            },
            FaultEvent {
                cycle: 10,
                kind: FaultKind::RouterDown {
                    router: RouterId(0),
                },
            },
        ]);
        assert_eq!(plan.events()[0].cycle, 10);
        assert_eq!(
            plan.events()[1].kind,
            FaultKind::LinkDown {
                a: RouterId(1),
                b: RouterId(3)
            }
        );
    }

    #[test]
    fn storm_is_deterministic_and_distinct() {
        let t = Topology::mesh(4, 4, 1);
        let a = FaultPlan::storm(&t, 6, 100, 300, 7);
        let b = FaultPlan::storm(&t, 6, 100, 300, 7);
        assert_eq!(a, b);
        assert_eq!(a.events().len(), 6);
        let mut links: Vec<_> = a
            .events()
            .iter()
            .map(|e| match e.kind {
                FaultKind::LinkDown { a, b } => (a, b),
                other => panic!("storms only fail links, got {other:?}"),
            })
            .collect();
        links.sort_unstable();
        links.dedup();
        assert_eq!(links.len(), 6, "distinct links");
        for e in a.events() {
            assert!((100..400).contains(&e.cycle));
        }
        assert!(a.validate(&t).is_ok());
        assert_ne!(a, FaultPlan::storm(&t, 6, 100, 300, 8), "seed matters");
    }

    #[test]
    fn storm_clamps_to_link_count() {
        let t = Topology::mesh(2, 2, 1); // 4 links
        let plan = FaultPlan::storm(&t, 100, 0, 10, 1);
        assert_eq!(plan.events().len(), 4);
    }

    #[test]
    fn validate_rejects_phantom_hardware() {
        let t = Topology::mesh(2, 2, 1);
        let bad_link = FaultPlan::new(vec![FaultEvent {
            cycle: 0,
            kind: FaultKind::LinkDown {
                a: RouterId(0),
                b: RouterId(3), // diagonal: not adjacent in a mesh
            },
        }]);
        assert!(bad_link.validate(&t).is_err());
        let bad_router = FaultPlan::new(vec![FaultEvent {
            cycle: 0,
            kind: FaultKind::RouterDown {
                router: RouterId(9),
            },
        }]);
        assert!(bad_router.validate(&t).is_err());
    }
}
