//! The simulator: network assembly, the event-accelerated cycle loop,
//! injection/ejection, traffic drivers and adaptive route selection.

pub(crate) mod shard;

use crate::config::{BufferSizing, LinkMode, RouterArch, RoutingKind, SimConfig, SimError};
use crate::deadlock::{DeadlockDiagnostic, StuckPacket, WaitForEdge};
use crate::fault::{FaultEvent, FaultKind, FaultPlan};
use crate::flit::{Flit, FlitArena, FlitRef, PacketId};
use crate::link::Channel;
use crate::router::{AllocResult, RouterCore, StFlit};
use crate::routing::RoutingTable;
use crate::stats::SimReport;
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use snoc_layout::Layout;
use snoc_topology::{NodeId, RouterId, Topology, TopologyKind};
use snoc_traffic::{BurstModel, InjectionProcess, PatternSampler, TraceMessage, TrafficPattern};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

/// A ready-to-run network simulator bound to one topology (and optionally
/// one layout, which determines link latencies and RTT-sized buffers).
///
/// The run loops are *event-accelerated*: traffic generation is an event
/// calendar of per-node geometric injection draws (cost proportional to
/// offered traffic, not `nodes × cycles`), and whenever every worklist is
/// empty the clock fast-forwards straight to the conservatively earliest
/// next event instead of ticking through dead cycles. Fast-forwarding is
/// an optimization only — same seed, same [`SimReport`], bit for bit,
/// with it on or off (see [`Simulator::set_cycle_skipping`]).
///
/// See the crate docs for an example.
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: SimConfig,
    topo: Topology,
    /// Shared with sibling shard replicas in sharded runs — the table
    /// is immutable after construction and O(N_r²), so one copy serves
    /// every shard.
    table: Arc<RoutingTable>,
    concentration: usize,
    node_count: usize,
    routers: Vec<RouterCore>,
    channels: Vec<Channel>,
    /// `[router][net out port]` → channel id.
    chan_out: Vec<Vec<usize>>,
    /// `[router][net in port]` → channel id (for upstream credits).
    chan_in: Vec<Vec<usize>>,
    /// channel id → (receiver router, receiver input port).
    chan_dst: Vec<(usize, usize)>,
    /// channel id → (sender router, sender output port).
    chan_src: Vec<(usize, usize)>,
    /// channel id → wire length in tiles (1 without a layout).
    chan_tiles: Vec<u64>,
    /// `[router][net out port]` → initial per-VC credit count.
    init_credits: Vec<Vec<usize>>,
    /// Single home of every in-flight flit; buffers, staging queues,
    /// link stages and ST registers hold 4-byte [`FlitRef`]s into it.
    arena: FlitArena,
    /// Per-node injection queues (flit refs).
    inj_queues: Vec<VecDeque<FlitRef>>,
    /// FBF grid width for XY-adaptive routing, if applicable.
    fbf_x_dim: Option<usize>,
    now: u64,
    next_pid: u64,
    rng: ChaCha8Rng,
    /// Measured packets still in flight (drain detection).
    outstanding: u64,
    /// Worklist of routers holding at least one flit. Routers are
    /// appended when a flit is delivered to an idle router and retained
    /// while non-idle, so at low load the cycle loop touches only the
    /// busy corner of the network.
    active_routers: Vec<usize>,
    /// `router_queued[r]` — whether `r` is in `active_routers`.
    router_queued: Vec<bool>,
    /// Worklist of channels with in-flight flits or credits.
    active_channels: Vec<usize>,
    /// `chan_queued[id]` — whether `id` is in `active_channels`.
    chan_queued: Vec<bool>,
    /// Worklist of nodes with a non-empty injection queue.
    active_inj: Vec<usize>,
    /// `inj_queued[node]` — whether `node` is in `active_inj`.
    inj_queued: Vec<bool>,
    /// Whether the run loops may fast-forward over event-free cycles
    /// (on by default; equivalence-tested against the off setting).
    cycle_skip: bool,
    /// Armed fault schedule, sorted by cycle (empty on fault-free runs,
    /// which keeps every fault path out of the hot loop).
    faults: Vec<FaultEvent>,
    /// Cursor into `faults`: the next unapplied event.
    next_fault: usize,
    /// Per-router liveness under the armed fault plan.
    router_alive: Vec<bool>,
    /// Per-channel link state: `false` while the undirected link is cut
    /// (both directed channels of a link flip together).
    chan_enabled: Vec<bool>,
    /// Derived per-channel liveness: enabled with both endpoints alive.
    chan_alive: Vec<bool>,
    /// Scratch for the ST-drain phase (reused every cycle).
    scratch_st: Vec<(usize, StFlit)>,
    /// Scratch for the allocation phase (reused every cycle).
    scratch_alloc: AllocResult,
    /// No-progress watchdog bound in cycles (`None` disarms it): if
    /// flits are live but nothing has moved for this many cycles, the
    /// run aborts with a [`crate::DeadlockDiagnostic`] instead of
    /// spinning in the drain loop forever.
    watchdog: Option<u64>,
    /// Last cycle with progress: a flit delivery, switch traversal,
    /// injection, packet creation, or an applied fault batch.
    last_progress: u64,
}

impl Simulator {
    /// Builds a simulator with unit-latency links (no physical layout).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration is
    /// inconsistent (including [`BufferSizing::VariableRtt`], which needs
    /// a layout).
    pub fn build(topo: &Topology, cfg: &SimConfig) -> Result<Self, SimError> {
        Self::build_inner(topo, None, cfg)
    }

    /// Builds a simulator whose link latencies come from the layout:
    /// `⌈manhattan / H⌉` cycles per link (§3.2.2), with RTT-sized buffers
    /// when [`BufferSizing::VariableRtt`] is selected.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on invalid configurations.
    pub fn build_with_layout(
        topo: &Topology,
        layout: &Layout,
        cfg: &SimConfig,
    ) -> Result<Self, SimError> {
        Self::build_inner(topo, Some(layout), cfg)
    }

    fn build_inner(
        topo: &Topology,
        layout: Option<&Layout>,
        cfg: &SimConfig,
    ) -> Result<Self, SimError> {
        let table = Arc::new(RoutingTable::minimal(topo));
        Self::build_with_table(topo, layout, cfg, table)
    }

    /// Builds a simulator around a pre-built routing table. The sharded
    /// engine uses this to share one table across all shard replicas.
    pub(crate) fn build_with_table(
        topo: &Topology,
        layout: Option<&Layout>,
        cfg: &SimConfig,
        table: Arc<RoutingTable>,
    ) -> Result<Self, SimError> {
        cfg.validate()?;
        if cfg.buffer_sizing == BufferSizing::VariableRtt && layout.is_none() {
            return Err(SimError::InvalidConfig {
                reason: "VariableRtt buffer sizing requires a layout".to_string(),
            });
        }
        let nr = topo.router_count();
        let concentration = topo.concentration();

        // Channels, one per directed adjacency.
        let mut channels = Vec::new();
        let mut chan_out = vec![Vec::new(); nr];
        let mut chan_dst = Vec::new();
        let mut chan_src = Vec::new();
        let mut chan_tiles = Vec::new();
        for r in topo.routers() {
            let ports = table.port_count(r);
            for port in 0..ports {
                let peer = table.peer(r, port);
                let tiles = layout.map_or(1, |l| l.manhattan(r, peer).max(1));
                let latency = (tiles as u64).div_ceil(cfg.smart_hops as u64).max(1);
                let ch = match cfg.link_mode {
                    LinkMode::Credited => Channel::credited(latency),
                    LinkMode::Elastic => Channel::elastic(latency, cfg.vcs),
                };
                let id = channels.len();
                channels.push(ch);
                chan_out[r.index()].push(id);
                chan_dst.push((peer.index(), table.port_to(peer, r)));
                chan_src.push((r.index(), port));
                chan_tiles.push(tiles as u64);
            }
        }
        // Reverse mapping: which channel feeds each input port.
        let mut chan_in: Vec<Vec<usize>> = (0..nr)
            .map(|r| vec![usize::MAX; chan_out[r].len()])
            .collect();
        for (id, &(dst, in_port)) in chan_dst.iter().enumerate() {
            chan_in[dst][in_port] = id;
        }

        // Per-port input capacities (downstream of each wire).
        let capacity_of = |r: usize, port: usize| -> usize {
            match cfg.buffer_sizing {
                BufferSizing::Fixed(n) => n,
                BufferSizing::VariableRtt => 2 * channels[chan_in[r][port]].latency() as usize + 3,
            }
        };
        let mut routers = Vec::with_capacity(nr);
        for r in topo.routers() {
            let ports = table.port_count(r);
            let local = topo.nodes_of(r).len();
            let caps: Vec<usize> = (0..ports).map(|p| capacity_of(r.index(), p)).collect();
            let inj_cap = match cfg.buffer_sizing {
                BufferSizing::Fixed(n) => n,
                BufferSizing::VariableRtt => 5,
            };
            // Minimal routing never assigns Valiant intermediates, so
            // those routers take the monomorphized allocation loops with
            // the intermediate checks compiled out.
            routers.push(RouterCore::new(
                r,
                ports,
                local,
                cfg.vcs,
                cfg.router_arch,
                cfg.link_mode,
                &caps,
                inj_cap,
                cfg.routing != RoutingKind::Minimal,
            ));
        }
        // Credits mirror the downstream capacity.
        let mut init_credits: Vec<Vec<usize>> = vec![Vec::new(); nr];
        for r in 0..nr {
            let ports = chan_out[r].len();
            init_credits[r] = vec![0; ports];
            for port in 0..ports {
                let (dst, dst_port) = chan_dst[chan_out[r][port]];
                let cap = capacity_of(dst, dst_port);
                routers[r].set_credits(port, cap);
                init_credits[r][port] = cap;
            }
        }

        let fbf_x_dim = match topo.kind() {
            TopologyKind::FlattenedButterfly { x, .. } => Some(*x),
            _ => None,
        };

        let chan_count = channels.len();
        let watchdog =
            crate::deadlock::default_watchdog_bound(table.max_finite_distance(), cfg.packet_flits);
        Ok(Simulator {
            cfg: cfg.clone(),
            topo: topo.clone(),
            table,
            concentration,
            node_count: topo.node_count(),
            router_queued: vec![false; routers.len()],
            routers,
            chan_queued: vec![false; chan_count],
            channels,
            chan_out,
            chan_in,
            chan_dst,
            chan_src,
            chan_tiles,
            init_credits,
            arena: FlitArena::default(),
            inj_queues: vec![VecDeque::new(); topo.node_count()],
            fbf_x_dim,
            now: 0,
            next_pid: 0,
            rng: ChaCha8Rng::seed_from_u64(cfg.seed),
            outstanding: 0,
            active_routers: Vec::new(),
            active_channels: Vec::new(),
            active_inj: Vec::new(),
            inj_queued: vec![false; topo.node_count()],
            cycle_skip: true,
            faults: Vec::new(),
            next_fault: 0,
            router_alive: vec![true; nr],
            chan_enabled: vec![true; chan_count],
            chan_alive: vec![true; chan_count],
            scratch_st: Vec::new(),
            scratch_alloc: AllocResult::default(),
            watchdog: Some(watchdog),
            last_progress: 0,
        })
    }

    /// The number of endpoint nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The current simulation cycle.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Enables or disables cycle-skipping (on by default). With skipping
    /// off, the run loops tick every cycle exactly like the classic
    /// cycle-accurate loop; the results are identical either way — the
    /// toggle exists so tests can assert that equivalence.
    pub fn set_cycle_skipping(&mut self, enabled: bool) {
        self.cycle_skip = enabled;
    }

    /// Sets the no-progress watchdog bound in cycles, or disarms it
    /// with `None`. Armed by default at
    /// [`crate::default_watchdog_bound`] of the routing diameter and
    /// packet length: if flits are live but none moves for the bound,
    /// the run returns with [`SimReport::deadlock`] populated instead
    /// of spinning in the drain loop forever. The watchdog never
    /// perturbs a live run — reports of runs that make progress are
    /// bit-identical with it armed or disarmed.
    pub fn set_watchdog(&mut self, bound: Option<u64>) {
        self.watchdog = bound;
    }

    /// Arms a deterministic fault schedule ([`FaultPlan`]) to be applied
    /// live during the next run: at each scheduled cycle, flits on dead
    /// hardware (and whole packets they belong to) are dropped and
    /// counted, routing self-heals on the surviving graph, and traffic
    /// between severed pairs quiesces. Same plan + same seed ⇒ the same
    /// [`SimReport`], bit for bit, with cycle-skipping on or off.
    ///
    /// Fault injection is supported on the edge-buffer + credited-link +
    /// minimal-routing envelope — exactly the envelope the reference
    /// simulator models, so every faulted configuration stays
    /// differentially verifiable.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the plan references
    /// hardware the topology does not have or the configuration is
    /// outside the supported envelope.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) -> Result<(), SimError> {
        plan.validate(&self.topo)
            .map_err(|reason| SimError::InvalidConfig { reason })?;
        if !plan.is_empty() {
            let unsupported = |what: &str| SimError::InvalidConfig {
                reason: format!("fault injection requires {what}"),
            };
            if !matches!(self.cfg.router_arch, RouterArch::EdgeBuffer) {
                return Err(unsupported("edge-buffer routers"));
            }
            if self.cfg.link_mode != LinkMode::Credited {
                return Err(unsupported("credited links"));
            }
            if self.cfg.routing != RoutingKind::Minimal {
                return Err(unsupported("minimal routing"));
            }
        }
        self.faults = plan.events().to_vec();
        self.next_fault = 0;
        Ok(())
    }

    /// Applies every fault event due at or before the current cycle,
    /// then repairs the network once for the whole batch. Called at the
    /// top of each run-loop iteration, before the cycle's phases.
    fn apply_due_faults(&mut self, report: &mut SimReport) {
        let mut applied = false;
        while self.next_fault < self.faults.len() && self.faults[self.next_fault].cycle <= self.now
        {
            let kind = self.faults[self.next_fault].kind;
            self.next_fault += 1;
            applied = true;
            match kind {
                FaultKind::LinkDown { a, b } => self.set_link_enabled(a, b, false),
                FaultKind::LinkUp { a, b } => self.set_link_enabled(a, b, true),
                FaultKind::RouterDown { router } => self.router_alive[router.index()] = false,
            }
        }
        if applied {
            self.repair_after_faults(report);
            // A fault batch is progress: it reshapes the network (and
            // may drop the very flits that were wedged), so the
            // watchdog clock restarts.
            self.last_progress = self.now;
        }
    }

    /// Flips both directed channels of the undirected link `a -- b`.
    fn set_link_enabled(&mut self, a: RouterId, b: RouterId, enabled: bool) {
        let pa = port_toward(&self.topo, a, b);
        let pb = port_toward(&self.topo, b, a);
        self.chan_enabled[self.chan_out[a.index()][pa]] = enabled;
        self.chan_enabled[self.chan_out[b.index()][pb]] = enabled;
    }

    /// Rebuilds the world after a batch of fault events: derives channel
    /// liveness, recomputes routing on the surviving graph, determines
    /// the packets that cannot survive, sweeps their flits everywhere,
    /// recounts flow-control credits from ground truth, and swaps the
    /// new table in. The doomed set is a pure function of the pre-fault
    /// state, the new liveness and the new table — the reference engine
    /// mirrors the same rules, which is what keeps faulted runs exactly
    /// comparable across engines.
    fn repair_after_faults(&mut self, report: &mut SimReport) {
        // 1. Channel liveness: enabled, with both endpoints alive.
        for id in 0..self.channels.len() {
            let (src, _) = self.chan_src[id];
            let (dst, _) = self.chan_dst[id];
            self.chan_alive[id] =
                self.chan_enabled[id] && self.router_alive[src] && self.router_alive[dst];
        }
        // 2. Self-heal: minimal routes over the surviving graph, with
        // the original port numbering and tie-break.
        let table = {
            let topo = &self.topo;
            let chan_alive = &self.chan_alive;
            let chan_out = &self.chan_out;
            RoutingTable::degraded(topo, &self.router_alive, |a, b| {
                chan_alive[chan_out[a.index()][port_toward(topo, a, b)]]
            })
        };
        // 3. The doomed-packet set: every packet with a flit on dead
        // hardware, pinned by wormhole state toward a dead channel, or
        // severed from its destination under the new table. Whole
        // packets die — wormhole flits are useless without their head,
        // and in-order ejection means a doomed packet's tail can never
        // have ejected, so "doomed" and "delivered" never overlap.
        let mut doomed: Vec<u64> = Vec::new();
        {
            let arena = &self.arena;
            for r in 0..self.routers.len() {
                let router = &self.routers[r];
                if !self.router_alive[r] {
                    router.scan_flits(|fr, _| doomed.push(arena.get(fr).packet.0));
                    continue;
                }
                let ports = &self.chan_out[r];
                let chan_alive = &self.chan_alive;
                router.stuck_packets(arena, |port| !chan_alive[ports[port]], &mut doomed);
                // Severed heads. Buffered heads are judged at this
                // router; ST heads at the router across the channel they
                // are committed to (alive: dead ones were caught above).
                // Liveness of the judging router makes same-router
                // traffic die with it (`dist[dead][dead]` is 0).
                router.scan_flits(|fr, st_port| {
                    let f = arena.get(fr);
                    if !f.kind.is_head() {
                        return;
                    }
                    let at = match st_port {
                        Some(p) => RouterId(self.chan_dst[ports[p]].0),
                        None => RouterId(r),
                    };
                    if !self.router_alive[at.index()] || !table.reachable(at, f.dst_router) {
                        doomed.push(f.packet.0);
                    }
                });
            }
            for id in 0..self.channels.len() {
                let dst_r = RouterId(self.chan_dst[id].0);
                if !self.chan_alive[id] {
                    self.channels[id].scan_flits(|fr| doomed.push(arena.get(fr).packet.0));
                } else {
                    // In-flight heads are judged at the receiving router.
                    self.channels[id].scan_flits(|fr| {
                        let f = arena.get(fr);
                        if f.kind.is_head() && !table.reachable(dst_r, f.dst_router) {
                            doomed.push(f.packet.0);
                        }
                    });
                }
            }
            for node in 0..self.node_count {
                let r = node / self.concentration;
                for &fr in &self.inj_queues[node] {
                    let f = arena.get(fr);
                    if !self.router_alive[r]
                        || (f.kind.is_head() && !table.reachable(RouterId(r), f.dst_router))
                    {
                        doomed.push(f.packet.0);
                    }
                }
            }
        }
        doomed.sort_unstable();
        doomed.dedup();
        // 4. Sweep the doomed packets' flits out of every structure
        // (dead channels drop everything and void their credit queues).
        let mut removed: Vec<Flit> = Vec::new();
        for id in 0..self.channels.len() {
            let dead = !self.chan_alive[id];
            self.channels[id].sweep_faults(
                &mut self.arena,
                |p| doomed.binary_search(&p).is_ok(),
                dead,
                &mut removed,
            );
        }
        for r in 0..self.routers.len() {
            if self.router_alive[r] {
                self.routers[r].sweep_faults(
                    &mut self.arena,
                    |p| doomed.binary_search(&p).is_ok(),
                    &mut removed,
                );
            } else {
                self.routers[r].sweep_faults(&mut self.arena, |_| true, &mut removed);
            }
        }
        for node in 0..self.node_count {
            let arena = &mut self.arena;
            let removed = &mut removed;
            self.inj_queues[node].retain(|&fr| {
                if doomed.binary_search(&arena.get(fr).packet.0).is_ok() {
                    removed.push(arena.remove(fr));
                    false
                } else {
                    true
                }
            });
        }
        // 5. Account the drops. A doomed packet's flits all exist when
        // it dies (created together, swept together), so no packet can
        // span two repair batches and the distinct count is exact.
        let mut dropped_pkts: Vec<u64> = removed
            .iter()
            .filter(|f| f.measured)
            .map(|f| f.packet.0)
            .collect();
        report.activity.dropped_flits += dropped_pkts.len() as u64;
        dropped_pkts.sort_unstable();
        dropped_pkts.dedup();
        report.dropped_packets += dropped_pkts.len() as u64;
        self.outstanding = self.outstanding.saturating_sub(dropped_pkts.len() as u64);
        // Sweeping can empty injection queues whose nodes are still on
        // the worklist; the injection phase pops unconditionally, so
        // compact stale entries now (routers and channels tolerate
        // stale entries until the end-of-step compaction).
        let inj_queues = &self.inj_queues;
        let inj_queued = &mut self.inj_queued;
        self.active_inj.retain(|&node| {
            if inj_queues[node].is_empty() {
                inj_queued[node] = false;
                false
            } else {
                true
            }
        });
        // 6. Swap the degraded table in and reset the per-router route
        // and nomination caches (both are computed against the table).
        // Debug builds first re-verify the deadlock-freedom the
        // up*/down* construction promises — including for packets
        // already mid-flight with accumulated hop counts.
        #[cfg(debug_assertions)]
        if let Err(e) = crate::verify_deadlock_free(&table, &self.topo, self.cfg.vcs) {
            panic!("degraded routing table is not deadlock-free: {e}");
        }
        self.table = Arc::new(table);
        for router in &mut self.routers {
            router.invalidate_route_caches();
        }
        // 7. Recount credits from ground truth on every live channel:
        // initial credits minus flits on the wire, flits buffered at the
        // receiver, credits in flight back, and an ST hold at the
        // sender. For untouched channels this recomputes the value the
        // incremental protocol already holds; for channels that lost
        // flits — or just recovered — it is the repair.
        for id in 0..self.channels.len() {
            if !self.chan_alive[id] {
                continue;
            }
            let (src, sp) = self.chan_src[id];
            let (dst, dp) = self.chan_dst[id];
            let init = self.init_credits[src][sp];
            for vc in 0..self.cfg.vcs {
                let consumed = self.channels[id].wire_count(vc)
                    + self.channels[id].credit_count(vc)
                    + self.routers[dst].lane_len(dp, vc)
                    + usize::from(self.routers[src].st_holds(sp, vc));
                let credits = init
                    .checked_sub(consumed)
                    .unwrap_or_else(|| panic!("credit recount underflow: channel {id} vc {vc}"));
                self.routers[src].set_lane_credits(sp, vc, credits);
            }
        }
    }

    /// Whether traffic between two endpoints can currently be carried:
    /// both routers alive and connected on the surviving graph. Severed
    /// pairs quiesce generation (and protocol replies) instead of
    /// wedging the drain phase with packets that could never route.
    fn pair_online(&self, src: NodeId, dst: NodeId) -> bool {
        let s = RouterId(src.index() / self.concentration);
        let d = RouterId(dst.index() / self.concentration);
        self.router_alive[s.index()] && self.router_alive[d.index()] && self.table.reachable(s, d)
    }

    /// Runs open-loop synthetic traffic: `rate` flits/node/cycle of
    /// `cfg.packet_flits`-flit packets under `pattern`, measured after
    /// `warmup` cycles for `measure` cycles, plus a bounded drain phase.
    pub fn run_synthetic(
        &mut self,
        pattern: TrafficPattern,
        rate: f64,
        warmup: u64,
        measure: u64,
    ) -> SimReport {
        let sampler = PatternSampler::new(pattern, &self.topo);
        self.run_pattern(&sampler, rate, warmup, measure)
    }

    /// Runs open-loop synthetic traffic with a two-state (on/off) Markov
    /// burst model: while *on* a node injects at a rate scaled to keep
    /// the long-run offered load equal to `rate`, while *off* it injects
    /// nothing (see [`BurstModel`]). `BurstModel::uniform()` reduces to
    /// [`Simulator::run_synthetic`] exactly, draw for draw.
    pub fn run_synthetic_bursty(
        &mut self,
        pattern: TrafficPattern,
        rate: f64,
        burst: BurstModel,
        warmup: u64,
        measure: u64,
    ) -> SimReport {
        let sampler = PatternSampler::new(pattern, &self.topo);
        self.run_pattern_bursty(&sampler, rate, burst, warmup, measure)
    }

    /// Runs synthetic traffic with a pre-compiled pattern sampler.
    ///
    /// Injection is event-driven: each node carries a next-injection
    /// cycle drawn from geometric inter-arrival sampling — distribution-
    /// identical to a per-cycle Bernoulli trial at `rate / packet_flits`
    /// — and the calendar of those cycles both replaces the per-node
    /// per-cycle RNG loop and gives the cycle-skipper a horizon to jump
    /// to.
    pub fn run_pattern(
        &mut self,
        sampler: &PatternSampler,
        rate: f64,
        warmup: u64,
        measure: u64,
    ) -> SimReport {
        self.run_pattern_bursty(sampler, rate, BurstModel::uniform(), warmup, measure)
    }

    /// Runs synthetic traffic with a pre-compiled sampler and a burst
    /// model ([`Simulator::run_pattern`] with on/off phases). The
    /// injection calendar draws per-node phase sojourns and in-phase
    /// geometric gaps, distribution-identical to per-cycle Markov state
    /// transitions plus Bernoulli trials.
    pub fn run_pattern_bursty(
        &mut self,
        sampler: &PatternSampler,
        rate: f64,
        burst: BurstModel,
        warmup: u64,
        measure: u64,
    ) -> SimReport {
        let mut report = SimReport::new(self.node_count);
        report.measured_cycles = measure;
        let pkt_len = self.cfg.packet_flits;
        let end_measure = warmup + measure;
        let drain_cap = end_measure + measure.max(2_000);
        // The injection calendar: (cycle, node) min-heap of pending
        // packet injections. Entries at or past `end_measure` can never
        // fire and are dropped eagerly (arrivals are strictly
        // increasing per node).
        let t0 = self.now;
        let mut process = InjectionProcess::new(self.node_count, rate, pkt_len, burst);
        let mut calendar: BinaryHeap<Reverse<(u64, usize)>> =
            BinaryHeap::with_capacity(self.node_count);
        for node in 0..self.node_count {
            if let Some(c) = process.next_arrival(node, &mut self.rng) {
                let cycle = t0.saturating_add(c);
                if cycle < end_measure {
                    calendar.push(Reverse((cycle, node)));
                }
            }
        }
        self.last_progress = self.now;
        while self.now < end_measure || (self.outstanding > 0 && self.now < drain_cap) {
            self.apply_due_faults(&mut report);
            let measuring = self.now >= warmup && self.now < end_measure;
            self.step(measuring, &mut report);
            if self.now < end_measure {
                while let Some(&Reverse((cycle, src))) = calendar.peek() {
                    if cycle > self.now {
                        break;
                    }
                    calendar.pop();
                    if let Some(dst) = sampler.sample(NodeId(src), &mut self.rng) {
                        self.generate(
                            NodeId(src),
                            dst,
                            pkt_len as u32,
                            false,
                            measuring,
                            &mut report,
                        );
                    }
                    if let Some(c) = process.next_arrival(src, &mut self.rng) {
                        let next = t0.saturating_add(c);
                        if next < end_measure {
                            calendar.push(Reverse((next, src)));
                        }
                    }
                }
            }
            if self.watchdog_expired() {
                report.deadlock = Some(self.deadlock_diagnostic());
                break;
            }
            let horizon = calendar.peek().map(|&Reverse((cycle, _))| cycle);
            let (cap, idle_target) = if self.now < end_measure {
                (end_measure, end_measure)
            } else {
                (drain_cap, self.now + 1)
            };
            self.advance(horizon, cap, idle_target);
        }
        report.drained = self.outstanding == 0;
        report.total_cycles = self.now;
        report
    }

    /// Replays a trace (§5.1's PARSEC/SPLASH protocol): read requests are
    /// answered with 6-flit replies by their destination node. Packets
    /// created at or after `warmup` are measured. Gaps between trace
    /// messages with no network activity are fast-forwarded.
    pub fn run_trace(&mut self, trace: &[TraceMessage], warmup: u64) -> SimReport {
        let mut report = SimReport::new(self.node_count);
        let end = trace.last().map_or(0, |m| m.cycle + 1);
        report.measured_cycles = end.saturating_sub(warmup).max(1);
        let drain_cap = end + 50_000;
        let mut next = 0usize;
        self.last_progress = self.now;
        while next < trace.len() || (self.outstanding > 0 && self.now < drain_cap) {
            self.apply_due_faults(&mut report);
            let measuring = self.now >= warmup;
            self.step(measuring, &mut report);
            while next < trace.len() && trace[next].cycle <= self.now {
                let m = trace[next];
                next += 1;
                self.generate(
                    m.src,
                    m.dst,
                    m.kind.flits() as u32,
                    m.kind.expects_reply(),
                    measuring,
                    &mut report,
                );
            }
            if self.watchdog_expired() {
                report.deadlock = Some(self.deadlock_diagnostic());
                break;
            }
            let (horizon, cap) = if next < trace.len() {
                // More messages pend: the loop runs to the next one
                // regardless of the drain cap, exactly like the
                // cycle-accurate loop.
                (Some(trace[next].cycle), u64::MAX)
            } else {
                (None, drain_cap)
            };
            self.advance(horizon, cap, self.now + 1);
        }
        report.drained = self.outstanding == 0;
        report.total_cycles = self.now;
        report
    }

    /// Advances the clock. While any router or injection queue holds a
    /// flit the network must be stepped next cycle; otherwise the only
    /// future events are channel arrivals/credits and the caller's
    /// `horizon` (next pending injection or trace message), so the clock
    /// jumps straight to the earliest of those — or to `idle_target`
    /// when nothing pends at all. The jump is clamped into
    /// `(now, cap]`, so loop-boundary cycles (measurement end, drain
    /// cap) are always landed on exactly; skipped cycles are provably
    /// event-free, keeping results bit-identical to single-stepping.
    fn advance(&mut self, horizon: Option<u64>, cap: u64, idle_target: u64) {
        if !self.cycle_skip || !self.active_routers.is_empty() || !self.active_inj.is_empty() {
            self.now += 1;
            return;
        }
        let mut next = horizon;
        // Pending fault events are wake-ups too: the jump lands exactly
        // on the next fault cycle, so skipped runs apply faults on the
        // same cycles as single-stepped ones.
        if let Some(e) = self.faults.get(self.next_fault) {
            next = Some(next.map_or(e.cycle, |n| n.min(e.cycle)));
        }
        // The watchdog deadline is a wake-up when flits are live: a
        // skipped-over expiry must still fire on the exact cycle the
        // single-stepped loop would report.
        if let Some(bound) = self.watchdog {
            if !self.arena.is_empty() {
                let deadline = self.last_progress + bound;
                next = Some(next.map_or(deadline, |n| n.min(deadline)));
            }
        }
        for &id in &self.active_channels {
            if let Some(e) = self.channels[id].next_event(self.now) {
                next = Some(next.map_or(e, |n| n.min(e)));
            }
        }
        let target = next.unwrap_or(idle_target);
        self.now = target.clamp(self.now + 1, cap.max(self.now + 1));
    }

    /// Creates a packet and appends its flits to the source node's
    /// injection queue, unless the queue lacks space for the whole packet.
    fn generate(
        &mut self,
        src: NodeId,
        dst: NodeId,
        len: u32,
        wants_reply: bool,
        measured: bool,
        report: &mut SimReport,
    ) {
        debug_assert_ne!(src, dst, "self-traffic never enters the network");
        if !self.faults.is_empty() && !self.pair_online(src, dst) {
            return; // severed pair: quiesce, not a queue stall
        }
        let queue_len = self.inj_queues[src.index()].len();
        if queue_len + len as usize > self.cfg.injection_queue_flits {
            if measured {
                report.stalled_generations += 1;
            }
            return;
        }
        self.push_packet(src, dst, len, wants_reply, measured, report);
    }

    /// Unconditionally enqueues a packet. Protocol replies use this
    /// directly: dropping a reply would break the request–reply
    /// dependency chain, so replies may exceed the queue bound.
    fn push_packet(
        &mut self,
        src: NodeId,
        dst: NodeId,
        len: u32,
        wants_reply: bool,
        measured: bool,
        report: &mut SimReport,
    ) {
        let dst_router = RouterId(dst.index() / self.concentration);
        let src_router = RouterId(src.index() / self.concentration);
        let id = PacketId(self.next_pid);
        self.next_pid += 1;
        let intermediate = if src_router != dst_router {
            self.adaptive_intermediate(src_router, dst_router)
        } else {
            None
        };
        if measured {
            report.injected_packets += 1;
            self.outstanding += 1;
        }
        for i in 0..len {
            let mut f = Flit::nth_of_packet(
                id,
                i,
                len,
                src,
                dst,
                dst_router,
                self.now,
                measured,
                wants_reply,
            );
            if let Some(mid) = intermediate {
                f.set_intermediate(mid);
            }
            let fr = self.arena.insert(f);
            self.inj_queues[src.index()].push_back(fr);
        }
        self.activate_injection(src.index());
        self.last_progress = self.now;
    }

    /// Adaptive route selection at the source (§6): UGAL-L/UGAL-G pick
    /// minimal vs. Valiant; XY-adaptive picks between the two minimal
    /// dimension orders of an FBF.
    fn adaptive_intermediate(&mut self, src: RouterId, dst: RouterId) -> Option<RouterId> {
        match self.cfg.routing {
            RoutingKind::Minimal => None,
            RoutingKind::UgalL => {
                let mid = self.random_router(src, dst)?;
                let d_min = self.table.distance(src, dst) as f64;
                let d_non = (self.table.distance(src, mid) + self.table.distance(mid, dst)) as f64;
                let q_min = self.first_hop_occupancy(src, dst) as f64;
                let q_non = self.first_hop_occupancy(src, mid) as f64;
                // Standard UGAL-L comparison with a small pipeline bias.
                (q_non * d_non + 3.0 < q_min * d_min).then_some(mid)
            }
            RoutingKind::UgalG => {
                let mid = self.random_router(src, dst)?;
                let min_cost = self.path_cost(src, dst);
                let non_cost = self.path_cost(src, mid) + self.path_cost(mid, dst);
                (non_cost + 3.0 < min_cost).then_some(mid)
            }
            RoutingKind::XyAdaptive => {
                let x_dim = self.fbf_x_dim?;
                let (sx, sy) = (src.index() % x_dim, src.index() / x_dim);
                let (dx, dy) = (dst.index() % x_dim, dst.index() / x_dim);
                if sx == dx || sy == dy {
                    return None; // single-dimension path, nothing to adapt
                }
                let corner_row_first = RouterId(sy * x_dim + dx);
                let corner_col_first = RouterId(dy * x_dim + sx);
                let q_row = self.first_hop_occupancy(src, corner_row_first);
                let q_col = self.first_hop_occupancy(src, corner_col_first);
                Some(if q_row <= q_col {
                    corner_row_first
                } else {
                    corner_col_first
                })
            }
        }
    }

    fn random_router(&mut self, src: RouterId, dst: RouterId) -> Option<RouterId> {
        let nr = self.routers.len();
        if nr <= 2 {
            return None;
        }
        for _ in 0..8 {
            let mid = RouterId(self.rng.random_range(0..nr));
            if mid != src && mid != dst {
                return Some(mid);
            }
        }
        None
    }

    /// Congestion at the first hop from `src` toward `target`.
    fn first_hop_occupancy(&self, src: RouterId, target: RouterId) -> usize {
        if src == target {
            return 0;
        }
        let probe = probe_flit(target);
        let d = self.table.route(src, &probe, 0, self.cfg.vcs);
        self.direction_occupancy(src, d.port)
    }

    fn direction_occupancy(&self, r: RouterId, out_port: usize) -> usize {
        let init = self.init_credits[r.index()][out_port];
        let router_side = self.routers[r.index()].output_occupancy(out_port, init);
        let chan = self.chan_out[r.index()][out_port];
        router_side + self.channels[chan].occupancy()
    }

    /// Sum of per-hop congestion along the minimal path (UGAL-G's global
    /// knowledge), including a unit pipeline cost per hop.
    fn path_cost(&self, src: RouterId, dst: RouterId) -> f64 {
        let mut cur = src;
        let mut cost = 0.0;
        let mut hops = 0u16;
        while cur != dst {
            let mut f = probe_flit(dst);
            f.hops = hops;
            let d = self.table.route(cur, &f, 0, self.cfg.vcs);
            cost += self.direction_occupancy(cur, d.port) as f64 + 1.0;
            cur = self.table.peer(cur, d.port);
            hops += 1;
        }
        cost
    }

    /// Enqueues a router on the active worklist (idempotent).
    #[inline]
    fn activate_router(&mut self, r: usize) {
        if !self.router_queued[r] {
            self.router_queued[r] = true;
            self.active_routers.push(r);
        }
    }

    /// Enqueues a channel on the active worklist (idempotent).
    #[inline]
    fn activate_channel(&mut self, id: usize) {
        if !self.chan_queued[id] {
            self.chan_queued[id] = true;
            self.active_channels.push(id);
        }
    }

    /// Enqueues a node on the injection worklist (idempotent).
    #[inline]
    fn activate_injection(&mut self, node: usize) {
        if !self.inj_queued[node] {
            self.inj_queued[node] = true;
            self.active_inj.push(node);
        }
    }

    /// Advances the network by one cycle (all phases except traffic
    /// generation, which the run loops own).
    ///
    /// Only the active worklists are visited: a channel enters when a
    /// flit or credit is pushed into it, a router when a flit is
    /// delivered to it, a node when a packet enters its injection
    /// queue, and each leaves once drained — at low load the idle bulk
    /// of the network costs nothing per cycle. Per-channel, per-router
    /// and per-node operations within one phase touch disjoint state
    /// (each channel feeds exactly one input port; credits target
    /// per-port counters; each node owns one injection port), so
    /// worklist order does not affect results — and the worklists
    /// themselves evolve deterministically, keeping same-seed runs
    /// bit-identical.
    fn step(&mut self, measuring: bool, report: &mut SimReport) {
        let now = self.now;
        // Phases 1–3 fused per active channel: pipeline tick, delivery
        // into the router input, credit returns. Deliveries do not
        // affect other channels' readiness and credits only feed the
        // allocation phase below, so fusing preserves phase semantics.
        for i in 0..self.active_channels.len() {
            let id = self.active_channels[i];
            self.channels[id].tick();
            let (dst, port) = self.chan_dst[id];
            let router = &self.routers[dst];
            let delivered =
                self.channels[id].pop_deliverable(now, |vc| router.can_deliver(port, vc));
            if let Some((vc, flit)) = delivered {
                self.routers[dst].deliver(port, vc, flit, &mut self.arena);
                self.activate_router(dst);
                self.last_progress = now;
                if measuring {
                    report.activity.buffer_writes += 1;
                }
            }
            let (src, src_port) = self.chan_src[id];
            while let Some(vc) = self.channels[id].pop_credit(now) {
                self.routers[src].add_credit(src_port, vc);
            }
        }
        // 4. Switch traversal: ST registers drain onto links / nodes.
        for i in 0..self.active_routers.len() {
            let r = self.active_routers[i];
            let mut st = std::mem::take(&mut self.scratch_st);
            self.routers[r].drain_st(&mut st);
            let net_ports = self.chan_out[r].len();
            for &(port, stf) in &st {
                self.last_progress = now;
                if measuring {
                    report.activity.crossbar_traversals += 1;
                }
                if port < net_ports {
                    let ch = self.chan_out[r][port];
                    if measuring {
                        report.activity.link_flit_hops += 1;
                        report.activity.wire_flit_tiles += self.chan_tiles[ch];
                    }
                    self.channels[ch].push(now, stf.out_vc, stf.flit);
                    self.activate_channel(ch);
                } else {
                    self.eject(stf.flit, measuring, report);
                }
            }
            self.scratch_st = st;
        }
        // 5. Allocation (router pipelines).
        for i in 0..self.active_routers.len() {
            let r = self.active_routers[i];
            if self.routers[r].is_idle() {
                continue; // nothing buffered, nothing to allocate
            }
            let mut res = std::mem::take(&mut self.scratch_alloc);
            {
                let routers = &mut self.routers;
                let arena = &mut self.arena;
                let channels = &self.channels;
                let ports = &self.chan_out[r];
                let ready = |out: usize, vc: usize| channels[ports[out]].can_accept(vc);
                routers[r].alloc_into(
                    now,
                    &self.table,
                    self.concentration,
                    arena,
                    &ready,
                    &mut res,
                );
            }
            if measuring {
                report.activity.record_alloc(&res);
            }
            for idx in 0..res.freed_inputs.len() {
                let (port, vc) = res.freed_inputs[idx];
                let ch = self.chan_in[r][port];
                self.channels[ch].push_credit(now, vc);
                self.activate_channel(ch);
            }
            self.scratch_alloc = res;
        }
        // 6. Injection: one flit per active node per cycle into the
        // router.
        for i in 0..self.active_inj.len() {
            let node = self.active_inj[i];
            let r = node / self.concentration;
            let offset = node % self.concentration;
            let port = self.chan_out[r].len() + offset;
            if self.routers[r].can_deliver(port, 0) {
                let fr = self.inj_queues[node].pop_front().expect("non-empty");
                self.arena.get_mut(fr).injected = now;
                self.routers[r].deliver(port, 0, fr, &mut self.arena);
                self.activate_router(r);
                self.last_progress = now;
                if measuring {
                    report.activity.buffer_writes += 1;
                }
            }
        }
        // Compact the worklists: drop components that went idle. The
        // queued flags are cleared so they can re-enter later.
        let routers = &self.routers;
        let router_queued = &mut self.router_queued;
        self.active_routers.retain(|&r| {
            if routers[r].is_idle() {
                router_queued[r] = false;
                false
            } else {
                true
            }
        });
        let channels = &self.channels;
        let chan_queued = &mut self.chan_queued;
        self.active_channels.retain(|&id| {
            if channels[id].is_idle() {
                chan_queued[id] = false;
                false
            } else {
                true
            }
        });
        let inj_queues = &self.inj_queues;
        let inj_queued = &mut self.inj_queued;
        self.active_inj.retain(|&node| {
            if inj_queues[node].is_empty() {
                inj_queued[node] = false;
                false
            } else {
                true
            }
        });
    }

    /// Hands a flit to its destination node, releasing its arena slot.
    fn eject(&mut self, fr: FlitRef, measuring: bool, report: &mut SimReport) {
        let flit = self.arena.remove(fr);
        if measuring {
            report.activity.ejections += 1;
        }
        if flit.kind.is_tail() {
            if flit.measured {
                self.outstanding = self.outstanding.saturating_sub(1);
                report.record_delivery(
                    self.now - flit.created,
                    u32::from(flit.hops),
                    flit.packet_len,
                );
            }
            if flit.wants_reply && (self.faults.is_empty() || self.pair_online(flit.dst, flit.src))
            {
                // The destination answers with a 6-flit read reply.
                self.push_packet(flit.dst, flit.src, 6, false, flit.measured, report);
            }
        }
    }

    /// `true` when the armed watchdog bound has elapsed with flits live
    /// but unmoving. Checked once per run-loop iteration, after the
    /// cycle's phases — the cheap counter comparison comes first, so a
    /// healthy run pays one subtraction per iteration.
    fn watchdog_expired(&self) -> bool {
        match self.watchdog {
            Some(bound) => self.now - self.last_progress >= bound && !self.arena.is_empty(),
            None => false,
        }
    }

    /// Builds the structured abort diagnostic for a fired watchdog:
    /// every pinned packet head (capped at 64) and the wait-for edge
    /// its buffered head is blocked on. The per-packet scan needs the
    /// edge-buffer datapath; central-buffer runs report the counters
    /// with empty lists.
    fn deadlock_diagnostic(&self) -> DeadlockDiagnostic {
        const CAP: usize = 64;
        let mut diag = DeadlockDiagnostic {
            cycle: self.now,
            last_progress: self.last_progress,
            in_flight_flits: self.arena.len(),
            stuck_packets: Vec::new(),
            wait_for: Vec::new(),
        };
        if !matches!(self.cfg.router_arch, RouterArch::EdgeBuffer) {
            return diag;
        }
        let arena = &self.arena;
        let table = &self.table;
        for r in 0..self.routers.len() {
            let stuck = &mut diag.stuck_packets;
            let waits = &mut diag.wait_for;
            self.routers[r].scan_flits(|fr, st_port| {
                let f = arena.get(fr);
                if !f.kind.is_head() {
                    return;
                }
                if stuck.len() < CAP {
                    stuck.push(StuckPacket {
                        packet: f.packet.0,
                        router: r,
                        dst_router: f.dst_router.index(),
                        in_st: st_port.is_some(),
                    });
                }
                // Buffered heads yield a wait-for edge: the output the
                // table routes them to. ST heads are already committed
                // and heads parked at their target wait for ejection,
                // not a channel.
                let here = RouterId(r);
                let target = RoutingTable::target(f);
                if st_port.is_none()
                    && target != here
                    && table.reachable(here, target)
                    && waits.len() < CAP
                {
                    let d = table.route(here, f, 0, self.cfg.vcs);
                    waits.push(WaitForEdge {
                        from_router: r,
                        port: d.port,
                        vc: d.vc,
                        to_router: table.peer(here, d.port).index(),
                    });
                }
            });
        }
        diag
    }

    /// Total flits currently inside the network (buffers, links, ST) and
    /// injection queues — zero once fully drained. O(1): every in-flight
    /// flit occupies exactly one arena slot.
    #[must_use]
    pub fn in_flight_flits(&self) -> usize {
        debug_assert_eq!(
            self.arena.len(),
            self.recount_in_flight(),
            "arena live count drifted from the structural recount"
        );
        self.arena.len()
    }

    /// Slow structural recount of in-flight flits (debug assertions).
    fn recount_in_flight(&self) -> usize {
        let routers: usize = self.routers.iter().map(RouterCore::buffered_flits).sum();
        let links: usize = self.channels.iter().map(Channel::occupancy).sum();
        let queues: usize = self.inj_queues.iter().map(VecDeque::len).sum();
        routers + links + queues
    }
}

/// Physical output-port index of `r` toward adjacent `peer`. Channel
/// ports follow the sorted neighbor order, so this is a binary search.
fn port_toward(topo: &Topology, r: RouterId, peer: RouterId) -> usize {
    topo.neighbors(r)
        .binary_search(&peer)
        .expect("fault events name adjacent routers (validated)")
}

/// A minimal flit used to probe routing decisions.
fn probe_flit(dst_router: RouterId) -> Flit {
    Flit::nth_of_packet(
        PacketId(u64::MAX),
        0,
        1,
        NodeId(0),
        NodeId(dst_router.index()),
        dst_router,
        0,
        false,
        false,
    )
}

impl Simulator {
    /// Debug helper: where are the in-flight flits stuck?
    #[doc(hidden)]
    pub fn debug_stuck(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (r, router) in self.routers.iter().enumerate() {
            let n = router.buffered_flits();
            if n > 0 {
                let _ = writeln!(
                    out,
                    "router {r}: {} flits buffered; detail: {}",
                    n,
                    router.debug_detail(&self.arena)
                );
            }
        }
        for (id, ch) in self.channels.iter().enumerate() {
            if ch.occupancy() > 0 {
                let (src, port) = self.chan_src[id];
                let _ = writeln!(
                    out,
                    "channel {id} (r{src} port {port}): {} flits",
                    ch.occupancy()
                );
            }
        }
        let q: usize = self.inj_queues.iter().map(|q| q.len()).sum();
        let _ = writeln!(out, "injection queues: {q} flits");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Conformance;
    use snoc_traffic::TraceWorkload;

    fn small_sn() -> Topology {
        Topology::slim_noc(3, 3).unwrap() // 18 routers, 54 nodes
    }

    #[test]
    fn zero_load_latency_is_small_and_packets_flow() {
        let topo = small_sn();
        let mut sim = Simulator::build(&topo, &SimConfig::default()).unwrap();
        let report = sim.run_synthetic(TrafficPattern::Random, 0.02, 1_000, 4_000);
        assert!(report.delivered_packets > 100, "{report}");
        assert!(report.drained, "low load must drain");
        // Zero-load-ish latency: 2 hops * (2 router + 1 link) + 5 flits
        // serialization + injection overhead — comfortably under 30.
        let lat = report.avg_packet_latency();
        assert!(lat > 5.0 && lat < 30.0, "latency {lat}");
        // All packets in a diameter-2 network take at most 2 hops.
        assert!(
            report.avg_hops() <= 2.0 + 1e-9,
            "hops {}",
            report.avg_hops()
        );
    }

    #[test]
    fn flit_conservation_after_drain() {
        let topo = small_sn();
        let mut sim = Simulator::build(&topo, &SimConfig::default()).unwrap();
        let report = sim.run_synthetic(TrafficPattern::Random, 0.05, 500, 2_000);
        assert!(report.drained);
        assert_eq!(sim.in_flight_flits(), 0, "network fully drained");
        assert_eq!(report.delivered_packets, report.injected_packets);
    }

    #[test]
    fn throughput_tracks_offered_load_below_saturation() {
        let topo = small_sn();
        let mut sim = Simulator::build(&topo, &SimConfig::default()).unwrap();
        let rate = 0.10;
        let report = sim.run_synthetic(TrafficPattern::Random, rate, 1_000, 6_000);
        let thpt = report.throughput();
        assert!(
            (thpt - rate).abs() < rate * 0.15,
            "accepted {thpt} vs offered {rate}"
        );
    }

    #[test]
    fn higher_load_means_higher_latency() {
        let topo = small_sn();
        let lat = |rate: f64| {
            let mut sim = Simulator::build(&topo, &SimConfig::default()).unwrap();
            sim.run_synthetic(TrafficPattern::Random, rate, 1_000, 4_000)
                .avg_packet_latency()
        };
        let low = lat(0.02);
        let high = lat(0.25);
        assert!(high > low, "low {low}, high {high}");
    }

    #[test]
    fn mesh_and_torus_work_end_to_end() {
        for topo in [Topology::mesh(4, 4, 2), Topology::torus(4, 4, 2)] {
            let mut sim = Simulator::build(&topo, &SimConfig::default()).unwrap();
            let report = sim.run_synthetic(TrafficPattern::Random, 0.05, 500, 3_000);
            assert!(report.delivered_packets > 50, "{}: {report}", topo.name());
            assert!(report.drained, "{}", topo.name());
        }
    }

    #[test]
    fn pfbf_works_with_four_vcs() {
        let topo = Topology::partitioned_fbf(2, 2, 3, 3, 2);
        let cfg = SimConfig::default().with_vcs(4);
        let mut sim = Simulator::build(&topo, &cfg).unwrap();
        let report = sim.run_synthetic(TrafficPattern::Random, 0.05, 500, 3_000);
        assert!(report.drained, "{report}");
        assert!(report.avg_hops() <= 4.0);
    }

    #[test]
    fn cbr_delivers_and_uses_central_buffer_under_load() {
        let topo = small_sn();
        let mut sim = Simulator::build(&topo, &SimConfig::cbr(20)).unwrap();
        let report = sim.run_synthetic(TrafficPattern::Random, 0.20, 1_000, 4_000);
        assert!(report.delivered_packets > 100, "{report}");
        assert!(
            report.activity.cb_writes > 0,
            "high load must exercise the CB path"
        );
        assert!(
            report.activity.bypasses > 0,
            "bypass path must also be used"
        );
    }

    #[test]
    fn cbr_low_load_mostly_bypasses() {
        let topo = small_sn();
        let mut sim = Simulator::build(&topo, &SimConfig::cbr(20)).unwrap();
        let report = sim.run_synthetic(TrafficPattern::Random, 0.01, 1_000, 4_000);
        assert!(
            report.activity.bypasses > 10 * report.activity.cb_writes.max(1),
            "bypasses {} vs cb writes {}",
            report.activity.bypasses,
            report.activity.cb_writes
        );
    }

    #[test]
    fn cbr_never_deadlocks_across_topologies() {
        // Regression test: two packets' flits must never interleave
        // inside one CB virtual queue (each would wait on the other).
        // ADV1 at moderate load reliably triggered the original bug on
        // every topology within a few hundred cycles.
        for topo in [
            Topology::mesh(6, 6, 2),
            Topology::torus(6, 6, 2),
            Topology::slim_noc(5, 4).unwrap(),
            Topology::partitioned_fbf(2, 2, 3, 3, 2),
        ] {
            let vcs = if matches!(
                topo.kind(),
                snoc_topology::TopologyKind::PartitionedFbf { .. }
            ) {
                4
            } else {
                2
            };
            let cfg = SimConfig::cbr(20).with_vcs(vcs);
            let mut sim = Simulator::build(&topo, &cfg).unwrap();
            let report = sim.run_synthetic(TrafficPattern::Adversarial1, 0.02, 300, 2_000);
            assert!(report.drained, "{}: {report}", topo.name());
            assert_eq!(
                report.delivered_packets,
                report.injected_packets,
                "{}",
                topo.name()
            );
            assert_eq!(sim.in_flight_flits(), 0, "{}", topo.name());
        }
    }

    #[test]
    fn activity_counters_satisfy_structural_invariants() {
        // Edge-buffer routers: every ST flit either crossed a link or
        // ejected, every grant popped one buffered flit, and links are
        // at least one tile long.
        let topo = small_sn();
        let mut sim = Simulator::build(&topo, &SimConfig::default()).unwrap();
        let report = sim.run_synthetic(TrafficPattern::Random, 0.08, 500, 3_000);
        let a = &report.activity;
        assert!(a.crossbar_traversals > 0);
        assert_eq!(a.crossbar_traversals, a.link_flit_hops + a.ejections);
        assert!(a.wire_flit_tiles >= a.link_flit_hops);
        assert_eq!(a.alloc_grants, a.buffer_accesses, "edge: grant == pop");
        assert_eq!(a.buffer_reads, a.buffer_accesses, "edge: read == pop");
        // Reads and writes pair up, modulo flits straddling the window
        // edges (written before the window opens, read after it closes).
        let (reads, writes) = (a.buffer_reads as f64, a.buffer_writes as f64);
        assert!(writes > 0.0);
        assert!(
            (reads - writes).abs() / writes < 0.05,
            "reads {reads} vs writes {writes}"
        );
    }

    #[test]
    fn cbr_activity_counters_satisfy_structural_invariants() {
        let topo = small_sn();
        let mut sim = Simulator::build(&topo, &SimConfig::cbr(20)).unwrap();
        let report = sim.run_synthetic(TrafficPattern::Random, 0.15, 500, 3_000);
        let a = &report.activity;
        assert_eq!(a.crossbar_traversals, a.link_flit_hops + a.ejections);
        assert_eq!(
            a.alloc_grants,
            a.bypasses + a.cb_reads + a.cb_writes,
            "CBR: every grant is a bypass, CB read, or CB write"
        );
        assert_eq!(a.buffer_accesses, 0, "CBR has no edge buffers");
        assert_eq!(a.buffer_reads, a.bypasses + a.cb_writes, "staging takes");
        assert!(a.buffer_writes > 0);
    }

    #[test]
    fn elastic_links_deliver() {
        let topo = small_sn();
        let mut sim = Simulator::build(&topo, &SimConfig::elastic_links()).unwrap();
        let report = sim.run_synthetic(TrafficPattern::Random, 0.05, 500, 3_000);
        assert!(report.drained, "{report}");
        assert!(report.delivered_packets > 100);
    }

    #[test]
    fn smart_reduces_latency_with_layout() {
        use snoc_layout::SnLayout;
        let topo = Topology::slim_noc(5, 4).unwrap();
        let layout = Layout::slim_noc(&topo, SnLayout::Subgroup).unwrap();
        let run = |smart: bool| {
            let cfg = if smart {
                SimConfig::default().with_smart()
            } else {
                SimConfig::default()
            };
            let mut sim = Simulator::build_with_layout(&topo, &layout, &cfg).unwrap();
            sim.run_synthetic(TrafficPattern::Random, 0.03, 1_000, 4_000)
                .avg_packet_latency()
        };
        let no_smart = run(false);
        let smart = run(true);
        assert!(
            smart < no_smart,
            "SMART {smart} must beat no-SMART {no_smart}"
        );
    }

    #[test]
    fn adversarial_pattern_saturates_before_random() {
        let topo = small_sn();
        let run = |pattern| {
            let mut sim = Simulator::build(&topo, &SimConfig::default()).unwrap();
            sim.run_synthetic(pattern, 0.30, 1_000, 3_000)
        };
        let rnd = run(TrafficPattern::Random);
        let adv = run(TrafficPattern::Adversarial1);
        assert!(
            adv.throughput() < rnd.throughput(),
            "ADV1 {} vs RND {}",
            adv.throughput(),
            rnd.throughput()
        );
    }

    #[test]
    fn trace_run_generates_replies() {
        let topo = small_sn();
        let workload = TraceWorkload::by_name("canneal").unwrap();
        let trace = workload.generate(&topo, 3_000, 42);
        let reads = trace.iter().filter(|m| m.kind.expects_reply()).count() as u64;
        let mut sim = Simulator::build(&topo, &SimConfig::default()).unwrap();
        let report = sim.run_trace(&trace, 300);
        assert!(report.drained, "{report}");
        // Replies roughly double the read packet count (only measured
        // packets are counted, so compare loosely).
        assert!(
            report.delivered_packets as f64 > trace.len() as f64 * 0.8,
            "delivered {} of {} trace messages (+{} replies)",
            report.delivered_packets,
            trace.len(),
            reads
        );
    }

    #[test]
    fn ugal_runs_and_delivers() {
        let topo = Topology::slim_noc(3, 3).unwrap();
        for kind in [RoutingKind::UgalL, RoutingKind::UgalG] {
            let cfg = SimConfig::default().with_vcs(4).with_routing(kind);
            let mut sim = Simulator::build(&topo, &cfg).unwrap();
            let report = sim.run_synthetic(TrafficPattern::Random, 0.08, 500, 3_000);
            assert!(report.drained, "{kind:?}: {report}");
            assert!(report.delivered_packets > 100, "{kind:?}");
        }
    }

    #[test]
    fn ugal_takes_nonminimal_paths_under_adversarial_load() {
        // ADV1 on slim_noc(3, 3) maps each router's 3 nodes onto one
        // victim router, so minimal routing caps at 1/3 flit/node/cycle
        // (one shared link); rate 0.60 drives it well past that knee.
        let topo = Topology::slim_noc(3, 3).unwrap();
        let run = |routing| {
            let cfg = SimConfig::default().with_vcs(4).with_routing(routing);
            let mut sim = Simulator::build(&topo, &cfg).unwrap();
            sim.run_synthetic(TrafficPattern::Adversarial1, 0.60, 1_000, 4_000)
        };
        let min = run(RoutingKind::Minimal);
        let ugal_l = run(RoutingKind::UgalL);
        let ugal_g = run(RoutingKind::UgalG);
        // Valiant detours lengthen paths for both UGAL variants.
        for (name, r) in [("UGAL-L", &ugal_l), ("UGAL-G", &ugal_g)] {
            assert!(
                r.avg_hops() > min.avg_hops() + 0.05,
                "{name} hops {} vs MIN hops {} suggests no detours",
                r.avg_hops(),
                min.avg_hops()
            );
        }
        // Only global congestion knowledge converts detours into
        // throughput here: UGAL-L's diverted packets queue behind
        // victim-bound heads in the per-node FIFO injection queues
        // (head-of-line blocking), so on this tiny saturated network it
        // tracks MIN instead of beating it.
        assert!(
            ugal_g.throughput() > min.throughput(),
            "UGAL-G throughput {} should beat MIN {} under adversarial load",
            ugal_g.throughput(),
            min.throughput()
        );
        assert!(
            ugal_l.throughput() > min.throughput() * 0.9,
            "UGAL-L throughput {} collapsed vs MIN {}",
            ugal_l.throughput(),
            min.throughput()
        );
    }

    #[test]
    fn xy_adaptive_on_fbf() {
        let topo = Topology::flattened_butterfly(4, 4, 2);
        let cfg = SimConfig::default().with_routing(RoutingKind::XyAdaptive);
        let mut sim = Simulator::build(&topo, &cfg).unwrap();
        let report = sim.run_synthetic(TrafficPattern::Random, 0.10, 500, 3_000);
        assert!(report.drained, "{report}");
        assert!(report.avg_hops() <= 2.0 + 1e-9);
    }

    #[test]
    fn variable_rtt_buffers_require_layout() {
        let topo = small_sn();
        assert!(Simulator::build(&topo, &SimConfig::eb_var()).is_err());
        let layout = Layout::natural(&topo);
        assert!(Simulator::build_with_layout(&topo, &layout, &SimConfig::eb_var()).is_ok());
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let topo = small_sn();
        let run = |seed: u64| {
            let cfg = SimConfig::default().with_seed(seed);
            let mut sim = Simulator::build(&topo, &cfg).unwrap();
            sim.run_synthetic(TrafficPattern::Random, 0.05, 500, 2_000)
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn saturation_rejects_excess_offered_load() {
        let topo = small_sn();
        let mut sim = Simulator::build(&topo, &SimConfig::default()).unwrap();
        let report = sim.run_synthetic(TrafficPattern::Random, 0.9, 1_000, 3_000);
        assert!(
            report.acceptance() < 1.0 || !report.drained,
            "0.9 flits/node/cycle must exceed capacity: {report}"
        );
    }

    #[test]
    fn zero_rate_fast_forwards_to_the_window_end() {
        let topo = small_sn();
        let mut sim = Simulator::build(&topo, &SimConfig::default()).unwrap();
        let report = sim.run_synthetic(TrafficPattern::Random, 0.0, 1_000, 50_000);
        assert_eq!(report.total_cycles, 51_000, "clock lands on the boundary");
        assert_eq!(report.delivered_packets, 0);
        assert!(report.drained);
    }

    #[test]
    fn fault_plan_requires_supported_envelope() {
        let topo = small_sn();
        let plan = FaultPlan::storm(&topo, 2, 100, 100, 1);
        let mut cbr = Simulator::build(&topo, &SimConfig::cbr(20)).unwrap();
        assert!(cbr.set_fault_plan(&plan).is_err(), "CBR unsupported");
        let mut elastic = Simulator::build(&topo, &SimConfig::elastic_links()).unwrap();
        assert!(
            elastic.set_fault_plan(&plan).is_err(),
            "elastic unsupported"
        );
        let mut ok = Simulator::build(&topo, &SimConfig::default()).unwrap();
        assert!(ok.set_fault_plan(&plan).is_ok());
        assert!(
            cbr.set_fault_plan(&FaultPlan::default()).is_ok(),
            "the empty plan is fine anywhere"
        );
    }

    #[test]
    fn link_storm_drops_and_self_heals() {
        let topo = small_sn();
        let mut sim = Simulator::build(&topo, &SimConfig::default()).unwrap();
        let plan = FaultPlan::storm(&topo, 8, 1_200, 800, 42);
        sim.set_fault_plan(&plan).unwrap();
        let report = sim.run_synthetic(TrafficPattern::Random, 0.10, 1_000, 4_000);
        assert!(
            report.dropped_packets > 0,
            "a storm under load must catch flits in flight: {report}"
        );
        assert!(report.drained, "self-healed network must drain");
        assert_eq!(
            report.delivered_packets + report.dropped_packets,
            report.injected_packets,
            "extended conservation: delivered + dropped == injected"
        );
        assert_eq!(sim.in_flight_flits(), 0);
        assert!(report.activity.dropped_flits >= report.dropped_packets);
        report.snapshot().check_conservation().unwrap();
    }

    #[test]
    fn fault_runs_identical_with_skip_on_and_off() {
        let topo = small_sn();
        let plan = FaultPlan::storm(&topo, 6, 800, 1_500, 9);
        let run = |skip: bool| {
            let mut sim = Simulator::build(&topo, &SimConfig::default()).unwrap();
            sim.set_cycle_skipping(skip);
            sim.set_fault_plan(&plan).unwrap();
            sim.run_synthetic(TrafficPattern::Random, 0.06, 500, 3_000)
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on.to_json(), off.to_json(), "byte-identical reports");
        assert!(on.dropped_packets > 0, "the run actually exercised drops");
    }

    #[test]
    fn severed_partition_quiesces_instead_of_wedging() {
        // Cutting the middle link of a 1×3 mesh line strands router 2:
        // everything in flight across the cut dies, later traffic to or
        // from the island is quiesced, and the rest still drains.
        let topo = Topology::mesh(3, 1, 1);
        let mut sim = Simulator::build(&topo, &SimConfig::default()).unwrap();
        let plan = FaultPlan::new(vec![FaultEvent {
            cycle: 600,
            kind: FaultKind::LinkDown {
                a: RouterId(1),
                b: RouterId(2),
            },
        }]);
        sim.set_fault_plan(&plan).unwrap();
        let report = sim.run_synthetic(TrafficPattern::Random, 0.10, 400, 2_000);
        assert!(report.drained, "{report}");
        assert_eq!(
            report.delivered_packets + report.dropped_packets,
            report.injected_packets
        );
        assert_eq!(sim.in_flight_flits(), 0);
        assert!(report.delivered_packets > 0, "0 -- 1 traffic still flows");
    }

    #[test]
    fn router_down_kills_its_traffic_but_the_rest_drains() {
        let topo = small_sn();
        let mut sim = Simulator::build(&topo, &SimConfig::default()).unwrap();
        let plan = FaultPlan::new(vec![FaultEvent {
            cycle: 900,
            kind: FaultKind::RouterDown {
                router: RouterId(4),
            },
        }]);
        sim.set_fault_plan(&plan).unwrap();
        let report = sim.run_synthetic(TrafficPattern::Random, 0.08, 500, 2_500);
        assert!(report.drained, "{report}");
        assert_eq!(
            report.delivered_packets + report.dropped_packets,
            report.injected_packets
        );
        assert_eq!(sim.in_flight_flits(), 0);
        report.snapshot().check_conservation().unwrap();
    }

    #[test]
    fn idle_faults_do_not_change_the_clock_path() {
        // Fault events during a dead window are wake-ups for the
        // cycle-skipper but drop nothing and leave the boundary exact.
        let topo = small_sn();
        let mut sim = Simulator::build(&topo, &SimConfig::default()).unwrap();
        let plan = FaultPlan::storm(&topo, 3, 10_000, 5_000, 3);
        sim.set_fault_plan(&plan).unwrap();
        let report = sim.run_synthetic(TrafficPattern::Random, 0.0, 1_000, 50_000);
        assert_eq!(report.total_cycles, 51_000);
        assert_eq!(report.dropped_packets, 0);
        assert!(report.drained);
        assert!(
            !report.to_json().contains("dropped"),
            "clean JSON stays clean"
        );
    }
}
