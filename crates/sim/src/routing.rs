//! Routing: deterministic minimal tables with hop-indexed VCs, and
//! dimension-order routing with dateline VCs for meshes and tori.
//!
//! The paper uses static minimum routing computed with Dijkstra (§5.1);
//! on unit-weight router graphs BFS yields identical paths. Deadlock
//! freedom follows the paper's §4.3 scheme: a packet on hop `h` uses
//! VC `min(h, |VC|−1)`, so VC dependencies only increase and cannot
//! cycle as long as `|VC|` is at least the maximal hop count. For tori,
//! hop-indexed VCs do not cut the ring cycles, so dimension-order
//! routing with a dateline VC switch is used instead.

use crate::flit::Flit;
use snoc_topology::{RouterId, Topology, TopologyKind};

/// The output chosen for a flit at a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteDecision {
    /// Output port (index into the router's neighbor list).
    pub port: usize,
    /// Output virtual channel.
    pub vc: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Strategy {
    /// BFS minimal next hops with hop-indexed VCs.
    Table,
    /// Dimension-order (X then Y) on a mesh grid: deadlock-free with any
    /// VC count; VCs are hop-indexed for consistency.
    DorMesh { x_dim: usize },
    /// Dimension-order with dateline VC switch on a torus.
    DorTorus { x_dim: usize, y_dim: usize },
}

/// Precomputed routing state for one topology.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    strategy: Strategy,
    /// `dist[a][b]` = hop distance between routers.
    dist: Vec<Vec<u16>>,
    /// `next_port[cur][dst]` = output port of the chosen minimal path
    /// (unused for DOR strategies).
    next_port: Vec<Vec<u16>>,
    /// `port_of[cur]` maps neighbor router id -> port, stored as the
    /// sorted neighbor list (ports are positions in it).
    neighbors: Vec<Vec<RouterId>>,
}

impl RoutingTable {
    /// Builds the minimal routing table for a topology.
    #[must_use]
    pub fn minimal(topo: &Topology) -> Self {
        let nr = topo.router_count();
        let neighbors: Vec<Vec<RouterId>> =
            topo.routers().map(|r| topo.neighbors(r).to_vec()).collect();
        let mut dist = vec![vec![0u16; nr]; nr];
        for r in topo.routers() {
            let d = topo.distances_from(r);
            for (j, &dj) in d.iter().enumerate() {
                assert!(dj != usize::MAX, "disconnected topology");
                dist[r.index()][j] = dj as u16;
            }
        }
        let strategy = match topo.kind() {
            TopologyKind::Mesh { x, .. } => Strategy::DorMesh { x_dim: *x },
            TopologyKind::Torus { x, y } => Strategy::DorTorus {
                x_dim: *x,
                y_dim: *y,
            },
            _ => Strategy::Table,
        };
        let mut next_port = vec![vec![0u16; nr]; nr];
        if strategy == Strategy::Table {
            for cur in 0..nr {
                for dst in 0..nr {
                    if cur == dst {
                        continue;
                    }
                    // Minimal next hops; tie broken by a (cur, dst) hash so
                    // different pairs spread over the candidates.
                    let want = dist[cur][dst] - 1;
                    let candidates: Vec<usize> = neighbors[cur]
                        .iter()
                        .enumerate()
                        .filter(|(_, n)| dist[n.index()][dst] == want)
                        .map(|(port, _)| port)
                        .collect();
                    assert!(!candidates.is_empty(), "minimal path must exist");
                    let pick = (cur.wrapping_mul(31).wrapping_add(dst.wrapping_mul(17)))
                        % candidates.len();
                    next_port[cur][dst] = candidates[pick] as u16;
                }
            }
        }
        RoutingTable {
            strategy,
            dist,
            next_port,
            neighbors,
        }
    }

    /// Hop distance between two routers.
    #[must_use]
    pub fn distance(&self, a: RouterId, b: RouterId) -> usize {
        self.dist[a.index()][b.index()] as usize
    }

    /// Number of router-to-router ports at `r`.
    #[must_use]
    pub fn port_count(&self, r: RouterId) -> usize {
        self.neighbors[r.index()].len()
    }

    /// The neighbor reached through `port` of router `r`.
    ///
    /// # Panics
    ///
    /// Panics if the port is out of range.
    #[must_use]
    pub fn peer(&self, r: RouterId, port: usize) -> RouterId {
        self.neighbors[r.index()][port]
    }

    /// The port of `cur` that leads to the adjacent router `next`.
    ///
    /// # Panics
    ///
    /// Panics if the routers are not adjacent.
    #[must_use]
    pub fn port_to(&self, cur: RouterId, next: RouterId) -> usize {
        self.neighbors[cur.index()]
            .binary_search(&next)
            .expect("routers must be adjacent")
    }

    /// The routing target of a flit, honoring a not-yet-reached Valiant
    /// intermediate.
    #[must_use]
    pub fn target(flit: &Flit) -> RouterId {
        match flit.intermediate {
            Some(mid) if !flit.intermediate_done => mid,
            _ => flit.dst_router,
        }
    }

    /// Routes a flit at router `cur`: returns the output port and VC.
    ///
    /// # Panics
    ///
    /// Panics if the flit is already at its destination router.
    #[must_use]
    pub fn route(&self, cur: RouterId, flit: &Flit, in_vc: usize, vcs: usize) -> RouteDecision {
        let dst = Self::target(flit);
        assert_ne!(cur, dst, "flit already at target");
        match self.strategy {
            Strategy::Table => {
                let port = self.next_port[cur.index()][dst.index()] as usize;
                let vc = (flit.hops as usize).min(vcs - 1);
                RouteDecision { port, vc }
            }
            Strategy::DorMesh { x_dim } => {
                let next = dor_next_mesh(cur, dst, x_dim);
                RouteDecision {
                    port: self.port_to(cur, next),
                    vc: (flit.hops as usize).min(vcs - 1),
                }
            }
            Strategy::DorTorus { x_dim, y_dim } => {
                let _ = in_vc;
                let (next, vc) = dor_next_torus(cur, dst, x_dim, y_dim);
                RouteDecision {
                    port: self.port_to(cur, next),
                    vc: vc.min(vcs - 1),
                }
            }
        }
    }
}

/// Dimension-order next hop on a mesh (X first, then Y).
fn dor_next_mesh(cur: RouterId, dst: RouterId, x_dim: usize) -> RouterId {
    let (cx, cy) = (cur.index() % x_dim, cur.index() / x_dim);
    let (dx, dy) = (dst.index() % x_dim, dst.index() / x_dim);
    if cx != dx {
        let nx = if dx > cx { cx + 1 } else { cx - 1 };
        RouterId(cy * x_dim + nx)
    } else {
        let ny = if dy > cy { cy + 1 } else { cy - 1 };
        RouterId(ny * x_dim + cx)
    }
}

/// Dimension-order next hop on a torus, with the dateline VC.
///
/// Within a ring, the route direction is fixed (the shorter way; ties go
/// forward) and the VC is computed statelessly: going forward (+), a hop
/// made from a position past the destination (`cur > dst`) precedes the
/// wrap edge and uses VC0, anything else uses VC1 (mirrored for the −
/// direction). This breaks both ring dependency cycles: the VC0 chain
/// never contains the edge 0 → 1 (a hop from 0 going + always has
/// `cur < dst`), and VC1 traffic never crosses the wrap edge.
fn dor_next_torus(cur: RouterId, dst: RouterId, x_dim: usize, y_dim: usize) -> (RouterId, usize) {
    let (cx, cy) = (cur.index() % x_dim, cur.index() / x_dim);
    let (dx, dy) = (dst.index() % x_dim, dst.index() / x_dim);
    if cx != dx {
        let (nx, vc) = ring_step(cx, dx, x_dim);
        (RouterId(cy * x_dim + nx), vc)
    } else {
        let (ny, vc) = ring_step(cy, dy, y_dim);
        (RouterId(ny * x_dim + cx), vc)
    }
}

/// One step along a ring from `c` toward `d`: returns (next index, VC).
fn ring_step(c: usize, d: usize, dim: usize) -> (usize, usize) {
    let fwd = (d + dim - c) % dim;
    let go_fwd = fwd <= dim - fwd; // shorter way; tie -> forward
    if go_fwd {
        let n = (c + 1) % dim;
        let vc = usize::from(c < d); // pre-wrap segment (c > d) on VC0
        (n, vc)
    } else {
        let n = (c + dim - 1) % dim;
        let vc = usize::from(c > d);
        (n, vc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{Flit, PacketId};
    use snoc_topology::{NodeId, Topology};

    fn flit_to(dst_router: RouterId) -> Flit {
        Flit::packet(
            PacketId(0),
            NodeId(0),
            NodeId(dst_router.index()),
            dst_router,
            1,
            0,
            true,
            false,
        )[0]
    }

    /// Walks a flit from `src` to `dst`, returning the hop count.
    fn walk(topo: &Topology, table: &RoutingTable, src: RouterId, dst: RouterId) -> usize {
        let mut cur = src;
        let mut f = flit_to(dst);
        let mut vc = 0usize;
        let mut hops = 0;
        while cur != dst {
            let d = table.route(cur, &f, vc, 2);
            cur = table.peer(cur, d.port);
            vc = d.vc;
            f.hops += 1;
            hops += 1;
            assert!(hops <= topo.router_count(), "routing loop");
        }
        hops
    }

    #[test]
    fn minimal_paths_on_slim_noc() {
        let t = Topology::slim_noc(5, 1).unwrap();
        let table = RoutingTable::minimal(&t);
        for src in t.routers().step_by(7) {
            for dst in t.routers() {
                if src == dst {
                    continue;
                }
                let hops = walk(&t, &table, src, dst);
                assert_eq!(hops, table.distance(src, dst), "{src} -> {dst}");
                assert!(hops <= 2, "diameter-2 network");
            }
        }
    }

    #[test]
    fn minimal_paths_on_pfbf() {
        let t = Topology::partitioned_fbf(2, 2, 4, 4, 3);
        let table = RoutingTable::minimal(&t);
        for src in t.routers().step_by(5) {
            for dst in t.routers().step_by(3) {
                if src == dst {
                    continue;
                }
                assert_eq!(walk(&t, &table, src, dst), table.distance(src, dst));
            }
        }
    }

    #[test]
    fn dor_mesh_routes_x_first() {
        let t = Topology::mesh(4, 4, 1);
        let table = RoutingTable::minimal(&t);
        // From (0,0) to (2,2): the first hop must go +x to router 1.
        let f = flit_to(RouterId(10));
        let d = table.route(RouterId(0), &f, 0, 2);
        assert_eq!(table.peer(RouterId(0), d.port), RouterId(1));
        assert_eq!(walk(&t, &table, RouterId(0), RouterId(10)), 4);
    }

    #[test]
    fn dor_torus_uses_wraparound() {
        let t = Topology::torus(6, 1, 1);
        let table = RoutingTable::minimal(&t);
        // 0 -> 5 is one hop across the wrap link.
        assert_eq!(walk(&t, &table, RouterId(0), RouterId(5)), 1);
        // 0 -> 3 is three hops either way.
        assert_eq!(walk(&t, &table, RouterId(0), RouterId(3)), 3);
    }

    #[test]
    fn torus_dateline_switches_vc() {
        let t = Topology::torus(6, 1, 1);
        let table = RoutingTable::minimal(&t);
        // Route 5 -> 1 goes forward through the wrap edge. The pre-wrap
        // hop (5 -> 0, cur > dst) uses VC0; once past the wrap (0 -> 1,
        // cur < dst) the packet moves to VC1.
        let f = flit_to(RouterId(1));
        let d = table.route(RouterId(5), &f, 0, 2);
        assert_eq!(table.peer(RouterId(5), d.port), RouterId(0));
        assert_eq!(d.vc, 0, "pre-wrap segment on VC0");
        let d2 = table.route(RouterId(0), &f, 0, 2);
        assert_eq!(table.peer(RouterId(0), d2.port), RouterId(1));
        assert_eq!(d2.vc, 1, "post-wrap segment on VC1");
        // The VC0 chain is broken at edge 0 -> 1: a forward hop from 0
        // always has cur < dst and therefore uses VC1.
        for dst in 1..=3 {
            let dd = table.route(RouterId(0), &flit_to(RouterId(dst)), 0, 2);
            assert_eq!(dd.vc, 1, "0 -> {dst}");
        }
    }

    #[test]
    fn hop_indexed_vcs_on_table_strategy() {
        let t = Topology::slim_noc(3, 1).unwrap();
        let table = RoutingTable::minimal(&t);
        // Find a distance-2 pair and check VC increments with hops.
        let (src, dst) = t
            .routers()
            .flat_map(|a| t.routers().map(move |b| (a, b)))
            .find(|&(a, b)| table.distance(a, b) == 2)
            .expect("diameter 2");
        let mut f = flit_to(dst);
        let d1 = table.route(src, &f, 0, 2);
        assert_eq!(d1.vc, 0, "first hop on VC0");
        f.hops = 1;
        let mid = table.peer(src, d1.port);
        let d2 = table.route(mid, &f, 0, 2);
        assert_eq!(d2.vc, 1, "second hop on VC1");
    }

    #[test]
    fn valiant_intermediate_target() {
        let mut f = flit_to(RouterId(9));
        assert_eq!(RoutingTable::target(&f), RouterId(9));
        f.intermediate = Some(RouterId(4));
        assert_eq!(RoutingTable::target(&f), RouterId(4));
        f.intermediate_done = true;
        assert_eq!(RoutingTable::target(&f), RouterId(9));
    }

    #[test]
    fn port_mappings_are_consistent() {
        let t = Topology::slim_noc(5, 1).unwrap();
        let table = RoutingTable::minimal(&t);
        for r in t.routers() {
            for port in 0..table.port_count(r) {
                let peer = table.peer(r, port);
                assert_eq!(table.port_to(r, peer), port);
                assert!(table.port_to(peer, r) < table.port_count(peer));
            }
        }
    }
}
