//! Routing: deterministic minimal tables with hop-indexed VCs, and
//! dimension-order routing with dateline VCs for meshes and tori.
//!
//! The paper uses static minimum routing computed with Dijkstra (§5.1);
//! on unit-weight router graphs BFS yields identical paths. Deadlock
//! freedom follows the paper's §4.3 scheme: a packet on hop `h` uses
//! VC `min(h, |VC|−1)`, so VC dependencies only increase and cannot
//! cycle as long as `|VC|` is at least the maximal hop count. For tori,
//! hop-indexed VCs do not cut the ring cycles, so dimension-order
//! routing with a dateline VC switch is used instead.
//!
//! All strategies are fully precomputed at construction time: `route`
//! is two flat-array loads (`next_port[cur * nr + dst]` plus the VC
//! table or the hop counter), so the per-flit per-hop cost in the
//! simulator's cycle loop is a couple of cache hits, never a
//! recomputation.

use crate::flit::Flit;
use snoc_topology::{RouterId, Topology, TopologyKind};

/// The output chosen for a flit at a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteDecision {
    /// Output port (index into the router's neighbor list).
    pub port: usize,
    /// Output virtual channel.
    pub vc: usize,
}

/// Precomputed routing state for one topology.
///
/// `dist` and `next_port` are row-major `nr × nr` matrices flattened
/// into contiguous arrays (`[cur * nr + dst]`); `route_vc` is the
/// per-pair dateline VC for tori (`None` means hop-indexed VCs).
#[derive(Debug, Clone)]
pub struct RoutingTable {
    nr: usize,
    /// `dist[a * nr + b]` = hop distance between routers.
    dist: Vec<u16>,
    /// `next_port[cur * nr + dst]` = output port of the chosen path.
    next_port: Vec<u16>,
    /// Dateline VC per `(cur, dst)` pair (tori only).
    route_vc: Option<Vec<u8>>,
    /// `neighbors[cur]` is the sorted neighbor list (ports are positions
    /// in it).
    neighbors: Vec<Vec<RouterId>>,
}

impl RoutingTable {
    /// Builds the minimal routing table for a topology.
    #[must_use]
    pub fn minimal(topo: &Topology) -> Self {
        let nr = topo.router_count();
        let neighbors: Vec<Vec<RouterId>> =
            topo.routers().map(|r| topo.neighbors(r).to_vec()).collect();
        let mut dist = vec![0u16; nr * nr];
        for r in topo.routers() {
            let d = topo.distances_from(r);
            for (j, &dj) in d.iter().enumerate() {
                assert!(dj != usize::MAX, "disconnected topology");
                dist[r.index() * nr + j] = dj as u16;
            }
        }
        let mut next_port = vec![0u16; nr * nr];
        let mut route_vc = None;
        match topo.kind() {
            TopologyKind::Mesh { x, .. } => {
                let x_dim = *x;
                for cur in 0..nr {
                    for dst in 0..nr {
                        if cur == dst {
                            continue;
                        }
                        let next = dor_next_mesh(RouterId(cur), RouterId(dst), x_dim);
                        next_port[cur * nr + dst] = port_of(&neighbors, cur, next) as u16;
                    }
                }
            }
            TopologyKind::Torus { x, y } => {
                let (x_dim, y_dim) = (*x, *y);
                let mut vcs = vec![0u8; nr * nr];
                for cur in 0..nr {
                    for dst in 0..nr {
                        if cur == dst {
                            continue;
                        }
                        let (next, vc) = dor_next_torus(RouterId(cur), RouterId(dst), x_dim, y_dim);
                        next_port[cur * nr + dst] = port_of(&neighbors, cur, next) as u16;
                        vcs[cur * nr + dst] = vc as u8;
                    }
                }
                route_vc = Some(vcs);
            }
            _ => {
                for cur in 0..nr {
                    for dst in 0..nr {
                        if cur == dst {
                            continue;
                        }
                        // Minimal next hops; tie broken by a (cur, dst)
                        // hash so different pairs spread over the
                        // candidates (two passes, no allocation).
                        let want = dist[cur * nr + dst] - 1;
                        let count = neighbors[cur]
                            .iter()
                            .filter(|n| dist[n.index() * nr + dst] == want)
                            .count();
                        assert!(count > 0, "minimal path must exist");
                        let pick =
                            (cur.wrapping_mul(31).wrapping_add(dst.wrapping_mul(17))) % count;
                        let port = neighbors[cur]
                            .iter()
                            .enumerate()
                            .filter(|(_, n)| dist[n.index() * nr + dst] == want)
                            .nth(pick)
                            .map(|(port, _)| port)
                            .expect("pick < count");
                        next_port[cur * nr + dst] = port as u16;
                    }
                }
            }
        }
        RoutingTable {
            nr,
            dist,
            next_port,
            route_vc,
            neighbors,
        }
    }

    /// Rebuilds a minimal table over the subgraph surviving a set of
    /// faults: a link is usable iff `link_alive` holds and both of its
    /// endpoint routers are marked alive.
    ///
    /// Ports keep their original numbering (positions in the full
    /// sorted neighbor list), so the simulator's channel indices stay
    /// valid — only next-hop choices change. Every topology kind falls
    /// back to the BFS table strategy with the documented
    /// `(cur·31 + dst·17) mod candidates` tie-break over the surviving
    /// minimal candidates and hop-indexed VCs: dimension-order tables
    /// cannot route around a dead link, and hop-indexed VCs remain
    /// cycle-free on the repaired paths for the same reason as on the
    /// irregular topologies. Unreachable pairs get `u16::MAX`
    /// sentinels in `dist` and `next_port`; callers must consult
    /// [`RoutingTable::reachable`] before routing toward a pair.
    #[must_use]
    pub fn degraded<F>(topo: &Topology, router_alive: &[bool], mut link_alive: F) -> Self
    where
        F: FnMut(RouterId, RouterId) -> bool,
    {
        let nr = topo.router_count();
        let neighbors: Vec<Vec<RouterId>> =
            topo.routers().map(|r| topo.neighbors(r).to_vec()).collect();
        // usable[cur][port]: may a flit leave `cur` through `port`?
        let usable: Vec<Vec<bool>> = (0..nr)
            .map(|cur| {
                neighbors[cur]
                    .iter()
                    .map(|&n| {
                        router_alive[cur] && router_alive[n.index()] && link_alive(RouterId(cur), n)
                    })
                    .collect()
            })
            .collect();
        let alive_adj: Vec<Vec<RouterId>> = (0..nr)
            .map(|cur| {
                neighbors[cur]
                    .iter()
                    .zip(&usable[cur])
                    .filter(|&(_, &ok)| ok)
                    .map(|(&n, _)| n)
                    .collect()
            })
            .collect();
        let mut dist = vec![u16::MAX; nr * nr];
        for cur in 0..nr {
            let d = snoc_topology::bfs_distances(nr, RouterId(cur), |r| &alive_adj[r.index()][..]);
            for (j, &dj) in d.iter().enumerate() {
                if dj != usize::MAX {
                    dist[cur * nr + j] = dj as u16;
                }
            }
        }
        let mut next_port = vec![u16::MAX; nr * nr];
        for cur in 0..nr {
            for dst in 0..nr {
                if cur == dst || dist[cur * nr + dst] == u16::MAX {
                    continue;
                }
                let want = dist[cur * nr + dst] - 1;
                let candidate = |(_, (n, ok)): &(usize, (&RouterId, &bool))| {
                    **ok && dist[n.index() * nr + dst] == want
                };
                let count = neighbors[cur]
                    .iter()
                    .zip(&usable[cur])
                    .enumerate()
                    .filter(candidate)
                    .count();
                assert!(count > 0, "reachable pair must have a next hop");
                let pick = (cur.wrapping_mul(31).wrapping_add(dst.wrapping_mul(17))) % count;
                let port = neighbors[cur]
                    .iter()
                    .zip(&usable[cur])
                    .enumerate()
                    .filter(candidate)
                    .nth(pick)
                    .map(|(port, _)| port)
                    .expect("pick < count");
                next_port[cur * nr + dst] = port as u16;
            }
        }
        RoutingTable {
            nr,
            dist,
            next_port,
            route_vc: None,
            neighbors,
        }
    }

    /// `true` if the table has a path from `a` to `b` (always true for
    /// [`RoutingTable::minimal`] tables; [`RoutingTable::degraded`]
    /// tables mark severed pairs with a `u16::MAX` distance sentinel).
    #[must_use]
    pub fn reachable(&self, a: RouterId, b: RouterId) -> bool {
        self.dist[a.index() * self.nr + b.index()] != u16::MAX
    }

    /// Hop distance between two routers.
    #[must_use]
    pub fn distance(&self, a: RouterId, b: RouterId) -> usize {
        self.dist[a.index() * self.nr + b.index()] as usize
    }

    /// Number of router-to-router ports at `r`.
    #[must_use]
    pub fn port_count(&self, r: RouterId) -> usize {
        self.neighbors[r.index()].len()
    }

    /// The neighbor reached through `port` of router `r`.
    ///
    /// # Panics
    ///
    /// Panics if the port is out of range.
    #[must_use]
    pub fn peer(&self, r: RouterId, port: usize) -> RouterId {
        self.neighbors[r.index()][port]
    }

    /// The port of `cur` that leads to the adjacent router `next`.
    ///
    /// # Panics
    ///
    /// Panics if the routers are not adjacent.
    #[must_use]
    pub fn port_to(&self, cur: RouterId, next: RouterId) -> usize {
        port_of(&self.neighbors, cur.index(), next)
    }

    /// The routing target of a flit, honoring a not-yet-reached Valiant
    /// intermediate.
    #[must_use]
    pub fn target(flit: &Flit) -> RouterId {
        match flit.intermediate() {
            Some(mid) if !flit.intermediate_done() => mid,
            _ => flit.dst_router,
        }
    }

    /// Routes a flit at router `cur`: returns the output port and VC.
    ///
    /// # Panics
    ///
    /// Panics if the flit is already at its destination router.
    #[must_use]
    pub fn route(&self, cur: RouterId, flit: &Flit, in_vc: usize, vcs: usize) -> RouteDecision {
        let _ = in_vc;
        let dst = Self::target(flit);
        self.route_toward(cur, dst, flit.hops, vcs)
    }

    /// Routes a flit that is known to carry no Valiant intermediate
    /// (minimal routing): the target is always `flit.dst_router`, so
    /// the intermediate decode of [`RoutingTable::target`] is skipped
    /// entirely. This is the monomorphized hot path the allocator uses
    /// under [`crate::RoutingKind::Minimal`].
    ///
    /// # Panics
    ///
    /// Panics if the flit is already at its destination router.
    #[must_use]
    pub fn route_direct(&self, cur: RouterId, flit: &Flit, vcs: usize) -> RouteDecision {
        debug_assert!(
            flit.intermediate().is_none(),
            "route_direct requires a flit without a Valiant intermediate"
        );
        self.route_toward(cur, flit.dst_router, flit.hops, vcs)
    }

    /// Shared table lookup behind [`RoutingTable::route`] and
    /// [`RoutingTable::route_direct`].
    #[inline]
    fn route_toward(&self, cur: RouterId, dst: RouterId, hops: u16, vcs: usize) -> RouteDecision {
        assert_ne!(cur, dst, "flit already at target");
        let idx = cur.index() * self.nr + dst.index();
        let port = self.next_port[idx] as usize;
        debug_assert_ne!(
            port,
            u16::MAX as usize,
            "routing toward an unreachable destination"
        );
        let vc = match &self.route_vc {
            Some(table) => (table[idx] as usize).min(vcs - 1),
            None => (hops as usize).min(vcs - 1),
        };
        RouteDecision { port, vc }
    }
}

/// The port of `cur` leading to adjacent router `next` (sorted neighbor
/// lists, so a binary search).
fn port_of(neighbors: &[Vec<RouterId>], cur: usize, next: RouterId) -> usize {
    neighbors[cur]
        .binary_search(&next)
        .expect("routers must be adjacent")
}

/// Dimension-order next hop on a mesh (X first, then Y).
fn dor_next_mesh(cur: RouterId, dst: RouterId, x_dim: usize) -> RouterId {
    let (cx, cy) = (cur.index() % x_dim, cur.index() / x_dim);
    let (dx, dy) = (dst.index() % x_dim, dst.index() / x_dim);
    if cx != dx {
        let nx = if dx > cx { cx + 1 } else { cx - 1 };
        RouterId(cy * x_dim + nx)
    } else {
        let ny = if dy > cy { cy + 1 } else { cy - 1 };
        RouterId(ny * x_dim + cx)
    }
}

/// Dimension-order next hop on a torus, with the dateline VC.
///
/// Within a ring, the route direction is fixed (the shorter way; ties go
/// forward) and the VC is computed statelessly: going forward (+), a hop
/// made from a position past the destination (`cur > dst`) precedes the
/// wrap edge and uses VC0, anything else uses VC1 (mirrored for the −
/// direction). This breaks both ring dependency cycles: the VC0 chain
/// never contains the edge 0 → 1 (a hop from 0 going + always has
/// `cur < dst`), and VC1 traffic never crosses the wrap edge.
fn dor_next_torus(cur: RouterId, dst: RouterId, x_dim: usize, y_dim: usize) -> (RouterId, usize) {
    let (cx, cy) = (cur.index() % x_dim, cur.index() / x_dim);
    let (dx, dy) = (dst.index() % x_dim, dst.index() / x_dim);
    if cx != dx {
        let (nx, vc) = ring_step(cx, dx, x_dim);
        (RouterId(cy * x_dim + nx), vc)
    } else {
        let (ny, vc) = ring_step(cy, dy, y_dim);
        (RouterId(ny * x_dim + cx), vc)
    }
}

/// One step along a ring from `c` toward `d`: returns (next index, VC).
fn ring_step(c: usize, d: usize, dim: usize) -> (usize, usize) {
    let fwd = (d + dim - c) % dim;
    let go_fwd = fwd <= dim - fwd; // shorter way; tie -> forward
    if go_fwd {
        let n = (c + 1) % dim;
        let vc = usize::from(c < d); // pre-wrap segment (c > d) on VC0
        (n, vc)
    } else {
        let n = (c + dim - 1) % dim;
        let vc = usize::from(c > d);
        (n, vc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{Flit, PacketId};
    use snoc_topology::{NodeId, Topology};

    fn flit_to(dst_router: RouterId) -> Flit {
        Flit::packet(
            PacketId(0),
            NodeId(0),
            NodeId(dst_router.index()),
            dst_router,
            1,
            0,
            true,
            false,
        )[0]
    }

    /// Walks a flit from `src` to `dst`, returning the hop count.
    fn walk(topo: &Topology, table: &RoutingTable, src: RouterId, dst: RouterId) -> usize {
        let mut cur = src;
        let mut f = flit_to(dst);
        let mut vc = 0usize;
        let mut hops = 0;
        while cur != dst {
            let d = table.route(cur, &f, vc, 2);
            cur = table.peer(cur, d.port);
            vc = d.vc;
            f.hops += 1;
            hops += 1;
            assert!(hops <= topo.router_count(), "routing loop");
        }
        hops
    }

    #[test]
    fn minimal_paths_on_slim_noc() {
        let t = Topology::slim_noc(5, 1).unwrap();
        let table = RoutingTable::minimal(&t);
        for src in t.routers().step_by(7) {
            for dst in t.routers() {
                if src == dst {
                    continue;
                }
                let hops = walk(&t, &table, src, dst);
                assert_eq!(hops, table.distance(src, dst), "{src} -> {dst}");
                assert!(hops <= 2, "diameter-2 network");
            }
        }
    }

    #[test]
    fn minimal_paths_on_pfbf() {
        let t = Topology::partitioned_fbf(2, 2, 4, 4, 3);
        let table = RoutingTable::minimal(&t);
        for src in t.routers().step_by(5) {
            for dst in t.routers().step_by(3) {
                if src == dst {
                    continue;
                }
                assert_eq!(walk(&t, &table, src, dst), table.distance(src, dst));
            }
        }
    }

    #[test]
    fn dor_mesh_routes_x_first() {
        let t = Topology::mesh(4, 4, 1);
        let table = RoutingTable::minimal(&t);
        // From (0,0) to (2,2): the first hop must go +x to router 1.
        let f = flit_to(RouterId(10));
        let d = table.route(RouterId(0), &f, 0, 2);
        assert_eq!(table.peer(RouterId(0), d.port), RouterId(1));
        assert_eq!(walk(&t, &table, RouterId(0), RouterId(10)), 4);
    }

    #[test]
    fn dor_torus_uses_wraparound() {
        let t = Topology::torus(6, 1, 1);
        let table = RoutingTable::minimal(&t);
        // 0 -> 5 is one hop across the wrap link.
        assert_eq!(walk(&t, &table, RouterId(0), RouterId(5)), 1);
        // 0 -> 3 is three hops either way.
        assert_eq!(walk(&t, &table, RouterId(0), RouterId(3)), 3);
    }

    #[test]
    fn torus_dateline_switches_vc() {
        let t = Topology::torus(6, 1, 1);
        let table = RoutingTable::minimal(&t);
        // Route 5 -> 1 goes forward through the wrap edge. The pre-wrap
        // hop (5 -> 0, cur > dst) uses VC0; once past the wrap (0 -> 1,
        // cur < dst) the packet moves to VC1.
        let f = flit_to(RouterId(1));
        let d = table.route(RouterId(5), &f, 0, 2);
        assert_eq!(table.peer(RouterId(5), d.port), RouterId(0));
        assert_eq!(d.vc, 0, "pre-wrap segment on VC0");
        let d2 = table.route(RouterId(0), &f, 0, 2);
        assert_eq!(table.peer(RouterId(0), d2.port), RouterId(1));
        assert_eq!(d2.vc, 1, "post-wrap segment on VC1");
        // The VC0 chain is broken at edge 0 -> 1: a forward hop from 0
        // always has cur < dst and therefore uses VC1.
        for dst in 1..=3 {
            let dd = table.route(RouterId(0), &flit_to(RouterId(dst)), 0, 2);
            assert_eq!(dd.vc, 1, "0 -> {dst}");
        }
    }

    #[test]
    fn hop_indexed_vcs_on_table_strategy() {
        let t = Topology::slim_noc(3, 1).unwrap();
        let table = RoutingTable::minimal(&t);
        // Find a distance-2 pair and check VC increments with hops.
        let (src, dst) = t
            .routers()
            .flat_map(|a| t.routers().map(move |b| (a, b)))
            .find(|&(a, b)| table.distance(a, b) == 2)
            .expect("diameter 2");
        let mut f = flit_to(dst);
        let d1 = table.route(src, &f, 0, 2);
        assert_eq!(d1.vc, 0, "first hop on VC0");
        f.hops = 1;
        let mid = table.peer(src, d1.port);
        let d2 = table.route(mid, &f, 0, 2);
        assert_eq!(d2.vc, 1, "second hop on VC1");
    }

    #[test]
    fn valiant_intermediate_target() {
        let mut f = flit_to(RouterId(9));
        assert_eq!(RoutingTable::target(&f), RouterId(9));
        f.set_intermediate(RouterId(4));
        assert_eq!(RoutingTable::target(&f), RouterId(4));
        f.mark_intermediate_done();
        assert_eq!(RoutingTable::target(&f), RouterId(9));
    }

    #[test]
    fn port_mappings_are_consistent() {
        let t = Topology::slim_noc(5, 1).unwrap();
        let table = RoutingTable::minimal(&t);
        for r in t.routers() {
            for port in 0..table.port_count(r) {
                let peer = table.peer(r, port);
                assert_eq!(table.port_to(r, peer), port);
                assert!(table.port_to(peer, r) < table.port_count(peer));
            }
        }
    }

    #[test]
    fn dor_tables_match_recomputation() {
        // The precomputed DOR port tables must agree with the stateless
        // next-hop functions for every pair.
        let mesh = Topology::mesh(5, 3, 1);
        let mt = RoutingTable::minimal(&mesh);
        for cur in mesh.routers() {
            for dst in mesh.routers() {
                if cur == dst {
                    continue;
                }
                let d = mt.route(cur, &flit_to(dst), 0, 2);
                assert_eq!(mt.peer(cur, d.port), dor_next_mesh(cur, dst, 5));
            }
        }
        let torus = Topology::torus(4, 4, 1);
        let tt = RoutingTable::minimal(&torus);
        for cur in torus.routers() {
            for dst in torus.routers() {
                if cur == dst {
                    continue;
                }
                let d = tt.route(cur, &flit_to(dst), 0, 4);
                let (next, vc) = dor_next_torus(cur, dst, 4, 4);
                assert_eq!(tt.peer(cur, d.port), next);
                assert_eq!(d.vc, vc);
            }
        }
    }
}
