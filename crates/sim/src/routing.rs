//! Routing: deterministic minimal tables with hop-indexed VCs,
//! dimension-order routing with dateline VCs for meshes and tori, and
//! deadlock-free up*/down* repair tables for degraded (post-fault)
//! networks.
//!
//! The paper uses static minimum routing computed with Dijkstra (§5.1);
//! on unit-weight router graphs BFS yields identical paths.
//!
//! # Deadlock freedom, per table kind
//!
//! The guarantee differs by strategy — the honest contract, checkable
//! with [`crate::verify_deadlock_free`]:
//!
//! - **Mesh (dimension-order)**: deadlock-free at any VC count. DOR
//!   permits no turn from Y back into X, which leaves the channel
//!   dependency graph acyclic on every VC separately.
//! - **Torus (dimension-order + dateline VCs)**: deadlock-free at
//!   `|VC| ≥ 2`. Hop-indexed VCs cannot cut a ring cycle, so the VC is
//!   taken from the precomputed dateline table instead (VC0 before the
//!   wrap edge, VC1 after), independent of the hop count.
//! - **Irregular minimal tables** (Slim NoC, Dragonfly, FBF, …): the
//!   paper's §4.3 scheme — a packet on hop `h` uses VC `min(h,
//!   |VC|−1)`, so VC dependencies only increase and cannot cycle — is
//!   valid **only while `|VC|` is at least the maximal hop count**.
//!   The clamp at `|VC|−1` merges all later hops onto the top VC, so
//!   the guarantee is conditional on the configuration, not absolute;
//!   the shipped configs keep `|VC|` at the fault-free diameter or
//!   above. It also only covers freshly injected traffic (hop counters
//!   start at 0): [`crate::verify_deadlock_free`] additionally models
//!   packets mid-flight with accumulated hops — which saturate the
//!   clamp — and irregular minimal tables fail that stricter model at
//!   any VC count. Only hop-offset-robust schemes (mesh DOR, torus
//!   datelines, up*/down*) pass it, which is why fault repair never
//!   reuses the hop-indexed scheme.
//! - **Degraded tables** ([`RoutingTable::degraded`]): deterministic
//!   **up*/down*** routing over the surviving graph — deadlock-free on
//!   arbitrary connected subgraphs with *any* VC count and no
//!   dependence on path length, which is exactly what fault repair
//!   needs (post-fault paths can far exceed the fault-free diameter).
//!   Debug builds re-verify every swapped-in degraded table with the
//!   CDG checker.
//!
//! All strategies are fully precomputed at construction time: `route`
//! is two flat-array loads (`next_port[cur * nr + dst]` plus the VC
//! table or the hop counter), so the per-flit per-hop cost in the
//! simulator's cycle loop is a couple of cache hits, never a
//! recomputation.

use crate::flit::Flit;
use snoc_topology::{RouterId, Topology, TopologyKind};

/// The output chosen for a flit at a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteDecision {
    /// Output port (index into the router's neighbor list).
    pub port: usize,
    /// Output virtual channel.
    pub vc: usize,
}

/// Precomputed routing state for one topology.
///
/// `dist` and `next_port` are row-major `nr × nr` matrices flattened
/// into contiguous arrays (`[cur * nr + dst]`); `route_vc` is the
/// per-pair dateline VC for tori (`None` means hop-indexed VCs).
#[derive(Debug, Clone)]
pub struct RoutingTable {
    nr: usize,
    /// `dist[a * nr + b]` = hop distance between routers.
    dist: Vec<u16>,
    /// `next_port[cur * nr + dst]` = output port of the chosen path.
    next_port: Vec<u16>,
    /// Dateline VC per `(cur, dst)` pair (tori only).
    route_vc: Option<Vec<u8>>,
    /// `neighbors[cur]` is the sorted neighbor list (ports are positions
    /// in it).
    neighbors: Vec<Vec<RouterId>>,
}

impl RoutingTable {
    /// Builds the minimal routing table for a topology.
    #[must_use]
    pub fn minimal(topo: &Topology) -> Self {
        let nr = topo.router_count();
        let neighbors: Vec<Vec<RouterId>> =
            topo.routers().map(|r| topo.neighbors(r).to_vec()).collect();
        let mut dist = vec![0u16; nr * nr];
        for r in topo.routers() {
            let d = topo.distances_from(r);
            for (j, &dj) in d.iter().enumerate() {
                assert!(dj != usize::MAX, "disconnected topology");
                dist[r.index() * nr + j] = dj as u16;
            }
        }
        let mut next_port = vec![0u16; nr * nr];
        let mut route_vc = None;
        match topo.kind() {
            TopologyKind::Mesh { x, .. } => {
                let x_dim = *x;
                for cur in 0..nr {
                    for dst in 0..nr {
                        if cur == dst {
                            continue;
                        }
                        let next = dor_next_mesh(RouterId(cur), RouterId(dst), x_dim);
                        next_port[cur * nr + dst] = port_of(&neighbors, cur, next) as u16;
                    }
                }
            }
            TopologyKind::Torus { x, y } => {
                let (x_dim, y_dim) = (*x, *y);
                let mut vcs = vec![0u8; nr * nr];
                for cur in 0..nr {
                    for dst in 0..nr {
                        if cur == dst {
                            continue;
                        }
                        let (next, vc) = dor_next_torus(RouterId(cur), RouterId(dst), x_dim, y_dim);
                        next_port[cur * nr + dst] = port_of(&neighbors, cur, next) as u16;
                        vcs[cur * nr + dst] = vc as u8;
                    }
                }
                route_vc = Some(vcs);
            }
            _ => {
                for cur in 0..nr {
                    for dst in 0..nr {
                        if cur == dst {
                            continue;
                        }
                        // Minimal next hops; tie broken by a (cur, dst)
                        // hash so different pairs spread over the
                        // candidates (two passes, no allocation).
                        let want = dist[cur * nr + dst] - 1;
                        let count = neighbors[cur]
                            .iter()
                            .filter(|n| dist[n.index() * nr + dst] == want)
                            .count();
                        assert!(count > 0, "minimal path must exist");
                        let pick =
                            (cur.wrapping_mul(31).wrapping_add(dst.wrapping_mul(17))) % count;
                        let port = neighbors[cur]
                            .iter()
                            .enumerate()
                            .filter(|(_, n)| dist[n.index() * nr + dst] == want)
                            .nth(pick)
                            .map(|(port, _)| port)
                            .expect("pick < count");
                        next_port[cur * nr + dst] = port as u16;
                    }
                }
            }
        }
        RoutingTable {
            nr,
            dist,
            next_port,
            route_vc,
            neighbors,
        }
    }

    /// Rebuilds a **deadlock-free up\*/down\*** table over the subgraph
    /// surviving a set of faults: a link is usable iff `link_alive`
    /// holds and both of its endpoint routers are marked alive.
    ///
    /// Ports keep their original numbering (positions in the full
    /// sorted neighbor list), so the simulator's channel indices stay
    /// valid — only next-hop choices change. Unreachable pairs get
    /// `u16::MAX` sentinels in `dist` and `next_port`; callers must
    /// consult [`RoutingTable::reachable`] before routing toward a
    /// pair. `reachable` coincides with plain connectivity of the
    /// surviving graph, so the doomed-packet rules are unchanged from
    /// the BFS repair this replaced.
    ///
    /// # The up\*/down\* scheme
    ///
    /// A canonical BFS spanning forest is grown over the surviving
    /// graph ([`snoc_topology::bfs_forest`]: each tree is rooted at the
    /// lowest-index live router of its component and grown in the
    /// pinned lexicographic BFS order). Routers are totally ordered by
    /// `key(v) = (tree level, router index)`; every surviving edge is
    /// *up* toward its smaller-key endpoint and *down* toward its
    /// larger-key endpoint. A legal path climbs up zero or more hops,
    /// then descends zero or more hops — never down-then-up. All-up
    /// chains strictly decrease `key` and all-down chains strictly
    /// increase it, so no channel-dependency cycle can close at any VC
    /// count, hop-clamped VCs included.
    ///
    /// The table is memoryless (`next_port[cur][dst]` only), so the
    /// turn restriction is enforced by *committing to the descent*: per
    /// destination, `D[v]` is the shortest all-down distance to `dst`
    /// and `T[v]` the table path length (`D[v]` where finite, else one
    /// up hop plus the best up-neighbor's `T`). A router with finite
    /// `D` always routes down; a down hop lands on a router whose `D`
    /// is again finite, so no path ever turns back up. Ties among legal
    /// next hops keep the documented `(cur·31 + dst·17) mod candidates`
    /// hash over ascending port order.
    ///
    /// [`RoutingTable::distance`] reports `T` — the exact length of the
    /// path the table walks, which may exceed the BFS distance of the
    /// surviving graph (the price of deadlock freedom). `T` is bounded
    /// by the router count: table paths are simple, since revisiting a
    /// router in the descent would contradict its infinite `D` during
    /// the climb.
    #[must_use]
    pub fn degraded<F>(topo: &Topology, router_alive: &[bool], mut link_alive: F) -> Self
    where
        F: FnMut(RouterId, RouterId) -> bool,
    {
        let nr = topo.router_count();
        let neighbors: Vec<Vec<RouterId>> =
            topo.routers().map(|r| topo.neighbors(r).to_vec()).collect();
        // usable[cur][port]: may a flit leave `cur` through `port`?
        let usable: Vec<Vec<bool>> = (0..nr)
            .map(|cur| {
                neighbors[cur]
                    .iter()
                    .map(|&n| {
                        router_alive[cur] && router_alive[n.index()] && link_alive(RouterId(cur), n)
                    })
                    .collect()
            })
            .collect();
        let alive_adj: Vec<Vec<RouterId>> = (0..nr)
            .map(|cur| {
                neighbors[cur]
                    .iter()
                    .zip(&usable[cur])
                    .filter(|&(_, &ok)| ok)
                    .map(|(&n, _)| n)
                    .collect()
            })
            .collect();
        let forest = snoc_topology::bfs_forest(nr, |r| &alive_adj[r.index()][..]);
        // The up*/down* total order: up endpoint = smaller key.
        let key = |v: usize| (forest.level[v], v);
        // Routers in ascending key order, so that when `T[v]` is
        // computed every up-neighbor's `T` is already final.
        let mut order: Vec<usize> = (0..nr).collect();
        order.sort_unstable_by_key(|&v| key(v));
        let mut dist = vec![u16::MAX; nr * nr];
        let mut next_port = vec![u16::MAX; nr * nr];
        // Per-destination scratch: D (all-down distance) and T (table
        // path length).
        let mut down = vec![u32::MAX; nr];
        let mut total = vec![u32::MAX; nr];
        let mut queue = std::collections::VecDeque::new();
        for dst in 0..nr {
            dist[dst * nr + dst] = 0;
            // D by BFS from dst: a down hop v → w has key(v) < key(w),
            // so D propagates from w to its smaller-key neighbors.
            down.fill(u32::MAX);
            total.fill(u32::MAX);
            down[dst] = 0;
            queue.push_back(dst);
            while let Some(w) = queue.pop_front() {
                for (&n, &ok) in neighbors[w].iter().zip(&usable[w]) {
                    let v = n.index();
                    if ok && key(v) < key(w) && down[v] == u32::MAX {
                        down[v] = down[w] + 1;
                        queue.push_back(v);
                    }
                }
            }
            // T in ascending key order: commit to the descent where D
            // is finite, otherwise climb through the best up-neighbor.
            // Every non-root has its BFS parent as an up-neighbor and
            // the root's tree path to dst is all-down, so T is finite
            // exactly on dst's component.
            for &v in &order {
                if down[v] != u32::MAX {
                    total[v] = down[v];
                    continue;
                }
                let mut best = u32::MAX;
                for (&n, &ok) in neighbors[v].iter().zip(&usable[v]) {
                    let u = n.index();
                    if ok && key(u) < key(v) {
                        best = best.min(total[u]);
                    }
                }
                if best != u32::MAX {
                    total[v] = best + 1;
                }
            }
            for cur in 0..nr {
                if cur == dst || total[cur] == u32::MAX {
                    continue;
                }
                dist[cur * nr + dst] = total[cur] as u16;
                let descending = down[cur] != u32::MAX;
                let candidate = |port: usize| {
                    let n = neighbors[cur][port].index();
                    usable[cur][port]
                        && if descending {
                            key(n) > key(cur) && down[n] != u32::MAX && down[n] + 1 == down[cur]
                        } else {
                            key(n) < key(cur) && total[n] != u32::MAX && total[n] + 1 == total[cur]
                        }
                };
                let count = (0..neighbors[cur].len()).filter(|&p| candidate(p)).count();
                assert!(count > 0, "reachable pair must have a next hop");
                let pick = (cur.wrapping_mul(31).wrapping_add(dst.wrapping_mul(17))) % count;
                let port = (0..neighbors[cur].len())
                    .filter(|&p| candidate(p))
                    .nth(pick)
                    .expect("pick < count");
                next_port[cur * nr + dst] = port as u16;
            }
        }
        RoutingTable {
            nr,
            dist,
            next_port,
            route_vc: None,
            neighbors,
        }
    }

    /// `true` if the table has a path from `a` to `b` (always true for
    /// [`RoutingTable::minimal`] tables; [`RoutingTable::degraded`]
    /// tables mark severed pairs with a `u16::MAX` distance sentinel).
    #[must_use]
    pub fn reachable(&self, a: RouterId, b: RouterId) -> bool {
        self.dist[a.index() * self.nr + b.index()] != u16::MAX
    }

    /// Hop distance between two routers.
    #[must_use]
    pub fn distance(&self, a: RouterId, b: RouterId) -> usize {
        self.dist[a.index() * self.nr + b.index()] as usize
    }

    /// Number of router-to-router ports at `r`.
    #[must_use]
    pub fn port_count(&self, r: RouterId) -> usize {
        self.neighbors[r.index()].len()
    }

    /// The neighbor reached through `port` of router `r`.
    ///
    /// # Panics
    ///
    /// Panics if the port is out of range.
    #[must_use]
    pub fn peer(&self, r: RouterId, port: usize) -> RouterId {
        self.neighbors[r.index()][port]
    }

    /// The port of `cur` that leads to the adjacent router `next`.
    ///
    /// # Panics
    ///
    /// Panics if the routers are not adjacent.
    #[must_use]
    pub fn port_to(&self, cur: RouterId, next: RouterId) -> usize {
        port_of(&self.neighbors, cur.index(), next)
    }

    /// The routing target of a flit, honoring a not-yet-reached Valiant
    /// intermediate.
    #[must_use]
    pub fn target(flit: &Flit) -> RouterId {
        match flit.intermediate() {
            Some(mid) if !flit.intermediate_done() => mid,
            _ => flit.dst_router,
        }
    }

    /// Routes a flit at router `cur`: returns the output port and VC.
    ///
    /// # Panics
    ///
    /// Panics if the flit is already at its destination router.
    #[must_use]
    pub fn route(&self, cur: RouterId, flit: &Flit, in_vc: usize, vcs: usize) -> RouteDecision {
        let _ = in_vc;
        let dst = Self::target(flit);
        self.route_toward(cur, dst, flit.hops, vcs)
    }

    /// Routes a flit that is known to carry no Valiant intermediate
    /// (minimal routing): the target is always `flit.dst_router`, so
    /// the intermediate decode of [`RoutingTable::target`] is skipped
    /// entirely. This is the monomorphized hot path the allocator uses
    /// under [`crate::RoutingKind::Minimal`].
    ///
    /// # Panics
    ///
    /// Panics if the flit is already at its destination router.
    #[must_use]
    pub fn route_direct(&self, cur: RouterId, flit: &Flit, vcs: usize) -> RouteDecision {
        debug_assert!(
            flit.intermediate().is_none(),
            "route_direct requires a flit without a Valiant intermediate"
        );
        self.route_toward(cur, flit.dst_router, flit.hops, vcs)
    }

    /// Largest finite distance in the table: the diameter for
    /// [`RoutingTable::minimal`] tables, the longest walked table path
    /// for [`RoutingTable::degraded`] ones. Scales the default
    /// no-progress watchdog bound.
    #[must_use]
    pub fn max_finite_distance(&self) -> usize {
        self.dist
            .iter()
            .filter(|&&d| d != u16::MAX)
            .map(|&d| d as usize)
            .max()
            .unwrap_or(0)
    }

    /// Shared table lookup behind [`RoutingTable::route`] and
    /// [`RoutingTable::route_direct`] (and the deadlock checker, which
    /// probes it pair by pair).
    #[inline]
    pub(crate) fn route_toward(
        &self,
        cur: RouterId,
        dst: RouterId,
        hops: u16,
        vcs: usize,
    ) -> RouteDecision {
        assert_ne!(cur, dst, "flit already at target");
        let idx = cur.index() * self.nr + dst.index();
        let port = self.next_port[idx] as usize;
        debug_assert_ne!(
            port,
            u16::MAX as usize,
            "routing toward an unreachable destination"
        );
        let vc = match &self.route_vc {
            Some(table) => (table[idx] as usize).min(vcs - 1),
            None => (hops as usize).min(vcs - 1),
        };
        RouteDecision { port, vc }
    }
}

/// The port of `cur` leading to adjacent router `next` (sorted neighbor
/// lists, so a binary search).
fn port_of(neighbors: &[Vec<RouterId>], cur: usize, next: RouterId) -> usize {
    neighbors[cur]
        .binary_search(&next)
        .expect("routers must be adjacent")
}

/// Dimension-order next hop on a mesh (X first, then Y).
fn dor_next_mesh(cur: RouterId, dst: RouterId, x_dim: usize) -> RouterId {
    let (cx, cy) = (cur.index() % x_dim, cur.index() / x_dim);
    let (dx, dy) = (dst.index() % x_dim, dst.index() / x_dim);
    if cx != dx {
        let nx = if dx > cx { cx + 1 } else { cx - 1 };
        RouterId(cy * x_dim + nx)
    } else {
        let ny = if dy > cy { cy + 1 } else { cy - 1 };
        RouterId(ny * x_dim + cx)
    }
}

/// Dimension-order next hop on a torus, with the dateline VC.
///
/// Within a ring, the route direction is fixed (the shorter way; ties go
/// forward) and the VC is computed statelessly: going forward (+), a hop
/// made from a position past the destination (`cur > dst`) precedes the
/// wrap edge and uses VC0, anything else uses VC1 (mirrored for the −
/// direction). This breaks both ring dependency cycles: the VC0 chain
/// never contains the edge 0 → 1 (a hop from 0 going + always has
/// `cur < dst`), and VC1 traffic never crosses the wrap edge.
fn dor_next_torus(cur: RouterId, dst: RouterId, x_dim: usize, y_dim: usize) -> (RouterId, usize) {
    let (cx, cy) = (cur.index() % x_dim, cur.index() / x_dim);
    let (dx, dy) = (dst.index() % x_dim, dst.index() / x_dim);
    if cx != dx {
        let (nx, vc) = ring_step(cx, dx, x_dim);
        (RouterId(cy * x_dim + nx), vc)
    } else {
        let (ny, vc) = ring_step(cy, dy, y_dim);
        (RouterId(ny * x_dim + cx), vc)
    }
}

/// One step along a ring from `c` toward `d`: returns (next index, VC).
fn ring_step(c: usize, d: usize, dim: usize) -> (usize, usize) {
    let fwd = (d + dim - c) % dim;
    let go_fwd = fwd <= dim - fwd; // shorter way; tie -> forward
    if go_fwd {
        let n = (c + 1) % dim;
        let vc = usize::from(c < d); // pre-wrap segment (c > d) on VC0
        (n, vc)
    } else {
        let n = (c + dim - 1) % dim;
        let vc = usize::from(c > d);
        (n, vc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{Flit, PacketId};
    use snoc_topology::{NodeId, Topology};

    fn flit_to(dst_router: RouterId) -> Flit {
        Flit::packet(
            PacketId(0),
            NodeId(0),
            NodeId(dst_router.index()),
            dst_router,
            1,
            0,
            true,
            false,
        )[0]
    }

    /// Walks a flit from `src` to `dst`, returning the hop count.
    fn walk(topo: &Topology, table: &RoutingTable, src: RouterId, dst: RouterId) -> usize {
        let mut cur = src;
        let mut f = flit_to(dst);
        let mut vc = 0usize;
        let mut hops = 0;
        while cur != dst {
            let d = table.route(cur, &f, vc, 2);
            cur = table.peer(cur, d.port);
            vc = d.vc;
            f.hops += 1;
            hops += 1;
            assert!(hops <= topo.router_count(), "routing loop");
        }
        hops
    }

    #[test]
    fn minimal_paths_on_slim_noc() {
        let t = Topology::slim_noc(5, 1).unwrap();
        let table = RoutingTable::minimal(&t);
        for src in t.routers().step_by(7) {
            for dst in t.routers() {
                if src == dst {
                    continue;
                }
                let hops = walk(&t, &table, src, dst);
                assert_eq!(hops, table.distance(src, dst), "{src} -> {dst}");
                assert!(hops <= 2, "diameter-2 network");
            }
        }
    }

    #[test]
    fn minimal_paths_on_pfbf() {
        let t = Topology::partitioned_fbf(2, 2, 4, 4, 3);
        let table = RoutingTable::minimal(&t);
        for src in t.routers().step_by(5) {
            for dst in t.routers().step_by(3) {
                if src == dst {
                    continue;
                }
                assert_eq!(walk(&t, &table, src, dst), table.distance(src, dst));
            }
        }
    }

    #[test]
    fn dor_mesh_routes_x_first() {
        let t = Topology::mesh(4, 4, 1);
        let table = RoutingTable::minimal(&t);
        // From (0,0) to (2,2): the first hop must go +x to router 1.
        let f = flit_to(RouterId(10));
        let d = table.route(RouterId(0), &f, 0, 2);
        assert_eq!(table.peer(RouterId(0), d.port), RouterId(1));
        assert_eq!(walk(&t, &table, RouterId(0), RouterId(10)), 4);
    }

    #[test]
    fn dor_torus_uses_wraparound() {
        let t = Topology::torus(6, 1, 1);
        let table = RoutingTable::minimal(&t);
        // 0 -> 5 is one hop across the wrap link.
        assert_eq!(walk(&t, &table, RouterId(0), RouterId(5)), 1);
        // 0 -> 3 is three hops either way.
        assert_eq!(walk(&t, &table, RouterId(0), RouterId(3)), 3);
    }

    #[test]
    fn torus_dateline_switches_vc() {
        let t = Topology::torus(6, 1, 1);
        let table = RoutingTable::minimal(&t);
        // Route 5 -> 1 goes forward through the wrap edge. The pre-wrap
        // hop (5 -> 0, cur > dst) uses VC0; once past the wrap (0 -> 1,
        // cur < dst) the packet moves to VC1.
        let f = flit_to(RouterId(1));
        let d = table.route(RouterId(5), &f, 0, 2);
        assert_eq!(table.peer(RouterId(5), d.port), RouterId(0));
        assert_eq!(d.vc, 0, "pre-wrap segment on VC0");
        let d2 = table.route(RouterId(0), &f, 0, 2);
        assert_eq!(table.peer(RouterId(0), d2.port), RouterId(1));
        assert_eq!(d2.vc, 1, "post-wrap segment on VC1");
        // The VC0 chain is broken at edge 0 -> 1: a forward hop from 0
        // always has cur < dst and therefore uses VC1.
        for dst in 1..=3 {
            let dd = table.route(RouterId(0), &flit_to(RouterId(dst)), 0, 2);
            assert_eq!(dd.vc, 1, "0 -> {dst}");
        }
    }

    #[test]
    fn hop_indexed_vcs_on_table_strategy() {
        let t = Topology::slim_noc(3, 1).unwrap();
        let table = RoutingTable::minimal(&t);
        // Find a distance-2 pair and check VC increments with hops.
        let (src, dst) = t
            .routers()
            .flat_map(|a| t.routers().map(move |b| (a, b)))
            .find(|&(a, b)| table.distance(a, b) == 2)
            .expect("diameter 2");
        let mut f = flit_to(dst);
        let d1 = table.route(src, &f, 0, 2);
        assert_eq!(d1.vc, 0, "first hop on VC0");
        f.hops = 1;
        let mid = table.peer(src, d1.port);
        let d2 = table.route(mid, &f, 0, 2);
        assert_eq!(d2.vc, 1, "second hop on VC1");
    }

    #[test]
    fn degraded_walks_match_reported_distances() {
        // Kill a router and a link on a torus; every surviving pair
        // must still walk to its target in exactly `distance` hops
        // (the up*/down* T metric), within the simple-path bound.
        let t = Topology::torus(4, 4, 1);
        let mut alive = vec![true; t.router_count()];
        alive[5] = false;
        let table = RoutingTable::degraded(&t, &alive, |a, b| {
            (a.index().min(b.index()), a.index().max(b.index())) != (0, 1)
        });
        for src in t.routers() {
            for dst in t.routers() {
                if src == dst || !alive[src.index()] || !alive[dst.index()] {
                    continue;
                }
                assert!(table.reachable(src, dst), "{src} -> {dst}");
                assert_eq!(walk(&t, &table, src, dst), table.distance(src, dst));
            }
        }
    }

    #[test]
    fn degraded_dead_router_is_unreachable_but_self_distance_zero() {
        let t = Topology::mesh(3, 3, 1);
        let mut alive = vec![true; t.router_count()];
        alive[4] = false;
        let table = RoutingTable::degraded(&t, &alive, |_, _| true);
        let dead = RouterId(4);
        assert_eq!(table.distance(dead, dead), 0, "self distance stays 0");
        for r in t.routers() {
            if r != dead {
                assert!(!table.reachable(dead, r));
                assert!(!table.reachable(r, dead));
                // The 3x3 mesh minus its center stays connected.
                for s in t.routers() {
                    if s != dead && s != r {
                        assert!(table.reachable(s, r));
                    }
                }
            }
        }
    }

    #[test]
    fn degraded_severed_component_gets_sentinels() {
        // Cut the line 0-1-2-3 between 1 and 2.
        let t = Topology::mesh(4, 1, 1);
        let alive = vec![true; 4];
        let table = RoutingTable::degraded(&t, &alive, |a, b| {
            (a.index().min(b.index()), a.index().max(b.index())) != (1, 2)
        });
        assert!(table.reachable(RouterId(0), RouterId(1)));
        assert!(table.reachable(RouterId(2), RouterId(3)));
        assert!(!table.reachable(RouterId(0), RouterId(2)));
        assert!(!table.reachable(RouterId(3), RouterId(1)));
        assert_eq!(walk(&t, &table, RouterId(0), RouterId(1)), 1);
        assert_eq!(walk(&t, &table, RouterId(3), RouterId(2)), 1);
    }

    #[test]
    fn valiant_intermediate_target() {
        let mut f = flit_to(RouterId(9));
        assert_eq!(RoutingTable::target(&f), RouterId(9));
        f.set_intermediate(RouterId(4));
        assert_eq!(RoutingTable::target(&f), RouterId(4));
        f.mark_intermediate_done();
        assert_eq!(RoutingTable::target(&f), RouterId(9));
    }

    #[test]
    fn port_mappings_are_consistent() {
        let t = Topology::slim_noc(5, 1).unwrap();
        let table = RoutingTable::minimal(&t);
        for r in t.routers() {
            for port in 0..table.port_count(r) {
                let peer = table.peer(r, port);
                assert_eq!(table.port_to(r, peer), port);
                assert!(table.port_to(peer, r) < table.port_count(peer));
            }
        }
    }

    #[test]
    fn dor_tables_match_recomputation() {
        // The precomputed DOR port tables must agree with the stateless
        // next-hop functions for every pair.
        let mesh = Topology::mesh(5, 3, 1);
        let mt = RoutingTable::minimal(&mesh);
        for cur in mesh.routers() {
            for dst in mesh.routers() {
                if cur == dst {
                    continue;
                }
                let d = mt.route(cur, &flit_to(dst), 0, 2);
                assert_eq!(mt.peer(cur, d.port), dor_next_mesh(cur, dst, 5));
            }
        }
        let torus = Topology::torus(4, 4, 1);
        let tt = RoutingTable::minimal(&torus);
        for cur in torus.routers() {
            for dst in torus.routers() {
                if cur == dst {
                    continue;
                }
                let d = tt.route(cur, &flit_to(dst), 0, 4);
                let (next, vc) = dor_next_torus(cur, dst, 4, 4);
                assert_eq!(tt.peer(cur, d.port), next);
                assert_eq!(d.vc, vc);
            }
        }
    }
}
