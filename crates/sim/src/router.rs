//! Router microarchitectures: the 2-stage edge-buffer router and the
//! Central Buffer Router (§4).
//!
//! Port conventions for a router with network radix `k'` and
//! concentration `p`:
//!
//! - **input ports** `0..k'` receive from neighbor routers, ports
//!   `k'..k'+p` are injection ports from local nodes;
//! - **output ports** `0..k'` send to neighbor routers, ports
//!   `k'..k'+p` are ejection ports to local nodes.
//!
//! Both architectures share the output side: a one-entry switch-traversal
//! (ST) register per output port, per-VC wormhole output allocation, and
//! credit counters toward downstream buffers (credited links).
//!
//! # State layout (struct-of-arrays)
//!
//! All hot per-router state is flattened into contiguous arrays indexed
//! by `lane = port * vcs + vc`, with one **occupancy bitmask word per
//! port** (bit `vc` set ⇔ that lane holds at least one flit):
//!
//! - edge input buffers are fixed-capacity ring buffers carved out of a
//!   single flat [`FlitRef`] slab ([`EdgeLanes`]);
//! - CBR staging slots, queue masks and open-packet registers are flat
//!   lane arrays ([`CbState`]);
//! - ST registers, wormhole ownership and credit counters are flat
//!   arrays on the shared [`OutputSide`], plus a per-port available-
//!   credit counter so congestion lookups never rescan the VC row.
//!
//! The allocator scans are driven by the mask words: an idle port costs
//! one integer load, and the per-VC scan skips empty lanes without
//! touching the buffer slab. The allocation *algorithm* (round-robin
//! rotations, nomination order, output-arbitration sort) is unchanged
//! from the array-of-structs layout — results are bit-for-bit
//! identical; only the state representation moved.
//!
//! All queues and registers hold 4-byte [`FlitRef`] arena indices; the
//! flit payloads live in the simulator's [`FlitArena`], so the hot
//! push/pop paths move indices, not ~64-byte structs.

use crate::config::{LinkMode, RouterArch};
use crate::flit::{Flit, FlitArena, FlitRef};
use crate::routing::{RouteDecision, RoutingTable};
use snoc_topology::RouterId;
use std::collections::VecDeque;

/// "No held route" sentinel for the per-lane route-port arrays.
const NO_ROUTE: u16 = u16::MAX;
/// "No packet" sentinel for the flat wormhole/open-packet arrays
/// (raw [`crate::flit::PacketId`] values; real ids are monotonic from 0
/// and never reach `u64::MAX`).
const NO_PKT: u64 = u64::MAX;

/// A flit sitting in the ST register, ready to traverse the switch onto
/// its output channel in the current cycle.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StFlit {
    pub flit: FlitRef,
    pub out_vc: usize,
}

/// CBR packet-path markers for the per-lane `stage_mode` bytes (§4.1).
const MODE_NONE: u8 = 0;
const MODE_BYPASS: u8 = 1;
const MODE_CENTRAL: u8 = 2;

/// A flit parked in the central buffer with its eligibility cycle and
/// its packet id (copied at write time so the CB-read scan checks
/// wormhole ownership without touching the arena).
#[derive(Debug, Clone, Copy)]
struct CbFlit {
    flit: FlitRef,
    pkt: u64,
    eligible_at: u64,
}

/// Edge-buffer input state: every `(port, vc)` lane is a fixed-capacity
/// ring buffer carved out of one flat slab, with a per-port occupancy
/// bitmask word (bit `vc` ⇔ lane non-empty).
#[derive(Debug, Clone)]
struct EdgeLanes {
    /// Flat ring-buffer slab; lane `l` owns `base[l]..base[l]+cap[l]`.
    slots: Vec<FlitRef>,
    /// Slab offset per lane.
    base: Vec<u32>,
    /// Ring capacity per lane (the per-VC buffer depth of its port).
    cap: Vec<u32>,
    /// Ring head index per lane (relative to `base`).
    head: Vec<u16>,
    /// Flits currently in each lane.
    len: Vec<u16>,
    /// Route held from head to tail of the current packet
    /// ([`NO_ROUTE`] = none).
    route_port: Vec<u16>,
    route_vc: Vec<u8>,
    /// Packet holding the lane's route ([`NO_PKT`] = none). The lane can
    /// be momentarily empty while a route is held (bodies still
    /// upstream), so the fault sweep needs the owner recorded here to
    /// release wormhole state of dropped packets.
    route_pkt: Vec<u64>,
    /// Occupancy word per input port — allocation skips ports at 0, and
    /// the VC scan skips clear bits without touching the slab.
    occ: Vec<u64>,
    /// Front-of-lane cache: the packet id of the current front flit
    /// ([`NO_PKT`] = cache empty), filled lazily by the allocator and
    /// invalidated whenever the front changes (pop, or push into an
    /// empty lane). A head flit blocked at saturation is re-examined
    /// every cycle; the cache turns those retries into pure lane-array
    /// reads — no arena load, no route recompute. Routes are a pure
    /// function of the flit and the (fixed) table, so caching cannot
    /// change results.
    front_pkt: Vec<u64>,
    /// Cached computed route of the front flit (valid only while
    /// `front_pkt` is set and no packet route is held).
    front_route_port: Vec<u16>,
    front_route_vc: Vec<u8>,
    /// Precomputed `lane / vcs` and `1 << (lane % vcs)` — `vcs` is a
    /// runtime value, so the per-push/pop occupancy-bit address would
    /// otherwise cost a hardware divide on the hottest datapath.
    occ_port: Vec<u32>,
    occ_bit: Vec<u64>,
}

/// `x % m` for `x < 2 * m` as a compare-and-subtract. The moduli on the
/// allocation paths (`vcs`, port counts, ring capacities) are runtime
/// values, so the compiler cannot strength-reduce `%` — and a hardware
/// divide per round-robin step is measurable at saturation load.
#[inline(always)]
pub(crate) fn fast_wrap(x: usize, m: usize) -> usize {
    debug_assert!(x < 2 * m);
    if x >= m {
        x - m
    } else {
        x
    }
}

impl EdgeLanes {
    fn new(in_ports: usize, vcs: usize, capacity: &[usize]) -> Self {
        assert!(vcs <= 64, "occupancy words hold at most 64 VCs");
        let lanes = in_ports * vcs;
        let mut base = Vec::with_capacity(lanes);
        let mut cap = Vec::with_capacity(lanes);
        let mut off: u32 = 0;
        for &c in capacity.iter().take(in_ports) {
            let c = u32::try_from(c).expect("buffer capacity fits u32");
            assert!(c <= u32::from(u16::MAX), "ring indices fit u16");
            for _ in 0..vcs {
                base.push(off);
                cap.push(c);
                off += c;
            }
        }
        EdgeLanes {
            slots: vec![FlitRef::INVALID; off as usize],
            base,
            cap,
            head: vec![0; lanes],
            len: vec![0; lanes],
            route_port: vec![NO_ROUTE; lanes],
            route_vc: vec![0; lanes],
            route_pkt: vec![NO_PKT; lanes],
            occ: vec![0; in_ports],
            occ_port: (0..lanes).map(|l| (l / vcs) as u32).collect(),
            occ_bit: (0..lanes).map(|l| 1u64 << (l % vcs)).collect(),
            front_pkt: vec![NO_PKT; lanes],
            front_route_port: vec![NO_ROUTE; lanes],
            front_route_vc: vec![0; lanes],
        }
    }

    #[inline(always)]
    fn is_full(&self, lane: usize) -> bool {
        u32::from(self.len[lane]) >= self.cap[lane]
    }

    /// Front of a non-empty lane.
    #[inline(always)]
    fn front(&self, lane: usize) -> FlitRef {
        debug_assert!(self.len[lane] > 0, "front of empty lane");
        self.slots[(self.base[lane] + u32::from(self.head[lane])) as usize]
    }

    /// Appends to a non-full lane and sets its occupancy bit. A push
    /// into an empty lane changes the front, so the front cache drops.
    #[inline(always)]
    fn push(&mut self, lane: usize, flit: FlitRef) {
        debug_assert!(!self.is_full(lane), "push into full lane");
        if self.len[lane] == 0 {
            self.front_pkt[lane] = NO_PKT;
            self.front_route_port[lane] = NO_ROUTE;
        }
        let mut pos = u32::from(self.head[lane]) + u32::from(self.len[lane]);
        if pos >= self.cap[lane] {
            pos -= self.cap[lane];
        }
        self.slots[(self.base[lane] + pos) as usize] = flit;
        self.len[lane] += 1;
        self.occ[self.occ_port[lane] as usize] |= self.occ_bit[lane];
    }

    /// Pops the front of a non-empty lane, clearing its occupancy bit
    /// when it empties.
    #[inline(always)]
    fn pop(&mut self, lane: usize) -> FlitRef {
        debug_assert!(self.len[lane] > 0, "pop from empty lane");
        let fr = self.slots[(self.base[lane] + u32::from(self.head[lane])) as usize];
        let next = u32::from(self.head[lane]) + 1;
        self.head[lane] = if next >= self.cap[lane] {
            0
        } else {
            next as u16
        };
        self.len[lane] -= 1;
        self.front_pkt[lane] = NO_PKT;
        self.front_route_port[lane] = NO_ROUTE;
        if self.len[lane] == 0 {
            self.occ[self.occ_port[lane] as usize] &= !self.occ_bit[lane];
        }
        fr
    }

    /// The route held by a lane's in-flight packet, if any.
    #[inline(always)]
    fn route(&self, lane: usize) -> Option<RouteDecision> {
        let p = self.route_port[lane];
        if p == NO_ROUTE {
            None
        } else {
            Some(RouteDecision {
                port: p as usize,
                vc: self.route_vc[lane] as usize,
            })
        }
    }
}

/// Central-buffer-router input state: single-flit staging slots plus the
/// CB virtual output queues, both lane-indexed with per-port masks.
#[derive(Debug, Clone)]
struct CbState {
    /// Staging slot per input lane ([`FlitRef::INVALID`] = empty).
    stage_slot: Vec<FlitRef>,
    /// Route held from head to tail ([`NO_ROUTE`] = none).
    stage_route_port: Vec<u16>,
    stage_route_vc: Vec<u8>,
    /// Packet path through the CBR per lane ([`MODE_NONE`] /
    /// [`MODE_BYPASS`] / [`MODE_CENTRAL`]).
    stage_mode: Vec<u8>,
    /// Occupied-staging word per input port — the bypass and CB-write
    /// scans skip ports at 0 and clear bits within a port.
    stage_occ: Vec<u64>,
    /// Staged-flit cache ([`NO_PKT`] = empty), filled lazily by the
    /// allocator and invalidated whenever the slot changes hands. A
    /// staged flit blocked under contention is re-examined by both the
    /// bypass and the CB-write scans every cycle; the cache makes those
    /// retries arena-free. Routes are a pure function of the flit and
    /// the table, so caching cannot change results.
    stage_pkt: Vec<u64>,
    /// Cached computed route (valid only while `stage_pkt` is set and no
    /// packet route is held).
    stage_cport: Vec<u16>,
    stage_cvc: Vec<u8>,
    /// Bit 0: head flit, bit 1: tail flit.
    stage_flags: Vec<u8>,
    /// Packet length in flits (CB admission check).
    stage_plen: Vec<u32>,
    /// Precomputed `lane / vcs` and `1 << (lane % vcs)` (see
    /// [`EdgeLanes::occ_port`]): avoids a hardware divide per staging
    /// take.
    stage_occ_port: Vec<u32>,
    stage_occ_bit: Vec<u64>,
    /// CB virtual output queues, lane-indexed `[out_port * vcs + vc]`.
    queues: Vec<VecDeque<CbFlit>>,
    /// Non-empty-queue word per output port — the CB-read scan skips
    /// outputs at 0, and the bypass ordering check is one bit test.
    queue_mask: Vec<u64>,
    /// Packet currently streaming through each CB queue (head admitted,
    /// tail not yet), [`NO_PKT`] = none. A new head may enter a queue
    /// only when clear — flits of two packets must never interleave
    /// within one queue, or each would deadlock waiting for the other
    /// (§4.3's atomicity requirement).
    open_pkt: Vec<u64>,
    /// Remaining unreserved CB space in flits.
    free: usize,
    /// Round-robin over outputs for the single CB read port.
    rr_read: usize,
    /// Round-robin over inputs for the single CB write port.
    rr_write: usize,
}

impl CbState {
    fn new(in_ports: usize, out_ports: usize, vcs: usize, cb_flits: usize) -> Self {
        assert!(vcs <= 64, "occupancy words hold at most 64 VCs");
        let in_lanes = in_ports * vcs;
        let out_lanes = out_ports * vcs;
        CbState {
            stage_slot: vec![FlitRef::INVALID; in_lanes],
            stage_route_port: vec![NO_ROUTE; in_lanes],
            stage_route_vc: vec![0; in_lanes],
            stage_mode: vec![MODE_NONE; in_lanes],
            stage_occ: vec![0; in_ports],
            stage_pkt: vec![NO_PKT; in_lanes],
            stage_cport: vec![NO_ROUTE; in_lanes],
            stage_cvc: vec![0; in_lanes],
            stage_flags: vec![0; in_lanes],
            stage_plen: vec![0; in_lanes],
            stage_occ_port: (0..in_lanes).map(|l| (l / vcs) as u32).collect(),
            stage_occ_bit: (0..in_lanes).map(|l| 1u64 << (l % vcs)).collect(),
            queues: (0..out_lanes).map(|_| VecDeque::new()).collect(),
            queue_mask: vec![0; out_ports],
            open_pkt: vec![NO_PKT; out_lanes],
            free: cb_flits,
            rr_read: 0,
            rr_write: 0,
        }
    }

    /// The route held by a staged packet, if any.
    #[inline(always)]
    fn stage_route(&self, lane: usize) -> Option<RouteDecision> {
        let p = self.stage_route_port[lane];
        if p == NO_ROUTE {
            None
        } else {
            Some(RouteDecision {
                port: p as usize,
                vc: self.stage_route_vc[lane] as usize,
            })
        }
    }

    /// Empties a staging lane, clearing its occupancy bit and dropping
    /// the staged-flit cache.
    #[inline(always)]
    fn take_stage(&mut self, lane: usize) -> FlitRef {
        let fr = self.stage_slot[lane];
        debug_assert!(fr.is_valid(), "take from empty staging lane");
        self.stage_slot[lane] = FlitRef::INVALID;
        self.stage_occ[self.stage_occ_port[lane] as usize] &= !self.stage_occ_bit[lane];
        self.stage_pkt[lane] = NO_PKT;
        self.stage_cport[lane] = NO_ROUTE;
        fr
    }
}

#[derive(Debug, Clone)]
enum ArchState {
    Edge(EdgeLanes),
    Cb(CbState),
}

/// The output side shared by both router architectures: ST registers,
/// wormhole VC ownership, and credit counters — flat arrays with an
/// ST-occupancy bitmask and a per-port available-credit counter.
#[derive(Debug, Clone)]
struct OutputSide {
    net_ports: usize,
    vcs: usize,
    credited: bool,
    /// ST register per output port (valid iff the `st_mask` bit is set).
    st_flit: Vec<FlitRef>,
    st_vc: Vec<u8>,
    /// Occupied-ST bitmask words over output ports.
    st_mask: Vec<u64>,
    /// Occupied ST registers — `drain_st` returns without scanning
    /// when 0.
    st_live: usize,
    /// Wormhole output-VC allocation per network output lane
    /// (`[out_port * vcs + vc]`, raw packet id, [`NO_PKT`] = free).
    out_pkt: Vec<u64>,
    /// Credits toward downstream per network output lane.
    credits: Vec<u32>,
    /// Sum of available credits per network output port — kept in sync
    /// with `credits` so the adaptive-routing congestion probe
    /// ([`RouterCore::output_occupancy`]) is O(1) instead of a VC scan.
    port_credits: Vec<u32>,
    /// Round-robin pointer per output port (input selection).
    rr_out: Vec<usize>,
}

impl OutputSide {
    fn new(net_ports: usize, local_ports: usize, vcs: usize, credited: bool) -> Self {
        let out_ports = net_ports + local_ports;
        OutputSide {
            net_ports,
            vcs,
            credited,
            st_flit: vec![FlitRef::INVALID; out_ports],
            st_vc: vec![0; out_ports],
            st_mask: vec![0; out_ports.div_ceil(64)],
            st_live: 0,
            out_pkt: vec![NO_PKT; net_ports * vcs],
            credits: vec![0; net_ports * vcs],
            port_credits: vec![0; net_ports],
            rr_out: vec![0; out_ports],
        }
    }

    #[inline(always)]
    fn st_occupied(&self, port: usize) -> bool {
        self.st_mask[port >> 6] >> (port & 63) & 1 == 1
    }

    /// Whether output resources are available for `(out_port, out_vc)`
    /// for a flit of packet `pkt` (raw id — callers pass the cached
    /// lane value so this check never touches the arena).
    #[inline(always)]
    fn ready<F: Fn(usize, usize) -> bool>(
        &self,
        claimed: &[bool],
        out: RouteDecision,
        pkt: u64,
        link_ready: &F,
    ) -> bool {
        if self.st_occupied(out.port) || claimed[out.port] {
            return false;
        }
        if out.port >= self.net_ports {
            return true; // ejection: node always consumes
        }
        // Wormhole VC allocation.
        let lane = out.port * self.vcs + out.vc;
        let holder = self.out_pkt[lane];
        if holder != NO_PKT && holder != pkt {
            return false;
        }
        if self.credited {
            self.credits[lane] > 0
        } else {
            link_ready(out.port, out.vc)
        }
    }

    /// Books the departure of `flit` through `out`: updates wormhole
    /// state, credits, the hop counter, and the ST register.
    fn commit(&mut self, out: RouteDecision, flit: FlitRef, arena: &mut FlitArena) {
        if out.port < self.net_ports {
            let f = arena.get_mut(flit);
            let lane = out.port * self.vcs + out.vc;
            if f.kind.is_head() {
                debug_assert_ne!(f.packet.0, NO_PKT, "packet id collides with sentinel");
                self.out_pkt[lane] = f.packet.0;
            }
            if f.kind.is_tail() {
                self.out_pkt[lane] = NO_PKT;
            }
            f.hops += 1;
            if self.credited {
                self.credits[lane] -= 1;
                self.port_credits[out.port] -= 1;
            }
        }
        self.st_live += 1;
        self.st_flit[out.port] = flit;
        self.st_vc[out.port] = out.vc as u8;
        self.st_mask[out.port >> 6] |= 1 << (out.port & 63);
    }

    /// Ground-truth credit sum for one port (debug assertions).
    fn credit_scan(&self, out_port: usize) -> usize {
        self.credits[out_port * self.vcs..(out_port + 1) * self.vcs]
            .iter()
            .map(|&c| c as usize)
            .sum()
    }
}

/// Computes the route for a flit at router `id`. With `VALIANT = false`
/// (the [`crate::RoutingKind::Minimal`] specialization) the Valiant
/// intermediate checks compile out and the table lookup skips the
/// intermediate decode entirely.
#[inline]
fn compute_route<const VALIANT: bool>(
    id: RouterId,
    net_ports: usize,
    vcs: usize,
    table: &RoutingTable,
    concentration: usize,
    flit: &Flit,
    in_vc: usize,
) -> RouteDecision {
    let _ = in_vc;
    let at_dst = if VALIANT {
        flit.dst_router == id && (flit.intermediate().is_none() || flit.intermediate_done())
    } else {
        debug_assert!(
            flit.intermediate().is_none(),
            "minimal routing never assigns Valiant intermediates"
        );
        flit.dst_router == id
    };
    if at_dst {
        // Eject to the local node's port.
        let local = flit.dst.index() % concentration;
        RouteDecision {
            port: net_ports + local,
            vc: 0,
        }
    } else if VALIANT {
        table.route(id, flit, in_vc, vcs)
    } else {
        table.route_direct(id, flit, vcs)
    }
}

/// Lazily fills the staged-flit cache for `lane` (packet id, head/tail
/// flags, packet length, and — when no packet route is held — the
/// computed route). No-op when already filled; invalidated by
/// [`CbState::take_stage`] and by delivery into the slot.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors compute_route's context
fn fill_stage_cache<const VALIANT: bool>(
    cb: &mut CbState,
    lane: usize,
    in_vc: usize,
    id: RouterId,
    net_ports: usize,
    vcs: usize,
    table: &RoutingTable,
    concentration: usize,
    arena: &FlitArena,
) {
    if cb.stage_pkt[lane] != NO_PKT {
        return;
    }
    let f = arena.get(cb.stage_slot[lane]);
    debug_assert_ne!(f.packet.0, NO_PKT, "packet id collides with sentinel");
    cb.stage_pkt[lane] = f.packet.0;
    cb.stage_flags[lane] = u8::from(f.kind.is_head()) | (u8::from(f.kind.is_tail()) << 1);
    cb.stage_plen[lane] = f.packet_len;
    if cb.stage_route_port[lane] == NO_ROUTE {
        let r = compute_route::<VALIANT>(id, net_ports, vcs, table, concentration, f, in_vc);
        cb.stage_cport[lane] = r.port as u16;
        cb.stage_cvc[lane] = r.vc as u8;
    }
}

/// One router instance.
#[derive(Debug, Clone)]
pub(crate) struct RouterCore {
    pub id: RouterId,
    pub net_ports: usize,
    pub local_ports: usize,
    pub vcs: usize,
    /// Whether the configured routing mode can assign Valiant
    /// intermediates — `false` selects the monomorphized minimal-routing
    /// allocation loops.
    valiant: bool,
    arch: ArchState,
    out: OutputSide,
    /// Round-robin pointer per input port (VC selection).
    rr_in: Vec<usize>,
    /// Flits currently inside the router (buffers, staging, CB queues,
    /// ST registers). `0` means the router is idle and the cycle loop
    /// can skip it entirely.
    live_flits: usize,
    /// Reusable allocation scratch: per-output claim flags.
    scratch_claimed: Vec<bool>,
    /// Reusable allocation scratch: input nominations.
    scratch_noms: Vec<(usize, usize, RouteDecision)>,
    /// Reusable allocation scratch: winning nomination index per output
    /// port (`u32::MAX` = none) for the edge output-arbitration pass.
    scratch_winner: Vec<u32>,
    /// Reusable allocation scratch: winning priority per output port.
    scratch_prio: Vec<u32>,
    /// Whether the cross-cycle nomination cache is enabled: credited
    /// edge-buffer datapath with all net output lanes fitting one
    /// observation word. Pass 1 is a pure function of the port's lanes
    /// and the output resources it examines, so a port's nomination is
    /// reused until one of those inputs changes — at saturation most
    /// ports are blocked on downstream credits and would otherwise
    /// rescan to the identical conclusion every cycle.
    nom_cached: bool,
    /// Nomination cache validity per input port.
    nom_valid: Vec<bool>,
    /// Cached nominated VC per input port (`u16::MAX` = the scan found
    /// nothing to nominate).
    nom_vc: Vec<u16>,
    /// Cached nominated route per input port.
    nom_route_port: Vec<u16>,
    nom_route_vc: Vec<u8>,
    /// Net output lanes (`out_port * vcs + vc` bits) whose credits /
    /// wormhole ownership the cached scan observed — a change to any of
    /// them invalidates the port's cached nomination.
    nom_observed: Vec<u64>,
    /// Reverse index of `nom_observed`: per net output lane, the input
    /// ports (bits) whose cached scan examined it. Keeps invalidation
    /// proportional to the ports a credit/commit actually affects —
    /// quiet lanes cost one load — instead of a loop over every input
    /// port. Bits can be stale toward already-invalid ports (harmless);
    /// a port's bits are rewritten from its forward word when its scan
    /// outcome is re-stored.
    nom_observers: Vec<u64>,
}

/// Resource release information produced by the allocation phase.
/// Owned by the simulator and reused across routers and cycles; `alloc`
/// clears it before filling.
#[derive(Debug, Clone, Default)]
pub(crate) struct AllocResult {
    /// Network input ports whose buffer freed one slot: `(port, vc)` —
    /// the network returns one credit upstream for each.
    pub freed_inputs: Vec<(usize, usize)>,
    /// Injection input ports that freed a slot: `(local_index, vc)`.
    pub freed_injection: Vec<(usize, usize)>,
    /// Number of buffer read+write pairs performed (activity counter).
    pub buffer_accesses: u64,
    /// Number of central-buffer writes (activity counter).
    pub cb_writes: u64,
    /// Number of central-buffer reads (activity counter).
    pub cb_reads: u64,
    /// Flits that took the bypass path this cycle (activity counter).
    pub bypasses: u64,
    /// Successful allocator grants this cycle: edge grants, bypasses,
    /// central-buffer reads and writes (activity counter).
    pub alloc_grants: u64,
}

impl AllocResult {
    /// Resets the result for reuse (keeps the Vec capacities).
    pub(crate) fn clear(&mut self) {
        self.freed_inputs.clear();
        self.freed_injection.clear();
        self.buffer_accesses = 0;
        self.cb_writes = 0;
        self.cb_reads = 0;
        self.bypasses = 0;
        self.alloc_grants = 0;
    }
}

impl RouterCore {
    /// Builds a router. `input_capacity[port]` gives the per-VC buffer
    /// capacity of each network input port (RTT-sized buffers differ per
    /// port); injection ports use `inj_capacity`. `valiant` declares
    /// whether the routing mode may assign Valiant intermediates —
    /// `false` (minimal routing) selects the monomorphized allocation
    /// loops with the intermediate checks compiled out.
    #[allow(clippy::too_many_arguments)] // one call site, in network assembly
    pub(crate) fn new(
        id: RouterId,
        net_ports: usize,
        local_ports: usize,
        vcs: usize,
        arch: RouterArch,
        link_mode: LinkMode,
        input_capacity: &[usize],
        inj_capacity: usize,
        valiant: bool,
    ) -> Self {
        assert_eq!(input_capacity.len(), net_ports, "one capacity per port");
        let in_ports = net_ports + local_ports;
        let out_ports = net_ports + local_ports;
        let arch = match arch {
            RouterArch::EdgeBuffer => {
                let mut capacity: Vec<usize> = input_capacity.to_vec();
                capacity.extend(std::iter::repeat_n(inj_capacity, local_ports));
                ArchState::Edge(EdgeLanes::new(in_ports, vcs, &capacity))
            }
            RouterArch::CentralBuffer { cb_flits } => {
                ArchState::Cb(CbState::new(in_ports, out_ports, vcs, cb_flits))
            }
        };
        let nom_cached = matches!(arch, ArchState::Edge(_))
            && link_mode == LinkMode::Credited
            && net_ports * vcs <= 64
            && in_ports <= 64;
        RouterCore {
            id,
            net_ports,
            local_ports,
            vcs,
            valiant,
            arch,
            out: OutputSide::new(net_ports, local_ports, vcs, link_mode == LinkMode::Credited),
            rr_in: vec![0; in_ports],
            live_flits: 0,
            scratch_claimed: Vec::with_capacity(out_ports),
            scratch_noms: Vec::with_capacity(in_ports),
            scratch_winner: Vec::with_capacity(out_ports),
            scratch_prio: Vec::with_capacity(out_ports),
            nom_cached,
            nom_valid: vec![false; in_ports],
            nom_vc: vec![u16::MAX; in_ports],
            nom_route_port: vec![NO_ROUTE; in_ports],
            nom_route_vc: vec![0; in_ports],
            nom_observed: vec![0; in_ports],
            nom_observers: vec![0; net_ports * vcs],
        }
    }

    /// Initializes credit counters for a network output port.
    pub(crate) fn set_credits(&mut self, out_port: usize, per_vc: usize) {
        let per = u32::try_from(per_vc).expect("credit count fits u32");
        let base = out_port * self.vcs;
        for vc in 0..self.vcs {
            self.out.credits[base + vc] = per;
        }
        self.out.port_credits[out_port] = per * self.vcs as u32;
    }

    /// Adds one returned credit.
    pub(crate) fn add_credit(&mut self, out_port: usize, vc: usize) {
        self.out.credits[out_port * self.vcs + vc] += 1;
        self.out.port_credits[out_port] += 1;
        if self.nom_cached {
            let mut m = self.nom_observers[out_port * self.vcs + vc];
            while m != 0 {
                self.nom_valid[m.trailing_zeros() as usize] = false;
                m &= m - 1;
            }
        }
    }

    /// Whether input `port` can accept a flit on `vc` right now.
    pub(crate) fn can_deliver(&self, port: usize, vc: usize) -> bool {
        match &self.arch {
            ArchState::Edge(lanes) => !lanes.is_full(port * self.vcs + vc),
            ArchState::Cb(cb) => cb.stage_occ[port] >> vc & 1 == 0,
        }
    }

    /// Deposits an arriving flit into input `port`, VC `vc`.
    ///
    /// # Panics
    ///
    /// Panics if the input has no space ([`RouterCore::can_deliver`]).
    pub(crate) fn deliver(&mut self, port: usize, vc: usize, flit: FlitRef, arena: &mut FlitArena) {
        // Valiant bookkeeping: reaching the intermediate re-targets the
        // flit at its true destination. Minimal routing never assigns
        // intermediates, so the specialized routers skip the load.
        if self.valiant {
            let f = arena.get_mut(flit);
            if f.intermediate() == Some(self.id) {
                f.mark_intermediate_done();
            }
        }
        self.live_flits += 1;
        if self.nom_cached {
            // A new arrival can change what this port nominates.
            self.nom_valid[port] = false;
        }
        let lane = port * self.vcs + vc;
        match &mut self.arch {
            ArchState::Edge(lanes) => {
                assert!(
                    !lanes.is_full(lane),
                    "input buffer overflow at {} port {port} vc {vc}",
                    self.id
                );
                lanes.push(lane, flit);
            }
            ArchState::Cb(cb) => {
                assert!(
                    cb.stage_occ[port] >> vc & 1 == 0,
                    "staging overflow at {} port {port} vc {vc}",
                    self.id
                );
                cb.stage_slot[lane] = flit;
                cb.stage_occ[port] |= 1 << vc;
                cb.stage_pkt[lane] = NO_PKT; // new front: drop the cache
                cb.stage_cport[lane] = NO_ROUTE;
            }
        }
    }

    /// Drains the ST registers into `out` (cleared first): the flits
    /// traversing the switch this cycle, by output port. Takes a caller
    /// scratch buffer so the cycle loop allocates nothing.
    pub(crate) fn drain_st(&mut self, out: &mut Vec<(usize, StFlit)>) {
        out.clear();
        if self.out.st_live == 0 {
            return;
        }
        for (w, word) in self.out.st_mask.iter_mut().enumerate() {
            let mut m = *word;
            while m != 0 {
                let port = (w << 6) | m.trailing_zeros() as usize;
                m &= m - 1;
                out.push((
                    port,
                    StFlit {
                        flit: self.out.st_flit[port],
                        out_vc: self.out.st_vc[port] as usize,
                    },
                ));
            }
            *word = 0;
        }
        self.live_flits -= out.len();
        self.out.st_live -= out.len();
    }

    /// Whether the router holds no flits at all (nothing to allocate,
    /// no ST traffic) — idle routers are skipped by the cycle loop.
    pub(crate) fn is_idle(&self) -> bool {
        self.live_flits == 0
    }

    /// Occupancy of an output direction (ST register + consumed credits),
    /// used by adaptive routing as the local congestion signal. O(1):
    /// the per-port credit counter replaces the former per-VC rescan.
    pub(crate) fn output_occupancy(&self, out_port: usize, init_credits: usize) -> usize {
        let st = usize::from(self.out.st_occupied(out_port));
        if self.out.credited && out_port < self.net_ports {
            let avail = self.out.port_credits[out_port] as usize;
            debug_assert_eq!(
                avail,
                self.out.credit_scan(out_port),
                "per-port credit counter drifted at {} port {out_port}",
                self.id
            );
            let total = init_credits * self.vcs;
            st + total.saturating_sub(avail)
        } else {
            st
        }
    }

    /// Total flits buffered inside the router (drain detection). O(1):
    /// maintained as a counter by `deliver` / `drain_st`.
    pub(crate) fn buffered_flits(&self) -> usize {
        debug_assert_eq!(
            self.live_flits,
            self.recount_flits(),
            "live-flit counter drifted at {}",
            self.id
        );
        self.live_flits
    }

    /// Slow recount of every flit inside the router — the ground truth
    /// for the `live_flits` counter (debug assertions only).
    fn recount_flits(&self) -> usize {
        let inside: usize = match &self.arch {
            ArchState::Edge(lanes) => lanes.len.iter().map(|&n| n as usize).sum(),
            ArchState::Cb(cb) => {
                let s = cb.stage_slot.iter().filter(|s| s.is_valid()).count();
                let q: usize = cb.queues.iter().map(VecDeque::len).sum();
                s + q
            }
        };
        inside + self.out.st_live
    }

    /// The allocation phase. `link_ready(out_port, vc)` reports whether
    /// the outgoing channel can accept a flit next cycle (elastic mode;
    /// credited mode uses the internal credit counters). `result` is a
    /// caller-owned scratch cleared and refilled here, so the cycle loop
    /// performs no per-router allocation. `arena` resolves the buffered
    /// [`FlitRef`]s (and records the hop on departing flits).
    ///
    /// Generic over the link-readiness predicate (so the network's
    /// closure inlines instead of dispatching through a vtable) and
    /// dispatched onto `VALIANT`-specialized loops per routing mode.
    pub(crate) fn alloc_into<F: Fn(usize, usize) -> bool>(
        &mut self,
        now: u64,
        table: &RoutingTable,
        concentration: usize,
        arena: &mut FlitArena,
        link_ready: &F,
        result: &mut AllocResult,
    ) {
        result.clear();
        match (&self.arch, self.valiant) {
            (ArchState::Edge(_), true) => {
                self.alloc_edge::<true, F>(table, concentration, arena, link_ready, result);
            }
            (ArchState::Edge(_), false) => {
                self.alloc_edge::<false, F>(table, concentration, arena, link_ready, result);
            }
            (ArchState::Cb(_), true) => {
                self.alloc_cb::<true, F>(now, table, concentration, arena, link_ready, result);
            }
            (ArchState::Cb(_), false) => {
                self.alloc_cb::<false, F>(now, table, concentration, arena, link_ready, result);
            }
        }
    }

    /// Allocation returning a fresh result (test convenience).
    #[cfg(test)]
    pub(crate) fn alloc<F: Fn(usize, usize) -> bool>(
        &mut self,
        now: u64,
        table: &RoutingTable,
        concentration: usize,
        arena: &mut FlitArena,
        link_ready: &F,
    ) -> AllocResult {
        let mut result = AllocResult::default();
        self.alloc_into(now, table, concentration, arena, link_ready, &mut result);
        result
    }

    fn alloc_edge<const VALIANT: bool, F: Fn(usize, usize) -> bool>(
        &mut self,
        table: &RoutingTable,
        concentration: usize,
        arena: &mut FlitArena,
        link_ready: &F,
        result: &mut AllocResult,
    ) {
        let id = self.id;
        let net_ports = self.net_ports;
        let vcs = self.vcs;
        let in_ports = net_ports + self.local_ports;
        let out_ports = in_ports;
        let mut nominations = std::mem::take(&mut self.scratch_noms);
        nominations.clear();
        let mut claimed = std::mem::take(&mut self.scratch_claimed);
        claimed.clear();
        claimed.resize(out_ports, false);
        let mut winner = std::mem::take(&mut self.scratch_winner);
        winner.clear();
        winner.resize(out_ports, u32::MAX);
        let mut best = std::mem::take(&mut self.scratch_prio);
        best.clear();
        best.resize(out_ports, u32::MAX);
        let ArchState::Edge(lanes) = &mut self.arch else {
            unreachable!()
        };
        let out = &mut self.out;
        let rr_in = &mut self.rr_in;
        let nom_valid = &mut self.nom_valid;
        let nom_vc = &mut self.nom_vc;
        let nom_route_port = &mut self.nom_route_port;
        let nom_route_vc = &mut self.nom_route_vc;
        let nom_observed = &mut self.nom_observed;
        let nom_observers = &mut self.nom_observers;
        // The nomination cache is sound only when the scan it shortcuts
        // would run against empty ST registers, which is every cycle of
        // the full simulator (drain precedes alloc) but not necessarily
        // a bare unit-test call sequence — so both storing and consuming
        // are gated on the ST being drained right now.
        let cache_on = self.nom_cached && out.st_live == 0;
        // Records a port's freshly scanned observation word and rewrites
        // its bits in the reverse (per-output-lane) observer index.
        #[inline(always)]
        fn store_observed(
            port: usize,
            observed: u64,
            nom_observed: &mut [u64],
            nom_observers: &mut [u64],
        ) {
            let mut stale = nom_observed[port] & !observed;
            while stale != 0 {
                nom_observers[stale.trailing_zeros() as usize] &= !(1 << port);
                stale &= stale - 1;
            }
            let mut fresh = observed & !nom_observed[port];
            while fresh != 0 {
                nom_observers[fresh.trailing_zeros() as usize] |= 1 << port;
                fresh &= fresh - 1;
            }
            nom_observed[port] = observed;
        }
        // Pass 1 (input arbitration): each input port nominates one VC.
        // The occupancy word drives the scan: idle ports cost one load,
        // and clear bits skip without touching the ring slab. The front
        // cache makes the steady-state retry of a blocked head a pure
        // lane-array read — the arena load and route computation happen
        // once per front flit, not once per cycle. A valid nomination
        // cache entry replays last cycle's conclusion without any scan:
        // the port's lanes and every output resource the scan examined
        // are unchanged, so the outcome is too.
        for port in 0..in_ports {
            if cache_on && nom_valid[port] {
                let vc = nom_vc[port];
                if vc != u16::MAX {
                    nominations.push((
                        port,
                        vc as usize,
                        RouteDecision {
                            port: nom_route_port[port] as usize,
                            vc: nom_route_vc[port] as usize,
                        },
                    ));
                }
                continue;
            }
            let occ = lanes.occ[port];
            if occ == 0 {
                if cache_on {
                    nom_valid[port] = true;
                    nom_vc[port] = u16::MAX;
                    store_observed(port, 0, nom_observed, nom_observers);
                }
                continue; // empty input: nothing to nominate
            }
            // Net output lanes whose credits / wormhole ownership this
            // scan reads; a later change to any of them voids the cached
            // outcome.
            let mut observed = 0u64;
            let mut nominated = false;
            let start = rr_in[port];
            for i in 0..vcs {
                let vc = fast_wrap(start + i, vcs);
                if occ >> vc & 1 == 0 {
                    continue;
                }
                let lane = port * vcs + vc;
                if lanes.front_pkt[lane] == NO_PKT {
                    let head = arena.get(lanes.front(lane));
                    lanes.front_pkt[lane] = head.packet.0;
                    if lanes.route_port[lane] == NO_ROUTE {
                        let r = compute_route::<VALIANT>(
                            id,
                            net_ports,
                            vcs,
                            table,
                            concentration,
                            head,
                            vc,
                        );
                        lanes.front_route_port[lane] = r.port as u16;
                        lanes.front_route_vc[lane] = r.vc as u8;
                    }
                }
                let route = if lanes.route_port[lane] == NO_ROUTE {
                    RouteDecision {
                        port: lanes.front_route_port[lane] as usize,
                        vc: lanes.front_route_vc[lane] as usize,
                    }
                } else {
                    RouteDecision {
                        port: lanes.route_port[lane] as usize,
                        vc: lanes.route_vc[lane] as usize,
                    }
                };
                debug_assert_eq!(
                    lanes
                        .route(lane)
                        .unwrap_or_else(|| compute_route::<VALIANT>(
                            id,
                            net_ports,
                            vcs,
                            table,
                            concentration,
                            arena.get(lanes.front(lane)),
                            vc,
                        )),
                    route,
                    "front route cache drifted at {id} port {port} vc {vc}",
                );
                if route.port < net_ports {
                    observed |= 1 << (route.port * vcs + route.vc);
                }
                if out.ready(&claimed, route, lanes.front_pkt[lane], link_ready) {
                    nominations.push((port, vc, route));
                    if cache_on {
                        nom_valid[port] = true;
                        nom_vc[port] = vc as u16;
                        nom_route_port[port] = route.port as u16;
                        nom_route_vc[port] = route.vc as u8;
                        store_observed(port, observed, nom_observed, nom_observers);
                    }
                    nominated = true;
                    break;
                }
            }
            if cache_on && !nominated {
                nom_valid[port] = true;
                nom_vc[port] = u16::MAX;
                store_observed(port, observed, nom_observed, nom_observers);
            }
        }
        // Pass 2 (output arbitration): pick, per output port, the
        // nomination with the lowest round-robin priority. Priorities
        // are injective per output (distinct input ports map to distinct
        // values mod `out_ports`), so this selects exactly the entry the
        // former stable sort by `(output, priority)` put first — and
        // granting outputs in ascending order reproduces the sorted
        // grant sequence bit-for-bit, without the O(n log n) sort that
        // dominated the saturated-load profile.
        for (i, &(port, _, route)) in nominations.iter().enumerate() {
            // `rr_out` entries stay `< out_ports` by construction, so
            // the dividend is `< 2 * out_ports` and the round-robin
            // distance needs no hardware divide.
            let prio = fast_wrap(port + out_ports - out.rr_out[route.port], out_ports) as u32;
            if prio < best[route.port] {
                best[route.port] = prio;
                winner[route.port] = i as u32;
            }
        }
        for &w in winner.iter() {
            if w == u32::MAX {
                continue; // no nomination for this output
            }
            let (port, vc, route) = nominations[w as usize];
            debug_assert!(!out.st_occupied(route.port), "nominated an occupied ST");
            let lane = port * vcs + vc;
            nom_valid[port] = false; // granting pops this port's lane
            if route.port < net_ports {
                // The commit below consumes a credit (and may transfer
                // wormhole ownership) on this output lane: every port
                // whose cached scan examined it must rescan.
                let mut m = nom_observers[route.port * vcs + route.vc];
                while m != 0 {
                    nom_valid[m.trailing_zeros() as usize] = false;
                    m &= m - 1;
                }
            }
            let fr = lanes.pop(lane);
            let f = arena.get(fr);
            let kind = f.kind;
            if kind.is_head() {
                lanes.route_port[lane] = route.port as u16;
                lanes.route_vc[lane] = route.vc as u8;
                lanes.route_pkt[lane] = f.packet.0;
            }
            if kind.is_tail() {
                lanes.route_port[lane] = NO_ROUTE;
                lanes.route_pkt[lane] = NO_PKT;
            }
            rr_in[port] = fast_wrap(vc + 1, vcs);
            out.rr_out[route.port] = fast_wrap(port + 1, in_ports);
            result.buffer_accesses += 1;
            result.alloc_grants += 1;
            if port < net_ports {
                result.freed_inputs.push((port, vc));
            } else {
                result.freed_injection.push((port - net_ports, vc));
            }
            out.commit(route, fr, arena);
        }
        self.scratch_noms = nominations;
        self.scratch_claimed = claimed;
        self.scratch_winner = winner;
        self.scratch_prio = best;
    }

    fn alloc_cb<const VALIANT: bool, F: Fn(usize, usize) -> bool>(
        &mut self,
        now: u64,
        table: &RoutingTable,
        concentration: usize,
        arena: &mut FlitArena,
        link_ready: &F,
        result: &mut AllocResult,
    ) {
        let id = self.id;
        let net_ports = self.net_ports;
        let vcs = self.vcs;
        let in_ports = net_ports + self.local_ports;
        let out_ports = in_ports;
        let mut claimed = std::mem::take(&mut self.scratch_claimed);
        claimed.clear();
        claimed.resize(out_ports, false);
        let mut nominations = std::mem::take(&mut self.scratch_noms);
        nominations.clear();
        let ArchState::Cb(cb) = &mut self.arch else {
            unreachable!()
        };
        let out = &mut self.out;
        let rr_in = &mut self.rr_in;

        // Phase A1: the single CB read port serves one eligible flit.
        let start = cb.rr_read;
        'read: for i in 0..out_ports {
            let out_port = fast_wrap(start + i, out_ports);
            let mask = cb.queue_mask[out_port];
            if mask == 0 {
                continue; // no CB flit bound for this output
            }
            for vc in 0..vcs {
                if mask >> vc & 1 == 0 {
                    continue;
                }
                let lane = out_port * vcs + vc;
                let candidate = cb.queues[lane]
                    .front()
                    .filter(|c| c.eligible_at <= now)
                    .map(|c| (c.flit, c.pkt));
                let Some((fr, pkt)) = candidate else { continue };
                let route = RouteDecision { port: out_port, vc };
                if out.ready(&claimed, route, pkt, link_ready) {
                    claimed[out_port] = true;
                    cb.queues[lane].pop_front();
                    if cb.queues[lane].is_empty() {
                        cb.queue_mask[out_port] &= !(1 << vc);
                    }
                    cb.free += 1;
                    cb.rr_read = fast_wrap(out_port + 1, out_ports);
                    result.cb_reads += 1;
                    result.alloc_grants += 1;
                    out.commit(route, fr, arena);
                    break 'read;
                }
            }
        }

        // Phase A2: bypass — staging heads go straight for the outputs.
        for (port, &start) in rr_in.iter().enumerate() {
            let occ = cb.stage_occ[port];
            if occ == 0 {
                continue; // empty staging: nothing to bypass
            }
            for i in 0..vcs {
                let vc = fast_wrap(start + i, vcs);
                if occ >> vc & 1 == 0 {
                    continue;
                }
                let lane = port * vcs + vc;
                // A packet committed to the CB keeps using it (atomic CB
                // allocation, §4.3); others try the bypass.
                if cb.stage_mode[lane] == MODE_CENTRAL {
                    continue;
                }
                fill_stage_cache::<VALIANT>(
                    cb,
                    lane,
                    vc,
                    id,
                    net_ports,
                    vcs,
                    table,
                    concentration,
                    arena,
                );
                let route = if cb.stage_route_port[lane] == NO_ROUTE {
                    RouteDecision {
                        port: cb.stage_cport[lane] as usize,
                        vc: cb.stage_cvc[lane] as usize,
                    }
                } else {
                    RouteDecision {
                        port: cb.stage_route_port[lane] as usize,
                        vc: cb.stage_route_vc[lane] as usize,
                    }
                };
                // Ordering: a *head* never bypasses a non-empty CB queue
                // for the same (output, VC) — packets on a VC stay in
                // order. Body flits of an in-flight bypass packet are
                // exempt: they already hold the output VC, and a queued
                // CB packet cannot use it until their tail passes, so
                // blocking them would deadlock the router.
                let queue_blocked = cb.stage_flags[lane] & 1 != 0
                    && route.port < out_ports
                    && cb.queue_mask[route.port] >> route.vc & 1 == 1;
                if !queue_blocked && out.ready(&claimed, route, cb.stage_pkt[lane], link_ready) {
                    nominations.push((port, vc, route));
                    break;
                }
            }
        }
        for &(port, vc, route) in &nominations {
            if claimed[route.port] || out.st_occupied(route.port) {
                continue;
            }
            claimed[route.port] = true;
            let lane = port * vcs + vc;
            let flags = cb.stage_flags[lane]; // cache filled by phase A2
            let fr = cb.take_stage(lane);
            if flags & 1 != 0 {
                cb.stage_route_port[lane] = route.port as u16;
                cb.stage_route_vc[lane] = route.vc as u8;
                cb.stage_mode[lane] = MODE_BYPASS;
            }
            if flags & 2 != 0 {
                cb.stage_route_port[lane] = NO_ROUTE;
                cb.stage_mode[lane] = MODE_NONE;
            }
            rr_in[port] = fast_wrap(vc + 1, vcs);
            result.bypasses += 1;
            result.alloc_grants += 1;
            if port < net_ports {
                result.freed_inputs.push((port, vc));
            } else {
                result.freed_injection.push((port - net_ports, vc));
            }
            out.commit(route, fr, arena);
        }

        // Phase B: the single CB write port admits one flit from staging.
        let start_w = cb.rr_write;
        'write: for i in 0..in_ports {
            let port = fast_wrap(start_w + i, in_ports);
            let occ = cb.stage_occ[port];
            if occ == 0 {
                continue; // empty staging: nothing to admit
            }
            for vc in 0..vcs {
                if occ >> vc & 1 == 0 {
                    continue;
                }
                let lane = port * vcs + vc;
                fill_stage_cache::<VALIANT>(
                    cb,
                    lane,
                    vc,
                    id,
                    net_ports,
                    vcs,
                    table,
                    concentration,
                    arena,
                );
                let route = if cb.stage_route_port[lane] == NO_ROUTE {
                    RouteDecision {
                        port: cb.stage_cport[lane] as usize,
                        vc: cb.stage_cvc[lane] as usize,
                    }
                } else {
                    RouteDecision {
                        port: cb.stage_route_port[lane] as usize,
                        vc: cb.stage_route_vc[lane] as usize,
                    }
                };
                let flags = cb.stage_flags[lane];
                let pkt = cb.stage_pkt[lane];
                let plen = cb.stage_plen[lane] as usize;
                // Heads divert to the CB only if the whole packet fits
                // (atomic allocation) and no other packet is still
                // streaming through the target queue; bodies follow
                // their head.
                let admit = match cb.stage_mode[lane] {
                    MODE_CENTRAL => true,
                    MODE_BYPASS => false,
                    _ => {
                        flags & 1 != 0
                            && cb.free >= plen
                            && route.port < out_ports
                            && cb.open_pkt[route.port * vcs + route.vc] == NO_PKT
                    }
                };
                if !admit || route.port >= out_ports {
                    continue;
                }
                let out_lane = route.port * vcs + route.vc;
                let fr = cb.take_stage(lane);
                if flags & 1 != 0 {
                    cb.stage_route_port[lane] = route.port as u16;
                    cb.stage_route_vc[lane] = route.vc as u8;
                    cb.stage_mode[lane] = MODE_CENTRAL;
                    cb.free -= plen;
                    cb.open_pkt[out_lane] = pkt;
                }
                if flags & 2 != 0 {
                    cb.stage_route_port[lane] = NO_ROUTE;
                    cb.stage_mode[lane] = MODE_NONE;
                    cb.open_pkt[out_lane] = NO_PKT;
                }
                // The buffered path adds two cycles over the bypass.
                cb.queues[out_lane].push_back(CbFlit {
                    flit: fr,
                    pkt,
                    eligible_at: now + 2,
                });
                cb.queue_mask[route.port] |= 1 << route.vc;
                cb.rr_write = fast_wrap(port + 1, in_ports);
                result.cb_writes += 1;
                result.alloc_grants += 1;
                if port < net_ports {
                    result.freed_inputs.push((port, vc));
                } else {
                    result.freed_injection.push((port - net_ports, vc));
                }
                break 'write;
            }
        }
        self.scratch_noms = nominations;
        self.scratch_claimed = claimed;
    }
}

impl RouterCore {
    /// Verifies every derived SoA structure against its ground truth:
    /// occupancy words vs lane contents, the per-port credit counter vs
    /// a fresh scan, and the ST mask vs the ST-live counter. Used by the
    /// shadow-model property suite; panics on any drift.
    pub(crate) fn verify_soa_invariants(&self) {
        let in_ports = self.net_ports + self.local_ports;
        match &self.arch {
            ArchState::Edge(lanes) => {
                for port in 0..in_ports {
                    let mut word = 0u64;
                    for vc in 0..self.vcs {
                        if lanes.len[port * self.vcs + vc] > 0 {
                            word |= 1 << vc;
                        }
                    }
                    assert_eq!(
                        word, lanes.occ[port],
                        "edge occupancy word drifted at {} port {port}",
                        self.id
                    );
                }
                for lane in 0..in_ports * self.vcs {
                    assert!(
                        lanes.front_pkt[lane] == NO_PKT || lanes.len[lane] > 0,
                        "front cache set on empty lane {lane} at {}",
                        self.id
                    );
                    assert_eq!(
                        lanes.route_port[lane] == NO_ROUTE,
                        lanes.route_pkt[lane] == NO_PKT,
                        "route holder drifted at lane {lane} of {}",
                        self.id
                    );
                }
            }
            ArchState::Cb(cb) => {
                for port in 0..in_ports {
                    let mut word = 0u64;
                    for vc in 0..self.vcs {
                        if cb.stage_slot[port * self.vcs + vc].is_valid() {
                            word |= 1 << vc;
                        }
                    }
                    assert_eq!(
                        word, cb.stage_occ[port],
                        "staging occupancy word drifted at {} port {port}",
                        self.id
                    );
                }
                for lane in 0..in_ports * self.vcs {
                    assert!(
                        cb.stage_pkt[lane] == NO_PKT || cb.stage_slot[lane].is_valid(),
                        "stage cache set on empty slot {lane} at {}",
                        self.id
                    );
                }
                for out_port in 0..in_ports {
                    let mut word = 0u64;
                    for vc in 0..self.vcs {
                        if !cb.queues[out_port * self.vcs + vc].is_empty() {
                            word |= 1 << vc;
                        }
                    }
                    assert_eq!(
                        word, cb.queue_mask[out_port],
                        "CB queue mask drifted at {} out port {out_port}",
                        self.id
                    );
                }
            }
        }
        if self.out.credited {
            for port in 0..self.net_ports {
                assert_eq!(
                    self.out.port_credits[port] as usize,
                    self.out.credit_scan(port),
                    "per-port credit counter drifted at {} port {port}",
                    self.id
                );
            }
        }
        let st_count: usize = self
            .out
            .st_mask
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        assert_eq!(
            st_count, self.out.st_live,
            "ST mask/live counter drifted at {}",
            self.id
        );
        assert_eq!(
            self.live_flits,
            self.recount_flits(),
            "live-flit counter drifted at {}",
            self.id
        );
    }

    /// Drops every route-derived cache: the lazily computed front-flit
    /// routes and the cross-cycle nomination cache. Must run on every
    /// router when the routing table is swapped (fault repair) — both
    /// caches embed decisions of the outgoing table.
    pub(crate) fn invalidate_route_caches(&mut self) {
        match &mut self.arch {
            ArchState::Edge(lanes) => {
                lanes.front_pkt.fill(NO_PKT);
                lanes.front_route_port.fill(NO_ROUTE);
            }
            ArchState::Cb(cb) => {
                cb.stage_pkt.fill(NO_PKT);
                cb.stage_cport.fill(NO_ROUTE);
            }
        }
        self.nom_valid.fill(false);
    }

    /// Fault scan: reports the packet id of every wormhole commitment
    /// toward a network output port whose channel `dead_out` declares
    /// dead — held lane routes, occupied ST registers, and output-VC
    /// ownership. Those packets are pinned to the dead channel and must
    /// be dropped whole (wormhole routes never re-route mid-packet).
    pub(crate) fn stuck_packets<F: FnMut(usize) -> bool>(
        &self,
        arena: &FlitArena,
        mut dead_out: F,
        out: &mut Vec<u64>,
    ) {
        let ArchState::Edge(lanes) = &self.arch else {
            unreachable!("fault sweeps run on the edge-buffer datapath only")
        };
        for lane in 0..lanes.route_port.len() {
            let p = lanes.route_port[lane];
            if p != NO_ROUTE && (p as usize) < self.net_ports && dead_out(p as usize) {
                out.push(lanes.route_pkt[lane]);
            }
        }
        for port in 0..self.net_ports {
            if self.out.st_occupied(port) && dead_out(port) {
                out.push(arena.get(self.out.st_flit[port]).packet.0);
            }
        }
        for lane in 0..self.net_ports * self.vcs {
            let holder = self.out.out_pkt[lane];
            if holder != NO_PKT && dead_out(lane / self.vcs) {
                out.push(holder);
            }
        }
    }

    /// Fault scan: visits every flit buffered in this router. ST flits
    /// report the network output port they are about to cross
    /// (`Some(port)`); everything else reports `None`.
    pub(crate) fn scan_flits<V: FnMut(FlitRef, Option<usize>)>(&self, mut visit: V) {
        let ArchState::Edge(lanes) = &self.arch else {
            unreachable!("fault sweeps run on the edge-buffer datapath only")
        };
        for lane in 0..lanes.len.len() {
            for i in 0..u32::from(lanes.len[lane]) {
                let mut pos = u32::from(lanes.head[lane]) + i;
                if pos >= lanes.cap[lane] {
                    pos -= lanes.cap[lane];
                }
                visit(lanes.slots[(lanes.base[lane] + pos) as usize], None);
            }
        }
        for port in 0..self.net_ports + self.local_ports {
            if self.out.st_occupied(port) {
                visit(
                    self.out.st_flit[port],
                    (port < self.net_ports).then_some(port),
                );
            }
        }
    }

    /// Fault sweep: removes every flit whose packet satisfies `drop_pkt`
    /// from the input lanes and ST registers (appending the released
    /// flits to `removed`), and clears the wormhole state — held lane
    /// routes and output-VC ownership — those packets owned. Survivors
    /// keep their order. Credits are *not* touched here: the network
    /// recomputes every alive channel's credit counters from ground
    /// truth after sweeping.
    pub(crate) fn sweep_faults<D: FnMut(u64) -> bool>(
        &mut self,
        arena: &mut FlitArena,
        mut drop_pkt: D,
        removed: &mut Vec<Flit>,
    ) {
        let vcs = self.vcs;
        let net_ports = self.net_ports;
        let ArchState::Edge(lanes) = &mut self.arch else {
            unreachable!("fault sweeps run on the edge-buffer datapath only")
        };
        let mut dropped_here = 0usize;
        let mut kept: Vec<FlitRef> = Vec::new();
        for lane in 0..lanes.len.len() {
            let n = lanes.len[lane];
            if n > 0 {
                kept.clear();
                for _ in 0..n {
                    let fr = lanes.pop(lane);
                    if drop_pkt(arena.get(fr).packet.0) {
                        removed.push(arena.remove(fr));
                        dropped_here += 1;
                    } else {
                        kept.push(fr);
                    }
                }
                for &fr in &kept {
                    lanes.push(lane, fr);
                }
            }
            if lanes.route_port[lane] != NO_ROUTE && drop_pkt(lanes.route_pkt[lane]) {
                lanes.route_port[lane] = NO_ROUTE;
                lanes.route_pkt[lane] = NO_PKT;
            }
        }
        for port in 0..net_ports + self.local_ports {
            if self.out.st_occupied(port) {
                let fr = self.out.st_flit[port];
                if drop_pkt(arena.get(fr).packet.0) {
                    removed.push(arena.remove(fr));
                    self.out.st_flit[port] = FlitRef::INVALID;
                    self.out.st_mask[port >> 6] &= !(1 << (port & 63));
                    self.out.st_live -= 1;
                    dropped_here += 1;
                }
            }
        }
        for lane in 0..net_ports * vcs {
            if self.out.out_pkt[lane] != NO_PKT && drop_pkt(self.out.out_pkt[lane]) {
                self.out.out_pkt[lane] = NO_PKT;
            }
        }
        self.live_flits -= dropped_here;
    }

    /// Fault support: overwrites one output lane's credit counter with a
    /// ground-truth recount, keeping the per-port sum in sync. Callers
    /// must invalidate the nomination cache afterwards
    /// ([`RouterCore::invalidate_route_caches`]).
    pub(crate) fn set_lane_credits(&mut self, out_port: usize, vc: usize, value: usize) {
        let lane = out_port * self.vcs + vc;
        let old = self.out.credits[lane];
        let new = u32::try_from(value).expect("credit count fits u32");
        self.out.credits[lane] = new;
        self.out.port_credits[out_port] = self.out.port_credits[out_port] - old + new;
    }

    /// Whether the ST register of `out_port` holds a flit bound for
    /// output VC `vc` — that flit has already consumed a credit, so the
    /// fault-time credit recount must account for it.
    pub(crate) fn st_holds(&self, out_port: usize, vc: usize) -> bool {
        self.out.st_occupied(out_port) && self.out.st_vc[out_port] as usize == vc
    }

    /// Flits buffered in one edge input lane (harness introspection).
    pub(crate) fn lane_len(&self, port: usize, vc: usize) -> usize {
        match &self.arch {
            ArchState::Edge(lanes) => lanes.len[port * self.vcs + vc] as usize,
            ArchState::Cb(cb) => usize::from(cb.stage_slot[port * self.vcs + vc].is_valid()),
        }
    }

    /// The raw occupancy word of one input port (harness introspection).
    pub(crate) fn occupancy_word(&self, port: usize) -> u64 {
        match &self.arch {
            ArchState::Edge(lanes) => lanes.occ[port],
            ArchState::Cb(cb) => cb.stage_occ[port],
        }
    }

    /// Available credits on one output lane (harness introspection).
    pub(crate) fn credit(&self, out_port: usize, vc: usize) -> usize {
        self.out.credits[out_port * self.vcs + vc] as usize
    }

    /// The per-port available-credit counter (harness introspection).
    pub(crate) fn port_credits(&self, out_port: usize) -> usize {
        self.out.port_credits[out_port] as usize
    }

    /// Occupied ST registers (harness introspection).
    pub(crate) fn st_count(&self) -> usize {
        self.out.st_live
    }

    /// Debug helper: per-structure flit locations.
    #[doc(hidden)]
    pub(crate) fn debug_detail(&self, arena: &FlitArena) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let in_ports = self.net_ports + self.local_ports;
        match &self.arch {
            ArchState::Edge(lanes) => {
                for p in 0..in_ports {
                    for v in 0..self.vcs {
                        let lane = p * self.vcs + v;
                        if lanes.len[lane] > 0 {
                            let f = arena.get(lanes.front(lane));
                            let _ = write!(
                                out,
                                "in[{p}][{v}]={} (head {:?} route {:?}) ",
                                lanes.len[lane],
                                (f.packet, f.kind),
                                lanes.route(lane)
                            );
                        }
                    }
                }
            }
            ArchState::Cb(cb) => {
                let _ = write!(out, "cb_free={} ", cb.free);
                for p in 0..in_ports {
                    for v in 0..self.vcs {
                        let lane = p * self.vcs + v;
                        if cb.stage_slot[lane].is_valid() {
                            let f = arena.get(cb.stage_slot[lane]);
                            let _ = write!(
                                out,
                                "stage[{p}][{v}]={:?}/{:?} mode {} route {:?} ",
                                f.packet,
                                f.kind,
                                cb.stage_mode[lane],
                                cb.stage_route(lane)
                            );
                        }
                    }
                }
                for o in 0..in_ports {
                    for v in 0..self.vcs {
                        let lane = o * self.vcs + v;
                        if !cb.queues[lane].is_empty() {
                            let _ = write!(
                                out,
                                "cbq[{o}][{v}]={} head={:?} ",
                                cb.queues[lane].len(),
                                cb.queues[lane].front().map(|c| {
                                    let f = arena.get(c.flit);
                                    (f.packet, f.kind)
                                })
                            );
                        }
                    }
                }
            }
        }
        for o in 0..in_ports {
            if self.out.st_occupied(o) {
                let _ = write!(out, "st[{o}]={:?} ", arena.get(self.out.st_flit[o]).packet);
            }
        }
        for o in 0..self.net_ports {
            for v in 0..self.vcs {
                let p = self.out.out_pkt[o * self.vcs + v];
                if p != NO_PKT {
                    let _ = write!(out, "outpkt[{o}][{v}]=p{p} ");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, PacketId};
    use snoc_topology::{NodeId, Topology};

    fn table() -> (Topology, RoutingTable) {
        let t = Topology::mesh(3, 1, 1);
        let table = RoutingTable::minimal(&t);
        (t, table)
    }

    fn head_to(dst_router: usize, len: u32) -> Flit {
        Flit::packet(
            PacketId(1),
            NodeId(0),
            NodeId(dst_router),
            RouterId(dst_router),
            len,
            0,
            true,
            false,
        )[0]
    }

    fn edge_router(net_ports: usize) -> RouterCore {
        let caps = vec![5; net_ports];
        let mut r = RouterCore::new(
            RouterId(0),
            net_ports,
            1,
            2,
            RouterArch::EdgeBuffer,
            LinkMode::Credited,
            &caps,
            20,
            true,
        );
        for p in 0..net_ports {
            r.set_credits(p, 5);
        }
        r
    }

    /// Drains the ST registers through the scratch-buffer path (the same
    /// path the cycle loop uses).
    fn take_st(r: &mut RouterCore) -> Vec<(usize, StFlit)> {
        let mut out = Vec::new();
        r.drain_st(&mut out);
        out
    }

    #[test]
    fn edge_router_two_cycle_path() {
        // Router 0 of a 3x1 mesh: one network port (to router 1).
        let (_t, table) = table();
        let mut arena = FlitArena::default();
        let mut r = edge_router(1);
        let f = arena.insert(head_to(2, 1));
        // Inject via the local port.
        r.deliver(1, 0, f, &mut arena);
        let res = r.alloc(0, &table, 1, &mut arena, &|_, _| true);
        assert_eq!(res.freed_injection.len(), 1);
        let st = take_st(&mut r);
        assert_eq!(st.len(), 1);
        assert_eq!(st[0].0, 0, "departs through the network port");
        assert_eq!(arena.get(st[0].1.flit).hops, 1, "hop counted at departure");
    }

    #[test]
    fn edge_router_respects_credits() {
        let (_t, table) = table();
        let mut arena = FlitArena::default();
        let mut r = edge_router(1);
        r.set_credits(0, 0); // no downstream space
        let f = arena.insert(head_to(2, 1));
        r.deliver(1, 0, f, &mut arena);
        let res = r.alloc(0, &table, 1, &mut arena, &|_, _| true);
        assert!(res.freed_injection.is_empty(), "blocked without credits");
        assert!(take_st(&mut r).is_empty());
        r.add_credit(0, 0);
        let res = r.alloc(1, &table, 1, &mut arena, &|_, _| true);
        assert_eq!(res.freed_injection.len(), 1);
    }

    #[test]
    fn edge_router_ejects_local_traffic() {
        let (_t, table) = table();
        let mut arena = FlitArena::default();
        let mut r = edge_router(1);
        // Destination is router 0 itself -> ejection port (index 1).
        let f = arena.insert(head_to(0, 1));
        r.deliver(0, 0, f, &mut arena);
        let res = r.alloc(0, &table, 1, &mut arena, &|_, _| true);
        assert_eq!(res.freed_inputs, vec![(0, 0)]);
        let st = take_st(&mut r);
        assert_eq!(st[0].0, 1, "ejection port");
        assert_eq!(
            arena.get(st[0].1.flit).hops,
            0,
            "ejection is not a network hop"
        );
    }

    #[test]
    fn wormhole_blocks_interleaving_on_same_vc() {
        let (_t, table) = table();
        let mut arena = FlitArena::default();
        let mut r = edge_router(1);
        // Two packets on different input ports, both to router 2, VC0.
        let a = Flit::packet(
            PacketId(7),
            NodeId(0),
            NodeId(2),
            RouterId(2),
            2,
            0,
            true,
            false,
        );
        let b = Flit::packet(
            PacketId(8),
            NodeId(0),
            NodeId(2),
            RouterId(2),
            2,
            0,
            true,
            false,
        );
        let a0 = arena.insert(a[0]);
        let a1 = arena.insert(a[1]);
        let b0 = arena.insert(b[0]);
        r.deliver(1, 0, a0, &mut arena);
        r.deliver(1, 1, b0, &mut arena); // other VC of the injection port
                                         // Head A wins the output VC0; head B (routed to VC0 as well,
                                         // hops = 0) must wait until A's tail passes.
        let _ = r.alloc(0, &table, 1, &mut arena, &|_, _| true);
        let st = take_st(&mut r);
        assert_eq!(st.len(), 1);
        assert_eq!(arena.get(st[0].1.flit).packet, PacketId(7));
        // B still blocked: output VC0 held by packet 7.
        r.deliver(1, 0, a1, &mut arena); // A's tail
        let _ = r.alloc(1, &table, 1, &mut arena, &|_, _| true);
        let st = take_st(&mut r);
        assert_eq!(st.len(), 1);
        assert_eq!(arena.get(st[0].1.flit).packet, PacketId(7), "tail first");
        // Tail released the VC: B may now go.
        let _ = r.alloc(2, &table, 1, &mut arena, &|_, _| true);
        let st = take_st(&mut r);
        assert_eq!(arena.get(st[0].1.flit).packet, PacketId(8));
    }

    fn cb_router(net_ports: usize, cb: usize) -> RouterCore {
        let caps = vec![1; net_ports];
        RouterCore::new(
            RouterId(0),
            net_ports,
            1,
            2,
            RouterArch::CentralBuffer { cb_flits: cb },
            LinkMode::Elastic,
            &caps,
            20,
            true,
        )
    }

    #[test]
    fn cbr_bypass_is_fast_path() {
        let (_t, table) = table();
        let mut arena = FlitArena::default();
        let mut r = cb_router(1, 20);
        let f = arena.insert(head_to(2, 1));
        r.deliver(1, 0, f, &mut arena);
        let res = r.alloc(0, &table, 1, &mut arena, &|_, _| true);
        assert_eq!(res.bypasses, 1);
        assert_eq!(res.cb_writes, 0);
        assert_eq!(take_st(&mut r).len(), 1);
    }

    #[test]
    fn cbr_conflict_diverts_to_central_buffer() {
        let (_t, table) = table();
        let mut arena = FlitArena::default();
        let mut r = cb_router(1, 20);
        // Two single-flit packets racing for the same output.
        let f = arena.insert(head_to(2, 1));
        r.deliver(1, 0, f, &mut arena);
        let mut other = head_to(2, 1);
        other.packet = PacketId(9);
        let other = arena.insert(other);
        r.deliver(0, 0, other, &mut arena);
        let res = r.alloc(0, &table, 1, &mut arena, &|_, _| true);
        // One bypasses; the other is written into the CB.
        assert_eq!(res.bypasses, 1);
        assert_eq!(res.cb_writes, 1);
        assert_eq!(take_st(&mut r).len(), 1);
        // The CB flit becomes eligible two cycles later (4-cycle path).
        let res = r.alloc(1, &table, 1, &mut arena, &|_, _| true);
        assert_eq!(res.cb_reads, 0, "not yet eligible");
        let res = r.alloc(2, &table, 1, &mut arena, &|_, _| true);
        assert_eq!(res.cb_reads, 1);
        assert_eq!(take_st(&mut r).len(), 1);
    }

    #[test]
    fn cbr_atomic_allocation_requires_full_packet_space() {
        let (_t, table) = table();
        let mut arena = FlitArena::default();
        let mut r = cb_router(1, 6);
        // Fill the output so the bypass fails, with a 6-flit packet
        // already reserving the whole CB.
        let p1 = Flit::packet(
            PacketId(1),
            NodeId(0),
            NodeId(2),
            RouterId(2),
            6,
            0,
            true,
            false,
        );
        let p1_head = arena.insert(p1[0]);
        r.deliver(1, 0, p1_head, &mut arena);
        let mut blocker = head_to(2, 1);
        blocker.packet = PacketId(2);
        let blocker = arena.insert(blocker);
        r.deliver(0, 0, blocker, &mut arena);
        let res = r.alloc(0, &table, 1, &mut arena, &|_, _| true);
        // Blocker (or p1) bypasses; the other head wants the CB. The
        // 6-flit head reserves all 6 slots; a later head must stall.
        assert_eq!(res.bypasses + res.cb_writes, 2);
        let mut third = head_to(2, 2);
        third.packet = PacketId(3);
        third.kind = FlitKind::Head;
        third.packet_len = 2;
        let third = arena.insert(third);
        r.deliver(0, 0, third, &mut arena);
        let res = r.alloc(1, &table, 1, &mut arena, &|_, _| false);
        // Output refuses (link not ready) and the CB is fully reserved:
        // the third head can neither bypass nor enter the CB.
        assert_eq!(res.bypasses, 0);
        assert_eq!(res.cb_writes, 0);
    }

    #[test]
    fn buffered_flit_accounting() {
        let (_t, table) = table();
        let mut arena = FlitArena::default();
        let mut r = edge_router(1);
        assert_eq!(r.buffered_flits(), 0);
        let f = arena.insert(head_to(2, 1));
        r.deliver(1, 0, f, &mut arena);
        assert_eq!(r.buffered_flits(), 1);
        let _ = r.alloc(0, &table, 1, &mut arena, &|_, _| true);
        assert_eq!(r.buffered_flits(), 1, "now in the ST register");
        let _ = take_st(&mut r);
        assert_eq!(r.buffered_flits(), 0);
    }

    #[test]
    fn ring_lane_wraps_and_tracks_occupancy() {
        // Push/pop more flits through one lane than its capacity so the
        // ring head wraps; FIFO order and the occupancy word must hold.
        let (_t, table) = table();
        let mut arena = FlitArena::default();
        let mut r = edge_router(1);
        for round in 0..4u64 {
            // Fill the injection lane (capacity 20 is plenty; use 3).
            let refs: Vec<FlitRef> = (0..3)
                .map(|i| {
                    let mut f = head_to(2, 1);
                    f.packet = PacketId(round * 3 + i + 1);
                    arena.insert(f)
                })
                .collect();
            for &fr in &refs {
                r.deliver(1, 0, fr, &mut arena);
            }
            r.verify_soa_invariants();
            assert_eq!(r.occupancy_word(1) & 1, 1);
            for &fr in &refs {
                let _ = r.alloc(round, &table, 1, &mut arena, &|_, _| true);
                let st = take_st(&mut r);
                assert_eq!(st.len(), 1, "one grant per cycle");
                assert_eq!(st[0].1.flit, fr, "FIFO order across ring wraps");
                // Return the consumed credit so later rounds never stall.
                r.add_credit(st[0].0, st[0].1.out_vc);
            }
            assert_eq!(r.occupancy_word(1), 0, "lane emptied, bit cleared");
            r.verify_soa_invariants();
        }
    }

    #[test]
    fn port_credit_counter_tracks_scan() {
        let (_t, table) = table();
        let mut arena = FlitArena::default();
        let mut r = edge_router(1);
        assert_eq!(r.port_credits(0), 10, "5 credits x 2 VCs");
        let f = arena.insert(head_to(2, 1));
        r.deliver(1, 0, f, &mut arena);
        let _ = r.alloc(0, &table, 1, &mut arena, &|_, _| true);
        assert_eq!(r.port_credits(0), 9, "departure consumed one credit");
        assert_eq!(r.output_occupancy(0, 5), 2, "ST flit + consumed credit");
        r.add_credit(0, 0);
        assert_eq!(r.port_credits(0), 10);
        r.verify_soa_invariants();
    }

    #[test]
    fn minimal_specialization_matches_generic_path() {
        // The same delivery/alloc sequence through the VALIANT=true and
        // VALIANT=false instantiations must be bit-identical when no
        // intermediates are assigned (minimal routing).
        let (_t, table) = table();
        let run = |valiant: bool| -> Vec<(usize, usize, u16)> {
            let mut arena = FlitArena::default();
            let caps = vec![5; 1];
            let mut r = RouterCore::new(
                RouterId(0),
                1,
                1,
                2,
                RouterArch::EdgeBuffer,
                LinkMode::Credited,
                &caps,
                20,
                valiant,
            );
            r.set_credits(0, 5);
            let mut log = Vec::new();
            for i in 0..6u64 {
                let mut f = head_to(if i % 2 == 0 { 2 } else { 0 }, 1);
                f.packet = PacketId(i + 1);
                let fr = arena.insert(f);
                r.deliver(
                    if i % 2 == 0 { 1 } else { 0 },
                    (i % 2) as usize,
                    fr,
                    &mut arena,
                );
                let _ = r.alloc(i, &table, 1, &mut arena, &|_, _| true);
                let mut st = Vec::new();
                r.drain_st(&mut st);
                for (port, stf) in st {
                    log.push((port, stf.out_vc, arena.get(stf.flit).hops));
                }
            }
            log
        };
        assert_eq!(run(true), run(false));
    }
}
