//! Router microarchitectures: the 2-stage edge-buffer router and the
//! Central Buffer Router (§4).
//!
//! Port conventions for a router with network radix `k'` and
//! concentration `p`:
//!
//! - **input ports** `0..k'` receive from neighbor routers, ports
//!   `k'..k'+p` are injection ports from local nodes;
//! - **output ports** `0..k'` send to neighbor routers, ports
//!   `k'..k'+p` are ejection ports to local nodes.
//!
//! Both architectures share the output side: a one-entry switch-traversal
//! (ST) register per output port, per-VC wormhole output allocation, and
//! credit counters toward downstream buffers (credited links).
//!
//! All queues and registers hold 4-byte [`FlitRef`] arena indices; the
//! flit payloads live in the simulator's [`FlitArena`], so the hot
//! push/pop paths move indices, not ~64-byte structs.

use crate::config::{LinkMode, RouterArch};
use crate::flit::{Flit, FlitArena, FlitRef};
use crate::routing::{RouteDecision, RoutingTable};
use snoc_topology::RouterId;
use std::collections::VecDeque;

/// A flit sitting in the ST register, ready to traverse the switch onto
/// its output channel in the current cycle.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StFlit {
    pub flit: FlitRef,
    pub out_vc: usize,
}

/// Per-input-VC state of an edge-buffer router.
#[derive(Debug, Clone, Default)]
struct InputVc {
    buf: VecDeque<FlitRef>,
    /// Route held from head to tail of the current packet.
    route: Option<RouteDecision>,
}

/// Packet path through a CBR (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CbMode {
    Bypass,
    Central,
}

/// Per-input-VC state of a central-buffer router.
#[derive(Debug, Clone, Default)]
struct StagingVc {
    slot: Option<FlitRef>,
    route: Option<RouteDecision>,
    mode: Option<CbMode>,
}

/// A flit parked in the central buffer with its eligibility cycle.
#[derive(Debug, Clone, Copy)]
struct CbFlit {
    flit: FlitRef,
    eligible_at: u64,
}

#[derive(Debug, Clone)]
enum ArchState {
    Edge {
        /// `[in_port][vc]`.
        inputs: Vec<Vec<InputVc>>,
        /// Per-VC input buffer capacity per network input port (injection
        /// ports use the same capacity).
        capacity: Vec<usize>,
        /// Flits buffered per input port (any VC) — allocation skips
        /// ports at 0, so idle inputs cost one integer load per cycle.
        port_flits: Vec<u32>,
    },
    Cb {
        /// `[in_port][vc]` single-flit staging.
        staging: Vec<Vec<StagingVc>>,
        /// Virtual output queues in the CB: `[out_port][vc]`.
        queues: Vec<Vec<VecDeque<CbFlit>>>,
        /// Packet currently streaming through each CB queue (head
        /// admitted, tail not yet). A new head may enter a queue only
        /// when this is `None` — flits of two packets must never
        /// interleave within one queue, or each would deadlock waiting
        /// for the other (§4.3's atomicity requirement).
        open_pkt: Vec<Vec<Option<crate::flit::PacketId>>>,
        /// Remaining unreserved CB space in flits.
        free: usize,
        /// Round-robin over outputs for the single CB read port.
        rr_read: usize,
        /// Round-robin over inputs for the single CB write port.
        rr_write: usize,
        /// Occupied staging slots per input port — the bypass and
        /// CB-write scans skip ports at 0.
        staging_occ: Vec<u32>,
        /// Flits queued in the CB per output port — the CB-read scan
        /// skips outputs at 0.
        queue_flits: Vec<u32>,
    },
}

/// One router instance.
#[derive(Debug, Clone)]
pub(crate) struct RouterCore {
    pub id: RouterId,
    pub net_ports: usize,
    pub local_ports: usize,
    pub vcs: usize,
    credited: bool,
    arch: ArchState,
    /// ST register per output port (`net_ports + local_ports`).
    st: Vec<Option<StFlit>>,
    /// Wormhole output-VC allocation per network output port.
    out_pkt: Vec<Vec<Option<crate::flit::PacketId>>>,
    /// Credits toward downstream per network output port and VC.
    out_credits: Vec<Vec<usize>>,
    /// Round-robin pointer per input port (VC selection).
    rr_in: Vec<usize>,
    /// Round-robin pointer per output port (input selection).
    rr_out: Vec<usize>,
    /// Flits currently inside the router (buffers, staging, CB queues,
    /// ST registers). `0` means the router is idle and the cycle loop
    /// can skip it entirely.
    live_flits: usize,
    /// Occupied ST registers — `drain_st` returns without scanning
    /// when 0.
    st_live: usize,
    /// Reusable allocation scratch: per-output claim flags.
    scratch_claimed: Vec<bool>,
    /// Reusable allocation scratch: input nominations.
    scratch_noms: Vec<(usize, usize, RouteDecision)>,
}

/// Resource release information produced by the allocation phase.
/// Owned by the simulator and reused across routers and cycles; `alloc`
/// clears it before filling.
#[derive(Debug, Clone, Default)]
pub(crate) struct AllocResult {
    /// Network input ports whose buffer freed one slot: `(port, vc)` —
    /// the network returns one credit upstream for each.
    pub freed_inputs: Vec<(usize, usize)>,
    /// Injection input ports that freed a slot: `(local_index, vc)`.
    pub freed_injection: Vec<(usize, usize)>,
    /// Number of buffer read+write pairs performed (activity counter).
    pub buffer_accesses: u64,
    /// Number of central-buffer writes (activity counter).
    pub cb_writes: u64,
    /// Number of central-buffer reads (activity counter).
    pub cb_reads: u64,
    /// Flits that took the bypass path this cycle (activity counter).
    pub bypasses: u64,
    /// Successful allocator grants this cycle: edge grants, bypasses,
    /// central-buffer reads and writes (activity counter).
    pub alloc_grants: u64,
}

impl AllocResult {
    /// Resets the result for reuse (keeps the Vec capacities).
    pub(crate) fn clear(&mut self) {
        self.freed_inputs.clear();
        self.freed_injection.clear();
        self.buffer_accesses = 0;
        self.cb_writes = 0;
        self.cb_reads = 0;
        self.bypasses = 0;
        self.alloc_grants = 0;
    }
}

impl RouterCore {
    /// Builds a router. `input_capacity[port]` gives the per-VC buffer
    /// capacity of each network input port (RTT-sized buffers differ per
    /// port); injection ports use `inj_capacity`.
    #[allow(clippy::too_many_arguments)] // one call site, in network assembly
    pub(crate) fn new(
        id: RouterId,
        net_ports: usize,
        local_ports: usize,
        vcs: usize,
        arch: RouterArch,
        link_mode: LinkMode,
        input_capacity: &[usize],
        inj_capacity: usize,
    ) -> Self {
        assert_eq!(input_capacity.len(), net_ports, "one capacity per port");
        let in_ports = net_ports + local_ports;
        let out_ports = net_ports + local_ports;
        let arch = match arch {
            RouterArch::EdgeBuffer => {
                let mut capacity: Vec<usize> = input_capacity.to_vec();
                capacity.extend(std::iter::repeat_n(inj_capacity, local_ports));
                ArchState::Edge {
                    inputs: (0..in_ports)
                        .map(|_| vec![InputVc::default(); vcs])
                        .collect(),
                    capacity,
                    port_flits: vec![0; in_ports],
                }
            }
            RouterArch::CentralBuffer { cb_flits } => ArchState::Cb {
                staging: (0..in_ports)
                    .map(|_| vec![StagingVc::default(); vcs])
                    .collect(),
                queues: (0..out_ports)
                    .map(|_| (0..vcs).map(|_| VecDeque::new()).collect())
                    .collect(),
                open_pkt: vec![vec![None; vcs]; out_ports],
                free: cb_flits,
                rr_read: 0,
                rr_write: 0,
                staging_occ: vec![0; in_ports],
                queue_flits: vec![0; out_ports],
            },
        };
        RouterCore {
            id,
            net_ports,
            local_ports,
            vcs,
            credited: link_mode == LinkMode::Credited,
            arch,
            st: vec![None; out_ports],
            out_pkt: vec![vec![None; vcs]; net_ports],
            out_credits: vec![Vec::new(); net_ports],
            rr_in: vec![0; in_ports],
            rr_out: vec![0; out_ports],
            live_flits: 0,
            st_live: 0,
            scratch_claimed: Vec::with_capacity(out_ports),
            scratch_noms: Vec::with_capacity(in_ports),
        }
    }

    /// Initializes credit counters for a network output port.
    pub(crate) fn set_credits(&mut self, out_port: usize, per_vc: usize) {
        self.out_credits[out_port] = vec![per_vc; self.vcs];
    }

    /// Adds one returned credit.
    pub(crate) fn add_credit(&mut self, out_port: usize, vc: usize) {
        self.out_credits[out_port][vc] += 1;
    }

    /// Whether input `port` can accept a flit on `vc` right now.
    pub(crate) fn can_deliver(&self, port: usize, vc: usize) -> bool {
        match &self.arch {
            ArchState::Edge {
                inputs, capacity, ..
            } => inputs[port][vc].buf.len() < capacity[port],
            ArchState::Cb { staging, .. } => staging[port][vc].slot.is_none(),
        }
    }

    /// Deposits an arriving flit into input `port`, VC `vc`.
    ///
    /// # Panics
    ///
    /// Panics if the input has no space ([`RouterCore::can_deliver`]).
    pub(crate) fn deliver(&mut self, port: usize, vc: usize, flit: FlitRef, arena: &mut FlitArena) {
        // Valiant bookkeeping: reaching the intermediate re-targets the
        // flit at its true destination.
        let f = arena.get_mut(flit);
        if f.intermediate() == Some(self.id) {
            f.mark_intermediate_done();
        }
        self.live_flits += 1;
        match &mut self.arch {
            ArchState::Edge {
                inputs,
                capacity,
                port_flits,
            } => {
                assert!(
                    inputs[port][vc].buf.len() < capacity[port],
                    "input buffer overflow at {} port {port} vc {vc}",
                    self.id
                );
                inputs[port][vc].buf.push_back(flit);
                port_flits[port] += 1;
            }
            ArchState::Cb {
                staging,
                staging_occ,
                ..
            } => {
                assert!(
                    staging[port][vc].slot.is_none(),
                    "staging overflow at {} port {port} vc {vc}",
                    self.id
                );
                staging[port][vc].slot = Some(flit);
                staging_occ[port] += 1;
            }
        }
    }

    /// Drains the ST registers into `out` (cleared first): the flits
    /// traversing the switch this cycle, by output port. Takes a caller
    /// scratch buffer so the cycle loop allocates nothing.
    pub(crate) fn drain_st(&mut self, out: &mut Vec<(usize, StFlit)>) {
        out.clear();
        if self.st_live == 0 {
            return;
        }
        for (port, slot) in self.st.iter_mut().enumerate() {
            if let Some(st) = slot.take() {
                out.push((port, st));
            }
        }
        self.live_flits -= out.len();
        self.st_live -= out.len();
    }

    /// Whether the router holds no flits at all (nothing to allocate,
    /// no ST traffic) — idle routers are skipped by the cycle loop.
    pub(crate) fn is_idle(&self) -> bool {
        self.live_flits == 0
    }

    /// Occupancy of an output direction (ST register + consumed credits),
    /// used by adaptive routing as the local congestion signal.
    pub(crate) fn output_occupancy(&self, out_port: usize, init_credits: usize) -> usize {
        let st = usize::from(self.st[out_port].is_some());
        if self.credited && out_port < self.net_ports {
            let held: usize = self.out_credits[out_port].iter().sum();
            let total = init_credits * self.vcs;
            st + total.saturating_sub(held)
        } else {
            st
        }
    }

    /// Total flits buffered inside the router (drain detection). O(1):
    /// maintained as a counter by `deliver` / `drain_st`.
    pub(crate) fn buffered_flits(&self) -> usize {
        debug_assert_eq!(
            self.live_flits,
            self.recount_flits(),
            "live-flit counter drifted at {}",
            self.id
        );
        self.live_flits
    }

    /// Slow recount of every flit inside the router — the ground truth
    /// for the `live_flits` counter (debug assertions only).
    fn recount_flits(&self) -> usize {
        let inside: usize = match &self.arch {
            ArchState::Edge { inputs, .. } => inputs
                .iter()
                .flat_map(|p| p.iter().map(|v| v.buf.len()))
                .sum(),
            ArchState::Cb {
                staging, queues, ..
            } => {
                let s: usize = staging
                    .iter()
                    .flat_map(|p| p.iter().map(|v| usize::from(v.slot.is_some())))
                    .sum();
                let q: usize = queues
                    .iter()
                    .flat_map(|p| p.iter().map(VecDeque::len))
                    .sum();
                s + q
            }
        };
        inside + self.st.iter().filter(|s| s.is_some()).count()
    }

    /// The allocation phase. `link_ready(out_port, vc)` reports whether
    /// the outgoing channel can accept a flit next cycle (elastic mode;
    /// credited mode uses the internal credit counters). `result` is a
    /// caller-owned scratch cleared and refilled here, so the cycle loop
    /// performs no per-router allocation. `arena` resolves the buffered
    /// [`FlitRef`]s (and records the hop on departing flits).
    pub(crate) fn alloc_into(
        &mut self,
        now: u64,
        table: &RoutingTable,
        concentration: usize,
        arena: &mut FlitArena,
        link_ready: &dyn Fn(usize, usize) -> bool,
        result: &mut AllocResult,
    ) {
        result.clear();
        match &self.arch {
            ArchState::Edge { .. } => {
                self.alloc_edge(table, concentration, arena, link_ready, result);
            }
            ArchState::Cb { .. } => {
                self.alloc_cb(now, table, concentration, arena, link_ready, result);
            }
        }
    }

    /// Allocation returning a fresh result (test convenience).
    #[cfg(test)]
    pub(crate) fn alloc(
        &mut self,
        now: u64,
        table: &RoutingTable,
        concentration: usize,
        arena: &mut FlitArena,
        link_ready: &dyn Fn(usize, usize) -> bool,
    ) -> AllocResult {
        let mut result = AllocResult::default();
        self.alloc_into(now, table, concentration, arena, link_ready, &mut result);
        result
    }

    /// Computes the route for a flit at this router.
    fn compute_route(
        &self,
        table: &RoutingTable,
        concentration: usize,
        flit: &Flit,
        in_vc: usize,
    ) -> RouteDecision {
        if flit.dst_router == self.id && (flit.intermediate().is_none() || flit.intermediate_done())
        {
            // Eject to the local node's port.
            let local = flit.dst.index() % concentration;
            RouteDecision {
                port: self.net_ports + local,
                vc: 0,
            }
        } else {
            table.route(self.id, flit, in_vc, self.vcs)
        }
    }

    /// Whether output resources are available for `(out_port, out_vc)`
    /// for the given packet head/body.
    fn output_ready(
        &self,
        claimed: &[bool],
        out: RouteDecision,
        flit: &Flit,
        link_ready: &dyn Fn(usize, usize) -> bool,
    ) -> bool {
        if self.st[out.port].is_some() || claimed[out.port] {
            return false;
        }
        if out.port >= self.net_ports {
            return true; // ejection: node always consumes
        }
        // Wormhole VC allocation.
        match self.out_pkt[out.port][out.vc] {
            Some(pid) if pid != flit.packet => return false,
            _ => {}
        }
        if self.credited {
            self.out_credits[out.port][out.vc] > 0
        } else {
            link_ready(out.port, out.vc)
        }
    }

    /// Books the departure of `flit` through `out`: updates wormhole
    /// state, credits, the hop counter, and the ST register.
    fn commit_departure(&mut self, out: RouteDecision, flit: FlitRef, arena: &mut FlitArena) {
        if out.port < self.net_ports {
            let f = arena.get_mut(flit);
            if f.kind.is_head() {
                self.out_pkt[out.port][out.vc] = Some(f.packet);
            }
            if f.kind.is_tail() {
                self.out_pkt[out.port][out.vc] = None;
            }
            f.hops += 1;
            if self.credited {
                self.out_credits[out.port][out.vc] -= 1;
            }
        }
        self.st_live += 1;
        self.st[out.port] = Some(StFlit {
            flit,
            out_vc: out.vc,
        });
    }

    fn alloc_edge(
        &mut self,
        table: &RoutingTable,
        concentration: usize,
        arena: &mut FlitArena,
        link_ready: &dyn Fn(usize, usize) -> bool,
        result: &mut AllocResult,
    ) {
        let in_ports = self.net_ports + self.local_ports;
        // Pass 1 (input arbitration): each input port nominates one VC.
        // Both scratch buffers are taken from the router so repeated
        // cycles reuse their capacity.
        let mut nominations = std::mem::take(&mut self.scratch_noms);
        nominations.clear();
        let mut claimed = std::mem::take(&mut self.scratch_claimed);
        claimed.clear();
        claimed.resize(self.st.len(), false);
        for port in 0..in_ports {
            {
                let ArchState::Edge { port_flits, .. } = &self.arch else {
                    unreachable!()
                };
                if port_flits[port] == 0 {
                    continue; // empty input: nothing to nominate
                }
            }
            let start = self.rr_in[port];
            for i in 0..self.vcs {
                let vc = (start + i) % self.vcs;
                // Compute or fetch the route without holding a mutable
                // borrow of the arch state.
                let (head, route) = {
                    let ArchState::Edge { inputs, .. } = &self.arch else {
                        unreachable!()
                    };
                    let unit = &inputs[port][vc];
                    let Some(&fr) = unit.buf.front() else {
                        continue;
                    };
                    let flit = arena.get(fr);
                    let route = match unit.route {
                        Some(r) => r,
                        None => self.compute_route(table, concentration, flit, vc),
                    };
                    (*flit, route)
                };
                if self.output_ready(&claimed, route, &head, link_ready) {
                    nominations.push((port, vc, route));
                    break;
                }
            }
        }
        // Pass 2 (output arbitration): one grant per output port.
        nominations.sort_by_key(|&(port, _, route)| {
            let prio = (port + self.st.len() - self.rr_out[route.port] % self.st.len())
                % self.st.len().max(1);
            (route.port, prio)
        });
        for &(port, vc, route) in &nominations {
            if claimed[route.port] || self.st[route.port].is_some() {
                continue;
            }
            claimed[route.port] = true;
            let ArchState::Edge {
                inputs, port_flits, ..
            } = &mut self.arch
            else {
                unreachable!()
            };
            port_flits[port] -= 1;
            let unit = &mut inputs[port][vc];
            let fr = unit.buf.pop_front().expect("nominated");
            let kind = arena.get(fr).kind;
            if kind.is_head() {
                unit.route = Some(route);
            }
            if kind.is_tail() {
                unit.route = None;
            }
            self.rr_in[port] = (vc + 1) % self.vcs;
            self.rr_out[route.port] = (port + 1) % (self.net_ports + self.local_ports);
            result.buffer_accesses += 1;
            result.alloc_grants += 1;
            if port < self.net_ports {
                result.freed_inputs.push((port, vc));
            } else {
                result.freed_injection.push((port - self.net_ports, vc));
            }
            self.commit_departure(route, fr, arena);
        }
        self.scratch_noms = nominations;
        self.scratch_claimed = claimed;
    }

    fn alloc_cb(
        &mut self,
        now: u64,
        table: &RoutingTable,
        concentration: usize,
        arena: &mut FlitArena,
        link_ready: &dyn Fn(usize, usize) -> bool,
        result: &mut AllocResult,
    ) {
        let in_ports = self.net_ports + self.local_ports;
        let out_ports = self.st.len();
        let mut claimed = std::mem::take(&mut self.scratch_claimed);
        claimed.clear();
        claimed.resize(out_ports, false);

        // Phase A1: the single CB read port serves one eligible flit.
        {
            let start = {
                let ArchState::Cb { rr_read, .. } = &self.arch else {
                    unreachable!()
                };
                *rr_read
            };
            'read: for i in 0..out_ports {
                let out_port = (start + i) % out_ports;
                {
                    let ArchState::Cb { queue_flits, .. } = &self.arch else {
                        unreachable!()
                    };
                    if queue_flits[out_port] == 0 {
                        continue; // no CB flit bound for this output
                    }
                }
                for vc in 0..self.vcs {
                    let candidate = {
                        let ArchState::Cb { queues, .. } = &self.arch else {
                            unreachable!()
                        };
                        queues[out_port][vc]
                            .front()
                            .filter(|c| c.eligible_at <= now)
                            .map(|c| c.flit)
                    };
                    let Some(fr) = candidate else { continue };
                    let route = RouteDecision { port: out_port, vc };
                    if self.output_ready(&claimed, route, arena.get(fr), link_ready) {
                        claimed[out_port] = true;
                        let ArchState::Cb {
                            queues,
                            free,
                            rr_read,
                            queue_flits,
                            ..
                        } = &mut self.arch
                        else {
                            unreachable!()
                        };
                        queues[out_port][vc].pop_front();
                        queue_flits[out_port] -= 1;
                        *free += 1;
                        *rr_read = (out_port + 1) % out_ports;
                        result.cb_reads += 1;
                        result.alloc_grants += 1;
                        self.commit_departure(route, fr, arena);
                        break 'read;
                    }
                }
            }
        }

        // Phase A2: bypass — staging heads go straight for the outputs.
        let mut nominations = std::mem::take(&mut self.scratch_noms);
        nominations.clear();
        for port in 0..in_ports {
            {
                let ArchState::Cb { staging_occ, .. } = &self.arch else {
                    unreachable!()
                };
                if staging_occ[port] == 0 {
                    continue; // empty staging: nothing to bypass
                }
            }
            let start = self.rr_in[port];
            for i in 0..self.vcs {
                let vc = (start + i) % self.vcs;
                let (fr, route, mode) = {
                    let ArchState::Cb { staging, .. } = &self.arch else {
                        unreachable!()
                    };
                    let unit = &staging[port][vc];
                    let Some(fr) = unit.slot else { continue };
                    let route = match unit.route {
                        Some(r) => r,
                        None => self.compute_route(table, concentration, arena.get(fr), vc),
                    };
                    (fr, route, unit.mode)
                };
                // A packet committed to the CB keeps using it (atomic CB
                // allocation, §4.3); others try the bypass.
                if mode == Some(CbMode::Central) {
                    continue;
                }
                let flit = arena.get(fr);
                // Ordering: a *head* never bypasses a non-empty CB queue
                // for the same (output, VC) — packets on a VC stay in
                // order. Body flits of an in-flight bypass packet are
                // exempt: they already hold the output VC, and a queued
                // CB packet cannot use it until their tail passes, so
                // blocking them would deadlock the router.
                let queue_blocked = flit.kind.is_head() && {
                    let ArchState::Cb { queues, .. } = &self.arch else {
                        unreachable!()
                    };
                    route.port < out_ports && !queues[route.port][route.vc].is_empty()
                };
                if !queue_blocked && self.output_ready(&claimed, route, flit, link_ready) {
                    nominations.push((port, vc, route));
                    break;
                }
            }
        }
        for &(port, vc, route) in &nominations {
            if claimed[route.port] || self.st[route.port].is_some() {
                continue;
            }
            claimed[route.port] = true;
            let ArchState::Cb {
                staging,
                staging_occ,
                ..
            } = &mut self.arch
            else {
                unreachable!()
            };
            staging_occ[port] -= 1;
            let unit = &mut staging[port][vc];
            let fr = unit.slot.take().expect("nominated");
            let kind = arena.get(fr).kind;
            if kind.is_head() {
                unit.route = Some(route);
                unit.mode = Some(CbMode::Bypass);
            }
            if kind.is_tail() {
                unit.route = None;
                unit.mode = None;
            }
            self.rr_in[port] = (vc + 1) % self.vcs;
            result.bypasses += 1;
            result.alloc_grants += 1;
            if port < self.net_ports {
                result.freed_inputs.push((port, vc));
            } else {
                result.freed_injection.push((port - self.net_ports, vc));
            }
            self.commit_departure(route, fr, arena);
        }

        // Phase B: the single CB write port admits one flit from staging.
        let start_w = {
            let ArchState::Cb { rr_write, .. } = &self.arch else {
                unreachable!()
            };
            *rr_write
        };
        'write: for i in 0..in_ports {
            let port = (start_w + i) % in_ports;
            {
                let ArchState::Cb { staging_occ, .. } = &self.arch else {
                    unreachable!()
                };
                if staging_occ[port] == 0 {
                    continue; // empty staging: nothing to admit
                }
            }
            for vc in 0..self.vcs {
                let (fr, route, mode) = {
                    let ArchState::Cb { staging, .. } = &self.arch else {
                        unreachable!()
                    };
                    let unit = &staging[port][vc];
                    let Some(fr) = unit.slot else { continue };
                    let route = match unit.route {
                        Some(r) => r,
                        None => self.compute_route(table, concentration, arena.get(fr), vc),
                    };
                    (fr, route, unit.mode)
                };
                let flit = *arena.get(fr);
                // Heads divert to the CB only if the whole packet fits
                // (atomic allocation) and no other packet is still
                // streaming through the target queue; bodies follow
                // their head.
                let admit = match mode {
                    Some(CbMode::Central) => true,
                    Some(CbMode::Bypass) => false,
                    None => {
                        let ArchState::Cb { free, open_pkt, .. } = &self.arch else {
                            unreachable!()
                        };
                        flit.kind.is_head()
                            && *free >= flit.packet_len as usize
                            && route.port < out_ports
                            && open_pkt[route.port][route.vc].is_none()
                    }
                };
                if !admit || route.port >= out_ports {
                    continue;
                }
                let ArchState::Cb {
                    staging,
                    queues,
                    open_pkt,
                    free,
                    rr_write,
                    staging_occ,
                    queue_flits,
                    ..
                } = &mut self.arch
                else {
                    unreachable!()
                };
                staging_occ[port] -= 1;
                queue_flits[route.port] += 1;
                let unit = &mut staging[port][vc];
                let fr = unit.slot.take().expect("checked");
                if flit.kind.is_head() {
                    unit.route = Some(route);
                    unit.mode = Some(CbMode::Central);
                    *free -= flit.packet_len as usize;
                    open_pkt[route.port][route.vc] = Some(flit.packet);
                }
                if flit.kind.is_tail() {
                    unit.route = None;
                    unit.mode = None;
                    open_pkt[route.port][route.vc] = None;
                }
                // The buffered path adds two cycles over the bypass.
                queues[route.port][route.vc].push_back(CbFlit {
                    flit: fr,
                    eligible_at: now + 2,
                });
                *rr_write = (port + 1) % in_ports;
                result.cb_writes += 1;
                result.alloc_grants += 1;
                if port < self.net_ports {
                    result.freed_inputs.push((port, vc));
                } else {
                    result.freed_injection.push((port - self.net_ports, vc));
                }
                break 'write;
            }
        }
        self.scratch_noms = nominations;
        self.scratch_claimed = claimed;
    }
}

impl RouterCore {
    /// Debug helper: per-structure flit locations.
    #[doc(hidden)]
    pub(crate) fn debug_detail(&self, arena: &FlitArena) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        match &self.arch {
            ArchState::Edge { inputs, .. } => {
                for (p, vcs) in inputs.iter().enumerate() {
                    for (v, unit) in vcs.iter().enumerate() {
                        if !unit.buf.is_empty() {
                            let _ = write!(
                                out,
                                "in[{p}][{v}]={} (head {:?} route {:?}) ",
                                unit.buf.len(),
                                unit.buf.front().map(|&f| {
                                    let f = arena.get(f);
                                    (f.packet, f.kind)
                                }),
                                unit.route
                            );
                        }
                    }
                }
            }
            ArchState::Cb {
                staging,
                queues,
                free,
                ..
            } => {
                let _ = write!(out, "cb_free={free} ");
                for (p, vcs) in staging.iter().enumerate() {
                    for (v, unit) in vcs.iter().enumerate() {
                        if let Some(fr) = unit.slot {
                            let f = arena.get(fr);
                            let _ = write!(
                                out,
                                "stage[{p}][{v}]={:?}/{:?} mode {:?} route {:?} ",
                                f.packet, f.kind, unit.mode, unit.route
                            );
                        }
                    }
                }
                for (o, vcs) in queues.iter().enumerate() {
                    for (v, q) in vcs.iter().enumerate() {
                        if !q.is_empty() {
                            let _ = write!(
                                out,
                                "cbq[{o}][{v}]={} head={:?} ",
                                q.len(),
                                q.front().map(|c| {
                                    let f = arena.get(c.flit);
                                    (f.packet, f.kind)
                                })
                            );
                        }
                    }
                }
            }
        }
        for (o, st) in self.st.iter().enumerate() {
            if let Some(s) = st {
                let _ = write!(out, "st[{o}]={:?} ", arena.get(s.flit).packet);
            }
        }
        for (o, vcs) in self.out_pkt.iter().enumerate() {
            for (v, p) in vcs.iter().enumerate() {
                if let Some(p) = p {
                    let _ = write!(out, "outpkt[{o}][{v}]={p} ");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, PacketId};
    use snoc_topology::{NodeId, Topology};

    fn table() -> (Topology, RoutingTable) {
        let t = Topology::mesh(3, 1, 1);
        let table = RoutingTable::minimal(&t);
        (t, table)
    }

    fn head_to(dst_router: usize, len: u32) -> Flit {
        Flit::packet(
            PacketId(1),
            NodeId(0),
            NodeId(dst_router),
            RouterId(dst_router),
            len,
            0,
            true,
            false,
        )[0]
    }

    fn edge_router(net_ports: usize) -> RouterCore {
        let caps = vec![5; net_ports];
        let mut r = RouterCore::new(
            RouterId(0),
            net_ports,
            1,
            2,
            RouterArch::EdgeBuffer,
            LinkMode::Credited,
            &caps,
            20,
        );
        for p in 0..net_ports {
            r.set_credits(p, 5);
        }
        r
    }

    /// Drains the ST registers through the scratch-buffer path (the same
    /// path the cycle loop uses).
    fn take_st(r: &mut RouterCore) -> Vec<(usize, StFlit)> {
        let mut out = Vec::new();
        r.drain_st(&mut out);
        out
    }

    #[test]
    fn edge_router_two_cycle_path() {
        // Router 0 of a 3x1 mesh: one network port (to router 1).
        let (_t, table) = table();
        let mut arena = FlitArena::default();
        let mut r = edge_router(1);
        let f = arena.insert(head_to(2, 1));
        // Inject via the local port.
        r.deliver(1, 0, f, &mut arena);
        let res = r.alloc(0, &table, 1, &mut arena, &|_, _| true);
        assert_eq!(res.freed_injection.len(), 1);
        let st = take_st(&mut r);
        assert_eq!(st.len(), 1);
        assert_eq!(st[0].0, 0, "departs through the network port");
        assert_eq!(arena.get(st[0].1.flit).hops, 1, "hop counted at departure");
    }

    #[test]
    fn edge_router_respects_credits() {
        let (_t, table) = table();
        let mut arena = FlitArena::default();
        let mut r = edge_router(1);
        r.set_credits(0, 0); // no downstream space
        let f = arena.insert(head_to(2, 1));
        r.deliver(1, 0, f, &mut arena);
        let res = r.alloc(0, &table, 1, &mut arena, &|_, _| true);
        assert!(res.freed_injection.is_empty(), "blocked without credits");
        assert!(take_st(&mut r).is_empty());
        r.add_credit(0, 0);
        let res = r.alloc(1, &table, 1, &mut arena, &|_, _| true);
        assert_eq!(res.freed_injection.len(), 1);
    }

    #[test]
    fn edge_router_ejects_local_traffic() {
        let (_t, table) = table();
        let mut arena = FlitArena::default();
        let mut r = edge_router(1);
        // Destination is router 0 itself -> ejection port (index 1).
        let f = arena.insert(head_to(0, 1));
        r.deliver(0, 0, f, &mut arena);
        let res = r.alloc(0, &table, 1, &mut arena, &|_, _| true);
        assert_eq!(res.freed_inputs, vec![(0, 0)]);
        let st = take_st(&mut r);
        assert_eq!(st[0].0, 1, "ejection port");
        assert_eq!(
            arena.get(st[0].1.flit).hops,
            0,
            "ejection is not a network hop"
        );
    }

    #[test]
    fn wormhole_blocks_interleaving_on_same_vc() {
        let (_t, table) = table();
        let mut arena = FlitArena::default();
        let mut r = edge_router(1);
        // Two packets on different input ports, both to router 2, VC0.
        let a = Flit::packet(
            PacketId(7),
            NodeId(0),
            NodeId(2),
            RouterId(2),
            2,
            0,
            true,
            false,
        );
        let b = Flit::packet(
            PacketId(8),
            NodeId(0),
            NodeId(2),
            RouterId(2),
            2,
            0,
            true,
            false,
        );
        let a0 = arena.insert(a[0]);
        let a1 = arena.insert(a[1]);
        let b0 = arena.insert(b[0]);
        r.deliver(1, 0, a0, &mut arena);
        r.deliver(1, 1, b0, &mut arena); // other VC of the injection port
                                         // Head A wins the output VC0; head B (routed to VC0 as well,
                                         // hops = 0) must wait until A's tail passes.
        let _ = r.alloc(0, &table, 1, &mut arena, &|_, _| true);
        let st = take_st(&mut r);
        assert_eq!(st.len(), 1);
        assert_eq!(arena.get(st[0].1.flit).packet, PacketId(7));
        // B still blocked: output VC0 held by packet 7.
        r.deliver(1, 0, a1, &mut arena); // A's tail
        let _ = r.alloc(1, &table, 1, &mut arena, &|_, _| true);
        let st = take_st(&mut r);
        assert_eq!(st.len(), 1);
        assert_eq!(arena.get(st[0].1.flit).packet, PacketId(7), "tail first");
        // Tail released the VC: B may now go.
        let _ = r.alloc(2, &table, 1, &mut arena, &|_, _| true);
        let st = take_st(&mut r);
        assert_eq!(arena.get(st[0].1.flit).packet, PacketId(8));
    }

    fn cb_router(net_ports: usize, cb: usize) -> RouterCore {
        let caps = vec![1; net_ports];
        RouterCore::new(
            RouterId(0),
            net_ports,
            1,
            2,
            RouterArch::CentralBuffer { cb_flits: cb },
            LinkMode::Elastic,
            &caps,
            20,
        )
    }

    #[test]
    fn cbr_bypass_is_fast_path() {
        let (_t, table) = table();
        let mut arena = FlitArena::default();
        let mut r = cb_router(1, 20);
        let f = arena.insert(head_to(2, 1));
        r.deliver(1, 0, f, &mut arena);
        let res = r.alloc(0, &table, 1, &mut arena, &|_, _| true);
        assert_eq!(res.bypasses, 1);
        assert_eq!(res.cb_writes, 0);
        assert_eq!(take_st(&mut r).len(), 1);
    }

    #[test]
    fn cbr_conflict_diverts_to_central_buffer() {
        let (_t, table) = table();
        let mut arena = FlitArena::default();
        let mut r = cb_router(1, 20);
        // Two single-flit packets racing for the same output.
        let f = arena.insert(head_to(2, 1));
        r.deliver(1, 0, f, &mut arena);
        let mut other = head_to(2, 1);
        other.packet = PacketId(9);
        let other = arena.insert(other);
        r.deliver(0, 0, other, &mut arena);
        let res = r.alloc(0, &table, 1, &mut arena, &|_, _| true);
        // One bypasses; the other is written into the CB.
        assert_eq!(res.bypasses, 1);
        assert_eq!(res.cb_writes, 1);
        assert_eq!(take_st(&mut r).len(), 1);
        // The CB flit becomes eligible two cycles later (4-cycle path).
        let res = r.alloc(1, &table, 1, &mut arena, &|_, _| true);
        assert_eq!(res.cb_reads, 0, "not yet eligible");
        let res = r.alloc(2, &table, 1, &mut arena, &|_, _| true);
        assert_eq!(res.cb_reads, 1);
        assert_eq!(take_st(&mut r).len(), 1);
    }

    #[test]
    fn cbr_atomic_allocation_requires_full_packet_space() {
        let (_t, table) = table();
        let mut arena = FlitArena::default();
        let mut r = cb_router(1, 6);
        // Fill the output so the bypass fails, with a 6-flit packet
        // already reserving the whole CB.
        let p1 = Flit::packet(
            PacketId(1),
            NodeId(0),
            NodeId(2),
            RouterId(2),
            6,
            0,
            true,
            false,
        );
        let p1_head = arena.insert(p1[0]);
        r.deliver(1, 0, p1_head, &mut arena);
        let mut blocker = head_to(2, 1);
        blocker.packet = PacketId(2);
        let blocker = arena.insert(blocker);
        r.deliver(0, 0, blocker, &mut arena);
        let res = r.alloc(0, &table, 1, &mut arena, &|_, _| true);
        // Blocker (or p1) bypasses; the other head wants the CB. The
        // 6-flit head reserves all 6 slots; a later head must stall.
        assert_eq!(res.bypasses + res.cb_writes, 2);
        let mut third = head_to(2, 2);
        third.packet = PacketId(3);
        third.kind = FlitKind::Head;
        third.packet_len = 2;
        let third = arena.insert(third);
        r.deliver(0, 0, third, &mut arena);
        let res = r.alloc(1, &table, 1, &mut arena, &|_, _| false);
        // Output refuses (link not ready) and the CB is fully reserved:
        // the third head can neither bypass nor enter the CB.
        assert_eq!(res.bypasses, 0);
        assert_eq!(res.cb_writes, 0);
    }

    #[test]
    fn buffered_flit_accounting() {
        let (_t, table) = table();
        let mut arena = FlitArena::default();
        let mut r = edge_router(1);
        assert_eq!(r.buffered_flits(), 0);
        let f = arena.insert(head_to(2, 1));
        r.deliver(1, 0, f, &mut arena);
        assert_eq!(r.buffered_flits(), 1);
        let _ = r.alloc(0, &table, 1, &mut arena, &|_, _| true);
        assert_eq!(r.buffered_flits(), 1, "now in the ST register");
        let _ = take_st(&mut r);
        assert_eq!(r.buffered_flits(), 0);
    }
}
