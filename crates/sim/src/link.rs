//! Link channels: credited pipelined wires and elastic (ElastiStore)
//! pipelines.
//!
//! A physical link between two routers is modeled as two unidirectional
//! [`Channel`]s. Channel latency in cycles is `⌈dist/H⌉` where `dist` is
//! the Manhattan wire length in tiles and `H` the SMART hops-per-cycle
//! (§3.2.2); without a layout every link is one cycle.
//!
//! Channels move 4-byte [`FlitRef`] arena indices, not flit payloads —
//! the flit itself stays in the simulator's [`crate::flit::FlitArena`]
//! from injection to ejection.

use crate::flit::FlitRef;
use crate::router::fast_wrap;
use std::collections::VecDeque;

/// A unidirectional link channel.
#[derive(Debug, Clone)]
pub(crate) enum Channel {
    /// Ideal pipelined wire with credit-based end-to-end flow control:
    /// any number of flits may be in flight; the sender's credit counter
    /// bounds them by the downstream buffer size.
    Credited {
        /// Latency in cycles.
        latency: u64,
        /// In-flight flits tagged with arrival cycle and VC.
        in_flight: VecDeque<(u64, usize, FlitRef)>,
        /// In-flight credits (returning upstream) tagged with arrival
        /// cycle and VC.
        credits: VecDeque<(u64, usize)>,
    },
    /// Elastic-buffer link (EL-Links with ElastiStore, §4.2): `latency`
    /// pipeline stages, each with one slave latch per VC; the shared
    /// master latch lets at most one flit advance per stage per cycle.
    ///
    /// The latches are a flat struct-of-arrays slab indexed
    /// `stage * vcs + vc`, with one occupancy bitmask word per stage
    /// (bit `vc` ⇔ latch full): the advance scan is mask arithmetic
    /// (`occ[s] & !occ[s+1]` non-zero ⇔ some VC can move) and idle
    /// checks are one counter load.
    Elastic {
        /// VCs per stage.
        vcs: usize,
        /// Slave latches, `[stage * vcs + vc]`
        /// ([`FlitRef::INVALID`] = empty).
        slots: Vec<FlitRef>,
        /// Occupancy word per stage (bit `vc` set ⇔ latch full).
        occ: Vec<u64>,
        /// Round-robin pointer per stage for the shared master latch.
        rr: Vec<usize>,
        /// Flits currently in the pipeline (idle/occupancy in O(1)).
        live: u32,
    },
}

impl Channel {
    pub(crate) fn credited(latency: u64) -> Self {
        Channel::Credited {
            latency: latency.max(1),
            in_flight: VecDeque::new(),
            credits: VecDeque::new(),
        }
    }

    pub(crate) fn elastic(latency: u64, vcs: usize) -> Self {
        assert!(vcs <= 64, "occupancy words hold at most 64 VCs");
        let stages = latency.max(1) as usize;
        Channel::Elastic {
            vcs,
            slots: vec![FlitRef::INVALID; stages * vcs],
            occ: vec![0; stages],
            rr: vec![0; stages],
            live: 0,
        }
    }

    /// Latency in cycles.
    pub(crate) fn latency(&self) -> u64 {
        match self {
            Channel::Credited { latency, .. } => *latency,
            Channel::Elastic { occ, .. } => occ.len() as u64,
        }
    }

    /// Whether the sender may push a flit on `vc` this cycle.
    ///
    /// Credited channels always accept (the sender's credit counter is
    /// the real limit); elastic channels accept when stage 0's slave
    /// latch for `vc` is free.
    pub(crate) fn can_accept(&self, vc: usize) -> bool {
        match self {
            Channel::Credited { .. } => true,
            Channel::Elastic { occ, .. } => occ[0] >> vc & 1 == 0,
        }
    }

    /// Pushes a flit into the channel.
    ///
    /// # Panics
    ///
    /// Panics (elastic mode) if stage 0 is occupied — callers must check
    /// [`Channel::can_accept`].
    pub(crate) fn push(&mut self, now: u64, vc: usize, flit: FlitRef) {
        match self {
            Channel::Credited {
                latency, in_flight, ..
            } => in_flight.push_back((now + *latency, vc, flit)),
            Channel::Elastic {
                slots, occ, live, ..
            } => {
                assert!(occ[0] >> vc & 1 == 0, "elastic stage 0 busy");
                slots[vc] = flit;
                occ[0] |= 1 << vc;
                *live += 1;
            }
        }
    }

    /// Pushes a credit upstream (credited mode only; no-op for elastic).
    pub(crate) fn push_credit(&mut self, now: u64, vc: usize) {
        if let Channel::Credited {
            latency, credits, ..
        } = self
        {
            credits.push_back((now + *latency, vc));
        }
    }

    /// Pushes a flit with an absolute arrival cycle (credited mode
    /// only). The sharded engine uses this to materialize boundary
    /// flits on the receiving shard: the sender already stamped the
    /// arrival as `push_cycle + latency`, so no further delay applies.
    ///
    /// # Panics
    ///
    /// Panics on elastic channels — the sharded engine never cuts them.
    pub(crate) fn push_at(&mut self, when: u64, vc: usize, flit: FlitRef) {
        match self {
            Channel::Credited { in_flight, .. } => in_flight.push_back((when, vc, flit)),
            Channel::Elastic { .. } => panic!("push_at is credited-only"),
        }
    }

    /// Pushes a credit with an absolute arrival cycle (credited mode
    /// only) — the boundary-credit counterpart of [`Channel::push_at`].
    pub(crate) fn push_credit_at(&mut self, when: u64, vc: usize) {
        if let Channel::Credited { credits, .. } = self {
            credits.push_back((when, vc));
        }
    }

    /// Advances the elastic pipeline by one cycle, except the final
    /// stage (drained by [`Channel::pop_deliverable`]). At most one flit
    /// advances per stage (shared master latch).
    pub(crate) fn tick(&mut self) {
        if let Channel::Elastic {
            vcs,
            slots,
            occ,
            rr,
            ..
        } = self
        {
            let vcs = *vcs;
            // Advance from the tail towards the head so a slot freed this
            // cycle can be refilled next cycle only (one-stage-per-cycle).
            for s in (0..occ.len().saturating_sub(1)).rev() {
                // A VC can advance iff its bit is set here and clear in
                // the next stage — one mask op decides the whole stage.
                let movable = occ[s] & !occ[s + 1];
                if movable == 0 {
                    continue;
                }
                let start = rr[s];
                for i in 0..vcs {
                    let vc = fast_wrap(start + i, vcs);
                    if movable >> vc & 1 == 1 {
                        slots[(s + 1) * vcs + vc] = slots[s * vcs + vc];
                        slots[s * vcs + vc] = FlitRef::INVALID;
                        occ[s] &= !(1 << vc);
                        occ[s + 1] |= 1 << vc;
                        rr[s] = fast_wrap(vc + 1, vcs);
                        break; // shared master: one advance per stage
                    }
                }
            }
        }
    }

    /// Pops one flit that has arrived at the receiver, if any.
    ///
    /// `accept(vc)` tells the channel whether the receiver has space on
    /// that VC; elastic channels leave blocked flits in the final stage
    /// (backpressure), credited channels assert acceptance (credits
    /// guarantee space).
    pub(crate) fn pop_deliverable(
        &mut self,
        now: u64,
        mut accept: impl FnMut(usize) -> bool,
    ) -> Option<(usize, FlitRef)> {
        match self {
            Channel::Credited { in_flight, .. } => {
                if let Some(&(when, vc, _)) = in_flight.front() {
                    if when <= now {
                        assert!(accept(vc), "credited delivery must have space");
                        let (_, vc, flit) = in_flight.pop_front().expect("checked");
                        return Some((vc, flit));
                    }
                }
                None
            }
            Channel::Elastic {
                vcs,
                slots,
                occ,
                rr,
                live,
            } => {
                let vcs = *vcs;
                let last = occ.len() - 1;
                if occ[last] == 0 {
                    return None;
                }
                let start = rr[last];
                for i in 0..vcs {
                    let vc = fast_wrap(start + i, vcs);
                    if occ[last] >> vc & 1 == 1 && accept(vc) {
                        rr[last] = fast_wrap(vc + 1, vcs);
                        occ[last] &= !(1 << vc);
                        *live -= 1;
                        let flit = slots[last * vcs + vc];
                        slots[last * vcs + vc] = FlitRef::INVALID;
                        return Some((vc, flit));
                    }
                }
                None
            }
        }
    }

    /// Pops one credit that has arrived by `now` (credited mode). The
    /// cycle loop drains with `while let` — no per-cycle allocation.
    pub(crate) fn pop_credit(&mut self, now: u64) -> Option<usize> {
        if let Channel::Credited { credits, .. } = self {
            if let Some(&(when, vc)) = credits.front() {
                if when <= now {
                    credits.pop_front();
                    return Some(vc);
                }
            }
        }
        None
    }

    /// Whether the channel holds no flits and no in-flight credits —
    /// idle channels are skipped by the cycle loop entirely.
    pub(crate) fn is_idle(&self) -> bool {
        match self {
            Channel::Credited {
                in_flight, credits, ..
            } => in_flight.is_empty() && credits.is_empty(),
            Channel::Elastic { live, .. } => *live == 0,
        }
    }

    /// A conservative earliest cycle at which this channel can change
    /// state, used by the cycle-skipping fast-forward. `None` means the
    /// channel is idle (nothing will ever happen without a new push).
    ///
    /// Credited wires are passive between the push and the scheduled
    /// arrival, so the head-of-queue arrival cycles bound the next event
    /// exactly (the caller clamps results into the future — a blocked
    /// head due in the past simply means "next cycle"). Elastic
    /// pipelines latch every cycle while occupied, so they pin the next
    /// event to `now + 1`.
    pub(crate) fn next_event(&self, now: u64) -> Option<u64> {
        match self {
            Channel::Credited {
                in_flight, credits, ..
            } => {
                let flit = in_flight.front().map(|&(when, _, _)| when);
                let credit = credits.front().map(|&(when, _)| when);
                match (flit, credit) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                }
            }
            Channel::Elastic { .. } => {
                if self.is_idle() {
                    None
                } else {
                    Some(now + 1)
                }
            }
        }
    }

    /// Number of flits currently inside the channel (for occupancy-based
    /// adaptive routing and drain checks).
    pub(crate) fn occupancy(&self) -> usize {
        match self {
            Channel::Credited { in_flight, .. } => in_flight.len(),
            Channel::Elastic { live, .. } => *live as usize,
        }
    }

    /// Fault scan (credited mode — the fault-injection envelope):
    /// visits every in-flight flit, in wire order.
    pub(crate) fn scan_flits<V: FnMut(FlitRef)>(&self, mut visit: V) {
        match self {
            Channel::Credited { in_flight, .. } => {
                for &(_, _, fr) in in_flight {
                    visit(fr);
                }
            }
            Channel::Elastic { .. } => unreachable!("fault scans run on credited links only"),
        }
    }

    /// Fault sweep (credited mode — the fault-injection envelope):
    /// removes every in-flight flit whose packet satisfies `drop_pkt`,
    /// appending the released flits to `removed`; with `dead` the wire
    /// itself failed, so everything on it — flits *and* returning
    /// credits — is lost. Survivor order is preserved.
    pub(crate) fn sweep_faults<D: FnMut(u64) -> bool>(
        &mut self,
        arena: &mut crate::flit::FlitArena,
        mut drop_pkt: D,
        dead: bool,
        removed: &mut Vec<crate::flit::Flit>,
    ) {
        let Channel::Credited {
            in_flight, credits, ..
        } = self
        else {
            unreachable!("fault sweeps run on credited links only")
        };
        let mut kept = VecDeque::with_capacity(in_flight.len());
        for (when, vc, fr) in in_flight.drain(..) {
            if dead || drop_pkt(arena.get(fr).packet.0) {
                removed.push(arena.remove(fr));
            } else {
                kept.push_back((when, vc, fr));
            }
        }
        *in_flight = kept;
        if dead {
            credits.clear();
        }
    }

    /// Flits in flight on one VC (fault-time credit recount).
    pub(crate) fn wire_count(&self, vc: usize) -> usize {
        match self {
            Channel::Credited { in_flight, .. } => {
                in_flight.iter().filter(|&&(_, v, _)| v == vc).count()
            }
            Channel::Elastic { .. } => unreachable!("fault recounts run on credited links only"),
        }
    }

    /// Credits in flight back upstream on one VC (fault-time credit
    /// recount).
    pub(crate) fn credit_count(&self, vc: usize) -> usize {
        match self {
            Channel::Credited { credits, .. } => credits.iter().filter(|&&(_, v)| v == vc).count(),
            Channel::Elastic { .. } => unreachable!("fault recounts run on credited links only"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{Flit, FlitArena, PacketId};
    use snoc_topology::{NodeId, RouterId};

    /// An arena pre-filled with `n` single-flit packets; `refs[i]` is
    /// packet `i`.
    fn arena(n: u64) -> (FlitArena, Vec<FlitRef>) {
        let mut arena = FlitArena::default();
        let refs = (0..n)
            .map(|i| {
                arena.insert(
                    Flit::packet(
                        PacketId(i),
                        NodeId(0),
                        NodeId(1),
                        RouterId(1),
                        1,
                        0,
                        true,
                        false,
                    )[0],
                )
            })
            .collect();
        (arena, refs)
    }

    #[test]
    fn credited_delivers_after_latency() {
        let (_a, f) = arena(2);
        let mut ch = Channel::credited(3);
        ch.push(10, 0, f[1]);
        assert!(ch.pop_deliverable(12, |_| true).is_none());
        let (vc, got) = ch.pop_deliverable(13, |_| true).unwrap();
        assert_eq!(vc, 0);
        assert_eq!(got, f[1]);
        assert!(ch.pop_deliverable(14, |_| true).is_none());
    }

    #[test]
    fn credited_preserves_order() {
        let (_a, f) = arena(3);
        let mut ch = Channel::credited(2);
        ch.push(0, 0, f[1]);
        ch.push(1, 1, f[2]);
        assert_eq!(ch.pop_deliverable(2, |_| true).unwrap().1, f[1]);
        assert_eq!(ch.pop_deliverable(3, |_| true).unwrap().1, f[2]);
    }

    #[test]
    fn credit_return_is_delayed() {
        let mut ch = Channel::credited(4);
        ch.push_credit(5, 1);
        assert!(!ch.is_idle(), "in-flight credit keeps the channel busy");
        assert!(ch.pop_credit(8).is_none());
        assert_eq!(ch.pop_credit(9), Some(1));
        assert!(ch.pop_credit(10).is_none());
        assert!(ch.is_idle());
    }

    #[test]
    fn elastic_pipeline_advances_one_stage_per_cycle() {
        let (_a, f) = arena(8);
        let mut ch = Channel::elastic(3, 2);
        assert!(ch.can_accept(0));
        ch.push(0, 0, f[7]);
        assert!(!ch.can_accept(0));
        assert!(ch.can_accept(1), "other VC slot still free");
        // After one tick the flit is in stage 1; after two, stage 2
        // (final). Only then is it deliverable.
        ch.tick();
        assert!(ch.pop_deliverable(2, |_| true).is_none());
        ch.tick();
        let (vc, got) = ch.pop_deliverable(3, |_| true).unwrap();
        assert_eq!((vc, got), (0, f[7]));
    }

    #[test]
    fn elastic_backpressure_holds_flit_in_final_stage() {
        let (_a, f) = arena(2);
        let mut ch = Channel::elastic(1, 1);
        ch.push(0, 0, f[1]);
        // Receiver refuses: flit stays, stage 0 remains blocked.
        assert!(ch.pop_deliverable(1, |_| false).is_none());
        assert!(!ch.can_accept(0));
        // Receiver accepts later.
        assert!(ch.pop_deliverable(2, |_| true).is_some());
        assert!(ch.can_accept(0));
    }

    #[test]
    fn elastic_shared_master_admits_one_advance_per_stage() {
        let (_a, f) = arena(3);
        let mut ch = Channel::elastic(2, 2);
        ch.push(0, 0, f[1]);
        ch.push(0, 1, f[2]);
        ch.tick(); // only one of the two can advance to stage 1
        let advanced = !ch.can_accept(0) as usize + !ch.can_accept(1) as usize;
        assert_eq!(advanced, 1, "one VC still occupies stage 0");
    }

    #[test]
    fn elastic_round_robin_alternates_vcs() {
        let (_a, f) = arena(3);
        let mut ch = Channel::elastic(1, 2);
        ch.push(0, 0, f[1]);
        ch.push(0, 1, f[2]);
        let (vc1, _) = ch.pop_deliverable(1, |_| true).unwrap();
        let (vc2, _) = ch.pop_deliverable(2, |_| true).unwrap();
        assert_ne!(vc1, vc2, "round-robin serves both VCs");
    }

    #[test]
    fn occupancy_counts() {
        let (_a, f) = arena(3);
        let mut ch = Channel::credited(2);
        assert_eq!(ch.occupancy(), 0);
        ch.push(0, 0, f[1]);
        ch.push(0, 1, f[2]);
        assert_eq!(ch.occupancy(), 2);
        ch.pop_deliverable(2, |_| true);
        assert_eq!(ch.occupancy(), 1);
    }

    #[test]
    fn next_event_tracks_heads_and_idleness() {
        let (_a, f) = arena(2);
        let mut ch = Channel::credited(3);
        assert_eq!(ch.next_event(0), None, "idle channel");
        ch.push(0, 0, f[0]); // arrives at 3
        ch.push_credit(1, 0); // arrives at 4
        assert_eq!(ch.next_event(0), Some(3));
        assert!(ch.pop_deliverable(3, |_| true).is_some());
        assert_eq!(ch.next_event(3), Some(4), "credit head remains");
        assert_eq!(ch.pop_credit(4), Some(0));
        assert_eq!(ch.next_event(4), None);
        // Elastic pipelines tick every cycle while occupied.
        let mut el = Channel::elastic(3, 1);
        assert_eq!(el.next_event(7), None);
        el.push(7, 0, f[1]);
        assert_eq!(el.next_event(7), Some(8));
    }
}
