//! Test-only harness over `RouterCore`: a stable, `pub` surface for
//! the struct-of-arrays shadow-model property suite
//! (`tests/soa_props.rs`), which cannot name the `pub(crate)` router
//! internals directly.
//!
//! Hidden from docs on purpose — nothing here is a supported API; it
//! exists so an integration test can drive single-router
//! deliver/alloc/drain/credit sequences and audit the derived SoA
//! structures (occupancy bitmask words, the per-port credit counter,
//! the ST mask) against ground truth after every step.

use crate::config::{LinkMode, RouterArch};
use crate::flit::{Flit, FlitArena, PacketId};
use crate::router::{AllocResult, RouterCore, StFlit};
use crate::routing::RoutingTable;
use snoc_topology::{NodeId, RouterId, Topology};

/// A single router plus the minimum context needed to drive it: a flit
/// arena and a routing table over a small mesh.
#[derive(Debug)]
pub struct RouterHarness {
    core: RouterCore,
    arena: FlitArena,
    table: RoutingTable,
    topo: Topology,
    concentration: usize,
    next_pid: u64,
    scratch_st: Vec<(usize, StFlit)>,
    scratch_alloc: AllocResult,
}

/// What one allocation cycle granted (mirror of the internal
/// `AllocResult`, with owned vectors).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllocSummary {
    /// Network input lanes that freed one buffer slot: `(port, vc)`.
    pub freed_inputs: Vec<(usize, usize)>,
    /// Injection lanes that freed a slot: `(local_index, vc)`.
    pub freed_injection: Vec<(usize, usize)>,
    /// Total allocator grants this cycle.
    pub grants: u64,
    /// Central-buffer writes this cycle.
    pub cb_writes: u64,
    /// Central-buffer reads this cycle.
    pub cb_reads: u64,
    /// Bypass grants this cycle.
    pub bypasses: u64,
}

impl RouterHarness {
    /// Builds the center router of a 3x3 mesh (4 network ports, 1 local
    /// port) with the given VC count and per-VC buffer capacity.
    ///
    /// `arch` selects the router microarchitecture; `credited` the link
    /// flow control (credited links get `capacity` credits per VC).
    #[must_use]
    pub fn center_of_mesh(vcs: usize, capacity: usize, arch: HarnessArch, credited: bool) -> Self {
        let topo = Topology::mesh(3, 3, 1);
        let table = RoutingTable::minimal(&topo);
        let center = RouterId(4);
        let net_ports = table.port_count(center);
        assert_eq!(net_ports, 4, "mesh center has 4 neighbors");
        let caps = vec![capacity; net_ports];
        let arch = match arch {
            HarnessArch::Edge => RouterArch::EdgeBuffer,
            HarnessArch::Cb { cb_flits } => RouterArch::CentralBuffer { cb_flits },
        };
        let link_mode = if credited {
            LinkMode::Credited
        } else {
            LinkMode::Elastic
        };
        let mut core = RouterCore::new(
            center, net_ports, 1, vcs, arch, link_mode, &caps, capacity, false,
        );
        if credited {
            for p in 0..net_ports {
                core.set_credits(p, capacity);
            }
        }
        RouterHarness {
            core,
            arena: FlitArena::default(),
            table,
            topo,
            concentration: 1,
            next_pid: 0,
            scratch_st: Vec::new(),
            scratch_alloc: AllocResult::default(),
        }
    }

    /// Input ports of the router (network + injection).
    #[must_use]
    pub fn in_ports(&self) -> usize {
        self.core.net_ports + self.core.local_ports
    }

    /// Network (non-local) ports.
    #[must_use]
    pub fn net_ports(&self) -> usize {
        self.core.net_ports
    }

    /// Nodes in the backing topology (valid flit destinations).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.topo.node_count()
    }

    /// Whether input `port` can accept a flit on `vc`.
    #[must_use]
    pub fn can_deliver(&self, port: usize, vc: usize) -> bool {
        self.core.can_deliver(port, vc)
    }

    /// Delivers a fresh single-flit packet for node `dst` into
    /// `(port, vc)` if there is space; returns whether it was accepted.
    pub fn try_deliver(&mut self, port: usize, vc: usize, dst: usize) -> bool {
        if !self.core.can_deliver(port, vc) {
            return false;
        }
        let dst = NodeId(dst % self.topo.node_count());
        let dst_router = self.topo.router_of(dst);
        self.next_pid += 1;
        let flit = Flit::packet(
            PacketId(self.next_pid),
            NodeId(0),
            dst,
            dst_router,
            1,
            0,
            true,
            false,
        )[0];
        let fr = self.arena.insert(flit);
        self.core.deliver(port, vc, fr, &mut self.arena);
        true
    }

    /// Runs one allocation cycle with an always-ready link predicate.
    pub fn alloc(&mut self, now: u64) -> AllocSummary {
        let mut res = std::mem::take(&mut self.scratch_alloc);
        self.core.alloc_into(
            now,
            &self.table,
            self.concentration,
            &mut self.arena,
            &|_, _| true,
            &mut res,
        );
        let summary = AllocSummary {
            freed_inputs: res.freed_inputs.clone(),
            freed_injection: res.freed_injection.clone(),
            grants: res.alloc_grants,
            cb_writes: res.cb_writes,
            cb_reads: res.cb_reads,
            bypasses: res.bypasses,
        };
        self.scratch_alloc = res;
        summary
    }

    /// Drains the ST registers, removing the departing flits from the
    /// arena (the harness has no downstream). Returns `(out_port, vc)`
    /// pairs in drain order.
    pub fn drain(&mut self) -> Vec<(usize, usize)> {
        let mut st = std::mem::take(&mut self.scratch_st);
        self.core.drain_st(&mut st);
        let out = st
            .iter()
            .map(|&(port, stf)| {
                self.arena.remove(stf.flit);
                (port, stf.out_vc)
            })
            .collect();
        self.scratch_st = st;
        out
    }

    /// Returns one credit to `(out_port, vc)`.
    pub fn add_credit(&mut self, out_port: usize, vc: usize) {
        self.core.add_credit(out_port, vc);
    }

    /// Flits waiting in one input lane (edge: buffer depth; CBR: staging
    /// slot occupancy as 0/1).
    #[must_use]
    pub fn lane_len(&self, port: usize, vc: usize) -> usize {
        self.core.lane_len(port, vc)
    }

    /// The raw occupancy bitmask word of one input port.
    #[must_use]
    pub fn occupancy_word(&self, port: usize) -> u64 {
        self.core.occupancy_word(port)
    }

    /// Available credits on `(out_port, vc)`.
    #[must_use]
    pub fn credit(&self, out_port: usize, vc: usize) -> usize {
        self.core.credit(out_port, vc)
    }

    /// The per-port available-credit counter (satellite of the SoA
    /// refactor: must always equal the per-VC credit scan).
    #[must_use]
    pub fn port_credits(&self, out_port: usize) -> usize {
        self.core.port_credits(out_port)
    }

    /// Occupied ST registers.
    #[must_use]
    pub fn st_count(&self) -> usize {
        self.core.st_count()
    }

    /// Flits inside the router (buffers + staging + CB queues + ST).
    #[must_use]
    pub fn buffered_flits(&self) -> usize {
        self.core.buffered_flits()
    }

    /// The adaptive-routing congestion probe for one output port.
    #[must_use]
    pub fn output_occupancy(&self, out_port: usize, init_credits: usize) -> usize {
        self.core.output_occupancy(out_port, init_credits)
    }

    /// Audits every derived SoA structure (occupancy words, credit
    /// counters, ST mask, live-flit counter) against a fresh recount.
    ///
    /// # Panics
    ///
    /// Panics if any maintained structure drifted from ground truth.
    pub fn verify_invariants(&self) {
        self.core.verify_soa_invariants();
    }
}

/// Router microarchitecture selector for [`RouterHarness`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HarnessArch {
    /// Edge-buffer router (per-VC input ring buffers).
    Edge,
    /// Central-buffer router with the given CB capacity in flits.
    Cb {
        /// Central-buffer capacity in flits.
        cb_flits: usize,
    },
}
