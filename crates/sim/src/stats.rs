//! Simulation statistics and activity counters.

use std::fmt;

/// Hardware activity counters accumulated during simulation — the inputs
/// to the dynamic-power model (buffer/crossbar/allocator/wire energy,
/// §5.1's dynamic power breakdown).
///
/// All counters are incremented in the simulator's hot loop as plain
/// `u64` additions on existing code paths (no per-cycle allocation).
/// Invariants maintained by the cycle loop within one measurement
/// window:
///
/// - `crossbar_traversals == link_flit_hops + ejections` — every flit
///   leaving the ST stage either crosses a link or ejects locally;
/// - `wire_flit_tiles >= link_flit_hops` — every link is at least one
///   tile long;
/// - for edge-buffer routers `alloc_grants == buffer_accesses`, for
///   central-buffer routers `alloc_grants == bypasses + cb_reads +
///   cb_writes` — each successful grant moves exactly one flit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActivityCounters {
    /// Edge-buffer write+read pairs (legacy aggregate kept for the
    /// counter invariants; the power model charges the exact
    /// `buffer_reads`/`buffer_writes` event counters instead).
    pub buffer_accesses: u64,
    /// Input-buffer and staging writes: flits deposited into a router
    /// by link delivery or injection.
    pub buffer_writes: u64,
    /// Input-buffer and staging reads: flits popped by the allocator
    /// (edge-buffer pops plus staging takes on the CBR paths).
    pub buffer_reads: u64,
    /// Central buffer writes.
    pub cb_writes: u64,
    /// Central buffer reads.
    pub cb_reads: u64,
    /// CBR bypass traversals.
    pub bypasses: u64,
    /// Crossbar traversals (every ST-stage flit).
    pub crossbar_traversals: u64,
    /// Successful allocator grants (switch-allocation winners: edge
    /// grants, CBR bypasses, central-buffer reads and writes) — the
    /// activity factor of the `k²·|VC|²` allocation logic.
    pub alloc_grants: u64,
    /// Flits crossing router-to-router links (one count per link
    /// traversal, independent of wire length).
    pub link_flit_hops: u64,
    /// Flit·tile products over all wire traversals (wire dynamic energy
    /// is proportional to distance travelled).
    pub wire_flit_tiles: u64,
    /// Flits handed to local nodes.
    pub ejections: u64,
    /// Flits of measured packets discarded by live fault injection
    /// (dead hardware, severed routes). Always 0 on fault-free runs —
    /// the JSON serialization omits it then, keeping fault-free reports
    /// byte-identical to pre-fault-subsystem ones.
    pub dropped_flits: u64,
}

impl ActivityCounters {
    /// Folds one router's allocation cycle into the window counters.
    ///
    /// Lives here (not at the call site) so the counter semantics stay
    /// next to the conservation laws they feed: edge-buffer pops and
    /// CBR staging takes (bypass and CB-write paths) each read one
    /// buffered flit, while central-buffer reads are accounted
    /// separately via `cb_reads`.
    pub(crate) fn record_alloc(&mut self, res: &crate::router::AllocResult) {
        self.buffer_accesses += res.buffer_accesses;
        self.buffer_reads += res.buffer_accesses + res.bypasses + res.cb_writes;
        self.cb_writes += res.cb_writes;
        self.cb_reads += res.cb_reads;
        self.bypasses += res.bypasses;
        self.alloc_grants += res.alloc_grants;
    }

    /// Element-wise accumulation.
    pub fn add(&mut self, other: &ActivityCounters) {
        self.buffer_accesses += other.buffer_accesses;
        self.buffer_writes += other.buffer_writes;
        self.buffer_reads += other.buffer_reads;
        self.cb_writes += other.cb_writes;
        self.cb_reads += other.cb_reads;
        self.bypasses += other.bypasses;
        self.crossbar_traversals += other.crossbar_traversals;
        self.alloc_grants += other.alloc_grants;
        self.link_flit_hops += other.link_flit_hops;
        self.wire_flit_tiles += other.wire_flit_tiles;
        self.ejections += other.ejections;
        self.dropped_flits += other.dropped_flits;
    }
}

/// An engine-independent extract of one simulation run's metrics: the
/// comparison interface of the differential-verification harness.
///
/// Both the optimized event-accelerated simulator (via
/// [`Conformance::snapshot`] on [`SimReport`]) and the golden reference
/// simulator (`snoc_refsim`) emit this structure, so the harness never
/// reaches into either engine's internal state. Two engines agree on a
/// run exactly when their snapshots are equal; the latency histogram is
/// normalized (trailing zero bins trimmed) so engines that size their
/// histograms differently still compare equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Cycles in the measurement window.
    pub measured_cycles: u64,
    /// Total cycles simulated (warmup + measurement + drain).
    pub total_cycles: u64,
    /// Endpoint count.
    pub nodes: usize,
    /// Packets created during the measurement window.
    pub injected_packets: u64,
    /// Measured packets fully delivered.
    pub delivered_packets: u64,
    /// Measured flits delivered.
    pub delivered_flits: u64,
    /// Sum of packet latencies over delivered measured packets.
    pub latency_sum: u64,
    /// Maximum packet latency observed.
    pub latency_max: u64,
    /// Sum of network hop counts over delivered measured packets.
    pub hops_sum: u64,
    /// Packets dropped at generation because the injection queue was full.
    pub stalled_generations: u64,
    /// Measured packets destroyed by live fault injection (0 on
    /// fault-free runs).
    pub dropped_packets: u64,
    /// Whether every measured packet drained.
    pub drained: bool,
    /// Hardware activity during the measurement window.
    pub activity: ActivityCounters,
    /// Latency histogram (1-cycle bins, trailing zeros trimmed).
    pub latency_histogram: Vec<u64>,
}

impl Snapshot {
    /// Mean packet latency in cycles (0 with no deliveries).
    #[must_use]
    pub fn mean_latency(&self) -> f64 {
        if self.delivered_packets == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.delivered_packets as f64
        }
    }

    /// Mean network hops per delivered packet (0 with no deliveries).
    #[must_use]
    pub fn mean_hops(&self) -> f64 {
        if self.delivered_packets == 0 {
            0.0
        } else {
            self.hops_sum as f64 / self.delivered_packets as f64
        }
    }

    /// Accepted throughput in flits/node/cycle.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.measured_cycles == 0 || self.nodes == 0 {
            0.0
        } else {
            self.delivered_flits as f64 / (self.measured_cycles as f64 * self.nodes as f64)
        }
    }

    /// Checks every engine-independent conservation law a correct
    /// simulator must satisfy within one measurement window:
    ///
    /// - every crossbar traversal either crossed a link or ejected
    ///   (`crossbar_traversals == link_flit_hops + ejections`);
    /// - wires are at least one tile long
    ///   (`wire_flit_tiles >= link_flit_hops`);
    /// - every allocator grant moved exactly one flit
    ///   (`alloc_grants == buffer_accesses + bypasses + cb_reads +
    ///   cb_writes`; one side is all-zero per router architecture);
    /// - every buffered flit popped was read once
    ///   (`buffer_reads == buffer_accesses + bypasses + cb_writes`);
    /// - no packet is delivered that was not injected
    ///   (`delivered + dropped <= injected`), and a drained run
    ///   accounted for every measured packet
    ///   (`delivered + dropped == injected` — fault injection extends
    ///   the law: a measured packet either arrives or is counted
    ///   dropped, never silently lost);
    /// - the latency histogram accounts for every delivered packet.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated law.
    pub fn check_conservation(&self) -> Result<(), String> {
        let a = &self.activity;
        if a.crossbar_traversals != a.link_flit_hops + a.ejections {
            return Err(format!(
                "crossbar {} != link_hops {} + ejections {}",
                a.crossbar_traversals, a.link_flit_hops, a.ejections
            ));
        }
        if a.wire_flit_tiles < a.link_flit_hops {
            return Err(format!(
                "wire_flit_tiles {} < link_flit_hops {}",
                a.wire_flit_tiles, a.link_flit_hops
            ));
        }
        let moved = a.buffer_accesses + a.bypasses + a.cb_reads + a.cb_writes;
        if a.alloc_grants != moved {
            return Err(format!(
                "alloc_grants {} != flits moved by grants {moved}",
                a.alloc_grants
            ));
        }
        let reads = a.buffer_accesses + a.bypasses + a.cb_writes;
        if a.buffer_reads != reads {
            return Err(format!(
                "buffer_reads {} != pops + staging takes {reads}",
                a.buffer_reads
            ));
        }
        if self.delivered_packets + self.dropped_packets > self.injected_packets {
            return Err(format!(
                "delivered {} + dropped {} > injected {}",
                self.delivered_packets, self.dropped_packets, self.injected_packets
            ));
        }
        if self.drained && self.delivered_packets + self.dropped_packets != self.injected_packets {
            return Err(format!(
                "drained run delivered {} and dropped {} of {} injected",
                self.delivered_packets, self.dropped_packets, self.injected_packets
            ));
        }
        let hist: u64 = self.latency_histogram.iter().sum();
        if hist != self.delivered_packets {
            return Err(format!(
                "histogram mass {hist} != delivered {}",
                self.delivered_packets
            ));
        }
        Ok(())
    }
}

/// Metric extraction for differential verification: any simulation
/// engine whose results can be condensed to a [`Snapshot`].
pub trait Conformance {
    /// Extracts the engine-independent metrics of a finished run.
    fn snapshot(&self) -> Snapshot;
}

impl Conformance for SimReport {
    fn snapshot(&self) -> Snapshot {
        let mut hist = self.latency_histogram.clone();
        while hist.last() == Some(&0) {
            hist.pop();
        }
        Snapshot {
            measured_cycles: self.measured_cycles,
            total_cycles: self.total_cycles,
            nodes: self.nodes,
            injected_packets: self.injected_packets,
            delivered_packets: self.delivered_packets,
            delivered_flits: self.delivered_flits,
            latency_sum: self.latency_sum,
            latency_max: self.latency_max,
            hops_sum: self.hops_sum,
            stalled_generations: self.stalled_generations,
            dropped_packets: self.dropped_packets,
            drained: self.drained,
            activity: self.activity,
            latency_histogram: hist,
        }
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Cycles simulated after warmup (the measurement window).
    pub measured_cycles: u64,
    /// Total cycles simulated (warmup + measurement + drain).
    pub total_cycles: u64,
    /// Endpoint count (for per-node rates).
    pub nodes: usize,
    /// Packets created during the measurement window.
    pub injected_packets: u64,
    /// Measured packets fully delivered.
    pub delivered_packets: u64,
    /// Measured flits delivered.
    pub delivered_flits: u64,
    /// Sum of packet latencies (creation to tail ejection) over delivered
    /// measured packets.
    pub latency_sum: u64,
    /// Maximum packet latency observed.
    pub latency_max: u64,
    /// Latency histogram with 1-cycle bins, capped at 4096 cycles.
    pub latency_histogram: Vec<u64>,
    /// Sum of network hop counts over delivered measured packets.
    pub hops_sum: u64,
    /// Packets that could not be created because the injection queue was
    /// full (offered load above acceptance).
    pub stalled_generations: u64,
    /// Measured packets destroyed by live fault injection: at least one
    /// of their flits was dropped, so their tail can never eject. The
    /// conservation law becomes `injected == delivered + in-flight +
    /// dropped`. Always 0 on fault-free runs and omitted from the JSON
    /// then.
    pub dropped_packets: u64,
    /// `true` if every measured packet drained before the drain cap.
    pub drained: bool,
    /// Set when the no-progress watchdog aborted the run: flits were
    /// live but nothing moved for the watchdog bound. `None` on every
    /// healthy run (and omitted from the JSON then). A watchdog abort
    /// also implies `drained == false` whenever measured packets were
    /// still in flight.
    pub deadlock: Option<crate::DeadlockDiagnostic>,
    /// Hardware activity during the measurement window.
    pub activity: ActivityCounters,
}

impl SimReport {
    pub(crate) fn new(nodes: usize) -> Self {
        SimReport {
            measured_cycles: 0,
            total_cycles: 0,
            nodes,
            injected_packets: 0,
            delivered_packets: 0,
            delivered_flits: 0,
            latency_sum: 0,
            latency_max: 0,
            latency_histogram: vec![0; 256],
            hops_sum: 0,
            stalled_generations: 0,
            dropped_packets: 0,
            drained: true,
            deadlock: None,
            activity: ActivityCounters::default(),
        }
    }

    pub(crate) fn record_delivery(&mut self, latency: u64, hops: u32, flits: u32) {
        self.delivered_packets += 1;
        self.delivered_flits += u64::from(flits);
        self.latency_sum += latency;
        self.latency_max = self.latency_max.max(latency);
        let bin = (latency as usize).min(4095);
        if bin >= self.latency_histogram.len() {
            self.latency_histogram.resize(bin + 1, 0);
        }
        self.latency_histogram[bin] += 1;
        self.hops_sum += u64::from(hops);
    }

    /// Average packet latency in cycles (creation to tail ejection).
    #[must_use]
    pub fn avg_packet_latency(&self) -> f64 {
        if self.delivered_packets == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.delivered_packets as f64
        }
    }

    /// Accepted throughput in flits/node/cycle.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.measured_cycles == 0 || self.nodes == 0 {
            0.0
        } else {
            self.delivered_flits as f64 / (self.measured_cycles as f64 * self.nodes as f64)
        }
    }

    /// Average network hops per delivered packet.
    #[must_use]
    pub fn avg_hops(&self) -> f64 {
        if self.delivered_packets == 0 {
            0.0
        } else {
            self.hops_sum as f64 / self.delivered_packets as f64
        }
    }

    /// Latency percentile (e.g. `0.99`) from the histogram.
    ///
    /// Total functions over any report: an empty histogram (zero
    /// delivered packets) yields 0, and `p` is clamped into `[0, 1]`
    /// (NaN counts as 0) rather than panicking — sweep campaigns call
    /// this on saturated and smoke-window points whose histograms may
    /// be empty.
    #[must_use]
    pub fn latency_percentile(&self, p: f64) -> u64 {
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
        let total: u64 = self.latency_histogram.iter().sum();
        if total == 0 {
            return 0;
        }
        let want = (p * total as f64).ceil() as u64;
        let mut seen = 0;
        for (lat, &count) in self.latency_histogram.iter().enumerate() {
            seen += count;
            if seen >= want {
                return lat as u64;
            }
        }
        self.latency_max
    }

    /// Fraction of offered packets that the network accepted (1.0 when
    /// injection queues never filled up).
    #[must_use]
    pub fn acceptance(&self) -> f64 {
        let offered = self.injected_packets + self.stalled_generations;
        if offered == 0 {
            1.0
        } else {
            self.injected_packets as f64 / offered as f64
        }
    }

    /// Serializes the complete report — every raw counter, the activity
    /// counters, and the full latency histogram — as JSON (hand-rolled;
    /// the build is offline and has no serde).
    ///
    /// Two reports are equal iff their JSON is byte-identical, which is
    /// what the cycle-skipping equivalence tests compare: any divergence
    /// in any counter shows up as a byte difference.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"slim_noc-sim-report-v1\",\n");
        let _ = writeln!(out, "  \"measured_cycles\": {},", self.measured_cycles);
        let _ = writeln!(out, "  \"total_cycles\": {},", self.total_cycles);
        let _ = writeln!(out, "  \"nodes\": {},", self.nodes);
        let _ = writeln!(out, "  \"injected_packets\": {},", self.injected_packets);
        let _ = writeln!(out, "  \"delivered_packets\": {},", self.delivered_packets);
        let _ = writeln!(out, "  \"delivered_flits\": {},", self.delivered_flits);
        let _ = writeln!(out, "  \"latency_sum\": {},", self.latency_sum);
        let _ = writeln!(out, "  \"latency_max\": {},", self.latency_max);
        let _ = writeln!(out, "  \"hops_sum\": {},", self.hops_sum);
        let _ = writeln!(
            out,
            "  \"stalled_generations\": {},",
            self.stalled_generations
        );
        let _ = writeln!(out, "  \"drained\": {},", self.drained);
        // Fault counters appear only when faults actually dropped
        // something, so fault-free reports stay byte-identical to
        // pre-fault-subsystem ones (goldens, caches, equivalence tests).
        if self.dropped_packets > 0 {
            let _ = writeln!(out, "  \"dropped_packets\": {},", self.dropped_packets);
        }
        // Same omission rule for the watchdog diagnostic: only aborted
        // runs carry it, healthy reports keep the v1 byte layout.
        if let Some(d) = &self.deadlock {
            let stuck: Vec<String> = d
                .stuck_packets
                .iter()
                .map(|s| {
                    format!(
                        "{{\"packet\": {}, \"router\": {}, \"dst_router\": {}, \"in_st\": {}}}",
                        s.packet, s.router, s.dst_router, s.in_st
                    )
                })
                .collect();
            let waits: Vec<String> = d
                .wait_for
                .iter()
                .map(|w| {
                    format!(
                        "{{\"from_router\": {}, \"port\": {}, \"vc\": {}, \"to_router\": {}}}",
                        w.from_router, w.port, w.vc, w.to_router
                    )
                })
                .collect();
            let _ = writeln!(
                out,
                "  \"deadlock\": {{\"cycle\": {}, \"last_progress\": {}, \
                 \"in_flight_flits\": {}, \"stuck_packets\": [{}], \"wait_for\": [{}]}},",
                d.cycle,
                d.last_progress,
                d.in_flight_flits,
                stuck.join(", "),
                waits.join(", ")
            );
        }
        let a = &self.activity;
        let dropped = if a.dropped_flits > 0 {
            format!(", \"dropped_flits\": {}", a.dropped_flits)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "  \"activity\": {{\"buffer_accesses\": {}, \"buffer_writes\": {}, \
             \"buffer_reads\": {}, \"cb_writes\": {}, \"cb_reads\": {}, \"bypasses\": {}, \
             \"crossbar_traversals\": {}, \"alloc_grants\": {}, \"link_flit_hops\": {}, \
             \"wire_flit_tiles\": {}, \"ejections\": {}{dropped}}},",
            a.buffer_accesses,
            a.buffer_writes,
            a.buffer_reads,
            a.cb_writes,
            a.cb_reads,
            a.bypasses,
            a.crossbar_traversals,
            a.alloc_grants,
            a.link_flit_hops,
            a.wire_flit_tiles,
            a.ejections,
        );
        out.push_str("  \"latency_histogram\": [");
        for (i, count) in self.latency_histogram.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{count}");
        }
        out.push_str("]\n}\n");
        out
    }

    /// A simple saturation heuristic used by load sweeps: the network is
    /// saturated when it rejects offered traffic, latency explodes
    /// relative to `zero_load` latency, or it accepted packets but
    /// delivered none at all.
    ///
    /// Defined for every report: zero delivered packets used to read as
    /// *unsaturated* (average latency is 0 on an empty histogram, which
    /// trivially fails the blow-up test) even when packets had been
    /// injected — the worst congestion looked like the best. A
    /// non-finite `zero_load_latency` reference (e.g. propagated from a
    /// degenerate upstream division) is ignored instead of poisoning
    /// the comparison.
    #[must_use]
    pub fn is_saturated(&self, zero_load_latency: f64) -> bool {
        saturation_heuristic(
            self.avg_packet_latency(),
            self.acceptance(),
            self.drained,
            self.delivered_packets,
            self.injected_packets,
            zero_load_latency,
        )
    }
}

/// The saturation heuristic behind [`SimReport::is_saturated`], in
/// terms of the condensed scalars a report yields. Exposed so the
/// sweep engine's content-addressed point cache can re-evaluate
/// saturation for a *cached* point against the current curve's
/// zero-load reference without rehydrating a full report — the cache
/// stores these five scalars, and using the same function here is what
/// keeps a warm rerun's saturation flags bit-identical to a cold run's.
#[must_use]
pub fn saturation_heuristic(
    avg_latency: f64,
    acceptance: f64,
    drained: bool,
    delivered_packets: u64,
    injected_packets: u64,
    zero_load_latency: f64,
) -> bool {
    let latency_blowup = zero_load_latency.is_finite()
        && zero_load_latency > 0.0
        && avg_latency > 6.0 * zero_load_latency;
    acceptance < 0.95
        || latency_blowup
        || !drained
        || (delivered_packets == 0 && injected_packets > 0)
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lat {:.1} cyc (p99 {}), thpt {:.4} flits/node/cyc, {} pkts, acceptance {:.2}",
            self.avg_packet_latency(),
            self.latency_percentile(0.99),
            self.throughput(),
            self.delivered_packets,
            self.acceptance()
        )
    }
}

/// One point of a latency–load curve (Figs. 10–14).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyLoadPoint {
    /// Offered load in flits/node/cycle.
    pub load: f64,
    /// Average packet latency in cycles.
    pub latency: f64,
    /// Accepted throughput in flits/node/cycle.
    pub throughput: f64,
    /// Whether the network had saturated at this load.
    pub saturated: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_statistics() {
        let mut r = SimReport::new(4);
        r.measured_cycles = 100;
        for lat in [10, 20, 30, 40] {
            r.record_delivery(lat, 2, 6);
        }
        assert_eq!(r.avg_packet_latency(), 25.0);
        assert_eq!(r.latency_max, 40);
        assert_eq!(r.latency_percentile(0.5), 20);
        assert_eq!(r.latency_percentile(1.0), 40);
        assert_eq!(r.delivered_flits, 24);
        assert!((r.throughput() - 24.0 / 400.0).abs() < 1e-12);
        assert_eq!(r.avg_hops(), 2.0);
    }

    #[test]
    fn acceptance_and_saturation() {
        let mut r = SimReport::new(4);
        r.measured_cycles = 100;
        r.injected_packets = 90;
        r.stalled_generations = 10;
        assert!((r.acceptance() - 0.9).abs() < 1e-12);
        r.record_delivery(15, 2, 6);
        assert!(r.is_saturated(14.0), "acceptance below threshold");
        r.stalled_generations = 0;
        assert!(!r.is_saturated(14.0));
        assert!(r.is_saturated(2.0), "latency blow-up");
    }

    #[test]
    fn empty_report_defaults() {
        let r = SimReport::new(8);
        assert_eq!(r.avg_packet_latency(), 0.0);
        assert_eq!(r.throughput(), 0.0);
        assert_eq!(r.latency_percentile(0.99), 0);
        assert_eq!(r.acceptance(), 1.0);
    }

    #[test]
    fn activity_accumulation() {
        let mut a = ActivityCounters::default();
        let b = ActivityCounters {
            buffer_accesses: 1,
            buffer_writes: 8,
            buffer_reads: 9,
            cb_writes: 2,
            cb_reads: 3,
            bypasses: 4,
            crossbar_traversals: 5,
            alloc_grants: 10,
            link_flit_hops: 11,
            wire_flit_tiles: 6,
            ejections: 7,
            dropped_flits: 12,
        };
        a.add(&b);
        a.add(&b);
        assert_eq!(a.crossbar_traversals, 10);
        assert_eq!(a.wire_flit_tiles, 12);
        assert_eq!(a.buffer_writes, 16);
        assert_eq!(a.buffer_reads, 18);
        assert_eq!(a.alloc_grants, 20);
        assert_eq!(a.link_flit_hops, 22);
        assert_eq!(a.dropped_flits, 24);
    }

    #[test]
    fn percentile_is_total_on_empty_and_degenerate_inputs() {
        // Regression: empty histograms and out-of-range/NaN percentiles
        // must not panic (saturated sweep points can deliver nothing).
        let empty = SimReport::new(4);
        for p in [0.0, 0.5, 1.0, -0.5, 2.0, f64::NAN] {
            assert_eq!(empty.latency_percentile(p), 0, "p = {p}");
        }
        let mut r = SimReport::new(4);
        r.record_delivery(10, 2, 6);
        r.record_delivery(20, 2, 6);
        assert_eq!(r.latency_percentile(-1.0), 0, "clamped to p = 0");
        assert_eq!(r.latency_percentile(7.5), 20, "clamped to p = 1");
        assert_eq!(r.latency_percentile(f64::NAN), 0, "NaN reads as 0");
    }

    #[test]
    fn zero_deliveries_with_injections_is_saturated() {
        // Regression: a window that accepted packets but delivered none
        // has average latency 0, which used to defeat the latency
        // blow-up test and read as *unsaturated*.
        let mut r = SimReport::new(4);
        r.measured_cycles = 100;
        r.injected_packets = 50;
        assert!(r.is_saturated(10.0));
        assert!(r.is_saturated(0.0), "even without a latency reference");
        // A genuinely empty window (nothing offered) stays unsaturated.
        let empty = SimReport::new(4);
        assert!(!empty.is_saturated(10.0));
    }

    #[test]
    fn non_finite_zero_load_reference_is_ignored() {
        let mut r = SimReport::new(4);
        r.measured_cycles = 100;
        r.injected_packets = 10;
        r.record_delivery(500, 2, 6);
        // NaN/inf references must not poison the comparison either way.
        assert!(!r.is_saturated(f64::NAN));
        assert!(!r.is_saturated(f64::INFINITY));
        assert!(r.is_saturated(10.0), "finite reference still works");
    }

    #[test]
    fn report_json_distinguishes_every_counter() {
        let mut a = SimReport::new(4);
        a.measured_cycles = 100;
        a.record_delivery(10, 2, 6);
        let same = a.clone();
        assert_eq!(a.to_json(), same.to_json());
        assert!(a.to_json().contains("\"delivered_packets\": 1"));
        assert!(a
            .to_json()
            .contains("\"schema\": \"slim_noc-sim-report-v1\""));
        let mut b = a.clone();
        b.activity.ejections += 1;
        assert_ne!(a.to_json(), b.to_json(), "activity divergence visible");
        let mut c = a.clone();
        c.record_delivery(11, 2, 6);
        assert_ne!(a.to_json(), c.to_json(), "histogram divergence visible");
    }

    #[test]
    fn snapshot_extracts_and_normalizes() {
        let mut r = SimReport::new(4);
        r.measured_cycles = 100;
        r.record_delivery(10, 2, 6);
        r.injected_packets = 1;
        r.activity.crossbar_traversals = 3;
        r.activity.link_flit_hops = 2;
        r.activity.wire_flit_tiles = 2;
        r.activity.ejections = 1;
        r.activity.alloc_grants = 3;
        r.activity.buffer_accesses = 3;
        r.activity.buffer_reads = 3;
        let s = r.snapshot();
        assert_eq!(s.delivered_packets, 1);
        assert_eq!(s.latency_histogram.len(), 11, "trailing zeros trimmed");
        assert_eq!(s.latency_histogram[10], 1);
        assert!((s.mean_latency() - 10.0).abs() < 1e-12);
        assert!((s.mean_hops() - 2.0).abs() < 1e-12);
        assert!(s.check_conservation().is_ok(), "{s:?}");
        // Snapshots of equal reports are equal even if histogram storage
        // sizes differ.
        let mut grown = r.clone();
        grown.latency_histogram.resize(5000, 0);
        assert_eq!(r.snapshot(), grown.snapshot());
    }

    #[test]
    fn conservation_violations_are_reported() {
        let mut r = SimReport::new(4);
        r.measured_cycles = 100;
        r.record_delivery(10, 2, 6);
        r.injected_packets = 1;
        r.activity.crossbar_traversals = 5;
        let err = r.snapshot().check_conservation().unwrap_err();
        assert!(err.contains("crossbar"), "{err}");
        let mut r2 = SimReport::new(4);
        r2.injected_packets = 3;
        r2.drained = true;
        let err2 = r2.snapshot().check_conservation().unwrap_err();
        assert!(err2.contains("drained"), "{err2}");
    }

    #[test]
    fn fault_counters_are_omitted_when_zero() {
        let mut r = SimReport::new(4);
        r.measured_cycles = 100;
        r.record_delivery(10, 2, 6);
        r.injected_packets = 1;
        let clean = r.to_json();
        assert!(!clean.contains("dropped"), "fault-free JSON is unchanged");
        let mut faulted = r.clone();
        faulted.injected_packets = 3;
        faulted.dropped_packets = 2;
        faulted.activity.dropped_flits = 12;
        let json = faulted.to_json();
        assert!(json.contains("\"dropped_packets\": 2"));
        assert!(json.contains("\"dropped_flits\": 12"));
        assert_ne!(clean, json);
    }

    #[test]
    fn drained_conservation_accounts_for_drops() {
        let mut r = SimReport::new(4);
        r.measured_cycles = 100;
        r.record_delivery(10, 2, 6);
        r.injected_packets = 3;
        r.dropped_packets = 2;
        r.drained = true;
        assert!(r.snapshot().check_conservation().is_ok());
        r.dropped_packets = 1;
        let err = r.snapshot().check_conservation().unwrap_err();
        assert!(err.contains("drained"), "{err}");
        r.dropped_packets = 4;
        let err = r.snapshot().check_conservation().unwrap_err();
        assert!(err.contains("> injected"), "{err}");
    }

    #[test]
    fn huge_latency_lands_in_last_bin() {
        let mut r = SimReport::new(1);
        r.record_delivery(1_000_000, 2, 1);
        assert_eq!(r.latency_histogram[4095], 1);
        assert_eq!(r.latency_percentile(1.0), 4095);
        assert_eq!(r.latency_max, 1_000_000);
    }
}
