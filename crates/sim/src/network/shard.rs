//! Sharded parallel simulation: the network is partitioned across
//! worker threads that exchange boundary flits and credits through
//! typed message queues.
//!
//! # Design
//!
//! The router graph is split with [`Topology::partition`] into balanced,
//! BFS-contiguous shards. Every shard holds a *full replica* of the
//! network structure (routers, channels, one shared
//! [`crate::routing::RoutingTable`] behind an `Arc`), but simulates only
//! its own routers: remote routers never receive flits and stay off the
//! active worklists, so they cost nothing per cycle. A channel whose
//! endpoints land in different shards is *cut*:
//!
//! - On the **sender's** shard the channel keeps running as an
//!   *occupancy mirror*: phase 4 pushes into it normally (so adaptive
//!   occupancy probes read exactly the monolithic value) and emits a
//!   [`BoundaryMsg::Flit`] carrying the flit payload and its absolute
//!   arrival cycle; when the mirror's head comes due, the flit is
//!   popped and its arena slot released — it has left the shard.
//! - On the **receiver's** shard the message materializes the flit
//!   (arena insert + [`crate::link::Channel::push_at`]) and delivery
//!   proceeds exactly as in the monolithic simulator. Credits freed by
//!   the receiver on a cut input port travel back as
//!   [`BoundaryMsg::Credit`] and are deposited into the sender's mirror,
//!   where the normal credit-return loop feeds the sender's counters.
//!
//! Link latency on cut channels is the conservative lookahead: a
//! boundary message created at cycle `t` can take effect no earlier
//! than `t + latency ≥ t + 1`, so a lockstep round per simulated cycle
//! (two [`Barrier`] waits) is sufficient for full determinism. The
//! cycle-skipping fast-forward still works globally: each shard
//! publishes its earliest next event (calendar horizon, channel
//! arrivals, and the arrival cycles of the messages it just sent) and
//! every shard computes the identical jump target from the shared
//! atomics.
//!
//! # Determinism contract
//!
//! With minimal or XY-adaptive routing on credited links, every shard
//! replicates the full global injection calendar and RNG stream
//! (sampling draws are burned for remote sources), so an `N`-shard run
//! produces a [`SimReport`] — and its JSON — byte-identical to the
//! single-shard run. UGAL-L draws RNG conditionally on local queue
//! state, which remote shards cannot replicate; sharded UGAL-L runs use
//! per-shard derived seeds and are statistically equivalent instead
//! (verified by `snoc_refsim`'s distribution checks). UGAL-G reads
//! remote router occupancy and elastic links exert same-cycle
//! backpressure (zero lookahead); both are rejected with more than one
//! shard.

use super::Simulator;
use crate::config::{LinkMode, RoutingKind, SimConfig, SimError};
use crate::flit::Flit;
use crate::routing::RoutingTable;
use crate::stats::SimReport;
use snoc_layout::Layout;
use snoc_topology::{NodeId, Topology};
use snoc_traffic::{BurstModel, InjectionProcess, PatternSampler, TrafficPattern};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Barrier, Mutex};

/// A flit or credit crossing a shard boundary. `when` is the absolute
/// arrival cycle, already stamped with the cut link's latency.
#[derive(Debug, Clone, Copy)]
pub(crate) enum BoundaryMsg {
    /// A flit entering the receiver's copy of cut channel `chan`.
    Flit {
        /// Channel id (global — identical on every replica).
        chan: u32,
        /// Absolute arrival cycle.
        when: u64,
        /// Virtual channel.
        vc: u8,
        /// Payload snapshot (flits are immutable while on a wire).
        flit: Flit,
    },
    /// A credit returning to the sender's mirror of cut channel `chan`.
    Credit {
        /// Channel id.
        chan: u32,
        /// Absolute arrival cycle.
        when: u64,
        /// Virtual channel.
        vc: u8,
    },
}

impl BoundaryMsg {
    fn when(&self) -> u64 {
        match *self {
            BoundaryMsg::Flit { when, .. } | BoundaryMsg::Credit { when, .. } => when,
        }
    }
}

/// How one shard relates to a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChanRole {
    /// Both endpoints local: simulated exactly as in the monolith.
    Local,
    /// Sender local, receiver remote: occupancy mirror + flit messages.
    CutOut,
    /// Sender remote, receiver local: materializes incoming flits.
    CutIn,
    /// Neither endpoint local: never active on this shard.
    Remote,
}

/// Per-shard view of the partition.
#[derive(Debug)]
pub(crate) struct ShardMeta {
    /// This shard's role for every channel.
    role: Vec<ChanRole>,
    /// For cut channels, the shard on the other end of the message.
    remote_shard: Vec<u32>,
    /// Whether each endpoint node is owned by this shard.
    local_node: Vec<bool>,
}

impl ShardMeta {
    fn new(sim: &Simulator, assign: &[usize], k: usize) -> Self {
        let role: Vec<ChanRole> = (0..sim.channels.len())
            .map(|c| {
                let src_local = assign[sim.chan_src[c].0] == k;
                let dst_local = assign[sim.chan_dst[c].0] == k;
                match (src_local, dst_local) {
                    (true, true) => ChanRole::Local,
                    (true, false) => ChanRole::CutOut,
                    (false, true) => ChanRole::CutIn,
                    (false, false) => ChanRole::Remote,
                }
            })
            .collect();
        let remote_shard = (0..sim.channels.len())
            .map(|c| match role[c] {
                ChanRole::CutOut => assign[sim.chan_dst[c].0] as u32,
                ChanRole::CutIn => assign[sim.chan_src[c].0] as u32,
                _ => u32::MAX,
            })
            .collect();
        let local_node = (0..sim.node_count)
            .map(|n| assign[n / sim.concentration] == k)
            .collect();
        ShardMeta {
            role,
            remote_shard,
            local_node,
        }
    }
}

/// Cross-shard coordination state for one run.
struct Shared {
    /// Pre-read barrier: publishes are visible before any shard reads.
    round_a: Barrier,
    /// Post-read barrier: no shard starts the next round's publishes
    /// until every shard has finished reading this round's.
    round_b: Barrier,
    /// Whether each shard must single-step the next cycle.
    busy: Vec<AtomicBool>,
    /// Each shard's earliest next event (`u64::MAX` = none).
    next: Vec<AtomicU64>,
    /// Cumulative measured packets injected per shard this run.
    injected: Vec<AtomicU64>,
    /// Cumulative measured packets delivered per shard this run.
    delivered: Vec<AtomicU64>,
    /// Boundary messages in flight, indexed `[from][to]`.
    mailboxes: Vec<Vec<Mutex<Vec<BoundaryMsg>>>>,
}

impl Shared {
    fn new(n: usize) -> Self {
        Shared {
            round_a: Barrier::new(n),
            round_b: Barrier::new(n),
            busy: (0..n).map(|_| AtomicBool::new(false)).collect(),
            next: (0..n).map(|_| AtomicU64::new(u64::MAX)).collect(),
            injected: (0..n).map(|_| AtomicU64::new(0)).collect(),
            delivered: (0..n).map(|_| AtomicU64::new(0)).collect(),
            mailboxes: (0..n)
                .map(|_| (0..n).map(|_| Mutex::new(Vec::new())).collect())
                .collect(),
        }
    }
}

/// Splitmix-style per-shard seed derivation for the statistical tier.
fn derive_seed(seed: u64, k: u64) -> u64 {
    let mut z = seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A parallel simulator running one network split across `N` worker
/// shards (see the module docs for the partitioning and determinism
/// contract). With one shard it is exactly the monolithic
/// [`Simulator`]; with minimal or XY-adaptive routing on credited links
/// every shard count produces byte-identical reports.
#[derive(Debug)]
pub struct ShardedSimulator {
    shards: Vec<Simulator>,
    meta: Vec<ShardMeta>,
    topo: Topology,
    node_count: usize,
    /// Whether this configuration is on the bit-exact tier (shards
    /// replicate the global RNG) vs. the statistical tier (UGAL-L).
    exact: bool,
}

impl ShardedSimulator {
    /// Builds a sharded simulator with unit-latency links.
    ///
    /// `shards` is clamped to `1..=router_count()`. With one shard any
    /// configuration the monolithic [`Simulator`] accepts is valid.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for invalid configurations,
    /// and for UGAL-G routing or elastic links with more than one shard
    /// (the former reads remote occupancy, the latter has zero
    /// lookahead).
    pub fn build(topo: &Topology, cfg: &SimConfig, shards: usize) -> Result<Self, SimError> {
        Self::build_inner(topo, None, cfg, shards)
    }

    /// Builds a sharded simulator whose link latencies come from the
    /// layout, like [`Simulator::build_with_layout`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] as [`ShardedSimulator::build`] does.
    pub fn build_with_layout(
        topo: &Topology,
        layout: &Layout,
        cfg: &SimConfig,
        shards: usize,
    ) -> Result<Self, SimError> {
        Self::build_inner(topo, Some(layout), cfg, shards)
    }

    fn build_inner(
        topo: &Topology,
        layout: Option<&Layout>,
        cfg: &SimConfig,
        shards: usize,
    ) -> Result<Self, SimError> {
        let shards = shards.clamp(1, topo.router_count().max(1));
        if shards > 1 {
            if cfg.routing == RoutingKind::UgalG {
                return Err(SimError::InvalidConfig {
                    reason: "UGAL-G reads occupancy on remote routers; it cannot run sharded"
                        .to_string(),
                });
            }
            if cfg.link_mode == LinkMode::Elastic {
                return Err(SimError::InvalidConfig {
                    reason: "elastic links backpressure within the cycle (zero lookahead); \
                             run them single-shard"
                        .to_string(),
                });
            }
        }
        let exact = cfg.routing != RoutingKind::UgalL;
        let assign = topo.partition(shards);
        let table = Arc::new(RoutingTable::minimal(topo));
        let mut sims = Vec::with_capacity(shards);
        for k in 0..shards {
            // The statistical tier decorrelates shard RNGs; the exact
            // tier keeps every replica on the one global stream.
            let cfg_k = if exact || shards == 1 {
                cfg.clone()
            } else {
                cfg.clone().with_seed(derive_seed(cfg.seed, k as u64))
            };
            let mut sim = Simulator::build_with_table(topo, layout, &cfg_k, Arc::clone(&table))?;
            // Disjoint packet-id spaces per shard: routers compare ids
            // for equality only, so any collision-free scheme preserves
            // monolithic behavior bit for bit.
            sim.next_pid = (k as u64) << 48;
            sims.push(sim);
        }
        let meta = (0..shards)
            .map(|k| ShardMeta::new(&sims[0], &assign, k))
            .collect();
        Ok(ShardedSimulator {
            shards: sims,
            meta,
            topo: topo.clone(),
            node_count: topo.node_count(),
            exact,
        })
    }

    /// The number of worker shards (after clamping).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The number of endpoint nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Runs open-loop synthetic traffic across all shards; the sharded
    /// counterpart of [`Simulator::run_synthetic`].
    pub fn run_synthetic(
        &mut self,
        pattern: TrafficPattern,
        rate: f64,
        warmup: u64,
        measure: u64,
    ) -> SimReport {
        self.run_synthetic_bursty(pattern, rate, BurstModel::uniform(), warmup, measure)
    }

    /// Runs bursty synthetic traffic across all shards; the sharded
    /// counterpart of [`Simulator::run_synthetic_bursty`].
    pub fn run_synthetic_bursty(
        &mut self,
        pattern: TrafficPattern,
        rate: f64,
        burst: BurstModel,
        warmup: u64,
        measure: u64,
    ) -> SimReport {
        if self.shards.len() == 1 {
            return self.shards[0].run_synthetic_bursty(pattern, rate, burst, warmup, measure);
        }
        let n = self.shards.len();
        let params = RunParams {
            pattern,
            rate,
            burst,
            warmup,
            measure,
            end_measure: warmup + measure,
            drain_cap: warmup + measure + measure.max(2_000),
            initial_outstanding: self.shards.iter().map(|s| s.outstanding as i64).sum(),
            exact: self.exact,
            node_count: self.node_count,
            nshards: n,
        };
        let shared = Shared::new(n);
        let topo = &self.topo;
        let meta = &self.meta;
        let results: Vec<(SimReport, i64, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .enumerate()
                .map(|(k, shard)| {
                    let shared = &shared;
                    let meta = &meta[k];
                    scope.spawn(move || run_shard(shard, meta, shared, k, topo, params))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard thread panicked"))
                .collect()
        });
        let (_, final_outstanding, final_now) = results[0];
        // A packet may be injected on one shard and delivered on
        // another, so the per-shard counters are meaningless after the
        // run; re-home the global remainder onto shard 0 to keep
        // back-to-back windows consistent.
        for s in &mut self.shards {
            s.outstanding = 0;
        }
        self.shards[0].outstanding = final_outstanding.max(0) as u64;
        let mut merged = SimReport::new(self.node_count);
        merged.measured_cycles = measure;
        merged.total_cycles = final_now;
        merged.drained = final_outstanding == 0;
        for (r, _, _) in &results {
            merged.injected_packets += r.injected_packets;
            merged.delivered_packets += r.delivered_packets;
            merged.delivered_flits += r.delivered_flits;
            merged.latency_sum += r.latency_sum;
            merged.latency_max = merged.latency_max.max(r.latency_max);
            merged.hops_sum += r.hops_sum;
            merged.stalled_generations += r.stalled_generations;
            if r.latency_histogram.len() > merged.latency_histogram.len() {
                merged
                    .latency_histogram
                    .resize(r.latency_histogram.len(), 0);
            }
            for (i, &v) in r.latency_histogram.iter().enumerate() {
                merged.latency_histogram[i] += v;
            }
            merged.activity.add(&r.activity);
        }
        merged
    }
}

/// Immutable per-run parameters handed to every shard thread.
#[derive(Clone, Copy)]
struct RunParams {
    pattern: TrafficPattern,
    rate: f64,
    burst: BurstModel,
    warmup: u64,
    measure: u64,
    end_measure: u64,
    drain_cap: u64,
    initial_outstanding: i64,
    exact: bool,
    node_count: usize,
    nshards: usize,
}

/// One shard's run loop: step, drain the injection calendar, publish,
/// sync, apply inbound boundary messages, and commit the globally
/// agreed clock jump. Every shard evaluates the loop condition and the
/// advance decision on identical shared inputs, so all of them execute
/// the same number of rounds — the barriers never mismatch.
fn run_shard(
    sim: &mut Simulator,
    meta: &ShardMeta,
    shared: &Shared,
    k: usize,
    topo: &Topology,
    p: RunParams,
) -> (SimReport, i64, u64) {
    let sampler = PatternSampler::new(p.pattern, topo);
    let mut report = SimReport::new(p.node_count);
    report.measured_cycles = p.measure;
    let pkt_len = sim.cfg.packet_flits;
    let t0 = sim.now;
    let mut now = t0;
    let mut process = InjectionProcess::new(p.node_count, p.rate, pkt_len, p.burst);
    let mut calendar: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::with_capacity(p.node_count);
    for node in 0..p.node_count {
        // Exact tier: every shard carries the full global calendar so
        // the RNG streams stay in lockstep (draws for remote sources
        // are burned below). Statistical tier: local nodes only.
        if !p.exact && !meta.local_node[node] {
            continue;
        }
        if let Some(c) = process.next_arrival(node, &mut sim.rng) {
            let cycle = t0.saturating_add(c);
            if cycle < p.end_measure {
                calendar.push(Reverse((cycle, node)));
            }
        }
    }
    let mut outbox: Vec<Vec<BoundaryMsg>> = vec![Vec::new(); p.nshards];
    let mut outstanding = p.initial_outstanding;
    while now < p.end_measure || (outstanding > 0 && now < p.drain_cap) {
        let measuring = now >= p.warmup && now < p.end_measure;
        sim.step_shard(measuring, &mut report, meta, &mut outbox);
        if now < p.end_measure {
            while let Some(&Reverse((cycle, src))) = calendar.peek() {
                if cycle > now {
                    break;
                }
                calendar.pop();
                if let Some(dst) = sampler.sample(NodeId(src), &mut sim.rng) {
                    if meta.local_node[src] {
                        sim.generate(
                            NodeId(src),
                            dst,
                            pkt_len as u32,
                            false,
                            measuring,
                            &mut report,
                        );
                    }
                }
                if let Some(c) = process.next_arrival(src, &mut sim.rng) {
                    let next = t0.saturating_add(c);
                    if next < p.end_measure {
                        calendar.push(Reverse((next, src)));
                    }
                }
            }
        }
        // Publish phase: this shard's earliest next event is the min of
        // its calendar horizon, its active channels' arrivals, and the
        // arrival cycles of the messages it is sending this round — a
        // just-sent credit is held by no channel on either side yet, so
        // skipping it here could jump the global clock past it.
        let mut next = calendar.peek().map(|&Reverse((cycle, _))| cycle);
        for &id in &sim.active_channels {
            if let Some(e) = sim.channels[id].next_event(now) {
                next = Some(next.map_or(e, |v| v.min(e)));
            }
        }
        for msgs in &outbox {
            for m in msgs {
                let w = m.when();
                next = Some(next.map_or(w, |v| v.min(w)));
            }
        }
        let busy = !sim.cycle_skip || !sim.active_routers.is_empty() || !sim.active_inj.is_empty();
        shared.busy[k].store(busy, Relaxed);
        shared.next[k].store(next.unwrap_or(u64::MAX), Relaxed);
        shared.injected[k].store(report.injected_packets, Relaxed);
        shared.delivered[k].store(report.delivered_packets, Relaxed);
        for (to, msgs) in outbox.iter_mut().enumerate() {
            if !msgs.is_empty() {
                shared.mailboxes[k][to]
                    .lock()
                    .expect("mailbox")
                    .append(msgs);
            }
        }
        shared.round_a.wait();
        // Read phase: apply inbound messages, then compute the global
        // advance decision — identically on every shard.
        for from in 0..p.nshards {
            if from == k {
                continue;
            }
            let msgs = std::mem::take(&mut *shared.mailboxes[from][k].lock().expect("mailbox"));
            sim.apply_inbound(meta, &msgs);
        }
        let mut any_busy = false;
        let mut next_global = u64::MAX;
        let mut inj = 0u64;
        let mut del = 0u64;
        for j in 0..p.nshards {
            any_busy |= shared.busy[j].load(Relaxed);
            next_global = next_global.min(shared.next[j].load(Relaxed));
            inj += shared.injected[j].load(Relaxed);
            del += shared.delivered[j].load(Relaxed);
        }
        let new_now = if any_busy {
            now + 1
        } else {
            let (cap, idle_target) = if now < p.end_measure {
                (p.end_measure, p.end_measure)
            } else {
                (p.drain_cap, now + 1)
            };
            let target = if next_global == u64::MAX {
                idle_target
            } else {
                next_global
            };
            target.clamp(now + 1, cap.max(now + 1))
        };
        shared.round_b.wait();
        now = new_now;
        sim.now = now;
        outstanding = p.initial_outstanding + inj as i64 - del as i64;
    }
    (report, outstanding, now)
}

impl Simulator {
    /// One network cycle on this shard: [`Simulator::step`] with the
    /// cut-channel hooks. Local channels and routers behave exactly as
    /// in the monolith; cut-out channels mirror occupancy and emit flit
    /// messages, cut-in channels deliver materialized flits and divert
    /// freed credits into credit messages.
    fn step_shard(
        &mut self,
        measuring: bool,
        report: &mut SimReport,
        meta: &ShardMeta,
        outbox: &mut [Vec<BoundaryMsg>],
    ) {
        let now = self.now;
        // Phases 1–3 per active channel, by role.
        for i in 0..self.active_channels.len() {
            let id = self.active_channels[i];
            self.channels[id].tick();
            match meta.role[id] {
                ChanRole::Local => {
                    let (dst, port) = self.chan_dst[id];
                    let router = &self.routers[dst];
                    let delivered =
                        self.channels[id].pop_deliverable(now, |vc| router.can_deliver(port, vc));
                    if let Some((vc, flit)) = delivered {
                        self.routers[dst].deliver(port, vc, flit, &mut self.arena);
                        self.activate_router(dst);
                        if measuring {
                            report.activity.buffer_writes += 1;
                        }
                    }
                    let (src, src_port) = self.chan_src[id];
                    while let Some(vc) = self.channels[id].pop_credit(now) {
                        self.routers[src].add_credit(src_port, vc);
                    }
                }
                ChanRole::CutOut => {
                    // The flit left the shard: the receiver materialized
                    // its own copy from the boundary message, so the
                    // mirror just releases the local arena slot at the
                    // exact cycle the monolith would deliver it.
                    if let Some((_vc, fr)) = self.channels[id].pop_deliverable(now, |_| true) {
                        self.arena.remove(fr);
                    }
                    let (src, src_port) = self.chan_src[id];
                    while let Some(vc) = self.channels[id].pop_credit(now) {
                        self.routers[src].add_credit(src_port, vc);
                    }
                }
                ChanRole::CutIn => {
                    let (dst, port) = self.chan_dst[id];
                    let router = &self.routers[dst];
                    let delivered =
                        self.channels[id].pop_deliverable(now, |vc| router.can_deliver(port, vc));
                    if let Some((vc, flit)) = delivered {
                        self.routers[dst].deliver(port, vc, flit, &mut self.arena);
                        self.activate_router(dst);
                        if measuring {
                            report.activity.buffer_writes += 1;
                        }
                    }
                    // Credits for this channel travel as messages to the
                    // sender's mirror; this copy never holds any.
                }
                ChanRole::Remote => {
                    debug_assert!(false, "remote channel {id} on the active worklist");
                }
            }
        }
        // 4. Switch traversal; cut-out pushes also emit flit messages.
        for i in 0..self.active_routers.len() {
            let r = self.active_routers[i];
            let mut st = std::mem::take(&mut self.scratch_st);
            self.routers[r].drain_st(&mut st);
            let net_ports = self.chan_out[r].len();
            for &(port, stf) in &st {
                if measuring {
                    report.activity.crossbar_traversals += 1;
                }
                if port < net_ports {
                    let ch = self.chan_out[r][port];
                    if measuring {
                        report.activity.link_flit_hops += 1;
                        report.activity.wire_flit_tiles += self.chan_tiles[ch];
                    }
                    if meta.role[ch] == ChanRole::CutOut {
                        outbox[meta.remote_shard[ch] as usize].push(BoundaryMsg::Flit {
                            chan: ch as u32,
                            when: now + self.channels[ch].latency(),
                            vc: stf.out_vc as u8,
                            flit: *self.arena.get(stf.flit),
                        });
                    }
                    self.channels[ch].push(now, stf.out_vc, stf.flit);
                    self.activate_channel(ch);
                } else {
                    self.eject(stf.flit, measuring, report);
                }
            }
            self.scratch_st = st;
        }
        // 5. Allocation; freed credits on cut-in ports become messages.
        for i in 0..self.active_routers.len() {
            let r = self.active_routers[i];
            if self.routers[r].is_idle() {
                continue;
            }
            let mut res = std::mem::take(&mut self.scratch_alloc);
            {
                let routers = &mut self.routers;
                let arena = &mut self.arena;
                let channels = &self.channels;
                let ports = &self.chan_out[r];
                let ready = |out: usize, vc: usize| channels[ports[out]].can_accept(vc);
                routers[r].alloc_into(
                    now,
                    &self.table,
                    self.concentration,
                    arena,
                    &ready,
                    &mut res,
                );
            }
            if measuring {
                report.activity.record_alloc(&res);
            }
            for idx in 0..res.freed_inputs.len() {
                let (port, vc) = res.freed_inputs[idx];
                let ch = self.chan_in[r][port];
                if meta.role[ch] == ChanRole::CutIn {
                    outbox[meta.remote_shard[ch] as usize].push(BoundaryMsg::Credit {
                        chan: ch as u32,
                        when: now + self.channels[ch].latency(),
                        vc: vc as u8,
                    });
                } else {
                    self.channels[ch].push_credit(now, vc);
                    self.activate_channel(ch);
                }
            }
            self.scratch_alloc = res;
        }
        // 6. Injection (only local nodes ever enter the worklist).
        for i in 0..self.active_inj.len() {
            let node = self.active_inj[i];
            let r = node / self.concentration;
            let offset = node % self.concentration;
            let port = self.chan_out[r].len() + offset;
            if self.routers[r].can_deliver(port, 0) {
                let fr = self.inj_queues[node].pop_front().expect("non-empty");
                self.arena.get_mut(fr).injected = now;
                self.routers[r].deliver(port, 0, fr, &mut self.arena);
                self.activate_router(r);
                if measuring {
                    report.activity.buffer_writes += 1;
                }
            }
        }
        // Worklist compaction, exactly as in the monolith.
        let routers = &self.routers;
        let router_queued = &mut self.router_queued;
        self.active_routers.retain(|&r| {
            if routers[r].is_idle() {
                router_queued[r] = false;
                false
            } else {
                true
            }
        });
        let channels = &self.channels;
        let chan_queued = &mut self.chan_queued;
        self.active_channels.retain(|&id| {
            if channels[id].is_idle() {
                chan_queued[id] = false;
                false
            } else {
                true
            }
        });
        let inj_queues = &self.inj_queues;
        let inj_queued = &mut self.inj_queued;
        self.active_inj.retain(|&node| {
            if inj_queues[node].is_empty() {
                inj_queued[node] = false;
                false
            } else {
                true
            }
        });
    }

    /// Deposits one round of inbound boundary messages. Per channel,
    /// message order follows emission order and arrival cycles are
    /// nondecreasing (at most one flit per channel per cycle, fixed
    /// latency), so appending keeps the channel deques sorted.
    fn apply_inbound(&mut self, meta: &ShardMeta, msgs: &[BoundaryMsg]) {
        for msg in msgs {
            match *msg {
                BoundaryMsg::Flit {
                    chan,
                    when,
                    vc,
                    flit,
                } => {
                    let chan = chan as usize;
                    debug_assert_eq!(meta.role[chan], ChanRole::CutIn);
                    let fr = self.arena.insert(flit);
                    self.channels[chan].push_at(when, vc as usize, fr);
                    self.activate_channel(chan);
                }
                BoundaryMsg::Credit { chan, when, vc } => {
                    let chan = chan as usize;
                    debug_assert_eq!(meta.role[chan], ChanRole::CutOut);
                    self.channels[chan].push_credit_at(when, vc as usize);
                    self.activate_channel(chan);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mono_report(
        topo: &Topology,
        cfg: &SimConfig,
        pattern: TrafficPattern,
        rate: f64,
        warmup: u64,
        measure: u64,
    ) -> SimReport {
        let mut sim = Simulator::build(topo, cfg).unwrap();
        sim.run_synthetic(pattern, rate, warmup, measure)
    }

    fn sharded_report(
        topo: &Topology,
        cfg: &SimConfig,
        shards: usize,
        pattern: TrafficPattern,
        rate: f64,
        warmup: u64,
        measure: u64,
    ) -> SimReport {
        let mut sim = ShardedSimulator::build(topo, cfg, shards).unwrap();
        sim.run_synthetic(pattern, rate, warmup, measure)
    }

    #[test]
    fn sharded_minimal_matches_monolithic_bit_for_bit() {
        let topo = Topology::slim_noc(3, 3).unwrap();
        let cfg = SimConfig::default();
        let mono = mono_report(&topo, &cfg, TrafficPattern::Random, 0.05, 500, 2_000);
        for shards in [2, 3, 4] {
            let sharded = sharded_report(
                &topo,
                &cfg,
                shards,
                TrafficPattern::Random,
                0.05,
                500,
                2_000,
            );
            assert_eq!(mono, sharded, "{shards} shards");
            assert_eq!(mono.to_json(), sharded.to_json(), "{shards} shards");
        }
    }

    #[test]
    fn sharded_mesh_under_load_matches_monolithic() {
        let topo = Topology::mesh(4, 4, 2);
        let cfg = SimConfig::default();
        let mono = mono_report(&topo, &cfg, TrafficPattern::Random, 0.15, 500, 2_000);
        let sharded = sharded_report(&topo, &cfg, 4, TrafficPattern::Random, 0.15, 500, 2_000);
        assert_eq!(mono, sharded);
    }

    #[test]
    fn sharded_xy_adaptive_matches_monolithic() {
        // XY-adaptive probes only source-side occupancy, which the
        // cut-out mirrors reproduce exactly — still on the exact tier.
        let topo = Topology::flattened_butterfly(4, 4, 2);
        let cfg = SimConfig::default().with_routing(RoutingKind::XyAdaptive);
        let mono = mono_report(&topo, &cfg, TrafficPattern::Random, 0.10, 500, 2_000);
        for shards in [2, 4] {
            let sharded = sharded_report(
                &topo,
                &cfg,
                shards,
                TrafficPattern::Random,
                0.10,
                500,
                2_000,
            );
            assert_eq!(mono, sharded, "{shards} shards");
        }
    }

    #[test]
    fn sharded_adversarial_traffic_matches_monolithic() {
        let topo = Topology::slim_noc(3, 3).unwrap();
        let cfg = SimConfig::default();
        let mono = mono_report(&topo, &cfg, TrafficPattern::Adversarial1, 0.20, 500, 2_000);
        let sharded = sharded_report(
            &topo,
            &cfg,
            3,
            TrafficPattern::Adversarial1,
            0.20,
            500,
            2_000,
        );
        assert_eq!(mono, sharded);
    }

    #[test]
    fn back_to_back_windows_stay_bit_identical() {
        let topo = Topology::mesh(4, 3, 2);
        let cfg = SimConfig::default();
        let mut mono = Simulator::build(&topo, &cfg).unwrap();
        let mut sharded = ShardedSimulator::build(&topo, &cfg, 3).unwrap();
        for _ in 0..2 {
            let a = mono.run_synthetic(TrafficPattern::Random, 0.05, 300, 1_000);
            let b = sharded.run_synthetic(TrafficPattern::Random, 0.05, 300, 1_000);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn sharded_zero_rate_fast_forwards_to_the_window_end() {
        let topo = Topology::slim_noc(3, 3).unwrap();
        let mut sim = ShardedSimulator::build(&topo, &SimConfig::default(), 3).unwrap();
        let report = sim.run_synthetic(TrafficPattern::Random, 0.0, 1_000, 50_000);
        assert_eq!(report.total_cycles, 51_000, "clock lands on the boundary");
        assert_eq!(report.delivered_packets, 0);
        assert!(report.drained);
    }

    #[test]
    fn sharded_ugal_l_is_statistically_sane() {
        let topo = Topology::slim_noc(3, 3).unwrap();
        let cfg = SimConfig::default()
            .with_vcs(4)
            .with_routing(RoutingKind::UgalL);
        let mono = mono_report(&topo, &cfg, TrafficPattern::Random, 0.08, 500, 3_000);
        let sharded = sharded_report(&topo, &cfg, 3, TrafficPattern::Random, 0.08, 500, 3_000);
        assert!(sharded.drained, "{sharded}");
        assert!(sharded.delivered_packets > 100);
        let (a, b) = (mono.throughput(), sharded.throughput());
        assert!(
            (a - b).abs() < a * 0.2,
            "sharded UGAL-L throughput {b} strays from monolithic {a}"
        );
    }

    #[test]
    fn global_state_configs_are_rejected_with_multiple_shards() {
        let topo = Topology::slim_noc(3, 3).unwrap();
        let ugal_g = SimConfig::default()
            .with_vcs(4)
            .with_routing(RoutingKind::UgalG);
        assert!(ShardedSimulator::build(&topo, &ugal_g, 2).is_err());
        assert!(ShardedSimulator::build(&topo, &ugal_g, 1).is_ok());
        let elastic = SimConfig::elastic_links();
        assert!(ShardedSimulator::build(&topo, &elastic, 2).is_err());
        assert!(ShardedSimulator::build(&topo, &elastic, 1).is_ok());
    }

    #[test]
    fn shard_count_clamps_to_router_count() {
        let topo = Topology::mesh(2, 2, 1);
        let sim = ShardedSimulator::build(&topo, &SimConfig::default(), 1_000).unwrap();
        assert_eq!(sim.shard_count(), 4);
    }
}
