//! Deadlock analysis: the channel-dependency-graph (CDG) cycle
//! checker, the no-progress watchdog's structured diagnostic, and the
//! default watchdog bound.
//!
//! The checker generalizes the torus dateline acyclicity proptest: it
//! rebuilds, from a routing function alone, every `(channel, VC)`
//! dependency a packet can exercise and verifies the graph is acyclic.
//! Crucially it models packets that are *already mid-flight* when a
//! table is swapped in: a flit that accumulated `h0` hops under the
//! old table continues under the new one with VC `min(h0 + i, |VC|−1)`
//! on its `i`-th remaining hop, so every walk is replayed at every
//! initial hop offset `h0 ∈ 0..|VC|` (offsets at or above `|VC|−1`
//! saturate the clamp and add nothing new). A table that passes is
//! deadlock-free for any traffic mix at any point of a table's life,
//! not just for freshly injected packets.
//!
//! Debug builds run [`verify_deadlock_free`] at every degraded-table
//! swap inside the simulator; tests and `repro_verify` run it over
//! fuzzed storm corpora.

use crate::routing::{RouteDecision, RoutingTable};
use snoc_topology::{RouterId, Topology};

/// Default no-progress watchdog bound: generous headroom over the
/// worst-case pipeline occupancy of the longest table path —
/// `(diameter + 2) · 64 · packet_flits`, floored at 4096 cycles. A
/// live network under any load moves *some* flit far more often than
/// this; only a genuine routing deadlock (or a dead simulator bug)
/// goes quiet for that long.
#[must_use]
pub fn default_watchdog_bound(diameter: usize, packet_flits: usize) -> u64 {
    ((diameter as u64 + 2) * 64 * packet_flits.max(1) as u64).max(4_096)
}

/// One packet pinned in place when the no-progress watchdog fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckPacket {
    /// Packet id.
    pub packet: u64,
    /// Router holding (or committing) the packet's head flit.
    pub router: usize,
    /// The packet's destination router.
    pub dst_router: usize,
    /// `true` if the head sits in a switch-traversal register rather
    /// than an input buffer.
    pub in_st: bool,
}

/// One wait-for edge: a buffered head flit at `from_router` waiting
/// for `(port, vc)` toward `to_router`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitForEdge {
    /// Router whose head flit is waiting.
    pub from_router: usize,
    /// Output port the head is routed to.
    pub port: usize,
    /// Output VC the head is routed to.
    pub vc: usize,
    /// Router on the far side of that port.
    pub to_router: usize,
}

/// The structured diagnostic attached to a [`crate::SimReport`] when
/// the no-progress watchdog aborts a run: where the simulation stood,
/// which packets were pinned, and the wait-for edges their head flits
/// were blocked on (both lists capped at 64 entries). The per-packet
/// detail requires the edge-buffer datapath; central-buffer runs
/// report the counters with empty lists.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DeadlockDiagnostic {
    /// Cycle the watchdog fired on.
    pub cycle: u64,
    /// Last cycle any flit moved (delivery, switch traversal,
    /// injection) or any packet/fault event occurred.
    pub last_progress: u64,
    /// Flits in flight (buffers, links, ST registers, injection
    /// queues) at the firing cycle.
    pub in_flight_flits: usize,
    /// Pinned packets, by head-flit location.
    pub stuck_packets: Vec<StuckPacket>,
    /// The wait-for edges of the pinned buffered heads.
    pub wait_for: Vec<WaitForEdge>,
}

impl std::fmt::Display for DeadlockDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "no progress for {} cycles (cycle {}, last progress {}), {} flits in flight",
            self.cycle - self.last_progress,
            self.cycle,
            self.last_progress,
            self.in_flight_flits
        )?;
        for s in &self.stuck_packets {
            writeln!(
                f,
                "  packet {} at router {}{} -> router {}",
                s.packet,
                s.router,
                if s.in_st { " (in ST)" } else { "" },
                s.dst_router
            )?;
        }
        for w in &self.wait_for {
            writeln!(
                f,
                "  router {} waits for port {} vc {} -> router {}",
                w.from_router, w.port, w.vc, w.to_router
            )?;
        }
        Ok(())
    }
}

/// Verifies that the `(channel, VC)` dependency graph induced by an
/// arbitrary routing function is acyclic — the generic core behind
/// [`verify_deadlock_free`], usable against hypothetical tables (e.g.
/// a reimplementation of a repair scheme under test).
///
/// `route(cur, dst, hops)` must return the decision the table makes
/// for a flit at `cur`, `hops` hops into its journey, heading for
/// `dst` — or `None` when `dst` is unreachable from `cur` (those pairs
/// are skipped). Ports must index `topo`'s sorted neighbor lists.
/// Every reachable pair is walked at every initial hop offset
/// `h0 ∈ 0..vcs` (see the module docs); the walk itself is also
/// bounded at the router count, so a looping table fails loudly
/// instead of spinning.
///
/// # Errors
///
/// Returns a description of the first cycle found (a `(router, port,
/// VC)` on it), of a walk that exceeds the router count, or of a route
/// that disappears mid-path.
pub fn verify_route_deadlock_free<F>(
    topo: &Topology,
    vcs: usize,
    mut route: F,
) -> Result<(), String>
where
    F: FnMut(RouterId, RouterId, u16) -> Option<RouteDecision>,
{
    assert!(vcs >= 1, "at least one VC");
    let nr = topo.router_count();
    let max_ports = topo
        .routers()
        .map(|r| topo.neighbors(r).len())
        .max()
        .unwrap_or(0);
    let node_of = |r: usize, port: usize, vc: usize| (r * max_ports + port) * vcs + vc;
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); nr * max_ports * vcs];
    for dst in topo.routers() {
        for src in topo.routers() {
            if src == dst || route(src, dst, 0).is_none() {
                continue;
            }
            for h0 in 0..vcs as u16 {
                let mut cur = src;
                let mut hops = h0;
                let mut prev: Option<usize> = None;
                let mut steps = 0usize;
                while cur != dst {
                    let Some(d) = route(cur, dst, hops) else {
                        return Err(format!("route {src} -> {dst} vanished at {cur}"));
                    };
                    let node = node_of(cur.index(), d.port, d.vc);
                    if let Some(p) = prev {
                        adj[p].push(node as u32);
                    }
                    prev = Some(node);
                    cur = topo.neighbors(cur)[d.port];
                    hops += 1;
                    steps += 1;
                    if steps > nr {
                        return Err(format!("routing loop walking {src} -> {dst}"));
                    }
                }
            }
        }
    }
    for edges in &mut adj {
        edges.sort_unstable();
        edges.dedup();
    }
    // Iterative 3-color DFS over the dependency graph.
    let mut color = vec![0u8; adj.len()]; // 0 white, 1 gray, 2 black
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for start in 0..adj.len() {
        if color[start] != 0 {
            continue;
        }
        color[start] = 1;
        stack.push((start, 0));
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < adj[node].len() {
                let child = adj[node][*next] as usize;
                *next += 1;
                match color[child] {
                    0 => {
                        color[child] = 1;
                        stack.push((child, 0));
                    }
                    1 => {
                        let r = child / (max_ports * vcs);
                        let port = child / vcs % max_ports;
                        let vc = child % vcs;
                        return Err(format!(
                            "channel dependency cycle through router {r} port {port} vc {vc}"
                        ));
                    }
                    _ => {}
                }
            } else {
                color[node] = 2;
                stack.pop();
            }
        }
    }
    Ok(())
}

/// Verifies that a [`RoutingTable`] is deadlock-free at `vcs` virtual
/// channels: builds the full `(channel, VC)` dependency graph the
/// table can induce — including packets mid-flight at arbitrary
/// accumulated hop counts — and checks it for cycles. See the module
/// docs for the exact model.
///
/// This is the honest per-table-kind contract from the routing-module
/// deadlock taxonomy, executable:
///
/// ```
/// use snoc_sim::{verify_deadlock_free, RoutingTable};
/// use snoc_topology::Topology;
///
/// let torus = Topology::torus(4, 4, 1);
/// let minimal = RoutingTable::minimal(&torus);
/// // The torus dateline scheme needs (and suffices at) 2 VCs...
/// assert!(verify_deadlock_free(&minimal, &torus, 2).is_ok());
/// // ...while a single VC leaves the ring cycles uncut.
/// assert!(verify_deadlock_free(&minimal, &torus, 1).is_err());
///
/// // An up*/down* repair table is deadlock-free at ANY VC count,
/// // here after losing router 5 and the 0 -- 1 link.
/// let mut alive = vec![true; torus.router_count()];
/// alive[5] = false;
/// let repaired = RoutingTable::degraded(&torus, &alive, |a, b| {
///     (a.0.min(b.0), a.0.max(b.0)) != (0, 1)
/// });
/// assert!(verify_deadlock_free(&repaired, &torus, 1).is_ok());
/// ```
///
/// # Errors
///
/// Returns a description of the first dependency cycle (or walk
/// anomaly) found; see [`verify_route_deadlock_free`].
pub fn verify_deadlock_free(
    table: &RoutingTable,
    topo: &Topology,
    vcs: usize,
) -> Result<(), String> {
    verify_route_deadlock_free(topo, vcs, |cur, dst, hops| {
        table
            .reachable(cur, dst)
            .then(|| table.route_toward(cur, dst, hops, vcs))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoc_topology::Topology;

    #[test]
    fn mesh_dor_is_deadlock_free_at_any_vc_count() {
        let t = Topology::mesh(4, 3, 1);
        let table = RoutingTable::minimal(&t);
        for vcs in [1, 2, 4] {
            assert!(verify_deadlock_free(&table, &t, vcs).is_ok(), "vcs {vcs}");
        }
    }

    #[test]
    fn torus_dateline_needs_two_vcs() {
        let t = Topology::torus(4, 4, 1);
        let table = RoutingTable::minimal(&t);
        assert!(verify_deadlock_free(&table, &t, 1).is_err());
        assert!(verify_deadlock_free(&table, &t, 2).is_ok());
        assert!(verify_deadlock_free(&table, &t, 4).is_ok());
    }

    #[test]
    fn hop_clamped_irregular_tables_fail_the_mid_flight_model() {
        // Honest-contract check: hop-indexed VCs only protect freshly
        // injected traffic. The checker also models packets mid-flight
        // with accumulated hops, which saturate the `min(h, |VC|-1)`
        // clamp onto the top VC — so an irregular minimal table fails
        // even with |VC| at the diameter. This is exactly why degraded
        // repair uses up*/down* instead of reusing this scheme.
        let t = Topology::slim_noc(3, 1).unwrap();
        let table = RoutingTable::minimal(&t);
        assert!(verify_deadlock_free(&table, &t, 2).is_err());
    }

    #[test]
    fn looping_route_fails_loudly() {
        let t = Topology::mesh(2, 2, 1);
        // A "table" that bounces between routers 0 and 1 forever.
        let err = verify_route_deadlock_free(&t, 2, |cur, _, hops| {
            Some(RouteDecision {
                port: usize::from(cur.index() >= 2),
                vc: (hops as usize).min(1),
            })
        })
        .unwrap_err();
        assert!(err.contains("routing loop"), "{err}");
    }

    #[test]
    fn default_bound_has_a_floor_and_scales_up() {
        assert_eq!(default_watchdog_bound(0, 0), 4_096);
        assert_eq!(default_watchdog_bound(2, 6), 4_096);
        assert!(default_watchdog_bound(30, 6) > 4_096);
        assert!(default_watchdog_bound(64, 8) > default_watchdog_bound(32, 8));
    }

    #[test]
    fn diagnostic_display_lists_everything() {
        let d = DeadlockDiagnostic {
            cycle: 5_000,
            last_progress: 904,
            in_flight_flits: 12,
            stuck_packets: vec![StuckPacket {
                packet: 7,
                router: 3,
                dst_router: 9,
                in_st: false,
            }],
            wait_for: vec![WaitForEdge {
                from_router: 3,
                port: 1,
                vc: 0,
                to_router: 4,
            }],
        };
        let text = d.to_string();
        assert!(text.contains("no progress for 4096 cycles"), "{text}");
        assert!(text.contains("packet 7 at router 3 -> router 9"), "{text}");
        assert!(text.contains("router 3 waits for port 1 vc 0 -> router 4"));
    }
}
