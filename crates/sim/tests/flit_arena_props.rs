//! Property tests for the free-list flit slab ([`FlitArena`] /
//! [`FlitRef`]) introduced by the event-accelerated core: fuzzed
//! alloc/free sequences must never hand out a ref that is already live
//! (the observable form of a double-free), the live count must track a
//! shadow model exactly, every live slot must retain its payload
//! untouched by other operations, and freed slots must be recycled (the
//! slab never grows past the peak live population).

use proptest::prelude::*;
use snoc_sim::{Flit, FlitArena, FlitRef, PacketId};
use snoc_topology::{NodeId, RouterId};

/// A distinguishable single-flit payload: the tag rides in the packet
/// id and the creation cycle, so corruption of either field is caught.
fn tagged(tag: u64) -> Flit {
    Flit::nth_of_packet(
        PacketId(tag),
        0,
        1,
        NodeId(0),
        NodeId(1),
        RouterId(1),
        tag,
        false,
        false,
    )
}

/// Tiny deterministic generator for the op stream (the vendored
/// proptest has no collection strategies, so sequences derive from one
/// fuzzed seed).
fn next(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random interleavings of insert/remove against a shadow model.
    #[test]
    fn arena_tracks_shadow_model_and_recycles_slots(
        seed in 1u64..u64::MAX,
        ops in 10usize..400,
    ) {
        let mut state = seed;
        let mut arena = FlitArena::default();
        // The shadow model: (ref, tag) of every live flit.
        let mut live: Vec<(FlitRef, u64)> = Vec::new();
        let mut next_tag = 0u64;
        let mut peak = 0usize;
        for _ in 0..ops {
            let roll = next(&mut state);
            if live.is_empty() || !roll.is_multiple_of(3) {
                let tag = next_tag;
                next_tag += 1;
                let r = arena.insert(tagged(tag));
                prop_assert!(
                    !live.iter().any(|&(l, _)| l == r),
                    "insert returned an already-live ref {r:?} (double allocation)"
                );
                live.push((r, tag));
            } else {
                let pick = (roll as usize / 3) % live.len();
                let (r, tag) = live.swap_remove(pick);
                let flit = arena.remove(r);
                prop_assert_eq!(
                    flit.packet, PacketId(tag),
                    "removed slot held a different payload"
                );
                prop_assert_eq!(flit.created, tag);
            }
            peak = peak.max(live.len());
            prop_assert_eq!(arena.len(), live.len(), "live count drifted");
            prop_assert_eq!(arena.is_empty(), live.is_empty());
        }
        // Payload integrity of everything still live.
        for &(r, tag) in &live {
            prop_assert_eq!(arena.get(r).packet, PacketId(tag));
        }
        // Slot recycling: the slab never outgrew the peak population.
        prop_assert!(
            arena.capacity() <= peak,
            "slab grew to {} slots with a peak of {} live flits",
            arena.capacity(),
            peak
        );
    }

    /// Draining everything and refilling stays inside the original
    /// footprint: the free list really is reused, in LIFO order.
    #[test]
    fn drain_and_refill_reuses_every_slot(n in 1usize..120, seed in 0u64..u64::MAX) {
        let mut arena = FlitArena::default();
        let refs: Vec<FlitRef> = (0..n as u64).map(|i| arena.insert(tagged(i))).collect();
        prop_assert_eq!(arena.len(), n);
        let footprint = arena.capacity();
        // Remove in a seed-dependent order.
        let mut state = seed | 1;
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (next(&mut state) as usize) % (i + 1);
            order.swap(i, j);
        }
        let mut freed = Vec::new();
        for &i in &order {
            arena.remove(refs[i]);
            freed.push(refs[i]);
        }
        prop_assert!(arena.is_empty());
        prop_assert_eq!(arena.capacity(), footprint, "freeing never grows the slab");
        // Refill: the free list hands slots back most-recently-freed
        // first, and the slab does not grow.
        for (k, expected) in freed.iter().rev().enumerate() {
            let r = arena.insert(tagged(1_000 + k as u64));
            prop_assert_eq!(r, *expected, "LIFO slot reuse");
        }
        prop_assert_eq!(arena.capacity(), footprint);
        prop_assert_eq!(arena.len(), n);
    }
}

/// The remove-then-insert round trip reuses the exact slot immediately
/// (the free list is LIFO) — pinned deterministically, independent of
/// the fuzz above.
#[test]
fn freed_slot_is_reused_immediately() {
    let mut arena = FlitArena::default();
    let a = arena.insert(tagged(1));
    let b = arena.insert(tagged(2));
    assert_ne!(a, b);
    arena.remove(a);
    assert_eq!(arena.insert(tagged(3)), a);
    assert_eq!(arena.get(a).packet, PacketId(3));
    assert_eq!(arena.get(b).packet, PacketId(2));
    assert_eq!(arena.capacity(), 2);
}
