//! Property tests (vendored `proptest`) pinning the central contract of
//! the event-accelerated cycle loop: **fast-forwarding over event-free
//! cycles is invisible**. For any (topology, rate, seed) triple, running
//! the simulator with cycle-skipping on and off must produce
//! byte-identical [`SimReport`] JSON — every counter, every activity
//! figure, the full latency histogram, and the final clock value.
//!
//! The skipped cycles are provably event-free (empty worklists, no
//! pending injection, no due channel arrival), so any divergence means
//! the conservative next-event estimate was wrong — exactly the bug
//! class this suite exists to catch.

use proptest::prelude::*;
use snoc_sim::{SimConfig, SimReport, Simulator};
use snoc_topology::{NodeId, Topology};
use snoc_traffic::{BurstModel, MessageKind, TraceMessage, TrafficPattern};

/// The fuzzed topology pool: small instances of every supported family,
/// including a CBR + elastic-links configuration (keyed by index 3).
fn topology(idx: usize) -> Topology {
    match idx {
        0 => Topology::slim_noc(3, 3).unwrap(),
        1 => Topology::mesh(4, 3, 2),
        2 => Topology::torus(4, 4, 1),
        3 => Topology::slim_noc(3, 2).unwrap(),
        _ => Topology::flattened_butterfly(3, 3, 2),
    }
}

fn config(topo_idx: usize, seed: u64) -> SimConfig {
    // Index 3 exercises the CBR/elastic path (whose pipelines pin the
    // next-event estimate to now + 1); all others use credited links.
    let cfg = if topo_idx == 3 {
        SimConfig::cbr(20)
    } else {
        SimConfig::default()
    };
    cfg.with_seed(seed)
}

/// Runs the same synthetic simulation with skipping on and off.
fn run_both(topo_idx: usize, rate: f64, seed: u64) -> (SimReport, SimReport) {
    let topo = topology(topo_idx);
    let cfg = config(topo_idx, seed);
    let run = |skip: bool| {
        let mut sim = Simulator::build(&topo, &cfg).unwrap();
        sim.set_cycle_skipping(skip);
        sim.run_synthetic(TrafficPattern::Random, rate, 300, 1_200)
    };
    (run(true), run(false))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cycle-skipping on vs. off: byte-identical reports across fuzzed
    /// (topology, rate, seed) triples, from idle to near saturation.
    #[test]
    fn cycle_skipping_is_invisible_for_synthetic_traffic(
        topo_idx in 0usize..5,
        rate in 0.0f64..0.45,
        seed in 0u64..1_000_000,
    ) {
        let (skipped, stepped) = run_both(topo_idx, rate, seed);
        prop_assert_eq!(
            skipped.to_json(),
            stepped.to_json(),
            "skip on/off diverged at topo {} rate {} seed {}",
            topo_idx,
            rate,
            seed
        );
    }

    /// Bursty (on/off Markov) injection drives the calendar through
    /// phase-sojourn draws and gives the cycle-skipper highly irregular
    /// horizons — long off phases are exactly the cycles it wants to
    /// jump over. Skipping must stay invisible across fuzzed burst
    /// shapes, from near-uniform to long-burst/long-gap.
    #[test]
    fn cycle_skipping_is_invisible_for_bursty_traffic(
        topo_idx in 0usize..5,
        rate in 0.0f64..0.35,
        off_to_on in 0.02f64..0.95,
        on_to_off in 0.02f64..0.95,
        seed in 0u64..1_000_000,
    ) {
        let topo = topology(topo_idx);
        let cfg = config(topo_idx, seed);
        let burst = BurstModel { off_to_on, on_to_off };
        let run = |skip: bool| {
            let mut sim = Simulator::build(&topo, &cfg).unwrap();
            sim.set_cycle_skipping(skip);
            sim.run_synthetic_bursty(TrafficPattern::Random, rate, burst, 300, 1_500)
        };
        prop_assert_eq!(
            run(true).to_json(),
            run(false).to_json(),
            "bursty skip on/off diverged at topo {} rate {} burst {}/{} seed {}",
            topo_idx,
            rate,
            off_to_on,
            on_to_off,
            seed
        );
    }

    /// Trace replays with fuzzed inter-message gaps (including gaps far
    /// larger than any drain time) are equally invisible to skipping.
    #[test]
    fn cycle_skipping_is_invisible_for_trace_replay(
        topo_idx in 0usize..5,
        gap in 1u64..5_000,
        seed in 0u64..1_000_000,
    ) {
        let topo = topology(topo_idx);
        let nodes = topo.node_count();
        let trace: Vec<TraceMessage> = (0..40u64)
            .map(|i| TraceMessage {
                cycle: i * gap,
                src: NodeId(((seed + i) as usize * 7) % nodes),
                dst: NodeId(((seed + i) as usize * 13 + 1) % nodes),
                kind: if i % 3 == 0 {
                    MessageKind::ReadRequest
                } else {
                    MessageKind::WriteRequest
                },
            })
            .filter(|m| m.src != m.dst)
            .collect();
        let cfg = config(topo_idx, seed);
        let run = |skip: bool| {
            let mut sim = Simulator::build(&topo, &cfg).unwrap();
            sim.set_cycle_skipping(skip);
            sim.run_trace(&trace, gap / 2)
        };
        prop_assert_eq!(
            run(true).to_json(),
            run(false).to_json(),
            "trace skip on/off diverged at topo {} gap {} seed {}",
            topo_idx,
            gap,
            seed
        );
    }
}

/// A zero-rate run is the extreme skip case: the clock jumps straight
/// across the whole window. It must still match single-stepping exactly
/// (including `total_cycles` landing on the window boundary).
#[test]
fn zero_rate_run_is_identical_and_fast_forwarded() {
    let topo = Topology::slim_noc(3, 3).unwrap();
    let run = |skip: bool| {
        let mut sim = Simulator::build(&topo, &SimConfig::default()).unwrap();
        sim.set_cycle_skipping(skip);
        sim.run_synthetic(TrafficPattern::Random, 0.0, 2_000, 30_000)
    };
    let (skipped, stepped) = (run(true), run(false));
    assert_eq!(skipped.to_json(), stepped.to_json());
    assert_eq!(skipped.total_cycles, 32_000);
    assert_eq!(skipped.delivered_packets, 0);
}

/// UGAL routing draws extra RNG (Valiant candidates) per packet; the
/// equivalence must survive those draws too.
#[test]
fn cycle_skipping_is_invisible_under_ugal() {
    let topo = Topology::slim_noc(3, 3).unwrap();
    for routing in [snoc_sim::RoutingKind::UgalL, snoc_sim::RoutingKind::UgalG] {
        let cfg = SimConfig::default()
            .with_vcs(4)
            .with_routing(routing)
            .with_seed(9);
        let run = |skip: bool| {
            let mut sim = Simulator::build(&topo, &cfg).unwrap();
            sim.set_cycle_skipping(skip);
            sim.run_synthetic(TrafficPattern::Adversarial1, 0.2, 300, 1_500)
        };
        assert_eq!(run(true).to_json(), run(false).to_json(), "{routing:?}");
    }
}

/// The combination the skip-equivalence suite previously never saw:
/// UGAL-G (per-packet Valiant draws plus global path-cost probes) on
/// top of bursty injection (phase-sojourn draws), across several burst
/// shapes and seeds. Burst gaps interleave RNG consumption between the
/// calendar and the route selector, so any draw-order bug in the
/// fast-forward path shows up as a byte diff here.
#[test]
fn cycle_skipping_is_invisible_under_bursty_ugal_g() {
    let topo = Topology::slim_noc(3, 3).unwrap();
    let cfg = SimConfig::default()
        .with_vcs(4)
        .with_routing(snoc_sim::RoutingKind::UgalG)
        .with_seed(23);
    for (off_to_on, on_to_off) in [(0.05, 0.2), (0.3, 0.3), (0.02, 0.5)] {
        let burst = BurstModel {
            off_to_on,
            on_to_off,
        };
        let run = |skip: bool| {
            let mut sim = Simulator::build(&topo, &cfg).unwrap();
            sim.set_cycle_skipping(skip);
            sim.run_synthetic_bursty(TrafficPattern::Adversarial1, 0.15, burst, 300, 2_000)
        };
        assert_eq!(
            run(true).to_json(),
            run(false).to_json(),
            "burst {off_to_on}/{on_to_off}"
        );
    }
}
