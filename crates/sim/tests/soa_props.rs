//! Shadow-model property suite for the struct-of-arrays router
//! datapath.
//!
//! Each case drives a single [`RouterHarness`] router (the center of a
//! 3x3 mesh) through a random deliver/alloc/drain/credit sequence and
//! checks the SoA hot state — per-lane ring lengths, occupancy bitmask
//! words, per-VC and per-port credit counters, ST registers, the
//! live-flit counter — against a naive shadow model that tracks the
//! same quantities with plain nested vectors. After every operation the
//! router additionally audits its own derived structures against a
//! fresh recount (`verify_invariants`).
//!
//! Honors `PROPTEST_CASES` for deep-soak runs (see the vendored
//! proptest's `ProptestConfig::effective_cases`).

use proptest::prelude::*;
use snoc_sim::soa_harness::{HarnessArch, RouterHarness};

/// Deterministic per-case operation stream (SplitMix64), seeded from a
/// proptest-drawn value so each case replays identically.
struct OpRng(u64);

impl OpRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Naive mirror of the edge router's hot state.
struct EdgeShadow {
    /// Flits queued per input lane `[port][vc]`.
    lane: Vec<Vec<usize>>,
    /// Available credits per output lane `[port][vc]` (credited mode).
    credit: Vec<Vec<usize>>,
    /// Credits consumed downstream but not yet returned `[port][vc]`.
    owed: Vec<Vec<usize>>,
    /// Flits sitting in ST registers (granted, not yet drained).
    st: usize,
    /// Flits accepted minus flits drained.
    inside: usize,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The edge datapath agrees with the shadow model after every
    /// operation of a random deliver/alloc/drain/credit schedule.
    #[test]
    fn edge_router_matches_shadow_model(
        seed in 0u64..=u64::MAX,
        vcs in prop::sample::select(vec![1usize, 2, 4]),
        capacity in 1usize..5,
        credited in prop::sample::select(vec![true, false]),
        steps in 40usize..140,
    ) {
        let mut h = RouterHarness::center_of_mesh(vcs, capacity, HarnessArch::Edge, credited);
        let in_ports = h.in_ports();
        let net_ports = h.net_ports();
        let nodes = h.node_count();
        let mut rng = OpRng(seed);
        let mut s = EdgeShadow {
            lane: vec![vec![0; vcs]; in_ports],
            credit: vec![vec![capacity; vcs]; net_ports],
            owed: vec![vec![0; vcs]; net_ports],
            st: 0,
            inside: 0,
        };
        let mut now = 0u64;
        for _ in 0..steps {
            match rng.below(8) {
                // Deliver a fresh single-flit packet into a random lane.
                0..=3 => {
                    let port = rng.below(in_ports);
                    let vc = rng.below(vcs);
                    let dst = rng.below(nodes);
                    let accepted = h.try_deliver(port, vc, dst);
                    prop_assert_eq!(
                        accepted,
                        s.lane[port][vc] < capacity,
                        "acceptance at port {} vc {} disagrees with shadow depth {}",
                        port, vc, s.lane[port][vc],
                    );
                    if accepted {
                        s.lane[port][vc] += 1;
                        s.inside += 1;
                    }
                }
                // One allocation cycle; grants move lane flits into ST.
                4 | 5 => {
                    let summary = h.alloc(now);
                    now += 1;
                    prop_assert_eq!(
                        summary.grants as usize,
                        summary.freed_inputs.len() + summary.freed_injection.len(),
                        "every edge grant frees exactly one lane slot",
                    );
                    for &(p, v) in &summary.freed_inputs {
                        prop_assert!(s.lane[p][v] > 0, "freed an empty lane {p}/{v}");
                        s.lane[p][v] -= 1;
                    }
                    for &(l, v) in &summary.freed_injection {
                        let p = net_ports + l;
                        prop_assert!(s.lane[p][v] > 0, "freed an empty injection lane {l}/{v}");
                        s.lane[p][v] -= 1;
                    }
                    s.st += summary.grants as usize;
                }
                // Drain the crossbar: flits leave the router; net-port
                // departures consumed one downstream credit at commit.
                6 => {
                    for (p, v) in h.drain() {
                        s.st -= 1;
                        s.inside -= 1;
                        if credited && p < net_ports {
                            prop_assert!(s.credit[p][v] > 0, "over-consumed credit {p}/{v}");
                            s.credit[p][v] -= 1;
                            s.owed[p][v] += 1;
                        }
                    }
                }
                // Return one owed credit (what the downstream channel
                // does when the flit vacates its buffer slot).
                _ => {
                    if credited {
                        let start = rng.below(net_ports * vcs);
                        for i in 0..net_ports * vcs {
                            let lane = (start + i) % (net_ports * vcs);
                            let (p, v) = (lane / vcs, lane % vcs);
                            if s.owed[p][v] > 0 {
                                h.add_credit(p, v);
                                s.owed[p][v] -= 1;
                                s.credit[p][v] += 1;
                                break;
                            }
                        }
                    }
                }
            }
            // Audit the router's own derived structures, then every
            // externally visible SoA quantity against the shadow.
            h.verify_invariants();
            for port in 0..in_ports {
                let mut word = 0u64;
                for vc in 0..vcs {
                    prop_assert_eq!(h.lane_len(port, vc), s.lane[port][vc]);
                    if s.lane[port][vc] > 0 {
                        word |= 1 << vc;
                    }
                }
                prop_assert_eq!(h.occupancy_word(port), word);
            }
            prop_assert_eq!(h.st_count(), s.st);
            prop_assert_eq!(h.buffered_flits(), s.inside);
            // Credits are consumed at commit time but the shadow models
            // them at drain time, so they only agree while no committed
            // flit is waiting in an ST register.
            if credited && s.st == 0 {
                for p in 0..net_ports {
                    let mut sum = 0;
                    for v in 0..vcs {
                        prop_assert_eq!(h.credit(p, v), s.credit[p][v]);
                        sum += s.credit[p][v];
                    }
                    prop_assert_eq!(h.port_credits(p), sum);
                    prop_assert_eq!(
                        h.output_occupancy(p, capacity),
                        capacity * vcs - sum,
                        "O(1) occupancy probe disagrees at port {}",
                        p,
                    );
                }
            }
        }
    }

    /// The central-buffer datapath conserves flits and keeps its derived
    /// structures (staging occupancy words, credit counters, ST mask)
    /// consistent under the same random schedules. The CB's internal
    /// queue moves are not shadowed flit-by-flit — `verify_invariants`
    /// audits those — but acceptance, conservation, and drain
    /// bookkeeping are.
    #[test]
    fn cb_router_conserves_flits(
        seed in 0u64..=u64::MAX,
        vcs in prop::sample::select(vec![1usize, 2]),
        capacity in 1usize..4,
        cb_flits in prop::sample::select(vec![4usize, 8, 16]),
        steps in 40usize..140,
    ) {
        let mut h =
            RouterHarness::center_of_mesh(vcs, capacity, HarnessArch::Cb { cb_flits }, true);
        let in_ports = h.in_ports();
        let nodes = h.node_count();
        let mut rng = OpRng(seed);
        // Staging slots are 0/1-deep; the CB behind them is opaque here.
        let mut staged = vec![vec![false; vcs]; in_ports];
        let mut inside = 0usize;
        let mut st = 0usize;
        let mut now = 0u64;
        for _ in 0..steps {
            match rng.below(8) {
                0..=3 => {
                    let port = rng.below(in_ports);
                    let vc = rng.below(vcs);
                    let accepted = h.try_deliver(port, vc, rng.below(nodes));
                    prop_assert_eq!(
                        accepted,
                        !staged[port][vc],
                        "staging acceptance at {}/{} disagrees",
                        port, vc,
                    );
                    if accepted {
                        staged[port][vc] = true;
                        inside += 1;
                    }
                }
                4 | 5 => {
                    let summary = h.alloc(now);
                    now += 1;
                    // Bypasses and CB reads enter the ST registers; CB
                    // writes only move staging flits into the queue, so
                    // the grant total is the sum of all three paths.
                    prop_assert_eq!(
                        summary.grants,
                        summary.bypasses + summary.cb_reads + summary.cb_writes,
                        "CB grant accounting drifted",
                    );
                    st += (summary.bypasses + summary.cb_reads) as usize;
                    // Resync staging occupancy from the router: bypass
                    // and CB-write vacate slots, which the shadow cannot
                    // predict without reimplementing the allocator.
                    for (port, row) in staged.iter_mut().enumerate() {
                        for (vc, slot) in row.iter_mut().enumerate() {
                            *slot = h.lane_len(port, vc) > 0;
                        }
                    }
                }
                6 => {
                    let drained = h.drain();
                    st -= drained.len();
                    inside -= drained.len();
                }
                _ => {
                    // CBR output credits: return one to a random lane
                    // only if the router is below its initial level —
                    // tracked via the introspected credit itself.
                    let p = rng.below(h.net_ports());
                    let v = rng.below(vcs);
                    if h.credit(p, v) < capacity {
                        h.add_credit(p, v);
                    }
                }
            }
            h.verify_invariants();
            for (port, row) in staged.iter().enumerate() {
                let mut word = 0u64;
                for (vc, &slot) in row.iter().enumerate() {
                    prop_assert_eq!(h.lane_len(port, vc), usize::from(slot));
                    if slot {
                        word |= 1 << vc;
                    }
                }
                prop_assert_eq!(h.occupancy_word(port), word);
            }
            prop_assert_eq!(h.st_count(), st);
            prop_assert_eq!(h.buffered_flits(), inside);
        }
    }
}
