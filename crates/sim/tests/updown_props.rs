//! Property tests (vendored `proptest`) over the up*/down* degraded
//! routing tables and the no-progress watchdog:
//!
//! - **deadlock freedom**: every table repaired after a fuzzed fault
//!   storm (dead links from the same seeded generator the simulator
//!   uses, plus a dead router) passes the channel-dependency-graph
//!   checker at 1, 2 and 4 VCs — the up*/down* guarantee does not
//!   depend on the VC count;
//! - **up-then-down shape**: every walked table path climbs toward
//!   smaller `(level, index)` keys of an independently rebuilt BFS
//!   forest, then descends — never down-then-up — and its length is
//!   exactly the reported `distance`, within the simple-path bound;
//! - **reachability = connectivity**: the table's sentinel marking
//!   agrees with component membership of the surviving graph;
//! - **determinism**: rebuilding the table from the same fault set
//!   reproduces every distance and every route decision;
//! - **regression**: the raw-BFS repair this scheme replaced deadlocks
//!   on a torus whose rings survive a storm (hop-clamped VCs cannot cut
//!   an intact ring), while the up*/down* repair of the same fault is
//!   clean — reimplemented here as a routing closure so the bug stays
//!   reproducible;
//! - **watchdog**: a bound-1 watchdog fires deterministically on a live
//!   network and attaches the structured diagnostic to the report
//!   (and to its JSON), while healthy runs at the default bound never
//!   see it.

use proptest::prelude::*;
use snoc_sim::{
    verify_deadlock_free, verify_route_deadlock_free, FaultKind, FaultPlan, RouteDecision,
    RoutingTable, SimConfig, Simulator,
};
use snoc_topology::{bfs_distances, bfs_forest, NodeId, RouterId, Topology};
use snoc_traffic::TrafficPattern;

/// The same fuzzed topology pool as the differential harness: one
/// member of every supported family, small enough that an all-pairs
/// CDG build runs in milliseconds.
fn topology(idx: usize) -> Topology {
    match idx {
        0 => Topology::slim_noc(3, 3).unwrap(),
        1 => Topology::mesh(4, 3, 2),
        2 => Topology::torus(4, 4, 2),
        3 => Topology::dragonfly(2),
        4 => Topology::flattened_butterfly(3, 3, 2),
        _ => Topology::slim_noc(3, 2).unwrap(),
    }
}

/// The surviving-hardware view after a seeded storm: `storm_links`
/// dead links drawn by [`FaultPlan::storm`] (the generator the live
/// simulator replays), plus optionally one dead router.
fn storm_liveness(
    topo: &Topology,
    storm_links: usize,
    seed: u64,
    kill_router: bool,
) -> (Vec<bool>, Vec<(usize, usize)>) {
    let plan = FaultPlan::storm(topo, storm_links, 0, 100, seed);
    let dead_links: Vec<(usize, usize)> = plan
        .events()
        .iter()
        .map(|e| match e.kind {
            FaultKind::LinkDown { a, b } => (a.index(), b.index()),
            other => panic!("storms only fail links, got {other:?}"),
        })
        .collect();
    let mut alive = vec![true; topo.router_count()];
    if kill_router {
        alive[seed as usize % topo.router_count()] = false;
    }
    (alive, dead_links)
}

fn link_alive(dead_links: &[(usize, usize)]) -> impl Fn(RouterId, RouterId) -> bool + '_ {
    move |a, b| {
        let key = (a.index().min(b.index()), a.index().max(b.index()));
        !dead_links.contains(&key)
    }
}

/// A probe flit bound for `dst`'s router.
fn flit_to(dst: RouterId) -> snoc_sim::Flit {
    snoc_sim::Flit::packet(
        snoc_sim::PacketId(0),
        NodeId(0),
        NodeId(dst.index()),
        dst,
        1,
        0,
        true,
        false,
    )[0]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every storm-repaired table passes the mid-flight CDG model at
    /// any VC count — the property hop-indexed repair could not offer.
    #[test]
    fn degraded_tables_pass_the_cdg_checker_at_any_vc_count(
        topo_idx in 0usize..6,
        storm_links in 1usize..7,
        kill in 0usize..2,
        seed in 0u64..1_000_000,
    ) {
        let topo = topology(topo_idx);
        let kill_router = kill == 1;
        let (alive, dead) = storm_liveness(&topo, storm_links, seed, kill_router);
        let table = RoutingTable::degraded(&topo, &alive, link_alive(&dead));
        for vcs in [1usize, 2, 4] {
            let r = verify_deadlock_free(&table, &topo, vcs);
            prop_assert!(
                r.is_ok(),
                "REPRO {} storm {storm_links} seed {seed} kill {kill_router} vcs {vcs}: {}",
                topo.name(),
                r.unwrap_err()
            );
        }
    }

    /// Walked table paths are up-then-down over an independently
    /// recomputed BFS forest, exactly `distance` hops long, and the
    /// sentinel marking agrees with surviving-graph connectivity.
    #[test]
    fn degraded_walks_climb_then_descend(
        topo_idx in 0usize..6,
        storm_links in 1usize..7,
        kill in 0usize..2,
        seed in 0u64..1_000_000,
    ) {
        let topo = topology(topo_idx);
        let nr = topo.router_count();
        let kill_router = kill == 1;
        let (alive, dead) = storm_liveness(&topo, storm_links, seed, kill_router);
        let usable = link_alive(&dead);
        let table = RoutingTable::degraded(&topo, &alive, &usable);
        // Rebuild the forest the table is supposed to respect, from
        // scratch, over the same surviving adjacency.
        let alive_adj: Vec<Vec<RouterId>> = topo
            .routers()
            .map(|r| {
                topo.neighbors(r)
                    .iter()
                    .copied()
                    .filter(|&n| alive[r.index()] && alive[n.index()] && usable(r, n))
                    .collect()
            })
            .collect();
        let forest = bfs_forest(nr, |r| &alive_adj[r.index()][..]);
        let key = |v: RouterId| (forest.level[v.index()], v.index());
        let ctx = format!("{} storm {storm_links} seed {seed} kill {kill_router}",
            topo.name());
        for src in topo.routers() {
            for dst in topo.routers() {
                if src == dst {
                    continue;
                }
                // Reachability must coincide with plain connectivity
                // (dead routers are singleton components).
                prop_assert_eq!(
                    table.reachable(src, dst),
                    forest.root[src.index()] == forest.root[dst.index()],
                    "REPRO {}: reachable {} -> {}", &ctx, src, dst
                );
                if !table.reachable(src, dst) || !alive[src.index()] {
                    continue;
                }
                let mut cur = src;
                let mut f = flit_to(dst);
                let mut descending = false;
                let mut hops = 0usize;
                while cur != dst {
                    let d = table.route(cur, &f, 0, 2);
                    let next = table.peer(cur, d.port);
                    if key(next) > key(cur) {
                        descending = true; // a down hop commits the path
                    } else {
                        prop_assert!(
                            !descending,
                            "REPRO {}: down-then-up turn at {} walking {} -> {}",
                            &ctx, cur, src, dst
                        );
                    }
                    cur = next;
                    f.hops += 1;
                    hops += 1;
                    prop_assert!(hops <= nr, "REPRO {}: loop {} -> {}", &ctx, src, dst);
                }
                prop_assert_eq!(
                    hops, table.distance(src, dst),
                    "REPRO {}: walk length {} -> {}", &ctx, src, dst
                );
            }
        }
    }

    /// Rebuilding from the same fault set is bit-for-bit reproducible —
    /// the property the sim/refsim differential leans on — and every
    /// surviving edge is oriented by the forest (levels of adjacent
    /// routers differ by at most one, keys are distinct).
    #[test]
    fn degraded_rebuilds_are_deterministic(
        topo_idx in 0usize..6,
        storm_links in 1usize..7,
        kill in 0usize..2,
        seed in 0u64..1_000_000,
    ) {
        let topo = topology(topo_idx);
        let kill_router = kill == 1;
        let (alive, dead) = storm_liveness(&topo, storm_links, seed, kill_router);
        let a = RoutingTable::degraded(&topo, &alive, link_alive(&dead));
        let b = RoutingTable::degraded(&topo, &alive, link_alive(&dead));
        let usable = link_alive(&dead);
        let alive_adj: Vec<Vec<RouterId>> = topo
            .routers()
            .map(|r| {
                topo.neighbors(r)
                    .iter()
                    .copied()
                    .filter(|&n| alive[r.index()] && alive[n.index()] && usable(r, n))
                    .collect()
            })
            .collect();
        let forest = bfs_forest(topo.router_count(), |r| &alive_adj[r.index()][..]);
        for cur in topo.routers() {
            for &n in &alive_adj[cur.index()] {
                // BFS layering orients every surviving edge: adjacent
                // levels differ by at most 1 and keys never tie.
                prop_assert!(
                    forest.level[cur.index()].abs_diff(forest.level[n.index()]) <= 1
                );
            }
            for dst in topo.routers() {
                prop_assert_eq!(a.distance(cur, dst), b.distance(cur, dst));
                if cur == dst || !a.reachable(cur, dst) || !alive[cur.index()] {
                    continue;
                }
                for hops in 0..2u16 {
                    let mut f = flit_to(dst);
                    f.hops = hops;
                    let (da, db) = (a.route(cur, &f, 0, 2), b.route(cur, &f, 0, 2));
                    prop_assert_eq!(da, db, "route {} -> {} hop {}", cur, dst, hops);
                }
            }
        }
    }
}

/// The regression that motivated up*/down*: the raw-BFS repair this
/// replaced (shortest paths over the surviving graph, hash tie-break,
/// hop-clamped VCs) deadlocks whenever the storm leaves a ring intact.
/// A 6×3 torus losing one y-link keeps all of its 6-router x-rings:
/// forward DOR-length hops chain around a ring entirely on the top VC
/// (any packet mid-flight saturates the `min(h, |VC|-1)` clamp), so
/// the channel dependency closes. The up*/down* repair of the *same*
/// fault passes at every VC count.
#[test]
fn old_bfs_repair_deadlocks_on_an_intact_torus_ring() {
    let topo = Topology::torus(6, 3, 1);
    let nr = topo.router_count();
    let alive = vec![true; nr];
    // Kill the y-link 0 -- 6; every x-ring survives.
    let dead = [(0usize, 6usize)];
    let usable = link_alive(&dead);
    let adj: Vec<Vec<RouterId>> = topo
        .routers()
        .map(|r| {
            topo.neighbors(r)
                .iter()
                .copied()
                .filter(|&n| usable(r, n))
                .collect()
        })
        .collect();
    // The old repair, verbatim in miniature: per-destination BFS
    // distances, minimal next hops, the (cur·31 + dst·17) hash pick,
    // and the §4.3 hop-indexed VC reused as-is.
    let dist: Vec<Vec<usize>> = (0..nr)
        .map(|dst| bfs_distances(nr, RouterId(dst), |r| &adj[r.index()][..]))
        .collect();
    let old_route = |cur: RouterId, dst: RouterId, hops: u16| -> Option<RouteDecision> {
        let (c, d) = (cur.index(), dst.index());
        if dist[d][c] == usize::MAX {
            return None;
        }
        let want = dist[d][c] - 1;
        let candidates: Vec<usize> = topo
            .neighbors(cur)
            .iter()
            .enumerate()
            .filter(|(_, n)| usable(cur, **n) && dist[d][n.index()] == want)
            .map(|(port, _)| port)
            .collect();
        let pick = (c.wrapping_mul(31).wrapping_add(d.wrapping_mul(17))) % candidates.len();
        Some(RouteDecision {
            port: candidates[pick],
            vc: (hops as usize).min(1),
        })
    };
    let err = verify_route_deadlock_free(&topo, 2, old_route).unwrap_err();
    assert!(
        err.contains("channel dependency cycle"),
        "the intact ring must close a cycle under hop-clamped VCs: {err}"
    );
    // The replacement repairs the identical fault deadlock-free at any
    // VC count — and still reaches every pair.
    let table = RoutingTable::degraded(&topo, &alive, usable);
    for vcs in [1usize, 2, 4] {
        verify_deadlock_free(&table, &topo, vcs).unwrap();
    }
    for src in topo.routers() {
        for dst in topo.routers() {
            assert!(table.reachable(src, dst), "{src} -> {dst}");
        }
    }
}

/// A bound-1 watchdog declares deadlock on the first quiet cycle with
/// flits live: an isolated single-flit packet always has one (the
/// injection at cycle `c` is progress, the switch allocation at `c+1`
/// moves nothing), so at a sparse rate the abort is deterministic,
/// carries a populated diagnostic, and shows up in the JSON rendering.
#[test]
fn bound_one_watchdog_fires_with_structured_diagnostic() {
    let topo = Topology::mesh(4, 3, 2);
    let mut cfg = SimConfig::default().with_vcs(2).with_seed(11);
    cfg.packet_flits = 1;
    let mut sim = Simulator::build(&topo, &cfg).unwrap();
    sim.set_watchdog(Some(1));
    let report = sim.run_synthetic(TrafficPattern::Random, 0.005, 100, 400);
    let d = report.deadlock.as_ref().expect("bound-1 watchdog fires");
    assert!(d.in_flight_flits > 0, "fires only with flits live");
    assert_eq!(d.cycle - d.last_progress, 1, "bound-1 gap");
    assert!(!d.stuck_packets.is_empty(), "edge-buffer runs pin packets");
    let text = d.to_string();
    assert!(text.contains("no progress for 1 cycles"), "{text}");
    assert!(report.to_json().contains("\"deadlock\""), "JSON carries it");
}

/// Healthy traffic at the default bound never trips the watchdog, and
/// the report omits the diagnostic from the JSON byte layout.
#[test]
fn default_watchdog_stays_quiet_on_healthy_runs() {
    let topo = Topology::mesh(4, 3, 2);
    let cfg = SimConfig::default().with_vcs(2).with_seed(12);
    let mut sim = Simulator::build(&topo, &cfg).unwrap();
    let report = sim.run_synthetic(TrafficPattern::Random, 0.08, 200, 1_000);
    assert!(report.deadlock.is_none(), "healthy run must not abort");
    assert!(report.drained, "moderate load drains");
    assert!(!report.to_json().contains("deadlock"));
}
