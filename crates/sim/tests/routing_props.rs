//! Property tests (vendored `proptest`) over the precomputed routing
//! tables' deadlock and progress invariants:
//!
//! - **torus DOR + dateline VCs are deadlock-free**: the channel-VC
//!   dependency graph induced by every (source, destination) route is
//!   acyclic for fuzzed ring dimensions — the dateline VC switch must
//!   cut both ring cycles in both dimensions;
//! - **mesh DOR makes progress**: every precomputed port steps strictly
//!   closer to the destination for fuzzed dims/concentration/src/dst
//!   (no livelock, paths are minimal).

use proptest::prelude::*;
use snoc_sim::RoutingTable;
use snoc_topology::{NodeId, RouterId, Topology};

/// A probe flit bound for `dst`'s router.
fn flit_to(dst: RouterId) -> snoc_sim::Flit {
    snoc_sim::Flit::packet(
        snoc_sim::PacketId(0),
        NodeId(0),
        NodeId(dst.index()),
        dst,
        1,
        0,
        true,
        false,
    )[0]
}

/// Detects a cycle in a directed graph (iterative 3-color DFS).
fn has_cycle(adj: &[Vec<usize>]) -> bool {
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; adj.len()];
    for start in 0..adj.len() {
        if color[start] != WHITE {
            continue;
        }
        // Stack of (node, next-neighbor index).
        let mut stack = vec![(start, 0usize)];
        color[start] = GRAY;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < adj[node].len() {
                let peer = adj[node][*next];
                *next += 1;
                match color[peer] {
                    GRAY => return true,
                    WHITE => {
                        color[peer] = GRAY;
                        stack.push((peer, 0));
                    }
                    _ => {}
                }
            } else {
                color[node] = BLACK;
                stack.pop();
            }
        }
    }
    false
}

/// Builds the channel-VC dependency graph of all-pairs DOR routes on a
/// torus when routed with `vcs` virtual channels, asserting route
/// sanity along the way (VCs in range, no routing loops, minimal
/// paths). The single source of truth for both the dateline property
/// and its negative control.
fn torus_dependency_graph(x: usize, y: usize, vcs: usize) -> Vec<Vec<usize>> {
    let t = Topology::torus(x, y, 1);
    let table = RoutingTable::minimal(&t);
    let nr = x * y;
    let max_ports = (0..nr)
        .map(|r| table.port_count(RouterId(r)))
        .max()
        .unwrap();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nr * max_ports * vcs];
    for s in 0..nr {
        for d in 0..nr {
            if s == d {
                continue;
            }
            let dst = RouterId(d);
            let mut f = flit_to(dst);
            let mut cur = RouterId(s);
            let mut prev: Option<usize> = None;
            let mut hops = 0usize;
            while cur != dst {
                let dec = table.route(cur, &f, 0, vcs);
                assert!(dec.vc < vcs, "VC {} out of range on {x}x{y}", dec.vc);
                let node = (cur.index() * max_ports + dec.port) * vcs + dec.vc;
                if let Some(p) = prev {
                    adj[p].push(node);
                }
                prev = Some(node);
                cur = table.peer(cur, dec.port);
                f.hops += 1;
                hops += 1;
                assert!(hops <= nr, "routing loop {s} -> {d} on {x}x{y}");
            }
            // DOR on a torus is minimal.
            assert_eq!(
                hops,
                table.distance(RouterId(s), dst),
                "non-minimal route {s} -> {d} on {x}x{y}"
            );
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    adj
}

/// Negative control: with a single VC (datelines disabled by the
/// `min(vc, vcs-1)` clamp) the ring dependency IS cyclic — proving the
/// detector has teeth and the dateline VCs are load-bearing.
#[test]
fn single_vc_torus_rings_are_cyclic() {
    assert!(
        has_cycle(&torus_dependency_graph(4, 4, 1)),
        "a 4x4 torus on one VC must have a ring dependency cycle"
    );
    assert!(
        !has_cycle(&torus_dependency_graph(4, 4, 2)),
        "the dateline VC switch must cut it"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The torus dateline VC assignment never creates a cyclic
    /// channel-VC dependency. Every (src, dst) route contributes its
    /// chain of (channel, VC) holds; wormhole deadlock needs a cycle in
    /// the union of those chains, so an acyclic union proves deadlock
    /// freedom for DOR under any traffic.
    #[test]
    fn torus_dateline_vcs_never_create_cyclic_dependencies(
        x in 2usize..7,
        y in 2usize..7,
    ) {
        prop_assert!(
            !has_cycle(&torus_dependency_graph(x, y, 2)),
            "cyclic channel-VC dependency on torus {x}x{y}"
        );
    }

    /// Every precomputed mesh port steps strictly closer to the
    /// destination, for any dims/concentration and any router pair —
    /// walked all the way to delivery.
    #[test]
    fn mesh_ports_always_step_closer(
        x in 2usize..8,
        y in 1usize..6,
        conc in 1usize..4,
        src_raw in 0usize..10_000,
        dst_raw in 0usize..10_000,
    ) {
        let t = Topology::mesh(x, y, conc);
        let table = RoutingTable::minimal(&t);
        let nr = x * y;
        let src = RouterId(src_raw % nr);
        let dst = RouterId(dst_raw % nr);
        if src == dst {
            return Ok(());
        }
        let mut f = flit_to(dst);
        let mut cur = src;
        while cur != dst {
            let before = table.distance(cur, dst);
            let dec = table.route(cur, &f, 0, 2);
            let next = table.peer(cur, dec.port);
            prop_assert_eq!(
                table.distance(next, dst),
                before - 1,
                "{} -> {} via {}: port must step closer",
                cur,
                dst,
                next
            );
            cur = next;
            f.hops += 1;
        }
        // The walk's length therefore equals the shortest distance —
        // DOR on a mesh is minimal.
        prop_assert_eq!(f.hops as usize, table.distance(src, dst));
    }
}
