//! The reference engine: a straight-line, cycle-by-cycle wormhole
//! simulator for edge-buffer routers over unit-latency credited links.
//!
//! Every design decision here is the *opposite* of the optimized
//! engine's: flits travel **by value** (no arena, no 4-byte refs),
//! every router, channel and node is visited **every cycle** (no
//! worklists, no cycle-skipping, no injection calendar), injection is a
//! **per-cycle Bernoulli trial** per node (via
//! [`snoc_traffic::InjectionProcess::tick`], not geometric sampling),
//! and scratch buffers are freshly allocated each cycle. What the two
//! engines share is the executable *specification*: topology and
//! traffic definitions, the routing rules (reimplemented from the spec
//! in [`crate::RefRouting`]), and the microarchitectural contract of
//! the §5.1 edge router — 2-stage pipeline (allocation, then switch
//! traversal), per-VC input buffers with credit-based flow control,
//! wormhole output-VC allocation, round-robin input/output arbitration.
//!
//! Because the pipeline timing follows the same written contract, a
//! workload-driven run (explicit message list, deterministic minimal
//! routing — no RNG on either side) must match the optimized engine's
//! [`snoc_sim::Snapshot`] **exactly**; synthetic runs match in
//! distribution and are compared statistically by the differential
//! harness.

use crate::routing::RefRouting;
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use snoc_sim::{ActivityCounters, FaultEvent, FaultKind, FaultPlan, RoutingKind, Snapshot};
use snoc_topology::{NodeId, RouterId, Topology};
use snoc_traffic::{BurstModel, InjectionProcess, PatternSampler, TraceMessage, TrafficPattern};
use std::collections::VecDeque;

/// Reference-simulator configuration: the subset of the optimized
/// engine's parameter space the golden model covers (edge-buffer
/// routers, credited unit-latency links, fixed buffer sizing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefConfig {
    /// Virtual channels per link.
    pub vcs: usize,
    /// Per-VC input-buffer capacity in flits (network and injection
    /// ports alike — the optimized engine's `BufferSizing::Fixed`).
    pub buffer_flits: usize,
    /// Injection queue capacity per node, in flits.
    pub injection_queue_flits: usize,
    /// Packet size in flits for synthetic traffic.
    pub packet_flits: usize,
    /// Routing algorithm (`XyAdaptive` is not modeled).
    pub routing: RoutingKind,
    /// RNG seed for the reference engine's own draws.
    pub seed: u64,
}

impl Default for RefConfig {
    fn default() -> Self {
        RefConfig {
            vcs: 2,
            buffer_flits: 5,
            injection_queue_flits: 20,
            packet_flits: 6,
            routing: RoutingKind::Minimal,
            seed: 0xC0FFEE,
        }
    }
}

impl RefConfig {
    /// Sets the number of virtual channels.
    #[must_use]
    pub fn with_vcs(mut self, vcs: usize) -> Self {
        self.vcs = vcs;
        self
    }

    /// Sets the routing algorithm.
    #[must_use]
    pub fn with_routing(mut self, routing: RoutingKind) -> Self {
        self.routing = routing;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Extracts a reference configuration from an optimized-engine
    /// [`snoc_sim::SimConfig`], or `None` when the configuration uses a
    /// feature the golden model deliberately does not cover (central
    /// buffers, elastic links, SMART, RTT-sized buffers, XY-adaptive
    /// routing).
    #[must_use]
    pub fn try_from_sim(cfg: &snoc_sim::SimConfig) -> Option<Self> {
        use snoc_sim::{BufferSizing, LinkMode, RouterArch};
        if cfg.router_arch != RouterArch::EdgeBuffer
            || cfg.link_mode != LinkMode::Credited
            || cfg.smart_hops != 1
            || cfg.output_buffer_flits != 1
            || cfg.routing == RoutingKind::XyAdaptive
        {
            return None;
        }
        let BufferSizing::Fixed(buffer_flits) = cfg.buffer_sizing else {
            return None;
        };
        Some(RefConfig {
            vcs: cfg.vcs,
            buffer_flits,
            injection_queue_flits: cfg.injection_queue_flits,
            packet_flits: cfg.packet_flits,
            routing: cfg.routing,
            seed: cfg.seed,
        })
    }
}

/// A flit, carried by value through every queue of the reference model.
#[derive(Debug, Clone, Copy, PartialEq)]
struct RefFlit {
    packet: u64,
    src: NodeId,
    dst: NodeId,
    dst_router: RouterId,
    created: u64,
    packet_len: u32,
    hops: u32,
    is_head: bool,
    is_tail: bool,
    measured: bool,
    wants_reply: bool,
    intermediate: Option<RouterId>,
    intermediate_done: bool,
}

impl RefFlit {
    /// The current routing target (a pending Valiant intermediate wins).
    fn target(&self) -> RouterId {
        match self.intermediate {
            Some(mid) if !self.intermediate_done => mid,
            _ => self.dst_router,
        }
    }
}

/// A held wormhole route: `((out port, out VC), owner packet)`.
type HeldRoute = Option<((usize, usize), u64)>;

/// One router: per-VC input buffers, held routes, ST registers,
/// wormhole output state, credit counters, round-robin pointers.
#[derive(Debug, Clone)]
struct RefRouter {
    net_ports: usize,
    /// `inputs[port][vc]` — FIFO of buffered flits (by value).
    inputs: Vec<Vec<VecDeque<RefFlit>>>,
    /// Route held from head to tail per input VC.
    held: Vec<Vec<HeldRoute>>,
    /// ST register per output port: `(out VC, flit)`.
    st: Vec<Option<(usize, RefFlit)>>,
    /// Wormhole owner per network output VC.
    out_pkt: Vec<Vec<Option<u64>>>,
    /// Credits toward downstream per network output port and VC.
    credits: Vec<Vec<usize>>,
    /// Round-robin VC pointer per input port.
    rr_in: Vec<usize>,
    /// Round-robin input pointer per output port.
    rr_out: Vec<usize>,
}

/// A unidirectional unit-latency channel: in-flight flits and returning
/// credits tagged with their arrival cycle.
#[derive(Debug, Clone, Default)]
struct RefChannel {
    flits: VecDeque<(u64, usize, RefFlit)>,
    credits: VecDeque<(u64, usize)>,
}

/// Metric accumulation mirroring the optimized engine's `SimReport`.
#[derive(Debug, Clone)]
struct RefReport {
    measured_cycles: u64,
    total_cycles: u64,
    nodes: usize,
    injected_packets: u64,
    delivered_packets: u64,
    delivered_flits: u64,
    latency_sum: u64,
    latency_max: u64,
    hops_sum: u64,
    stalled_generations: u64,
    dropped_packets: u64,
    drained: bool,
    activity: ActivityCounters,
    histogram: Vec<u64>,
}

impl RefReport {
    fn new(nodes: usize) -> Self {
        RefReport {
            measured_cycles: 0,
            total_cycles: 0,
            nodes,
            injected_packets: 0,
            delivered_packets: 0,
            delivered_flits: 0,
            latency_sum: 0,
            latency_max: 0,
            hops_sum: 0,
            stalled_generations: 0,
            dropped_packets: 0,
            drained: true,
            activity: ActivityCounters::default(),
            histogram: vec![0; 256],
        }
    }

    fn record_delivery(&mut self, latency: u64, hops: u32, flits: u32) {
        self.delivered_packets += 1;
        self.delivered_flits += u64::from(flits);
        self.latency_sum += latency;
        self.latency_max = self.latency_max.max(latency);
        let bin = (latency as usize).min(4095);
        if bin >= self.histogram.len() {
            self.histogram.resize(bin + 1, 0);
        }
        self.histogram[bin] += 1;
        self.hops_sum += u64::from(hops);
    }

    fn into_snapshot(mut self) -> Snapshot {
        while self.histogram.last() == Some(&0) {
            self.histogram.pop();
        }
        Snapshot {
            measured_cycles: self.measured_cycles,
            total_cycles: self.total_cycles,
            nodes: self.nodes,
            injected_packets: self.injected_packets,
            delivered_packets: self.delivered_packets,
            delivered_flits: self.delivered_flits,
            latency_sum: self.latency_sum,
            latency_max: self.latency_max,
            hops_sum: self.hops_sum,
            stalled_generations: self.stalled_generations,
            dropped_packets: self.dropped_packets,
            drained: self.drained,
            activity: self.activity,
            latency_histogram: self.histogram,
        }
    }
}

/// The golden reference simulator. See the module docs for what it
/// deliberately does and does not share with the optimized engine.
#[derive(Debug, Clone)]
pub struct RefSimulator {
    cfg: RefConfig,
    topo: Topology,
    routing: RefRouting,
    concentration: usize,
    nodes: usize,
    routers: Vec<RefRouter>,
    channels: Vec<RefChannel>,
    /// `[router][net out port]` → channel id.
    chan_out: Vec<Vec<usize>>,
    /// `[router][net in port]` → channel id (for upstream credits).
    chan_in: Vec<Vec<usize>>,
    /// channel id → (receiver router, receiver input port).
    chan_dst: Vec<(usize, usize)>,
    /// channel id → (sender router, sender output port).
    chan_src: Vec<(usize, usize)>,
    inj_queues: Vec<VecDeque<RefFlit>>,
    now: u64,
    next_pid: u64,
    outstanding: u64,
    rng: ChaCha8Rng,
    /// Scheduled fault events, sorted by cycle (stable).
    faults: Vec<FaultEvent>,
    next_fault: usize,
    router_alive: Vec<bool>,
    /// Per directed channel: not disabled by a `LinkDown`.
    chan_enabled: Vec<bool>,
    /// Per directed channel: enabled with both endpoint routers alive.
    chan_alive: Vec<bool>,
    /// No-progress watchdog bound in cycles (`None` disarms it),
    /// mirroring `snoc_sim::Simulator::set_watchdog`: with flits live
    /// but unmoving for the bound, the run loop stops instead of
    /// spinning to the drain cap.
    watchdog: Option<u64>,
    /// Last cycle with progress: a flit delivery, switch traversal,
    /// injection, packet creation, or an applied fault batch — the same
    /// event set the optimized engine counts, so both engines abort on
    /// the same cycle.
    last_progress: u64,
}

impl RefSimulator {
    /// Builds a reference simulator for one topology.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid parameter.
    pub fn build(topo: &Topology, cfg: &RefConfig) -> Result<Self, String> {
        if cfg.vcs == 0 {
            return Err("vcs must be at least 1".into());
        }
        if cfg.buffer_flits == 0 {
            return Err("input buffers need at least 1 flit".into());
        }
        if cfg.packet_flits == 0 {
            return Err("packets need at least one flit".into());
        }
        if cfg.injection_queue_flits < cfg.packet_flits {
            return Err("injection queue must hold at least one packet".into());
        }
        if cfg.routing == RoutingKind::XyAdaptive {
            return Err("XY-adaptive routing is not part of the reference model".into());
        }
        let routing = RefRouting::new(topo);
        let nr = topo.router_count();
        let concentration = topo.concentration();

        let mut channels = Vec::new();
        let mut chan_out = vec![Vec::new(); nr];
        let mut chan_dst = Vec::new();
        let mut chan_src = Vec::new();
        for r in topo.routers() {
            for port in 0..routing.port_count(r) {
                let peer = routing.peer(r, port);
                let id = channels.len();
                channels.push(RefChannel::default());
                chan_out[r.index()].push(id);
                chan_dst.push((peer.index(), routing.port_to(peer, r)));
                chan_src.push((r.index(), port));
            }
        }
        let mut chan_in: Vec<Vec<usize>> = (0..nr)
            .map(|r| vec![usize::MAX; chan_out[r].len()])
            .collect();
        for (id, &(dst, in_port)) in chan_dst.iter().enumerate() {
            chan_in[dst][in_port] = id;
        }

        let routers = topo
            .routers()
            .map(|r| {
                let net = routing.port_count(r);
                let local = topo.nodes_of(r).len();
                let ports = net + local;
                RefRouter {
                    net_ports: net,
                    inputs: (0..ports)
                        .map(|_| (0..cfg.vcs).map(|_| VecDeque::new()).collect())
                        .collect(),
                    held: vec![vec![None; cfg.vcs]; ports],
                    st: vec![None; ports],
                    out_pkt: vec![vec![None; cfg.vcs]; net],
                    credits: vec![vec![cfg.buffer_flits; cfg.vcs]; net],
                    rr_in: vec![0; ports],
                    rr_out: vec![0; ports],
                }
            })
            .collect();

        let chan_count = channels.len();
        let watchdog =
            snoc_sim::default_watchdog_bound(routing.max_finite_distance(), cfg.packet_flits);
        Ok(RefSimulator {
            cfg: *cfg,
            topo: topo.clone(),
            routing,
            concentration,
            nodes: topo.node_count(),
            routers,
            channels,
            chan_out,
            chan_in,
            chan_dst,
            chan_src,
            inj_queues: vec![VecDeque::new(); topo.node_count()],
            now: 0,
            next_pid: 0,
            outstanding: 0,
            rng: ChaCha8Rng::seed_from_u64(cfg.seed),
            faults: Vec::new(),
            next_fault: 0,
            router_alive: vec![true; nr],
            chan_enabled: vec![true; chan_count],
            chan_alive: vec![true; chan_count],
            watchdog: Some(watchdog),
            last_progress: 0,
        })
    }

    /// Sets the no-progress watchdog bound in cycles, or disarms it
    /// with `None` — the mirror of `snoc_sim::Simulator::set_watchdog`,
    /// armed by default at the same
    /// `snoc_sim::default_watchdog_bound`. It never perturbs a run that
    /// makes progress.
    pub fn set_watchdog(&mut self, bound: Option<u64>) {
        self.watchdog = bound;
    }

    /// `true` when the armed watchdog bound has elapsed with flits live
    /// but unmoving. The cheap counter comparison short-circuits before
    /// the structural in-flight recount.
    fn watchdog_expired(&self) -> bool {
        match self.watchdog {
            Some(bound) => self.now - self.last_progress >= bound && self.in_flight_flits() > 0,
            None => false,
        }
    }

    /// The number of endpoint nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Total flits currently in the network and injection queues,
    /// recounted structurally every call (the reference model keeps no
    /// cached counters).
    #[must_use]
    pub fn in_flight_flits(&self) -> usize {
        let buffered: usize = self
            .routers
            .iter()
            .map(|r| {
                let inputs: usize = r
                    .inputs
                    .iter()
                    .flat_map(|p| p.iter().map(VecDeque::len))
                    .sum();
                inputs + r.st.iter().filter(|s| s.is_some()).count()
            })
            .sum();
        let wires: usize = self.channels.iter().map(|c| c.flits.len()).sum();
        let queued: usize = self.inj_queues.iter().map(VecDeque::len).sum();
        buffered + wires + queued
    }

    /// Schedules fault events against the next run, mirroring
    /// `snoc_sim::Simulator::set_fault_plan`: flits on dead hardware
    /// (and the whole packets they belong to) are dropped and counted,
    /// routing self-heals on the surviving graph, and traffic between
    /// severed pairs quiesces. The drop rules are the same pure function
    /// of pre-fault state, new liveness and new routing as the optimized
    /// engine's, which is what keeps faulted runs exactly comparable.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem when the plan references
    /// hardware the topology does not have, or when a non-empty plan is
    /// combined with non-minimal routing (the degraded table rebuild is
    /// specified for minimal routing only).
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) -> Result<(), String> {
        plan.validate(&self.topo)?;
        if !plan.is_empty() && self.cfg.routing != RoutingKind::Minimal {
            return Err("fault injection requires minimal routing".into());
        }
        self.faults = plan.events().to_vec();
        self.next_fault = 0;
        Ok(())
    }

    /// Applies every fault event due at or before the current cycle,
    /// then repairs the network once for the whole batch. Called at the
    /// top of each run-loop iteration, before the cycle's phases — the
    /// same position the optimized engine applies faults at.
    fn apply_due_faults(&mut self, report: &mut RefReport) {
        let mut applied = false;
        while self.next_fault < self.faults.len() && self.faults[self.next_fault].cycle <= self.now
        {
            let kind = self.faults[self.next_fault].kind;
            self.next_fault += 1;
            applied = true;
            match kind {
                FaultKind::LinkDown { a, b } => self.set_link_enabled(a, b, false),
                FaultKind::LinkUp { a, b } => self.set_link_enabled(a, b, true),
                FaultKind::RouterDown { router } => self.router_alive[router.index()] = false,
            }
        }
        if applied {
            self.repair_after_faults(report);
            // A fault batch is progress, exactly as in the optimized
            // engine: the network was reshaped and wedged flits may
            // have been swept.
            self.last_progress = self.now;
        }
    }

    /// Flips both directed channels of the undirected link `a -- b`.
    fn set_link_enabled(&mut self, a: RouterId, b: RouterId, enabled: bool) {
        let pa = self.routing.port_to(a, b);
        let pb = self.routing.port_to(b, a);
        self.chan_enabled[self.chan_out[a.index()][pa]] = enabled;
        self.chan_enabled[self.chan_out[b.index()][pb]] = enabled;
    }

    /// Rebuilds the world after a batch of fault events with the same
    /// rules as `snoc_sim`'s repair: channel liveness, degraded routing,
    /// the doomed-packet set (flits on dead hardware, wormhole state
    /// pinned toward dead channels, heads severed from their destination
    /// under the new routing), a sweep of those packets' flits from
    /// every structure, drop accounting over measured packets, and a
    /// ground-truth credit recount on every live channel.
    fn repair_after_faults(&mut self, report: &mut RefReport) {
        // 1. Channel liveness: enabled, with both endpoints alive.
        for id in 0..self.channels.len() {
            let (src, _) = self.chan_src[id];
            let (dst, _) = self.chan_dst[id];
            self.chan_alive[id] =
                self.chan_enabled[id] && self.router_alive[src] && self.router_alive[dst];
        }
        // 2. Self-heal: minimal routes over the surviving graph, with
        // the original port numbering and tie-break.
        let routing = {
            let chan_alive = &self.chan_alive;
            let chan_out = &self.chan_out;
            let cur = &self.routing;
            cur.degraded(&self.router_alive, |a, b| {
                chan_alive[chan_out[a.index()][cur.port_to(a, b)]]
            })
        };
        // 3. The doomed-packet set. Whole packets die — wormhole flits
        // are useless without their head, and in-order ejection means a
        // doomed packet's tail can never have ejected.
        let mut doomed: Vec<u64> = Vec::new();
        for r in 0..self.routers.len() {
            let router = &self.routers[r];
            if !self.router_alive[r] {
                for lanes in &router.inputs {
                    for buf in lanes {
                        for f in buf {
                            doomed.push(f.packet);
                        }
                    }
                }
                for &(_, f) in router.st.iter().flatten() {
                    doomed.push(f.packet);
                }
                continue;
            }
            let net = router.net_ports;
            let dead_out = |out: usize| !self.chan_alive[self.chan_out[r][out]];
            // Wormhole state pinned toward a dead channel: held routes,
            // occupied ST registers, output-VC owners.
            for lanes in &router.held {
                for &((out, _), pid) in lanes.iter().flatten() {
                    if out < net && dead_out(out) {
                        doomed.push(pid);
                    }
                }
            }
            for (out, st) in router.st.iter().enumerate().take(net) {
                if let Some((_, f)) = st {
                    if dead_out(out) {
                        doomed.push(f.packet);
                    }
                }
            }
            for (out, owners) in router.out_pkt.iter().enumerate() {
                for &pid in owners.iter().flatten() {
                    if dead_out(out) {
                        doomed.push(pid);
                    }
                }
            }
            // Severed heads. Buffered heads are judged at this router;
            // ST heads at the router across the channel they are
            // committed to (ejection-port ST flits are home already).
            // Liveness of the judging router makes same-router traffic
            // die with it (a dead router's self-distance is still 0).
            for lanes in &router.inputs {
                for buf in lanes {
                    for f in buf {
                        if f.is_head && !routing.reachable(RouterId(r), f.dst_router) {
                            doomed.push(f.packet);
                        }
                    }
                }
            }
            for (out, st) in router.st.iter().enumerate() {
                if let Some((_, f)) = st {
                    if f.is_head {
                        let at = if out < net {
                            RouterId(self.chan_dst[self.chan_out[r][out]].0)
                        } else {
                            RouterId(r)
                        };
                        if !self.router_alive[at.index()] || !routing.reachable(at, f.dst_router) {
                            doomed.push(f.packet);
                        }
                    }
                }
            }
        }
        for id in 0..self.channels.len() {
            let dst_r = RouterId(self.chan_dst[id].0);
            for &(_, _, f) in &self.channels[id].flits {
                if !self.chan_alive[id] || (f.is_head && !routing.reachable(dst_r, f.dst_router)) {
                    doomed.push(f.packet);
                }
            }
        }
        for node in 0..self.nodes {
            let r = node / self.concentration;
            for f in &self.inj_queues[node] {
                if !self.router_alive[r]
                    || (f.is_head && !routing.reachable(RouterId(r), f.dst_router))
                {
                    doomed.push(f.packet);
                }
            }
        }
        doomed.sort_unstable();
        doomed.dedup();
        // 4. Sweep the doomed packets' flits out of every structure
        // (dead channels drop everything and void their credit queues;
        // dead routers drop everything they hold).
        let mut removed: Vec<RefFlit> = Vec::new();
        for id in 0..self.channels.len() {
            let ch = &mut self.channels[id];
            if !self.chan_alive[id] {
                removed.extend(ch.flits.drain(..).map(|(_, _, f)| f));
                ch.credits.clear();
            } else {
                ch.flits.retain(|&(_, _, f)| {
                    if doomed.binary_search(&f.packet).is_ok() {
                        removed.push(f);
                        false
                    } else {
                        true
                    }
                });
            }
        }
        for r in 0..self.routers.len() {
            let dead_router = !self.router_alive[r];
            let drop_pkt = |pid: u64| dead_router || doomed.binary_search(&pid).is_ok();
            let router = &mut self.routers[r];
            for lanes in &mut router.inputs {
                for buf in lanes {
                    buf.retain(|&f| {
                        if drop_pkt(f.packet) {
                            removed.push(f);
                            false
                        } else {
                            true
                        }
                    });
                }
            }
            for slot in router.held.iter_mut().flatten() {
                if slot.is_some_and(|(_, pid)| drop_pkt(pid)) {
                    *slot = None;
                }
            }
            for st in &mut router.st {
                if st.is_some_and(|(_, f)| drop_pkt(f.packet)) {
                    let (_, f) = st.take().expect("checked");
                    removed.push(f);
                }
            }
            for owner in router.out_pkt.iter_mut().flatten() {
                if owner.is_some_and(&drop_pkt) {
                    *owner = None;
                }
            }
        }
        for node in 0..self.nodes {
            let dead_router = !self.router_alive[node / self.concentration];
            self.inj_queues[node].retain(|&f| {
                if dead_router || doomed.binary_search(&f.packet).is_ok() {
                    removed.push(f);
                    false
                } else {
                    true
                }
            });
        }
        // 5. Account the drops. A doomed packet's flits all exist when
        // it dies (created together, swept together), so no packet can
        // span two repair batches and the distinct count is exact.
        let mut dropped_pkts: Vec<u64> = removed
            .iter()
            .filter(|f| f.measured)
            .map(|f| f.packet)
            .collect();
        report.activity.dropped_flits += dropped_pkts.len() as u64;
        dropped_pkts.sort_unstable();
        dropped_pkts.dedup();
        report.dropped_packets += dropped_pkts.len() as u64;
        self.outstanding = self.outstanding.saturating_sub(dropped_pkts.len() as u64);
        // 6. Swap the degraded routing in (routes are recomputed per
        // query here, so there are no caches to reset).
        self.routing = routing;
        // 7. Recount credits from ground truth on every live channel:
        // initial credits minus flits on the wire, credits in flight
        // back, flits buffered at the receiver, and an ST hold at the
        // sender with this channel's VC.
        for id in 0..self.channels.len() {
            if !self.chan_alive[id] {
                continue;
            }
            let (src, sp) = self.chan_src[id];
            let (dst, dp) = self.chan_dst[id];
            for vc in 0..self.cfg.vcs {
                let wire = self.channels[id]
                    .flits
                    .iter()
                    .filter(|&&(_, v, _)| v == vc)
                    .count();
                let returning = self.channels[id]
                    .credits
                    .iter()
                    .filter(|&&(_, v)| v == vc)
                    .count();
                let lane = self.routers[dst].inputs[dp][vc].len();
                let st_hold =
                    usize::from(matches!(self.routers[src].st[sp], Some((v, _)) if v == vc));
                let consumed = wire + returning + lane + st_hold;
                self.routers[src].credits[sp][vc] = self
                    .cfg
                    .buffer_flits
                    .checked_sub(consumed)
                    .unwrap_or_else(|| panic!("credit recount underflow: channel {id} vc {vc}"));
            }
        }
    }

    /// Whether traffic between two endpoints can currently be carried:
    /// both routers alive and connected on the surviving graph.
    fn pair_online(&self, src: NodeId, dst: NodeId) -> bool {
        let s = RouterId(src.index() / self.concentration);
        let d = RouterId(dst.index() / self.concentration);
        self.router_alive[s.index()] && self.router_alive[d.index()] && self.routing.reachable(s, d)
    }

    /// Runs open-loop synthetic traffic: per-cycle Bernoulli injection
    /// of `cfg.packet_flits`-flit packets at `rate` flits/node/cycle,
    /// measured after `warmup` cycles for `measure` cycles, plus a
    /// bounded drain phase — the classic cycle-accurate loop.
    pub fn run_synthetic(
        &mut self,
        pattern: TrafficPattern,
        rate: f64,
        warmup: u64,
        measure: u64,
    ) -> Snapshot {
        self.run_synthetic_bursty(pattern, rate, BurstModel::uniform(), warmup, measure)
    }

    /// Runs synthetic traffic with a two-state Markov burst model, one
    /// `InjectionProcess::tick` per node per cycle.
    pub fn run_synthetic_bursty(
        &mut self,
        pattern: TrafficPattern,
        rate: f64,
        burst: BurstModel,
        warmup: u64,
        measure: u64,
    ) -> Snapshot {
        let topo_nodes = self.nodes;
        let mut report = RefReport::new(topo_nodes);
        report.measured_cycles = measure;
        let end_measure = warmup + measure;
        let drain_cap = end_measure + measure.max(2_000);
        let mut process = InjectionProcess::new(topo_nodes, rate, self.cfg.packet_flits, burst);
        let sampler = PatternSampler::new(pattern, &self.topo);
        self.last_progress = self.now;
        while self.now < end_measure || (self.outstanding > 0 && self.now < drain_cap) {
            self.apply_due_faults(&mut report);
            let measuring = self.now >= warmup && self.now < end_measure;
            self.step(measuring, &mut report);
            if self.now < end_measure {
                for node in 0..topo_nodes {
                    if process.tick(node, &mut self.rng) {
                        if let Some(dst) = sampler.sample(NodeId(node), &mut self.rng) {
                            self.generate(
                                NodeId(node),
                                dst,
                                self.cfg.packet_flits as u32,
                                false,
                                measuring,
                                &mut report,
                            );
                        }
                    }
                }
            }
            if self.watchdog_expired() {
                break;
            }
            self.now += 1;
        }
        report.drained = self.outstanding == 0;
        report.total_cycles = self.now;
        report.into_snapshot()
    }

    /// Replays an explicit message list (the exact-equality mode of the
    /// differential harness): read requests are answered with 6-flit
    /// replies, packets created at or after `warmup` are measured, and
    /// the loop semantics mirror the optimized engine's `run_trace`
    /// cycle for cycle.
    pub fn run_workload(&mut self, trace: &[TraceMessage], warmup: u64) -> Snapshot {
        let mut report = RefReport::new(self.nodes);
        let end = trace.last().map_or(0, |m| m.cycle + 1);
        report.measured_cycles = end.saturating_sub(warmup).max(1);
        let drain_cap = end + 50_000;
        let mut next = 0usize;
        self.last_progress = self.now;
        while next < trace.len() || (self.outstanding > 0 && self.now < drain_cap) {
            self.apply_due_faults(&mut report);
            let measuring = self.now >= warmup;
            self.step(measuring, &mut report);
            while next < trace.len() && trace[next].cycle <= self.now {
                let m = trace[next];
                next += 1;
                self.generate(
                    m.src,
                    m.dst,
                    m.kind.flits() as u32,
                    m.kind.expects_reply(),
                    measuring,
                    &mut report,
                );
            }
            if self.watchdog_expired() {
                break;
            }
            self.now += 1;
        }
        report.drained = self.outstanding == 0;
        report.total_cycles = self.now;
        report.into_snapshot()
    }

    /// Creates a packet unless the source queue lacks space for it.
    fn generate(
        &mut self,
        src: NodeId,
        dst: NodeId,
        len: u32,
        wants_reply: bool,
        measured: bool,
        report: &mut RefReport,
    ) {
        debug_assert_ne!(src, dst, "self-traffic never enters the network");
        if !self.faults.is_empty() && !self.pair_online(src, dst) {
            return; // severed pair: quiesce, not a queue stall
        }
        if self.inj_queues[src.index()].len() + len as usize > self.cfg.injection_queue_flits {
            if measured {
                report.stalled_generations += 1;
            }
            return;
        }
        self.push_packet(src, dst, len, wants_reply, measured, report);
    }

    /// Unconditionally enqueues a packet (replies bypass the bound).
    fn push_packet(
        &mut self,
        src: NodeId,
        dst: NodeId,
        len: u32,
        wants_reply: bool,
        measured: bool,
        report: &mut RefReport,
    ) {
        let dst_router = RouterId(dst.index() / self.concentration);
        let src_router = RouterId(src.index() / self.concentration);
        let packet = self.next_pid;
        self.next_pid += 1;
        let intermediate = if src_router != dst_router {
            self.adaptive_intermediate(src_router, dst_router)
        } else {
            None
        };
        if measured {
            report.injected_packets += 1;
            self.outstanding += 1;
        }
        for i in 0..len {
            self.inj_queues[src.index()].push_back(RefFlit {
                packet,
                src,
                dst,
                dst_router,
                created: self.now,
                packet_len: len,
                hops: 0,
                is_head: i == 0,
                is_tail: i == len - 1,
                measured,
                wants_reply,
                intermediate,
                intermediate_done: false,
            });
        }
        self.last_progress = self.now;
    }

    /// Source-side adaptive route selection (§6), mirroring the spec's
    /// UGAL comparisons with the reference model's own state.
    fn adaptive_intermediate(&mut self, src: RouterId, dst: RouterId) -> Option<RouterId> {
        match self.cfg.routing {
            RoutingKind::Minimal => None,
            RoutingKind::UgalL => {
                let mid = self.random_router(src, dst)?;
                let d_min = self.routing.distance(src, dst) as f64;
                let d_non =
                    (self.routing.distance(src, mid) + self.routing.distance(mid, dst)) as f64;
                let q_min = self.first_hop_occupancy(src, dst) as f64;
                let q_non = self.first_hop_occupancy(src, mid) as f64;
                (q_non * d_non + 3.0 < q_min * d_min).then_some(mid)
            }
            RoutingKind::UgalG => {
                let mid = self.random_router(src, dst)?;
                let min_cost = self.path_cost(src, dst);
                let non_cost = self.path_cost(src, mid) + self.path_cost(mid, dst);
                (non_cost + 3.0 < min_cost).then_some(mid)
            }
            RoutingKind::XyAdaptive => unreachable!("rejected at build time"),
        }
    }

    fn random_router(&mut self, src: RouterId, dst: RouterId) -> Option<RouterId> {
        let nr = self.routers.len();
        if nr <= 2 {
            return None;
        }
        for _ in 0..8 {
            let mid = RouterId(self.rng.random_range(0..nr));
            if mid != src && mid != dst {
                return Some(mid);
            }
        }
        None
    }

    /// Local congestion toward `target`: occupancy of the first-hop
    /// output direction (ST register + consumed credits + wire).
    fn first_hop_occupancy(&self, src: RouterId, target: RouterId) -> usize {
        if src == target {
            return 0;
        }
        let (port, _) = self.routing.route(src, target, 0, self.cfg.vcs);
        self.direction_occupancy(src, port)
    }

    fn direction_occupancy(&self, r: RouterId, out_port: usize) -> usize {
        let router = &self.routers[r.index()];
        let st = usize::from(router.st[out_port].is_some());
        let held: usize = router.credits[out_port].iter().sum();
        let consumed = self.cfg.buffer_flits * self.cfg.vcs - held;
        let wire = self.channels[self.chan_out[r.index()][out_port]]
            .flits
            .len();
        st + consumed + wire
    }

    /// Global congestion along the minimal path (UGAL-G), one unit of
    /// pipeline cost per hop.
    fn path_cost(&self, src: RouterId, dst: RouterId) -> f64 {
        let mut cur = src;
        let mut cost = 0.0;
        let mut hops = 0u32;
        while cur != dst {
            let (port, _) = self.routing.route(cur, dst, hops, self.cfg.vcs);
            cost += self.direction_occupancy(cur, port) as f64 + 1.0;
            cur = self.routing.peer(cur, port);
            hops += 1;
        }
        cost
    }

    /// One cycle of the whole network, visiting every channel, router
    /// and node in index order. Phase structure mirrors the optimized
    /// engine: (1) wire delivery and credit return, (2) switch
    /// traversal out of the ST registers, (3) allocation, (4) injection.
    fn step(&mut self, measuring: bool, report: &mut RefReport) {
        let now = self.now;
        // Phase 1: every channel delivers its due head flit and returns
        // due credits.
        for id in 0..self.channels.len() {
            if let Some(&(when, vc, _)) = self.channels[id].flits.front() {
                if when <= now {
                    let (_, _, flit) = self.channels[id].flits.pop_front().expect("checked");
                    let (dst, port) = self.chan_dst[id];
                    self.deliver(dst, port, vc, flit);
                    self.last_progress = now;
                    if measuring {
                        report.activity.buffer_writes += 1;
                    }
                }
            }
            let (src, src_port) = self.chan_src[id];
            while let Some(&(when, vc)) = self.channels[id].credits.front() {
                if when > now {
                    break;
                }
                self.channels[id].credits.pop_front();
                self.routers[src].credits[src_port][vc] += 1;
            }
        }
        // Phase 2: ST registers drain onto wires / local nodes.
        for r in 0..self.routers.len() {
            for port in 0..self.routers[r].st.len() {
                let Some((out_vc, flit)) = self.routers[r].st[port].take() else {
                    continue;
                };
                self.last_progress = now;
                if measuring {
                    report.activity.crossbar_traversals += 1;
                }
                if port < self.routers[r].net_ports {
                    if measuring {
                        report.activity.link_flit_hops += 1;
                        report.activity.wire_flit_tiles += 1; // unit links
                    }
                    let ch = self.chan_out[r][port];
                    self.channels[ch].flits.push_back((now + 1, out_vc, flit));
                } else {
                    self.eject(flit, measuring, report);
                }
            }
        }
        // Phase 3: allocation at every router.
        for r in 0..self.routers.len() {
            self.alloc_router(r, now, measuring, report);
        }
        // Phase 4: one flit per node per cycle into the router.
        for node in 0..self.nodes {
            if self.inj_queues[node].is_empty() {
                continue;
            }
            let r = node / self.concentration;
            let port = self.routers[r].net_ports + node % self.concentration;
            if self.routers[r].inputs[port][0].len() < self.cfg.buffer_flits {
                let flit = self.inj_queues[node].pop_front().expect("non-empty");
                self.deliver(r, port, 0, flit);
                self.last_progress = now;
                if measuring {
                    report.activity.buffer_writes += 1;
                }
            }
        }
    }

    /// Deposits a flit into a router input, handling Valiant bookkeeping.
    fn deliver(&mut self, r: usize, port: usize, vc: usize, mut flit: RefFlit) {
        if flit.intermediate == Some(RouterId(r)) {
            flit.intermediate_done = true;
        }
        let buf = &mut self.routers[r].inputs[port][vc];
        assert!(
            buf.len() < self.cfg.buffer_flits,
            "input buffer overflow at router {r} port {port} vc {vc}"
        );
        buf.push_back(flit);
    }

    /// The route of `flit` at router `r` (ejection port when home).
    fn compute_route(&self, r: usize, flit: &RefFlit) -> (usize, usize) {
        let here = RouterId(r);
        if flit.dst_router == here && (flit.intermediate.is_none() || flit.intermediate_done) {
            let local = flit.dst.index() % self.concentration;
            (self.routers[r].net_ports + local, 0)
        } else {
            self.routing
                .route(here, flit.target(), flit.hops, self.cfg.vcs)
        }
    }

    /// Whether `(out port, out VC)` can take this flit right now.
    fn output_ready(
        &self,
        r: usize,
        claimed: &[bool],
        (out, out_vc): (usize, usize),
        flit: &RefFlit,
    ) -> bool {
        let router = &self.routers[r];
        if router.st[out].is_some() || claimed[out] {
            return false;
        }
        if out >= router.net_ports {
            return true; // ejection: the node always consumes
        }
        match router.out_pkt[out][out_vc] {
            Some(pid) if pid != flit.packet => return false,
            _ => {}
        }
        router.credits[out][out_vc] > 0
    }

    /// The 2-pass separable allocator of the edge-router spec: each
    /// input port nominates one VC (round-robin over VCs), then each
    /// output grants one nomination (round-robin over inputs). Fresh
    /// scratch vectors every cycle — simplicity over speed.
    fn alloc_router(&mut self, r: usize, now: u64, measuring: bool, report: &mut RefReport) {
        let net = self.routers[r].net_ports;
        let ports = self.routers[r].st.len();
        let mut claimed = vec![false; ports];
        let mut nominations: Vec<(usize, usize, (usize, usize))> = Vec::new();
        for port in 0..ports {
            let start = self.routers[r].rr_in[port];
            for i in 0..self.cfg.vcs {
                let vc = (start + i) % self.cfg.vcs;
                let Some(&head) = self.routers[r].inputs[port][vc].front() else {
                    continue;
                };
                let route = match self.routers[r].held[port][vc] {
                    Some((held, _)) => held,
                    None => self.compute_route(r, &head),
                };
                if self.output_ready(r, &claimed, route, &head) {
                    nominations.push((port, vc, route));
                    break;
                }
            }
        }
        // Output arbitration: priority is round-robin distance from the
        // output's pointer (identical to the optimized engine's sort).
        nominations.sort_by_key(|&(port, _, (out, _))| {
            let prio = (port + ports - self.routers[r].rr_out[out] % ports) % ports.max(1);
            (out, prio)
        });
        for &(port, vc, route) in &nominations {
            let (out, out_vc) = route;
            if claimed[out] || self.routers[r].st[out].is_some() {
                continue;
            }
            claimed[out] = true;
            let mut flit = self.routers[r].inputs[port][vc]
                .pop_front()
                .expect("nominated");
            if flit.is_head {
                self.routers[r].held[port][vc] = Some((route, flit.packet));
            }
            if flit.is_tail {
                self.routers[r].held[port][vc] = None;
            }
            self.routers[r].rr_in[port] = (vc + 1) % self.cfg.vcs;
            self.routers[r].rr_out[out] = (port + 1) % ports;
            if measuring {
                report.activity.buffer_accesses += 1;
                report.activity.buffer_reads += 1;
                report.activity.alloc_grants += 1;
            }
            if port < net {
                // One credit back upstream for the freed buffer slot.
                let ch = self.chan_in[r][port];
                self.channels[ch].credits.push_back((now + 1, vc));
            }
            if out < net {
                if flit.is_head {
                    self.routers[r].out_pkt[out][out_vc] = Some(flit.packet);
                }
                if flit.is_tail {
                    self.routers[r].out_pkt[out][out_vc] = None;
                }
                flit.hops += 1;
                self.routers[r].credits[out][out_vc] -= 1;
            }
            self.routers[r].st[out] = Some((out_vc, flit));
        }
    }

    /// Hands a flit to its destination node.
    fn eject(&mut self, flit: RefFlit, measuring: bool, report: &mut RefReport) {
        if measuring {
            report.activity.ejections += 1;
        }
        if flit.is_tail {
            if flit.measured {
                self.outstanding = self.outstanding.saturating_sub(1);
                report.record_delivery(self.now - flit.created, flit.hops, flit.packet_len);
            }
            if flit.wants_reply && (self.faults.is_empty() || self.pair_online(flit.dst, flit.src))
            {
                self.push_packet(flit.dst, flit.src, 6, false, flit.measured, report);
            }
        }
    }
}
