//! Golden reference simulator for differential verification.
//!
//! PR 4 rewrote the optimized simulator's hot path (cycle-skipping,
//! geometric injection sampling, the flit arena) and deliberately broke
//! same-seed compatibility with earlier versions; until now the only
//! correctness anchor was the simulator agreeing with *itself*
//! (skipping on vs. off). This crate is the independent oracle: a
//! deliberately simple, allocation-happy, cycle-by-cycle wormhole
//! simulator in the style of an executable specification — by-value
//! flits, per-cycle Bernoulli injection, no worklists, no skipping, no
//! arena — sharing only `snoc_topology`, `snoc_traffic` definitions and
//! the written routing/microarchitecture *spec* with `snoc_sim`, never
//! its optimized data structures.
//!
//! Both engines are compared through `snoc_sim`'s engine-independent
//! [`snoc_sim::Snapshot`] conformance interface:
//!
//! - **statistical mode** (synthetic traffic): each engine draws its own
//!   randomness, and the differential harness
//!   (`crates/refsim/tests/differential.rs`, `repro_verify`) checks
//!   conservation laws per engine plus cross-engine agreement of
//!   injected/delivered counts, hop totals and mean latency within
//!   sampling tolerances;
//! - **exact mode** (workload-driven, minimal routing): neither engine
//!   consumes randomness, so the snapshots must be **equal** — every
//!   counter, the activity figures, the full latency histogram and the
//!   final clock.
//!
//! # Example
//!
//! ```
//! use snoc_refsim::{RefConfig, RefSimulator};
//! use snoc_topology::Topology;
//! use snoc_traffic::TrafficPattern;
//!
//! let topo = Topology::slim_noc(3, 3)?;
//! let mut sim = RefSimulator::build(&topo, &RefConfig::default())?;
//! let snap = sim.run_synthetic(TrafficPattern::Random, 0.05, 500, 2_000);
//! assert!(snap.delivered_packets > 0);
//! snap.check_conservation().map_err(|e| format!("violated: {e}"))?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
mod engine;
mod routing;

pub use engine::{RefConfig, RefSimulator};
pub use routing::RefRouting;

#[cfg(test)]
mod tests {
    use super::*;
    use snoc_topology::Topology;
    use snoc_traffic::TrafficPattern;

    #[test]
    fn low_load_drains_with_small_latency() {
        let topo = Topology::slim_noc(3, 3).unwrap();
        let mut sim = RefSimulator::build(&topo, &RefConfig::default()).unwrap();
        let snap = sim.run_synthetic(TrafficPattern::Random, 0.03, 500, 3_000);
        assert!(snap.delivered_packets > 100, "{snap:?}");
        assert!(snap.drained);
        assert_eq!(sim.in_flight_flits(), 0);
        let lat = snap.mean_latency();
        assert!(lat > 5.0 && lat < 30.0, "latency {lat}");
        assert!(snap.mean_hops() <= 2.0 + 1e-9, "diameter-2 network");
        snap.check_conservation().unwrap();
    }

    #[test]
    fn determinism_same_seed_same_snapshot() {
        let topo = Topology::mesh(4, 3, 2);
        let run = |seed: u64| {
            let cfg = RefConfig::default().with_seed(seed);
            let mut sim = RefSimulator::build(&topo, &cfg).unwrap();
            sim.run_synthetic(TrafficPattern::Random, 0.05, 300, 1_500)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let topo = Topology::mesh(3, 3, 1);
        for bad in [
            RefConfig {
                vcs: 0,
                ..RefConfig::default()
            },
            RefConfig {
                buffer_flits: 0,
                ..RefConfig::default()
            },
            RefConfig {
                injection_queue_flits: 2,
                ..RefConfig::default()
            },
            RefConfig::default().with_routing(snoc_sim::RoutingKind::XyAdaptive),
        ] {
            assert!(RefSimulator::build(&topo, &bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn config_extraction_covers_only_the_modeled_subset() {
        use snoc_sim::SimConfig;
        let cfg = RefConfig::try_from_sim(&SimConfig::default()).expect("default is edge/credited");
        assert_eq!(cfg.vcs, 2);
        assert_eq!(cfg.buffer_flits, 5);
        assert!(RefConfig::try_from_sim(&SimConfig::cbr(20)).is_none());
        assert!(RefConfig::try_from_sim(&SimConfig::elastic_links()).is_none());
        assert!(RefConfig::try_from_sim(&SimConfig::default().with_smart()).is_none());
        assert!(RefConfig::try_from_sim(&SimConfig::eb_var()).is_none());
    }
}
