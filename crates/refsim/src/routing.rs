//! An independent implementation of the routing *specification* the
//! optimized engine's `snoc_sim::RoutingTable` precomputes:
//!
//! - **table strategy** (Slim NoC, Flattened Butterfly, Dragonfly, …):
//!   minimal next hops from BFS distances, ties broken by the documented
//!   `(cur·31 + dst·17) mod candidates` hash over the sorted neighbor
//!   list, with hop-indexed VCs (`vc = min(hops, |VC|−1)`);
//! - **mesh**: dimension-order routing, X first, hop-indexed VCs;
//! - **torus**: dimension-order routing along the shorter ring direction
//!   (ties go forward) with the stateless dateline VC rule — going
//!   forward, a hop made from a position past the destination
//!   (`cur > dst`) precedes the wrap edge and uses VC0, anything else
//!   VC1 (mirrored for the − direction).
//!
//! Nothing here is shared with `snoc_sim`'s flattened arrays: distances
//! come from a fresh BFS and next hops are recomputed from the written
//! spec, so agreement between the two (pinned by the differential tests)
//! is evidence about the spec, not about shared code.

use snoc_topology::{RouterId, Topology, TopologyKind};

/// Which next-hop rule the topology selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Strategy {
    /// Dimension-order on an `x × y` mesh.
    Mesh { x: usize },
    /// Dimension-order with dateline VCs on an `x × y` torus.
    Torus { x: usize, y: usize },
    /// BFS minimal table with hash tie-break.
    Table,
}

/// Reference routing state: plain nested `Vec`s, recomputed per query
/// where the spec allows it.
#[derive(Debug, Clone)]
pub struct RefRouting {
    strategy: Strategy,
    /// `dist[a][b]` — hop distance between routers.
    dist: Vec<Vec<usize>>,
    /// Sorted neighbor list per router (ports are positions in it).
    neighbors: Vec<Vec<RouterId>>,
}

impl RefRouting {
    /// Builds the reference routing state for a topology.
    ///
    /// # Panics
    ///
    /// Panics if the topology is disconnected.
    #[must_use]
    pub fn new(topo: &Topology) -> Self {
        let nr = topo.router_count();
        let neighbors: Vec<Vec<RouterId>> =
            topo.routers().map(|r| topo.neighbors(r).to_vec()).collect();
        let dist = (0..nr).map(|src| bfs(&neighbors, src)).collect();
        let strategy = match topo.kind() {
            TopologyKind::Mesh { x, .. } => Strategy::Mesh { x: *x },
            TopologyKind::Torus { x, y } => Strategy::Torus { x: *x, y: *y },
            _ => Strategy::Table,
        };
        RefRouting {
            strategy,
            dist,
            neighbors,
        }
    }

    /// Hop distance between two routers.
    #[must_use]
    pub fn distance(&self, a: RouterId, b: RouterId) -> usize {
        self.dist[a.index()][b.index()]
    }

    /// Number of router-to-router ports at `r`.
    #[must_use]
    pub fn port_count(&self, r: RouterId) -> usize {
        self.neighbors[r.index()].len()
    }

    /// The neighbor reached through `port` of router `r`.
    #[must_use]
    pub fn peer(&self, r: RouterId, port: usize) -> RouterId {
        self.neighbors[r.index()][port]
    }

    /// The port of `cur` leading to the adjacent router `next`.
    ///
    /// # Panics
    ///
    /// Panics if the routers are not adjacent.
    #[must_use]
    pub fn port_to(&self, cur: RouterId, next: RouterId) -> usize {
        self.neighbors[cur.index()]
            .iter()
            .position(|&n| n == next)
            .expect("routers must be adjacent")
    }

    /// Routes a flit currently at `cur` toward `target` on hop `hops`:
    /// returns `(output port, output VC)`.
    ///
    /// # Panics
    ///
    /// Panics if `cur == target`.
    #[must_use]
    pub fn route(&self, cur: RouterId, target: RouterId, hops: u32, vcs: usize) -> (usize, usize) {
        assert_ne!(cur, target, "flit already at target");
        let hop_vc = (hops as usize).min(vcs - 1);
        match self.strategy {
            Strategy::Mesh { x } => {
                let next = dor_next_mesh(cur, target, x);
                (self.port_to(cur, next), hop_vc)
            }
            Strategy::Torus { x, y } => {
                let (next, vc) = dor_next_torus(cur, target, x, y);
                (self.port_to(cur, next), vc.min(vcs - 1))
            }
            Strategy::Table => {
                let (c, d) = (cur.index(), target.index());
                let want = self.dist[c][d] - 1;
                let candidates: Vec<usize> = self.neighbors[c]
                    .iter()
                    .enumerate()
                    .filter(|(_, n)| self.dist[n.index()][d] == want)
                    .map(|(port, _)| port)
                    .collect();
                assert!(!candidates.is_empty(), "minimal path must exist");
                let pick = (c.wrapping_mul(31).wrapping_add(d.wrapping_mul(17))) % candidates.len();
                (candidates[pick], hop_vc)
            }
        }
    }
}

/// Breadth-first distances from `src` over the router graph.
fn bfs(neighbors: &[Vec<RouterId>], src: usize) -> Vec<usize> {
    let mut dist = vec![usize::MAX; neighbors.len()];
    dist[src] = 0;
    let mut frontier = vec![src];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &cur in &frontier {
            for n in &neighbors[cur] {
                if dist[n.index()] == usize::MAX {
                    dist[n.index()] = dist[cur] + 1;
                    next.push(n.index());
                }
            }
        }
        frontier = next;
    }
    assert!(
        dist.iter().all(|&d| d != usize::MAX),
        "disconnected topology"
    );
    dist
}

/// Dimension-order next hop on a mesh (X first, then Y).
fn dor_next_mesh(cur: RouterId, dst: RouterId, x_dim: usize) -> RouterId {
    let (cx, cy) = (cur.index() % x_dim, cur.index() / x_dim);
    let (dx, dy) = (dst.index() % x_dim, dst.index() / x_dim);
    if cx != dx {
        let nx = if dx > cx { cx + 1 } else { cx - 1 };
        RouterId(cy * x_dim + nx)
    } else {
        let ny = if dy > cy { cy + 1 } else { cy - 1 };
        RouterId(ny * x_dim + cx)
    }
}

/// Dimension-order next hop on a torus, with the dateline VC.
fn dor_next_torus(cur: RouterId, dst: RouterId, x_dim: usize, y_dim: usize) -> (RouterId, usize) {
    let (cx, cy) = (cur.index() % x_dim, cur.index() / x_dim);
    let (dx, dy) = (dst.index() % x_dim, dst.index() / x_dim);
    if cx != dx {
        let (nx, vc) = ring_step(cx, dx, x_dim);
        (RouterId(cy * x_dim + nx), vc)
    } else {
        let (ny, vc) = ring_step(cy, dy, y_dim);
        (RouterId(ny * x_dim + cx), vc)
    }
}

/// One step along a ring from `c` toward `d`: (next index, dateline VC).
fn ring_step(c: usize, d: usize, dim: usize) -> (usize, usize) {
    let fwd = (d + dim - c) % dim;
    let go_fwd = fwd <= dim - fwd; // shorter way; tie -> forward
    if go_fwd {
        (
            (c + 1) % dim,
            usize::from(c < d), // pre-wrap segment (c > d) on VC0
        )
    } else {
        ((c + dim - 1) % dim, usize::from(c > d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoc_topology::Topology;

    #[test]
    fn minimal_paths_walk_to_their_target() {
        for topo in [
            Topology::slim_noc(3, 3).unwrap(),
            Topology::mesh(4, 3, 2),
            Topology::torus(4, 4, 2),
            Topology::dragonfly(2),
        ] {
            let routing = RefRouting::new(&topo);
            for src in topo.routers() {
                for dst in topo.routers() {
                    if src == dst {
                        continue;
                    }
                    let mut cur = src;
                    let mut hops = 0u32;
                    while cur != dst {
                        let (port, _) = routing.route(cur, dst, hops, 4);
                        cur = routing.peer(cur, port);
                        hops += 1;
                        assert!(
                            (hops as usize) <= topo.router_count(),
                            "{}: loop {src} -> {dst}",
                            topo.name()
                        );
                    }
                    assert_eq!(
                        hops as usize,
                        routing.distance(src, dst),
                        "{}: non-minimal {src} -> {dst}",
                        topo.name()
                    );
                }
            }
        }
    }

    #[test]
    fn torus_dateline_rule() {
        let topo = Topology::torus(6, 1, 1);
        let routing = RefRouting::new(&topo);
        // 5 -> 1 goes forward through the wrap: pre-wrap on VC0, then VC1.
        let (p, vc) = routing.route(RouterId(5), RouterId(1), 0, 2);
        assert_eq!(routing.peer(RouterId(5), p), RouterId(0));
        assert_eq!(vc, 0);
        let (p2, vc2) = routing.route(RouterId(0), RouterId(1), 1, 2);
        assert_eq!(routing.peer(RouterId(0), p2), RouterId(1));
        assert_eq!(vc2, 1);
    }

    #[test]
    fn ports_are_positions_in_sorted_neighbor_lists() {
        let topo = Topology::slim_noc(3, 2).unwrap();
        let routing = RefRouting::new(&topo);
        for r in topo.routers() {
            for port in 0..routing.port_count(r) {
                let peer = routing.peer(r, port);
                assert_eq!(routing.port_to(r, peer), port);
            }
        }
    }
}
