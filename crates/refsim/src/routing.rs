//! An independent implementation of the routing *specification* the
//! optimized engine's `snoc_sim::RoutingTable` precomputes:
//!
//! - **table strategy** (Slim NoC, Flattened Butterfly, Dragonfly, …):
//!   minimal next hops from BFS distances, ties broken by the documented
//!   `(cur·31 + dst·17) mod candidates` hash over the sorted neighbor
//!   list, with hop-indexed VCs (`vc = min(hops, |VC|−1)`);
//! - **mesh**: dimension-order routing, X first, hop-indexed VCs;
//! - **torus**: dimension-order routing along the shorter ring direction
//!   (ties go forward) with the stateless dateline VC rule — going
//!   forward, a hop made from a position past the destination
//!   (`cur > dst`) precedes the wrap edge and uses VC0, anything else
//!   VC1 (mirrored for the − direction);
//! - **up\*/down\*** (degraded rebuilds): deadlock-free routing over the
//!   surviving graph — a canonical BFS spanning forest orders routers
//!   by `(tree level, index)`, a path may never turn from a down hop
//!   (toward a larger key) back up, and the memoryless table commits to
//!   the descent (a router with a finite all-down distance to the
//!   destination always routes down), with the same hash tie-break.
//!
//! Nothing here is shared with `snoc_sim`'s flattened arrays: distances
//! come from `snoc_topology`'s shared BFS helper over plain nested
//! `Vec`s and next hops are recomputed from the written spec per query,
//! so agreement between the two engines (pinned by the differential
//! tests) is evidence about the spec, not about shared routing state.

use snoc_topology::{bfs_distances, RouterId, Topology, TopologyKind};
use std::collections::VecDeque;

/// Which next-hop rule the topology selects.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Strategy {
    /// Dimension-order on an `x × y` mesh.
    Mesh { x: usize },
    /// Dimension-order with dateline VCs on an `x × y` torus.
    Torus { x: usize, y: usize },
    /// BFS minimal table with hash tie-break.
    Table,
    /// Up*/down* over a degraded graph: routers ordered by
    /// `(level[v], v)`, descent committed via the per-destination
    /// all-down distances (`down[dst][v]`, `usize::MAX` where no
    /// all-down path exists). `dist` holds the walked table path
    /// lengths under this strategy, not BFS distances.
    UpDown {
        level: Vec<usize>,
        down: Vec<Vec<usize>>,
    },
}

/// Reference routing state: plain nested `Vec`s, recomputed per query
/// where the spec allows it.
#[derive(Debug, Clone)]
pub struct RefRouting {
    strategy: Strategy,
    /// `dist[a][b]` — hop distance between routers (`usize::MAX` for
    /// pairs severed by faults).
    dist: Vec<Vec<usize>>,
    /// Sorted neighbor list per router (ports are positions in it).
    neighbors: Vec<Vec<RouterId>>,
    /// `usable[r][port]` — may a flit leave `r` through `port`? All
    /// `true` on a healthy network; degraded rebuilds clear the entries
    /// for dead links and dead endpoint routers.
    usable: Vec<Vec<bool>>,
}

impl RefRouting {
    /// Builds the reference routing state for a topology.
    ///
    /// # Panics
    ///
    /// Panics if the topology is disconnected.
    #[must_use]
    pub fn new(topo: &Topology) -> Self {
        let nr = topo.router_count();
        let neighbors: Vec<Vec<RouterId>> =
            topo.routers().map(|r| topo.neighbors(r).to_vec()).collect();
        let dist: Vec<Vec<usize>> = (0..nr)
            .map(|src| {
                let d = bfs_distances(nr, RouterId(src), |r| &neighbors[r.index()][..]);
                assert!(d.iter().all(|&x| x != usize::MAX), "disconnected topology");
                d
            })
            .collect();
        let strategy = match topo.kind() {
            TopologyKind::Mesh { x, .. } => Strategy::Mesh { x: *x },
            TopologyKind::Torus { x, y } => Strategy::Torus { x: *x, y: *y },
            _ => Strategy::Table,
        };
        let usable = neighbors.iter().map(|n| vec![true; n.len()]).collect();
        RefRouting {
            strategy,
            dist,
            neighbors,
            usable,
        }
    }

    /// Rebuilds the routing state over the subgraph surviving a set of
    /// faults, mirroring the spec of `snoc_sim::RoutingTable::degraded`:
    /// a link is usable iff `link_alive` holds and both endpoint routers
    /// are alive, ports keep their positions in the full sorted neighbor
    /// list, every topology kind switches to deadlock-free **up\*/down\***
    /// routing over the surviving graph (canonical BFS spanning forest
    /// from lowest-index roots, descent committed per destination, the
    /// documented hash tie-break among legal next hops), and severed
    /// pairs get `usize::MAX` distances — callers must consult
    /// [`RefRouting::reachable`] first. Distances report the exact
    /// walked table path length, which may exceed the BFS distance of
    /// the surviving graph (the price of deadlock freedom).
    #[must_use]
    pub fn degraded<F>(&self, router_alive: &[bool], mut link_alive: F) -> Self
    where
        F: FnMut(RouterId, RouterId) -> bool,
    {
        let nr = self.neighbors.len();
        let usable: Vec<Vec<bool>> = (0..nr)
            .map(|cur| {
                self.neighbors[cur]
                    .iter()
                    .map(|&n| {
                        router_alive[cur] && router_alive[n.index()] && link_alive(RouterId(cur), n)
                    })
                    .collect()
            })
            .collect();
        let alive_adj: Vec<Vec<RouterId>> = (0..nr)
            .map(|cur| {
                self.neighbors[cur]
                    .iter()
                    .zip(&usable[cur])
                    .filter(|&(_, &ok)| ok)
                    .map(|(&n, _)| n)
                    .collect()
            })
            .collect();
        let forest = snoc_topology::bfs_forest(nr, |r| &alive_adj[r.index()][..]);
        let key = |v: usize| (forest.level[v], v);
        // Ascending key order: when `dist[v][dst]` is computed, every
        // up-neighbor's entry is already final.
        let mut order: Vec<usize> = (0..nr).collect();
        order.sort_unstable_by_key(|&v| key(v));
        let mut down = vec![vec![usize::MAX; nr]; nr];
        let mut dist = vec![vec![usize::MAX; nr]; nr];
        let mut queue = VecDeque::new();
        for dst in 0..nr {
            // All-down distances by BFS from dst: a down hop v → w has
            // key(v) < key(w), so finiteness propagates from w to its
            // smaller-key usable neighbors.
            let dd = &mut down[dst];
            dd[dst] = 0;
            queue.push_back(dst);
            while let Some(w) = queue.pop_front() {
                for (&n, &ok) in self.neighbors[w].iter().zip(&usable[w]) {
                    let v = n.index();
                    if ok && key(v) < key(w) && dd[v] == usize::MAX {
                        dd[v] = dd[w] + 1;
                        queue.push_back(v);
                    }
                }
            }
            // Table path lengths: commit to the descent where the
            // all-down distance is finite, otherwise one up hop through
            // the best up-neighbor.
            for &v in &order {
                if dd[v] != usize::MAX {
                    dist[v][dst] = dd[v];
                    continue;
                }
                let mut best = usize::MAX;
                for (&n, &ok) in self.neighbors[v].iter().zip(&usable[v]) {
                    let u = n.index();
                    if ok && key(u) < key(v) {
                        best = best.min(dist[u][dst]);
                    }
                }
                if best != usize::MAX {
                    dist[v][dst] = best + 1;
                }
            }
        }
        RefRouting {
            strategy: Strategy::UpDown {
                level: forest.level,
                down,
            },
            dist,
            neighbors: self.neighbors.clone(),
            usable,
        }
    }

    /// `true` if a path from `a` to `b` survives (always true for
    /// [`RefRouting::new`] state; degraded state marks severed pairs
    /// with a `usize::MAX` distance).
    #[must_use]
    pub fn reachable(&self, a: RouterId, b: RouterId) -> bool {
        self.dist[a.index()][b.index()] != usize::MAX
    }

    /// Hop distance between two routers.
    #[must_use]
    pub fn distance(&self, a: RouterId, b: RouterId) -> usize {
        self.dist[a.index()][b.index()]
    }

    /// Largest finite distance in the table — the diameter for healthy
    /// state, the longest walked table path for degraded state. Scales
    /// the default no-progress watchdog bound, mirroring
    /// `snoc_sim::RoutingTable::max_finite_distance`.
    #[must_use]
    pub fn max_finite_distance(&self) -> usize {
        self.dist
            .iter()
            .flatten()
            .filter(|&&d| d != usize::MAX)
            .max()
            .copied()
            .unwrap_or(0)
    }

    /// Number of router-to-router ports at `r`.
    #[must_use]
    pub fn port_count(&self, r: RouterId) -> usize {
        self.neighbors[r.index()].len()
    }

    /// The neighbor reached through `port` of router `r`.
    #[must_use]
    pub fn peer(&self, r: RouterId, port: usize) -> RouterId {
        self.neighbors[r.index()][port]
    }

    /// The port of `cur` leading to the adjacent router `next`.
    ///
    /// # Panics
    ///
    /// Panics if the routers are not adjacent.
    #[must_use]
    pub fn port_to(&self, cur: RouterId, next: RouterId) -> usize {
        self.neighbors[cur.index()]
            .iter()
            .position(|&n| n == next)
            .expect("routers must be adjacent")
    }

    /// Routes a flit currently at `cur` toward `target` on hop `hops`:
    /// returns `(output port, output VC)`.
    ///
    /// # Panics
    ///
    /// Panics if `cur == target`.
    #[must_use]
    pub fn route(&self, cur: RouterId, target: RouterId, hops: u32, vcs: usize) -> (usize, usize) {
        assert_ne!(cur, target, "flit already at target");
        let hop_vc = (hops as usize).min(vcs - 1);
        match &self.strategy {
            Strategy::Mesh { x } => {
                let next = dor_next_mesh(cur, target, *x);
                (self.port_to(cur, next), hop_vc)
            }
            Strategy::Torus { x, y } => {
                let (next, vc) = dor_next_torus(cur, target, *x, *y);
                (self.port_to(cur, next), vc.min(vcs - 1))
            }
            Strategy::Table => {
                let (c, d) = (cur.index(), target.index());
                assert_ne!(
                    self.dist[c][d],
                    usize::MAX,
                    "route queried for severed pair"
                );
                let want = self.dist[c][d] - 1;
                let candidates: Vec<usize> = self.neighbors[c]
                    .iter()
                    .enumerate()
                    .filter(|(port, n)| self.usable[c][*port] && self.dist[n.index()][d] == want)
                    .map(|(port, _)| port)
                    .collect();
                assert!(!candidates.is_empty(), "minimal path must exist");
                let pick = (c.wrapping_mul(31).wrapping_add(d.wrapping_mul(17))) % candidates.len();
                (candidates[pick], hop_vc)
            }
            Strategy::UpDown { level, down } => {
                let (c, d) = (cur.index(), target.index());
                assert_ne!(
                    self.dist[c][d],
                    usize::MAX,
                    "route queried for severed pair"
                );
                let key = |v: usize| (level[v], v);
                // Committed descent: once the all-down distance is
                // finite, only down hops that shorten it are legal;
                // before that, only up hops that shorten the table path.
                // Guard order matters: the sentinel check must
                // short-circuit before the `+ 1` comparison, identically
                // to the optimized table builder, so the candidate sets
                // (and hence the hash tie-break) agree bit for bit.
                let descending = down[d][c] != usize::MAX;
                let candidates: Vec<usize> = self.neighbors[c]
                    .iter()
                    .enumerate()
                    .filter(|(port, n)| {
                        let v = n.index();
                        self.usable[c][*port]
                            && if descending {
                                key(v) > key(c)
                                    && down[d][v] != usize::MAX
                                    && down[d][v] + 1 == down[d][c]
                            } else {
                                key(v) < key(c)
                                    && self.dist[v][d] != usize::MAX
                                    && self.dist[v][d] + 1 == self.dist[c][d]
                            }
                    })
                    .map(|(port, _)| port)
                    .collect();
                assert!(
                    !candidates.is_empty(),
                    "reachable pair must have a next hop"
                );
                let pick = (c.wrapping_mul(31).wrapping_add(d.wrapping_mul(17))) % candidates.len();
                (candidates[pick], hop_vc)
            }
        }
    }
}

/// Dimension-order next hop on a mesh (X first, then Y).
fn dor_next_mesh(cur: RouterId, dst: RouterId, x_dim: usize) -> RouterId {
    let (cx, cy) = (cur.index() % x_dim, cur.index() / x_dim);
    let (dx, dy) = (dst.index() % x_dim, dst.index() / x_dim);
    if cx != dx {
        let nx = if dx > cx { cx + 1 } else { cx - 1 };
        RouterId(cy * x_dim + nx)
    } else {
        let ny = if dy > cy { cy + 1 } else { cy - 1 };
        RouterId(ny * x_dim + cx)
    }
}

/// Dimension-order next hop on a torus, with the dateline VC.
fn dor_next_torus(cur: RouterId, dst: RouterId, x_dim: usize, y_dim: usize) -> (RouterId, usize) {
    let (cx, cy) = (cur.index() % x_dim, cur.index() / x_dim);
    let (dx, dy) = (dst.index() % x_dim, dst.index() / x_dim);
    if cx != dx {
        let (nx, vc) = ring_step(cx, dx, x_dim);
        (RouterId(cy * x_dim + nx), vc)
    } else {
        let (ny, vc) = ring_step(cy, dy, y_dim);
        (RouterId(ny * x_dim + cx), vc)
    }
}

/// One step along a ring from `c` toward `d`: (next index, dateline VC).
fn ring_step(c: usize, d: usize, dim: usize) -> (usize, usize) {
    let fwd = (d + dim - c) % dim;
    let go_fwd = fwd <= dim - fwd; // shorter way; tie -> forward
    if go_fwd {
        (
            (c + 1) % dim,
            usize::from(c < d), // pre-wrap segment (c > d) on VC0
        )
    } else {
        ((c + dim - 1) % dim, usize::from(c > d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoc_topology::Topology;

    #[test]
    fn minimal_paths_walk_to_their_target() {
        for topo in [
            Topology::slim_noc(3, 3).unwrap(),
            Topology::mesh(4, 3, 2),
            Topology::torus(4, 4, 2),
            Topology::dragonfly(2),
        ] {
            let routing = RefRouting::new(&topo);
            for src in topo.routers() {
                for dst in topo.routers() {
                    if src == dst {
                        continue;
                    }
                    let mut cur = src;
                    let mut hops = 0u32;
                    while cur != dst {
                        let (port, _) = routing.route(cur, dst, hops, 4);
                        cur = routing.peer(cur, port);
                        hops += 1;
                        assert!(
                            (hops as usize) <= topo.router_count(),
                            "{}: loop {src} -> {dst}",
                            topo.name()
                        );
                    }
                    assert_eq!(
                        hops as usize,
                        routing.distance(src, dst),
                        "{}: non-minimal {src} -> {dst}",
                        topo.name()
                    );
                }
            }
        }
    }

    #[test]
    fn torus_dateline_rule() {
        let topo = Topology::torus(6, 1, 1);
        let routing = RefRouting::new(&topo);
        // 5 -> 1 goes forward through the wrap: pre-wrap on VC0, then VC1.
        let (p, vc) = routing.route(RouterId(5), RouterId(1), 0, 2);
        assert_eq!(routing.peer(RouterId(5), p), RouterId(0));
        assert_eq!(vc, 0);
        let (p2, vc2) = routing.route(RouterId(0), RouterId(1), 1, 2);
        assert_eq!(routing.peer(RouterId(0), p2), RouterId(1));
        assert_eq!(vc2, 1);
    }

    #[test]
    fn ports_are_positions_in_sorted_neighbor_lists() {
        let topo = Topology::slim_noc(3, 2).unwrap();
        let routing = RefRouting::new(&topo);
        for r in topo.routers() {
            for port in 0..routing.port_count(r) {
                let peer = routing.peer(r, port);
                assert_eq!(routing.port_to(r, peer), port);
            }
        }
    }
}
