//! The shared comparison contract of the differential harness.
//!
//! Both verification tiers — the fuzzed proptest suite
//! (`crates/refsim/tests/differential.rs`) and the deterministic
//! `repro_verify` matrix in `snoc_bench` — apply *these* functions, so
//! a tolerance tuned or a check added here is enforced by both. Keeping
//! one copy is itself a verification property: two drifting copies of
//! the contract would let an engine regression pass whichever tier kept
//! the weaker form.

use snoc_sim::Snapshot;
use snoc_topology::{NodeId, Topology};
use snoc_traffic::{
    BurstModel, InjectionProcess, MessageKind, PatternSampler, TraceMessage, TrafficPattern,
};

/// Whether two counts agree within `k` standard deviations of their
/// difference (each count is a sum of independent Bernoulli trials, so
/// the difference's variance is at most `2·max(a, b)`) plus `slack`
/// for small-sample effects.
#[must_use]
pub fn counts_close(a: u64, b: u64, k: f64, slack: f64) -> bool {
    let diff = a.abs_diff(b) as f64;
    let scale = (2.0 * a.max(b) as f64 + 1.0).sqrt();
    diff <= k * scale + slack
}

/// Whether two means agree within `abs + rel · max(|a|, |b|)`.
#[must_use]
pub fn rel_close(a: f64, b: f64, rel: f64, abs: f64) -> bool {
    (a - b).abs() <= abs + rel * a.abs().max(b.abs())
}

/// The cross-engine statistical agreement tier: injected/delivered
/// counts within binomial tolerance, then — once both engines delivered
/// at least `min_sample` packets — mean hops, mean latency, and
/// throughput within relative tolerances. Conservation is *not*
/// checked here; run [`Snapshot::check_conservation`] on each snapshot
/// first.
///
/// Returns a short verdict string, or a description of the first
/// divergence (callers prefix their case context).
///
/// # Errors
///
/// Returns the first failed comparison.
pub fn compare_statistics(
    optimized: &Snapshot,
    reference: &Snapshot,
    min_sample: u64,
) -> Result<&'static str, String> {
    if !counts_close(
        optimized.injected_packets,
        reference.injected_packets,
        6.0,
        12.0,
    ) {
        return Err(format!(
            "injected diverged: optimized {} vs reference {}",
            optimized.injected_packets, reference.injected_packets
        ));
    }
    if !counts_close(
        optimized.delivered_packets,
        reference.delivered_packets,
        6.0,
        12.0,
    ) {
        return Err(format!(
            "delivered diverged: optimized {} vs reference {}",
            optimized.delivered_packets, reference.delivered_packets
        ));
    }
    // Comparisons of means are only meaningful with a sample behind
    // them; tiny windows (smoke runs, near-zero rates) skip them.
    if optimized.delivered_packets < min_sample || reference.delivered_packets < min_sample {
        return Ok("counts ok (sample too small for means)");
    }
    if !rel_close(optimized.mean_hops(), reference.mean_hops(), 0.08, 0.25) {
        return Err(format!(
            "mean hops diverged: optimized {:.3} vs reference {:.3}",
            optimized.mean_hops(),
            reference.mean_hops()
        ));
    }
    if !rel_close(
        optimized.mean_latency(),
        reference.mean_latency(),
        0.15,
        2.5,
    ) {
        return Err(format!(
            "mean latency diverged: optimized {:.2} vs reference {:.2}",
            optimized.mean_latency(),
            reference.mean_latency()
        ));
    }
    if !rel_close(optimized.throughput(), reference.throughput(), 0.10, 0.004) {
        return Err(format!(
            "throughput diverged: optimized {:.4} vs reference {:.4}",
            optimized.throughput(),
            reference.throughput()
        ));
    }
    Ok("stats ok")
}

/// Pre-generates the explicit message list of an exact-equality case:
/// arrival cycles from per-cycle Bernoulli trials, destinations from a
/// pattern sampler, a deterministic read/coherence/write kind mix
/// (reads trigger 6-flit replies inside both engines). Fed to
/// `Simulator::run_trace` and `RefSimulator::run_workload`, after which
/// neither engine consumes randomness under minimal routing and their
/// snapshots must be equal.
#[must_use]
pub fn workload(
    topo: &Topology,
    pattern: TrafficPattern,
    rate: f64,
    cycles: u64,
    seed: u64,
) -> Vec<TraceMessage> {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let sampler = PatternSampler::new(pattern, topo);
    let mut process = InjectionProcess::new(topo.node_count(), rate, 4, BurstModel::uniform());
    let mut out = Vec::new();
    for cycle in 0..cycles {
        for node in 0..topo.node_count() {
            if process.tick(node, &mut rng) {
                if let Some(dst) = sampler.sample(NodeId(node), &mut rng) {
                    let kind = match out.len() % 4 {
                        0 => MessageKind::ReadRequest,
                        1 | 2 => MessageKind::Coherence,
                        _ => MessageKind::WriteRequest,
                    };
                    out.push(TraceMessage {
                        cycle,
                        src: NodeId(node),
                        dst,
                        kind,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_tolerance_scales_with_magnitude() {
        assert!(counts_close(0, 0, 6.0, 12.0));
        assert!(counts_close(100, 115, 6.0, 12.0));
        assert!(!counts_close(100, 300, 6.0, 12.0));
        assert!(counts_close(10_000, 10_500, 6.0, 12.0));
        assert!(!counts_close(10_000, 12_000, 6.0, 12.0));
    }

    #[test]
    fn relative_tolerance() {
        assert!(rel_close(10.0, 10.9, 0.1, 0.0));
        assert!(!rel_close(10.0, 12.0, 0.1, 0.0));
        assert!(rel_close(0.0, 0.003, 0.1, 0.004));
    }

    #[test]
    fn workload_is_deterministic_and_well_formed() {
        let topo = Topology::mesh(3, 3, 2);
        let a = workload(&topo, TrafficPattern::Random, 0.1, 300, 7);
        let b = workload(&topo, TrafficPattern::Random, 0.1, 300, 7);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.iter().all(|m| m.src != m.dst));
        assert!(a.windows(2).all(|w| w[0].cycle <= w[1].cycle));
        let c = workload(&topo, TrafficPattern::Random, 0.1, 300, 8);
        assert_ne!(a, c, "seed changes the workload");
    }
}
