//! The differential verification harness: the optimized
//! event-accelerated `snoc_sim::Simulator` cross-checked against the
//! golden `snoc_refsim::RefSimulator` over a fuzzed matrix of
//! topology × routing × pattern × rate × seed.
//!
//! Checks per case:
//!
//! - **conservation** — each engine's [`Snapshot`] satisfies the
//!   activity-counter conservation laws (crossbar == link hops +
//!   ejections, grants == pops, histogram mass == deliveries, drained
//!   ⇒ delivered == injected);
//! - **agreement** — injected/delivered packet counts within binomial
//!   sampling tolerance, per-flit hop totals and mean latency within a
//!   tight relative tolerance (both engines target the same offered
//!   load and implement the same microarchitectural spec, but draw
//!   their own randomness);
//! - **exact equality** — for workload-driven runs under deterministic
//!   minimal routing neither engine consumes randomness, so the two
//!   snapshots must be byte-for-byte equal (every counter, activity
//!   figure, the full latency histogram and the final clock).
//!
//! Case counts are chosen so a default `cargo test` run covers well
//! over 200 fuzzed cases; set `PROPTEST_CASES` for a deep soak (the CI
//! `verify` job runs one nightly).

use proptest::prelude::*;
use snoc_refsim::check::{compare_statistics, counts_close, workload};
use snoc_refsim::{RefConfig, RefSimulator};
use snoc_sim::{Conformance, FaultPlan, RoutingKind, ShardedSimulator, SimConfig, Simulator};
use snoc_topology::{NodeId, Topology};
use snoc_traffic::{BurstModel, TrafficPattern};

/// The fuzzed topology pool: at least one member of every supported
/// family (Slim NoC, mesh, torus, Dragonfly, Flattened Butterfly), all
/// small enough that a case simulates in milliseconds. The second
/// element is the VC count required for deadlock freedom (hop-indexed
/// VCs need one VC per hop of the longest minimal path).
fn topology(idx: usize) -> (Topology, usize) {
    match idx {
        0 => (Topology::slim_noc(3, 3).unwrap(), 2),
        1 => (Topology::mesh(4, 3, 2), 2),
        2 => (Topology::torus(4, 4, 2), 2),
        3 => (Topology::dragonfly(2), 4),
        4 => (Topology::flattened_butterfly(3, 3, 2), 2),
        _ => (Topology::slim_noc(3, 2).unwrap(), 2),
    }
}

fn pattern(idx: usize) -> TrafficPattern {
    match idx {
        0 => TrafficPattern::Random,
        1 => TrafficPattern::BitShuffle,
        2 => TrafficPattern::BitReversal,
        3 => TrafficPattern::Adversarial1,
        4 => TrafficPattern::Adversarial2,
        _ => TrafficPattern::Transpose,
    }
}

fn configs(vcs: usize, routing: RoutingKind, seed: u64) -> (SimConfig, RefConfig) {
    let sim = SimConfig::default()
        .with_vcs(vcs)
        .with_routing(routing)
        .with_seed(seed);
    let reference = RefConfig::try_from_sim(&sim).expect("edge/credited config");
    // Give the reference engine an independent stream: agreement must
    // come from the shared spec, never from shared draws.
    (sim, reference.with_seed(seed ^ 0x5EED_5EED))
}

/// Runs one synthetic differential case and applies every check.
/// Returns an error string naming the first failed check.
#[allow(clippy::too_many_arguments)] // a flat case descriptor, called from 3 proptests
fn check_synthetic_case(
    topo_idx: usize,
    pat_idx: usize,
    routing: RoutingKind,
    rate: f64,
    burst: BurstModel,
    seed: u64,
    warmup: u64,
    measure: u64,
) -> Result<(), String> {
    let (topo, vcs) = topology(topo_idx);
    let vcs = if routing == RoutingKind::Minimal {
        vcs
    } else {
        4
    };
    let (sim_cfg, ref_cfg) = configs(vcs, routing, seed);
    let pat = pattern(pat_idx);
    let mut sim = Simulator::build(&topo, &sim_cfg).expect("sim builds");
    let optimized = sim
        .run_synthetic_bursty(pat, rate, burst, warmup, measure)
        .snapshot();
    let mut rsim = RefSimulator::build(&topo, &ref_cfg).expect("refsim builds");
    let reference = rsim.run_synthetic_bursty(pat, rate, burst, warmup, measure);
    let ctx = format!(
        "topo {} pattern {pat} routing {routing:?} rate {rate:.4} seed {seed}",
        topo.name()
    );
    optimized
        .check_conservation()
        .map_err(|e| format!("{ctx}: optimized conservation: {e}"))?;
    reference
        .check_conservation()
        .map_err(|e| format!("{ctx}: reference conservation: {e}"))?;
    // The agreement tier lives in `snoc_refsim::check` so this suite
    // and the `repro_verify` matrix enforce the identical contract.
    compare_statistics(&optimized, &reference, 50)
        .map(|_| ())
        .map_err(|e| format!("{ctx}: {e}"))
}

/// One exact-equality case: same workload into both engines, minimal
/// routing, zero RNG consumption — snapshots must be equal.
fn check_exact_case(
    topo_idx: usize,
    pat_idx: usize,
    rate: f64,
    seed: u64,
    cycles: u64,
) -> Result<(), String> {
    let (topo, vcs) = topology(topo_idx);
    let (sim_cfg, ref_cfg) = configs(vcs, RoutingKind::Minimal, seed);
    let pat = pattern(pat_idx);
    let trace = workload(&topo, pat, rate, cycles, seed);
    let warmup = cycles / 4;
    let mut sim = Simulator::build(&topo, &sim_cfg).expect("sim builds");
    let optimized = sim.run_trace(&trace, warmup).snapshot();
    let mut rsim = RefSimulator::build(&topo, &ref_cfg).expect("refsim builds");
    let reference = rsim.run_workload(&trace, warmup);
    if optimized != reference {
        return Err(format!(
            "exact mode diverged: topo {} pattern {pat} rate {rate:.4} seed {seed} \
             ({} messages)\noptimized: {optimized:?}\nreference: {reference:?}",
            topo.name(),
            trace.len()
        ));
    }
    optimized
        .check_conservation()
        .map_err(|e| format!("conservation in exact mode: {e}"))
}

/// One faulted exact-equality case: the same explicit workload *and*
/// the same seeded fault storm into both engines under minimal routing.
/// Neither engine consumes randomness, and the drop rules are specified
/// as a pure function of pre-fault state, so the snapshots — including
/// `dropped_packets` and the `dropped_flits` activity counter — must be
/// byte-for-byte equal even when the degraded graph severs pairs.
fn check_faulted_exact_case(
    topo_idx: usize,
    pat_idx: usize,
    rate: f64,
    storm_links: usize,
    seed: u64,
    cycles: u64,
) -> Result<(), String> {
    let (topo, vcs) = topology(topo_idx);
    let (sim_cfg, ref_cfg) = configs(vcs, RoutingKind::Minimal, seed);
    let pat = pattern(pat_idx);
    let trace = workload(&topo, pat, rate, cycles, seed);
    let warmup = cycles / 4;
    // Storm lands mid-trace so in-flight flits are on the dead links.
    let plan = FaultPlan::storm(&topo, storm_links, cycles / 3, cycles / 2, seed ^ 0xFA17);
    let ctx = format!(
        "topo {} pattern {pat} rate {rate:.4} storm {storm_links} seed {seed}",
        topo.name()
    );
    let mut sim = Simulator::build(&topo, &sim_cfg).expect("sim builds");
    sim.set_fault_plan(&plan)
        .map_err(|e| format!("{ctx}: sim rejected plan: {e}"))?;
    let optimized = sim.run_trace(&trace, warmup).snapshot();
    let mut rsim = RefSimulator::build(&topo, &ref_cfg).expect("refsim builds");
    rsim.set_fault_plan(&plan)
        .map_err(|e| format!("{ctx}: refsim rejected plan: {e}"))?;
    let reference = rsim.run_workload(&trace, warmup);
    if optimized != reference {
        return Err(format!(
            "faulted exact mode diverged: {ctx} ({} messages, {} events)\n\
             optimized: {optimized:?}\nreference: {reference:?}",
            trace.len(),
            plan.events().len()
        ));
    }
    optimized
        .check_conservation()
        .map_err(|e| format!("{ctx}: conservation under faults: {e}"))
}

/// One saturation-storm exact case: the faulted exact tier pushed past
/// the network's capacity (offered load 0.4–1.0), where wormhole
/// backpressure chains are longest and a deadlock-prone repair table
/// would actually wedge. Both engines run with their default-armed
/// watchdogs; the run must either drain or abort with the structured
/// diagnostic — and the snapshots must stay byte-for-byte equal either
/// way.
fn check_saturated_storm_case(
    topo_idx: usize,
    pat_idx: usize,
    rate: f64,
    storm_links: usize,
    seed: u64,
    cycles: u64,
) -> Result<(), String> {
    let (topo, vcs) = topology(topo_idx);
    let (sim_cfg, ref_cfg) = configs(vcs, RoutingKind::Minimal, seed);
    let pat = pattern(pat_idx);
    let trace = workload(&topo, pat, rate, cycles, seed);
    let warmup = cycles / 4;
    let plan = FaultPlan::storm(&topo, storm_links, cycles / 3, cycles / 2, seed ^ 0xFA17);
    let ctx = format!(
        "topo {} pattern {pat} saturation rate {rate:.4} storm {storm_links} seed {seed}",
        topo.name()
    );
    let mut sim = Simulator::build(&topo, &sim_cfg).expect("sim builds");
    sim.set_fault_plan(&plan)
        .map_err(|e| format!("{ctx}: sim rejected plan: {e}"))?;
    let report = sim.run_trace(&trace, warmup);
    if !report.drained && report.deadlock.is_none() {
        return Err(format!(
            "{ctx}: run neither drained nor watchdog-aborted (outstanding flits at cap)"
        ));
    }
    let optimized = report.snapshot();
    let mut rsim = RefSimulator::build(&topo, &ref_cfg).expect("refsim builds");
    rsim.set_fault_plan(&plan)
        .map_err(|e| format!("{ctx}: refsim rejected plan: {e}"))?;
    let reference = rsim.run_workload(&trace, warmup);
    if optimized != reference {
        return Err(format!(
            "saturated storm diverged: {ctx} ({} messages)\n\
             optimized: {optimized:?}\nreference: {reference:?}",
            trace.len()
        ));
    }
    optimized
        .check_conservation()
        .map_err(|e| format!("{ctx}: conservation at saturation: {e}"))
}

/// One sharded-equivalence case: the sharded parallel engine at 2 and
/// 4 shards against the monolithic engine on identical synthetic
/// traffic. Deterministic routing replicates the global injection
/// calendar and RNG stream on every shard, so the merged report must be
/// byte-for-byte identical — struct equality *and* serialized JSON.
fn check_shard_exact_case(
    topo_idx: usize,
    pat_idx: usize,
    rate: f64,
    seed: u64,
) -> Result<(), String> {
    let (topo, vcs) = topology(topo_idx);
    let (sim_cfg, _) = configs(vcs, RoutingKind::Minimal, seed);
    let pat = pattern(pat_idx);
    let mut mono = Simulator::build(&topo, &sim_cfg).expect("sim builds");
    let baseline = mono.run_synthetic(pat, rate, 400, 1_600);
    for shards in [2usize, 4] {
        let mut sim = ShardedSimulator::build(&topo, &sim_cfg, shards).expect("sharded builds");
        let report = sim.run_synthetic(pat, rate, 400, 1_600);
        if report != baseline || report.to_json() != baseline.to_json() {
            return Err(format!(
                "topo {} pattern {pat} rate {rate:.4} seed {seed}: {shards}-shard \
                 report diverged from monolithic\nsharded:    {report}\nmonolithic: {baseline}",
                topo.name()
            ));
        }
    }
    baseline
        .snapshot()
        .check_conservation()
        .map_err(|e| format!("conservation: {e}"))
}

/// One sharded UGAL-L case: per-shard seed derivation rules out byte
/// identity, so the sharded engine is held to the same statistical
/// agreement contract as the reference model — and is compared against
/// the reference model itself, closing the loop sharded ⇄ refsim.
fn check_shard_ugal_case(
    topo_idx: usize,
    pat_idx: usize,
    rate: f64,
    seed: u64,
) -> Result<(), String> {
    let (topo, _) = topology(topo_idx);
    let (sim_cfg, ref_cfg) = configs(4, RoutingKind::UgalL, seed);
    let pat = pattern(pat_idx);
    let mut sim = ShardedSimulator::build(&topo, &sim_cfg, 4).expect("sharded builds");
    let optimized = sim.run_synthetic(pat, rate, 400, 2_400).snapshot();
    let mut rsim = RefSimulator::build(&topo, &ref_cfg).expect("refsim builds");
    let reference = rsim.run_synthetic(pat, rate, 400, 2_400);
    let ctx = format!(
        "topo {} pattern {pat} rate {rate:.4} seed {seed} [4 shards]",
        topo.name()
    );
    optimized
        .check_conservation()
        .map_err(|e| format!("{ctx}: sharded conservation: {e}"))?;
    reference
        .check_conservation()
        .map_err(|e| format!("{ctx}: reference conservation: {e}"))?;
    compare_statistics(&optimized, &reference, 50)
        .map(|_| ())
        .map_err(|e| format!("{ctx}: {e}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fuzzed synthetic differential: minimal routing over every
    /// topology family and pattern.
    #[test]
    fn optimized_engine_matches_reference_on_synthetic_traffic(
        topo_idx in 0usize..6,
        pat_idx in 0usize..6,
        rate in 0.01f64..0.16,
        seed in 0u64..1_000_000,
    ) {
        let r = check_synthetic_case(
            topo_idx, pat_idx, RoutingKind::Minimal, rate,
            BurstModel::uniform(), seed, 400, 2_400,
        );
        prop_assert!(r.is_ok(), "REPRO {}", r.unwrap_err());
    }

    /// Fuzzed adaptive-routing differential: UGAL-L and UGAL-G on the
    /// diameter-2 families (where 4 VCs cover the longest detour).
    #[test]
    fn optimized_engine_matches_reference_under_ugal(
        topo_sel in 0usize..3,
        ugal_g in 0usize..2,
        pat_idx in 0usize..2,
        rate in 0.01f64..0.12,
        seed in 0u64..1_000_000,
    ) {
        let topo_idx = [0, 4, 5][topo_sel]; // sn 3x3, FBF, sn 3x2
        let routing = if ugal_g == 1 { RoutingKind::UgalG } else { RoutingKind::UgalL };
        let r = check_synthetic_case(
            topo_idx, pat_idx, routing, rate,
            BurstModel::uniform(), seed, 400, 2_400,
        );
        prop_assert!(r.is_ok(), "REPRO {}", r.unwrap_err());
    }

    /// Fuzzed bursty-injection differential: on/off Markov phases on
    /// top of the Bernoulli/geometric duality.
    #[test]
    fn optimized_engine_matches_reference_under_bursts(
        topo_idx in 0usize..6,
        off_to_on in 0.05f64..0.9,
        on_to_off in 0.05f64..0.9,
        rate in 0.01f64..0.10,
        seed in 0u64..1_000_000,
    ) {
        let burst = BurstModel { off_to_on, on_to_off };
        let r = check_synthetic_case(
            topo_idx, 0, RoutingKind::Minimal, rate, burst, seed, 400, 3_200,
        );
        prop_assert!(r.is_ok(), "REPRO {}", r.unwrap_err());
    }

    /// Fuzzed exact-equality mode: explicit workloads under minimal
    /// routing leave no randomness in either engine, so the snapshots
    /// must match bit for bit.
    #[test]
    fn exact_equality_on_workload_driven_runs(
        topo_idx in 0usize..6,
        pat_idx in 0usize..6,
        rate in 0.005f64..0.14,
        seed in 0u64..1_000_000,
    ) {
        let r = check_exact_case(topo_idx, pat_idx, rate, seed, 1_200);
        prop_assert!(r.is_ok(), "REPRO {}", r.unwrap_err());
    }

    /// Fuzzed fault storms: random link storms over every topology
    /// family, same plan into both engines, workload-driven so the
    /// comparison stays exact — live drops, degraded re-routes and
    /// quiesced pairs must all agree bit for bit.
    #[test]
    fn exact_equality_under_fault_storms(
        topo_idx in 0usize..6,
        pat_idx in 0usize..6,
        rate in 0.005f64..0.10,
        storm_links in 1usize..7,
        seed in 0u64..1_000_000,
    ) {
        let r = check_faulted_exact_case(topo_idx, pat_idx, rate, storm_links, seed, 1_200);
        prop_assert!(r.is_ok(), "REPRO {}", r.unwrap_err());
    }

    /// Fuzzed saturation-load storms: the fault tier at offered loads
    /// past capacity, where a deadlock-prone repair would wedge the
    /// drain phase. Exactness must survive saturation.
    #[test]
    fn exact_equality_under_saturation_storms(
        topo_idx in 0usize..6,
        pat_idx in 0usize..6,
        rate in 0.4f64..1.0,
        storm_links in 1usize..7,
        seed in 0u64..1_000_000,
    ) {
        let r = check_saturated_storm_case(topo_idx, pat_idx, rate, storm_links, seed, 600);
        prop_assert!(r.is_ok(), "REPRO {}", r.unwrap_err());
    }

    /// Fuzzed shard-equivalence: 2- and 4-shard runs of the parallel
    /// engine must be byte-identical to the monolithic engine under
    /// deterministic routing, for every topology family and pattern.
    #[test]
    fn sharded_engine_is_byte_identical_under_deterministic_routing(
        topo_idx in 0usize..6,
        pat_idx in 0usize..6,
        rate in 0.01f64..0.16,
        seed in 0u64..1_000_000,
    ) {
        let r = check_shard_exact_case(topo_idx, pat_idx, rate, seed);
        prop_assert!(r.is_ok(), "REPRO {}", r.unwrap_err());
    }

    /// Fuzzed sharded UGAL-L: re-seeded shards pass the statistical
    /// agreement tier against the golden reference model.
    #[test]
    fn sharded_ugal_matches_reference_statistically(
        topo_sel in 0usize..3,
        pat_idx in 0usize..2,
        rate in 0.01f64..0.12,
        seed in 0u64..1_000_000,
    ) {
        let topo_idx = [0, 4, 5][topo_sel]; // sn 3x3, FBF, sn 3x2
        let r = check_shard_ugal_case(topo_idx, pat_idx, rate, seed);
        prop_assert!(r.is_ok(), "REPRO {}", r.unwrap_err());
    }
}

/// The reference routing reimplementation must agree with the optimized
/// `RoutingTable` on every (router, target) decision — ports, VCs and
/// distances — for every topology family in the pool. Differential at
/// the routing layer, cheaper and sharper than end-to-end runs.
#[test]
fn reference_routing_agrees_with_optimized_tables() {
    use snoc_refsim::RefRouting;
    use snoc_sim::{Flit, PacketId, RoutingTable};

    for idx in 0..6 {
        let (topo, vcs) = topology(idx);
        let table = RoutingTable::minimal(&topo);
        let reference = RefRouting::new(&topo);
        for cur in topo.routers() {
            assert_eq!(table.port_count(cur), reference.port_count(cur));
            for dst in topo.routers() {
                if cur == dst {
                    continue;
                }
                assert_eq!(
                    table.distance(cur, dst),
                    reference.distance(cur, dst),
                    "{}: dist {cur} -> {dst}",
                    topo.name()
                );
                for hops in 0..2u32 {
                    let mut flit = Flit::nth_of_packet(
                        PacketId(0),
                        0,
                        1,
                        NodeId(0),
                        NodeId(dst.index()),
                        dst,
                        0,
                        false,
                        false,
                    );
                    flit.hops = hops as u16;
                    let opt = table.route(cur, &flit, 0, vcs);
                    let (port, vc) = reference.route(cur, dst, hops, vcs);
                    assert_eq!(
                        (opt.port, opt.vc),
                        (port, vc),
                        "{}: route {cur} -> {dst} hop {hops}",
                        topo.name()
                    );
                }
            }
        }
    }
}

/// The degraded routing rebuild must agree across engines on every
/// (router, target) decision over the surviving graph — distances,
/// reachability, ports and VCs — with a dead router and dead links, for
/// every topology family. Differential at the routing layer, where a
/// tie-break drift would be hardest to see end-to-end.
#[test]
fn degraded_reference_routing_agrees_with_optimized_tables() {
    use snoc_refsim::RefRouting;
    use snoc_sim::{Flit, PacketId, RoutingTable};
    use snoc_topology::RouterId;

    for idx in 0..6 {
        let (topo, vcs) = topology(idx);
        let nr = topo.router_count();
        let mut router_alive = vec![true; nr];
        router_alive[nr / 2] = false;
        let dead_links: Vec<_> = topo.links().take(2).collect();
        let link_alive = |a: RouterId, b: RouterId| {
            !dead_links.contains(&(a, b)) && !dead_links.contains(&(b, a))
        };
        let table = RoutingTable::degraded(&topo, &router_alive, link_alive);
        let reference = RefRouting::new(&topo).degraded(&router_alive, link_alive);
        for cur in topo.routers() {
            for dst in topo.routers() {
                assert_eq!(
                    table.reachable(cur, dst),
                    reference.reachable(cur, dst),
                    "{}: reachable {cur} -> {dst}",
                    topo.name()
                );
                if !table.reachable(cur, dst) || cur == dst {
                    continue;
                }
                assert_eq!(
                    table.distance(cur, dst),
                    reference.distance(cur, dst),
                    "{}: degraded dist {cur} -> {dst}",
                    topo.name()
                );
                if !router_alive[cur.index()] {
                    continue; // nothing routes out of a dead router
                }
                for hops in 0..2u32 {
                    let mut flit = Flit::nth_of_packet(
                        PacketId(0),
                        0,
                        1,
                        NodeId(0),
                        NodeId(dst.index()),
                        dst,
                        0,
                        false,
                        false,
                    );
                    flit.hops = hops as u16;
                    let opt = table.route(cur, &flit, 0, vcs);
                    let (port, vc) = reference.route(cur, dst, hops, vcs);
                    assert_eq!(
                        (opt.port, opt.vc),
                        (port, vc),
                        "{}: degraded route {cur} -> {dst} hop {hops}",
                        topo.name()
                    );
                }
            }
        }
    }
}

/// A deterministic statistical fault case on the flagship topology:
/// independent RNG streams, same escalating storm — drop counts within
/// binomial tolerance, surviving traffic within the statistical tier.
#[test]
fn fault_storm_statistics_agree_across_engines() {
    let (topo, vcs) = topology(0); // Slim NoC 3x3: diameter 2, heals well
    let (sim_cfg, ref_cfg) = configs(vcs, RoutingKind::Minimal, 4242);
    let plan = FaultPlan::storm(&topo, 8, 900, 1_200, 0xFA17);
    let mut sim = Simulator::build(&topo, &sim_cfg).unwrap();
    sim.set_fault_plan(&plan).unwrap();
    let optimized = sim
        .run_synthetic(TrafficPattern::Random, 0.08, 400, 3_200)
        .snapshot();
    let mut rsim = RefSimulator::build(&topo, &ref_cfg).unwrap();
    rsim.set_fault_plan(&plan).unwrap();
    let reference = rsim.run_synthetic(TrafficPattern::Random, 0.08, 400, 3_200);
    optimized.check_conservation().unwrap();
    reference.check_conservation().unwrap();
    assert!(optimized.dropped_packets > 0, "storm must hit live traffic");
    assert!(reference.dropped_packets > 0, "storm must hit live traffic");
    assert!(
        counts_close(
            optimized.dropped_packets,
            reference.dropped_packets,
            6.0,
            12.0
        ),
        "dropped diverged: optimized {} vs reference {}",
        optimized.dropped_packets,
        reference.dropped_packets
    );
    compare_statistics(&optimized, &reference, 50).unwrap();
}

/// Zero-rate runs: both engines must report a completely idle network.
#[test]
fn zero_rate_agrees_exactly() {
    let (topo, vcs) = topology(0);
    let (sim_cfg, ref_cfg) = configs(vcs, RoutingKind::Minimal, 7);
    let mut sim = Simulator::build(&topo, &sim_cfg).unwrap();
    let optimized = sim
        .run_synthetic(TrafficPattern::Random, 0.0, 1_000, 20_000)
        .snapshot();
    let mut rsim = RefSimulator::build(&topo, &ref_cfg).unwrap();
    let reference = rsim.run_synthetic(TrafficPattern::Random, 0.0, 1_000, 20_000);
    assert_eq!(optimized, reference);
    assert_eq!(optimized.delivered_packets, 0);
    assert_eq!(optimized.total_cycles, 21_000);
}

/// The two engines must agree on the watchdog's *progress event set*
/// cycle for cycle. A bound-1 watchdog is the maximally sensitive
/// probe: it aborts on the first cycle where live flits exist but no
/// progress event (delivery, switch traversal, injection, packet or
/// fault arrival) occurs. A healthy multi-flit wormhole stream has a
/// progress event on every in-flight cycle, so neither engine may
/// fire even through a saturated fault storm — and if either engine's
/// bump sites deviated by a single cycle anywhere in the run, its
/// truncated clock would break the byte-for-byte snapshot equality
/// this asserts.
#[test]
fn bound_one_watchdogs_agree_across_engines_under_storm() {
    let (topo, vcs) = topology(2); // torus 4x4: datelines + wrap links
    let (sim_cfg, ref_cfg) = configs(vcs, RoutingKind::Minimal, 99);
    let trace = workload(&topo, TrafficPattern::Adversarial1, 0.7, 800, 99);
    let plan = FaultPlan::storm(&topo, 4, 260, 400, 99 ^ 0xFA17);
    let mut sim = Simulator::build(&topo, &sim_cfg).unwrap();
    sim.set_fault_plan(&plan).unwrap();
    sim.set_watchdog(Some(1));
    let report = sim.run_trace(&trace, 200);
    assert!(
        report.deadlock.is_none(),
        "a live run must bump progress every in-flight cycle: {}",
        report.deadlock.unwrap()
    );
    let optimized = report.snapshot();
    let mut rsim = RefSimulator::build(&topo, &ref_cfg).unwrap();
    rsim.set_fault_plan(&plan).unwrap();
    rsim.set_watchdog(Some(1));
    let reference = rsim.run_workload(&trace, 200);
    assert_eq!(
        optimized, reference,
        "progress event sets must agree cycle for cycle"
    );
}

/// The reference engine's watchdog aborts on the same condition as the
/// optimized one: isolated single-flit packets leave a quiet
/// allocation cycle, so a bound-1 watchdog cuts the run short instead
/// of letting it drain.
#[test]
fn reference_watchdog_aborts_like_the_optimized_engine() {
    let topo = Topology::mesh(4, 3, 2);
    let (mut sim_cfg, _) = configs(2, RoutingKind::Minimal, 11);
    sim_cfg.packet_flits = 1;
    let ref_cfg = RefConfig::try_from_sim(&sim_cfg)
        .expect("edge/credited config")
        .with_seed(11);
    // Control: at the default bound the same run goes the distance.
    let mut healthy = RefSimulator::build(&topo, &ref_cfg).unwrap();
    let full = healthy.run_synthetic(TrafficPattern::Random, 0.005, 100, 400);
    assert!(full.total_cycles >= 500, "healthy horizon");
    // Bound 1 cuts the run at the first quiet cycle instead.
    let mut rsim = RefSimulator::build(&topo, &ref_cfg).unwrap();
    rsim.set_watchdog(Some(1));
    let aborted = rsim.run_synthetic(TrafficPattern::Random, 0.005, 100, 400);
    assert!(aborted.total_cycles < full.total_cycles, "abort truncates");
    // The optimized engine under the identical config (and its own
    // RNG) aborts the same way, with the diagnostic attached.
    let mut sim = Simulator::build(&topo, &sim_cfg).unwrap();
    sim.set_watchdog(Some(1));
    let report = sim.run_synthetic(TrafficPattern::Random, 0.005, 100, 400);
    assert!(report.deadlock.is_some(), "optimized watchdog fires too");
    assert!(aborted.total_cycles < 500);
    assert!(report.total_cycles < 500);
}

/// A deterministic saturation-stress case: conservation laws must hold
/// even when the network rejects offered load (no latency comparison —
/// saturated latencies are seed-dependent).
#[test]
fn conservation_holds_at_saturation_in_both_engines() {
    let (topo, vcs) = topology(0);
    let (sim_cfg, ref_cfg) = configs(vcs, RoutingKind::Minimal, 21);
    let mut sim = Simulator::build(&topo, &sim_cfg).unwrap();
    let optimized = sim
        .run_synthetic(TrafficPattern::Adversarial1, 0.8, 500, 2_000)
        .snapshot();
    optimized.check_conservation().unwrap();
    let mut rsim = RefSimulator::build(&topo, &ref_cfg).unwrap();
    let reference = rsim.run_synthetic(TrafficPattern::Adversarial1, 0.8, 500, 2_000);
    reference.check_conservation().unwrap();
    assert!(
        optimized.stalled_generations > 0,
        "0.8 must exceed capacity"
    );
    assert!(reference.stalled_generations > 0);
}
