//! Criterion benchmarks for the layout cost models: placement, wire
//! statistics (Eq. 3), and the buffer models (Eqs. 5–6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snoc_layout::{BufferModel, BufferSpec, Layout, SnLayout};
use snoc_topology::Topology;
use std::hint::black_box;

fn bench_layouts(c: &mut Criterion) {
    let sn = Topology::slim_noc(9, 8).unwrap();
    let mut group = c.benchmark_group("layout_placement");
    for (name, kind) in [
        ("basic", SnLayout::Basic),
        ("subgroup", SnLayout::Subgroup),
        ("group", SnLayout::Group),
        ("random", SnLayout::Random(1)),
    ] {
        group.bench_with_input(BenchmarkId::new("sn_l", name), &kind, |b, &k| {
            b.iter(|| Layout::slim_noc(black_box(&sn), k).unwrap());
        });
    }
    group.finish();
}

fn bench_wire_stats(c: &mut Criterion) {
    let sn = Topology::slim_noc(9, 8).unwrap();
    let layout = Layout::slim_noc(&sn, SnLayout::Subgroup).unwrap();
    c.bench_function("wire_stats_sn_l", |b| {
        b.iter(|| black_box(&layout).wire_stats(&sn));
    });
    c.bench_function("avg_wire_length_sn_l", |b| {
        b.iter(|| black_box(&layout).average_wire_length(&sn));
    });
}

fn bench_buffer_models(c: &mut Criterion) {
    let sn = Topology::slim_noc(9, 8).unwrap();
    let layout = Layout::slim_noc(&sn, SnLayout::Group).unwrap();
    let mut group = c.benchmark_group("buffer_models");
    group.bench_function("edge_buffers_no_smart", |b| {
        b.iter(|| BufferModel::edge_buffers(&sn, black_box(&layout), BufferSpec::standard()));
    });
    group.bench_function("edge_buffers_smart", |b| {
        b.iter(|| BufferModel::edge_buffers(&sn, black_box(&layout), BufferSpec::smart()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_layouts,
    bench_wire_stats,
    bench_buffer_models
);
criterion_main!(benches);
