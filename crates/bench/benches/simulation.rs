//! Criterion benchmarks for the simulator engine: routing-table
//! construction and end-to-end simulation throughput (cycles/second)
//! for representative configurations.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use snoc_core::{BufferPreset, Setup};
use snoc_sim::{RoutingTable, ShardedSimulator, SimConfig, Simulator};
use snoc_topology::{NodeId, Topology};
use snoc_traffic::{MessageKind, TraceMessage, TrafficPattern};
use std::hint::black_box;

fn bench_routing_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_table");
    for (name, topo) in [
        ("sn_s", Topology::slim_noc(5, 4).unwrap()),
        ("sn_l", Topology::slim_noc(9, 8).unwrap()),
        ("fbf9", Topology::flattened_butterfly(12, 12, 9)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| RoutingTable::minimal(black_box(&topo)));
        });
    }
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    let cycles = 2_000u64;
    group.throughput(Throughput::Elements(cycles));
    for (name, topo) in [
        ("sn54_rnd", Topology::slim_noc(3, 3).unwrap()),
        ("sn_s_rnd", Topology::slim_noc(5, 4).unwrap()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut sim = Simulator::build(&topo, &SimConfig::default()).unwrap();
                sim.run_synthetic(TrafficPattern::Random, 0.05, 200, cycles)
            });
        });
    }
    group.bench_function("sn_s_cbr_rnd", |b| {
        let topo = Topology::slim_noc(5, 4).unwrap();
        b.iter(|| {
            let mut sim = Simulator::build(&topo, &SimConfig::cbr(20)).unwrap();
            sim.run_synthetic(TrafficPattern::Random, 0.05, 200, cycles)
        });
    });
    group.finish();
}

/// Event-loop benchmarks: the low-load half of every sweep grid (where
/// most campaign points live), the drain tail, and a saturated point.
/// `lowload_*` names are gated with `bench_compare --min-speedup`;
/// `satload_*` guards against the event machinery slowing the busy case.
fn bench_simulation_events(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    for (name, topo, cfg, rate) in [
        (
            "lowload_sn_s_rnd",
            Topology::slim_noc(5, 4).unwrap(),
            SimConfig::default(),
            0.001,
        ),
        (
            "lowload_sn54_cbr",
            Topology::slim_noc(3, 3).unwrap(),
            SimConfig::cbr(20),
            0.001,
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut sim = Simulator::build(&topo, &cfg).unwrap();
                sim.run_synthetic(TrafficPattern::Random, rate, 500, 20_000)
            });
        });
    }
    group.bench_function("lowload_trace_gaps", |b| {
        // A sparse trace: one read every 500 cycles — mostly dead time
        // the cycle loop should fast-forward across.
        let topo = Topology::slim_noc(3, 3).unwrap();
        let nodes = topo.node_count();
        let trace: Vec<TraceMessage> = (0..100u64)
            .map(|i| TraceMessage {
                cycle: i * 500,
                src: NodeId((i as usize * 7) % nodes),
                dst: NodeId((i as usize * 13 + 1) % nodes),
                kind: MessageKind::ReadRequest,
            })
            .filter(|m| m.src != m.dst)
            .collect();
        b.iter(|| {
            let mut sim = Simulator::build(&topo, &SimConfig::default()).unwrap();
            sim.run_trace(&trace, 0)
        });
    });
    group.bench_function("drain_sn_s_rnd", |b| {
        let topo = Topology::slim_noc(5, 4).unwrap();
        b.iter(|| {
            let mut sim = Simulator::build(&topo, &SimConfig::default()).unwrap();
            sim.run_synthetic(TrafficPattern::Random, 0.25, 0, 2_000)
        });
    });
    group.bench_function("satload_sn_s_rnd", |b| {
        let topo = Topology::slim_noc(5, 4).unwrap();
        b.iter(|| {
            let mut sim = Simulator::build(&topo, &SimConfig::default()).unwrap();
            sim.run_synthetic(TrafficPattern::Random, 0.40, 200, 2_000)
        });
    });
    // Saturation across router families: the CBR datapath under a
    // saturated slim NoC, and a balanced Dragonfly (the deepest
    // minimal-routing family) under random overload. Together with
    // `satload_sn_s_rnd` these back the `satload_*` speedup gate.
    group.bench_function("satload_sn54_cbr", |b| {
        let topo = Topology::slim_noc(3, 3).unwrap();
        b.iter(|| {
            let mut sim = Simulator::build(&topo, &SimConfig::cbr(20)).unwrap();
            sim.run_synthetic(TrafficPattern::Random, 0.40, 200, 2_000)
        });
    });
    group.bench_function("satload_df3_rnd", |b| {
        let topo = Topology::dragonfly(3);
        let cfg = SimConfig::default().with_vcs(4);
        b.iter(|| {
            let mut sim = Simulator::build(&topo, &cfg).unwrap();
            sim.run_synthetic(TrafficPattern::Random, 0.30, 200, 2_000)
        });
    });
    group.finish();
}

/// Sharded-engine benchmarks on the 1296-endpoint class. `shard1_*`
/// pins the monolithic path through the sharded front door; the
/// multi-shard entries track the thread/barrier machinery. All three
/// are regression-gated (`bench_compare --max-ratio`) rather than
/// speedup-gated: parallel speedup depends on idle cores, which CI
/// runners do not promise.
fn bench_shard_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    let topo = Topology::slim_noc(9, 8).unwrap();
    let cfg = SimConfig::default();
    for shards in [1usize, 2, 4] {
        group.bench_function(format!("shard{shards}_sn_l_rnd"), |b| {
            b.iter(|| {
                let mut sim = ShardedSimulator::build(&topo, &cfg, shards).unwrap();
                sim.run_synthetic(TrafficPattern::Random, 0.05, 200, 2_000)
            });
        });
    }
    group.finish();
}

fn bench_figure_smoke(c: &mut Criterion) {
    // Smoke versions of the figure sweeps: one low-load point per class.
    let mut group = c.benchmark_group("figure_smoke");
    group.sample_size(10);
    for name in ["sn_s", "fbf4", "pfbf4", "t2d4", "cm4"] {
        group.bench_function(format!("fig12_point_{name}"), |b| {
            let setup = Setup::paper(name).unwrap().with_smart(true);
            b.iter(|| setup.run_load(TrafficPattern::Random, 0.03, 200, 1_000));
        });
    }
    group.bench_function("fig11_point_cbr", |b| {
        let setup = Setup::paper("sn_s")
            .unwrap()
            .with_buffers(BufferPreset::Cbr(20));
        b.iter(|| setup.run_load(TrafficPattern::Random, 0.03, 200, 1_000));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_routing_tables,
    bench_simulation,
    bench_simulation_events,
    bench_shard_scale,
    bench_figure_smoke
);
criterion_main!(benches);
