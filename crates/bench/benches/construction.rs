//! Criterion benchmarks for the construction kernels: finite fields,
//! MMS graph generation, and baseline topologies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snoc_field::{GeneratorSets, Gf};
use snoc_topology::Topology;
use std::hint::black_box;

fn bench_fields(c: &mut Criterion) {
    let mut group = c.benchmark_group("field_construction");
    for q in [5usize, 8, 9, 16, 25] {
        group.bench_with_input(BenchmarkId::new("gf", q), &q, |b, &q| {
            b.iter(|| Gf::new(black_box(q)).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("generator_sets");
    for q in [5usize, 7, 8, 9, 11] {
        let field = Gf::new(q).unwrap();
        group.bench_with_input(BenchmarkId::new("generate", q), &field, |b, f| {
            b.iter(|| GeneratorSets::generate(black_box(f)).unwrap());
        });
    }
    group.finish();
}

fn bench_topologies(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_construction");
    for (name, q, p) in [("sn_s", 5usize, 4usize), ("sn_1024", 8, 8), ("sn_l", 9, 8)] {
        group.bench_function(name, |b| {
            b.iter(|| Topology::slim_noc(black_box(q), black_box(p)).unwrap());
        });
    }
    group.bench_function("fbf9", |b| {
        b.iter(|| Topology::flattened_butterfly(black_box(12), 12, 9));
    });
    group.bench_function("t2d9", |b| {
        b.iter(|| Topology::torus(black_box(12), 12, 9));
    });
    group.bench_function("dragonfly_h3", |b| {
        b.iter(|| Topology::dragonfly(black_box(3)));
    });
    group.finish();

    let mut group = c.benchmark_group("topology_analysis");
    let sn = Topology::slim_noc(9, 8).unwrap();
    group.bench_function("path_stats_sn_l", |b| {
        b.iter(|| black_box(&sn).path_stats());
    });
    group.finish();
}

criterion_group!(benches, bench_fields, bench_topologies);
criterion_main!(benches);
