//! Smoke-runs every figure/table reproduction binary with `--smoke`
//! (minimal simulation windows), asserting each constructs its
//! experiment configuration and runs end-to-end without panicking.
//! This keeps the 30 `repro_*` binaries from silently rotting: a binary
//! that stops building fails `cargo build`, and one that starts
//! panicking on its own configs fails here.

use std::process::Command;

/// Runs one repro binary with `--smoke --csv` and asserts a clean exit.
fn smoke(exe: &str, name: &str) {
    let out = Command::new(exe)
        .args(["--smoke", "--csv"])
        .output()
        .unwrap_or_else(|e| panic!("{name}: failed to spawn: {e}"));
    assert!(
        out.status.success(),
        "{name} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    assert!(
        !out.stdout.is_empty(),
        "{name} produced no output in --csv mode"
    );
}

macro_rules! smoke_bins {
    ($($bin:ident),+ $(,)?) => {
        $(smoke(env!(concat!("CARGO_BIN_EXE_", stringify!($bin))), stringify!($bin));)+
    };
}

/// Asserts one binary advertises the full shared flag set: `--help`
/// must exit 0 and print the common usage line, which only happens
/// when the binary goes through `snoc_bench::Args::parse`. A binary
/// that grows its own parser (flag drift) fails here.
fn accepts_common_flags(exe: &str, name: &str) {
    let out = Command::new(exe)
        .arg("--help")
        .output()
        .unwrap_or_else(|e| panic!("{name}: failed to spawn: {e}"));
    assert!(
        out.status.success(),
        "{name} --help exited with {:?}",
        out.status.code()
    );
    let usage = String::from_utf8_lossy(&out.stderr);
    for flag in [
        "--csv",
        "--json",
        "--quick",
        "--smoke",
        "--threads",
        "--shards",
        "--spec",
        "--cache-dir",
    ] {
        assert!(
            usage.contains(flag),
            "{name} --help does not advertise {flag}; all repro_* \
             binaries must share snoc_bench::Args (got: {usage})"
        );
    }
}

macro_rules! audit_bins {
    ($($bin:ident),+ $(,)?) => {
        $(accepts_common_flags(
            env!(concat!("CARGO_BIN_EXE_", stringify!($bin))),
            stringify!($bin),
        );)+
    };
}

#[test]
fn every_repro_binary_accepts_the_common_flags() {
    audit_bins!(
        repro_fig1,
        repro_fig3,
        repro_fig5,
        repro_fig6,
        repro_fig10,
        repro_fig11,
        repro_fig12,
        repro_fig13,
        repro_fig14,
        repro_fig15,
        repro_fig16,
        repro_fig17,
        repro_fig18,
        repro_fig19,
        repro_fig20,
        repro_table2,
        repro_table3,
        repro_table4,
        repro_table5,
        repro_table6,
        repro_ablation,
        repro_resilience,
        repro_fault_storm,
        repro_sensitivity,
        repro_verify,
        repro_energy_mesh,
        repro_energy_torus,
        repro_energy_df,
        repro_energy_sn,
        repro_fig_energy,
    );
}

#[test]
fn construction_figures_smoke() {
    // Fig. 1/3/5/6: structural comparisons, layouts, and cost models —
    // no cycle-level simulation, so these run fast even unoptimized.
    smoke_bins!(repro_fig1, repro_fig3, repro_fig5, repro_fig6);
}

#[test]
fn latency_load_figures_smoke() {
    // Fig. 10–14: latency–load curves over the small/large classes.
    smoke_bins!(
        repro_fig10,
        repro_fig11,
        repro_fig12,
        repro_fig13,
        repro_fig14
    );
}

#[test]
fn power_and_trace_figures_smoke() {
    // Fig. 15–18: energy/power models and trace-driven workloads.
    smoke_bins!(repro_fig15, repro_fig16, repro_fig17, repro_fig18);
}

#[test]
fn microarchitecture_figures_smoke() {
    // Fig. 19–20: router-microarchitecture comparisons.
    smoke_bins!(repro_fig19, repro_fig20);
}

#[test]
fn tables_smoke() {
    // Tables 2–6: parameter/structure tables; table 5/6 include sims.
    smoke_bins!(
        repro_table2,
        repro_table3,
        repro_table4,
        repro_table5,
        repro_table6
    );
}

#[test]
fn supplementary_studies_smoke() {
    // Ablation, resilience (static + live fault storms), and
    // sensitivity sweeps.
    smoke_bins!(
        repro_ablation,
        repro_resilience,
        repro_fault_storm,
        repro_sensitivity
    );
}

#[test]
fn differential_verification_smoke() {
    // The reference-model differential matrix: conservation laws plus
    // exact-equality workload cases run even in smoke windows (the
    // statistical tiers need larger samples and skip themselves).
    smoke_bins!(repro_verify);
}

#[test]
fn energy_figures_smoke() {
    // The energy-efficiency pipeline: per-topology sweeps plus the
    // cross-topology comparison figure.
    smoke_bins!(
        repro_energy_mesh,
        repro_energy_torus,
        repro_energy_df,
        repro_energy_sn,
        repro_fig_energy
    );
}
