//! End-to-end pin of §2.1's resilience claim, tested *dynamically*:
//! under a live link-failure storm severing ≥ 10% of links, Slim NoC
//! retains a strictly higher fraction of its delivered throughput than
//! the mesh. Runs the exact `repro_fault_storm` campaign (quick
//! windows) and also pins that degraded-mode campaigns are
//! deterministic across worker-thread counts.

use snoc_bench::fault_storm::{retention_at, retention_rows, storm_campaign, FRACTIONS};
use snoc_bench::Args;

#[test]
fn slim_noc_retains_more_throughput_than_mesh_under_storms() {
    let args = Args {
        quick: true,
        ..Args::default()
    };
    let result = storm_campaign(&args).run();
    let rows = retention_rows(&result);

    // The storm must actually bite: some degraded cell drops packets.
    assert!(
        rows.iter().any(|r| r.fraction > 0.0 && r.dropped > 0),
        "no in-flight casualties anywhere: {rows:#?}"
    );

    // The headline claim, at every fraction ≥ 10%.
    for fraction in FRACTIONS.into_iter().filter(|&f| f >= 0.10) {
        let sn = retention_at(&rows, "sn_s", fraction);
        let mesh = retention_at(&rows, "cm4", fraction);
        assert!(
            sn.retention > mesh.retention,
            "SN must retain strictly more than mesh at {:.0}% failed \
             links: SN {:.3} vs mesh {:.3}",
            fraction * 100.0,
            sn.retention,
            mesh.retention,
        );
    }

    // Same campaign on two worker threads: byte-identical result, so
    // degraded-mode sweeps parallelize (and cache) safely.
    let threaded = storm_campaign(&Args {
        quick: true,
        threads: 2,
        ..Args::default()
    })
    .run();
    assert_eq!(
        threaded.to_json(),
        result.to_json(),
        "fault-storm campaigns must be deterministic across thread counts"
    );
}
