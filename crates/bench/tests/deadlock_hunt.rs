//! End-to-end deadlock hunt: the storm grid (every paper network ×
//! failed-link fraction) driven past saturation, with every
//! simulator's no-progress watchdog armed at its default bound.
//! `Setup::run_load` panics with the full deadlock diagnostic if a
//! watchdog fires, so this test completing at all is the liveness
//! proof: no degraded up*/down* table wedged under maximal
//! backpressure. The nightly CI soak reruns this alongside the fuzzed
//! CDG property suite.

use snoc_bench::fault_storm::{saturation_storm_campaign, FRACTIONS, NETWORKS};
use snoc_bench::Args;

#[test]
fn saturated_storms_never_wedge_any_degraded_network() {
    let args = Args {
        smoke: true,
        ..Args::default()
    };
    let result = saturation_storm_campaign(&args).run();

    // Reaching this line means no watchdog aborted (run_load panics on
    // a wedge). Sanity-check the sweep actually stressed something:
    // every cell produced a point, and every network kept delivering
    // flits even in its most degraded configuration.
    for network in NETWORKS {
        for fraction in FRACTIONS {
            let name = snoc_bench::fault_storm::setup_name(network, fraction);
            let point = result
                .curve(&name, "RND")
                .next()
                .unwrap_or_else(|| panic!("missing saturation point {name}"));
            assert!(
                point.throughput > 0.0,
                "{name} delivered nothing at saturation"
            );
        }
    }
}
