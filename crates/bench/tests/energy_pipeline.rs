//! End-to-end test of the energy-efficiency pipeline behind
//! `repro_fig_energy`: simulator-measured activity → power model →
//! power-aware sweep campaign → `slim_noc-sweep-v2` JSON.
//!
//! Pins the reproduction's headline claim: at matched offered load the
//! Slim NoC delivers strictly more throughput per watt than the mesh
//! baseline, with the dynamic power coming from activity factors the
//! simulator *measured* (a point with zero measured activity would show
//! zero dynamic power and fail here).

use snoc_bench::{energy_campaign, energy_load_grid, Args};
use snoc_core::Setup;

#[test]
fn slim_noc_beats_mesh_on_measured_throughput_per_watt() {
    let args = Args {
        quick: true,
        ..Args::default()
    };
    let setups = vec![
        Setup::paper("cm4").expect("paper config"),
        Setup::paper("sn_s").expect("paper config"),
    ];
    let result = energy_campaign("energy_e2e", setups, &args).run();

    // Every point carries power columns fed by measured activity.
    assert_eq!(result.points.len(), 2 * energy_load_grid().len());
    for p in &result.points {
        let pw = p.power.expect("power-aware campaign point");
        assert!(
            pw.dynamic_w > 0.0,
            "{} @ {}: dynamic power must come from measured activity",
            p.setup,
            p.load
        );
        assert!(pw.power_w.is_finite() && pw.power_w > pw.dynamic_w);
        assert!(pw.energy_per_flit_j > 0.0 && pw.energy_per_flit_j.is_finite());
    }

    // The headline: strictly better throughput/Watt than the mesh at
    // every matched load, decisively so past the mesh saturation knee.
    let tpw = |setup: &str, load: f64| {
        result
            .curve(setup, "RND")
            .find(|p| (p.load - load).abs() < 1e-12)
            .and_then(|p| p.power)
            .expect("point")
            .throughput_per_watt
    };
    for &load in &energy_load_grid() {
        let (sn, mesh) = (tpw("sn_s", load), tpw("cm4", load));
        assert!(
            sn > mesh,
            "sn_s {sn:.3e} must beat cm4 {mesh:.3e} flits/J at load {load}"
        );
    }
    let top = *energy_load_grid().last().unwrap();
    assert!(
        tpw("sn_s", top) > 1.15 * tpw("cm4", top),
        "past the mesh knee the win must be decisive: sn {:.3e} vs mesh {:.3e}",
        tpw("sn_s", top),
        tpw("cm4", top)
    );
    // And the energy–delay product flips the same way.
    let edp = |setup: &str| {
        result
            .curve(setup, "RND")
            .find(|p| (p.load - top).abs() < 1e-12)
            .and_then(|p| p.power)
            .expect("point")
            .edp_js
    };
    assert!(edp("sn_s") < edp("cm4"), "SN EDP must undercut the mesh");

    // The emitted JSON is the v2 schema with power columns throughout.
    let json = result.to_json();
    assert!(json.contains("\"schema\": \"slim_noc-sweep-v2\""));
    assert!(json.contains("\"tech\": \"45nm\""));
    assert_eq!(
        json.matches("\"throughput_per_watt\":").count(),
        result.points.len()
    );
}
