//! Integration test for `snoc serve`: ephemeral port, two concurrent
//! clients with overlapping specs, JSONL streaming, and the shared
//! warm cache.

use snoc_bench::serve::{fetch_stats, submit, Server, SubmitOutcome};
use snoc_core::json::{self, JsonValue};
use snoc_core::{CampaignSpec, SetupSpec};
use snoc_traffic::TrafficPattern;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::thread;
use std::time::{Duration, Instant};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("snoc_serve_test_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A tiny spec over `loads`; all client specs share every other
/// coordinate, so equal loads mean equal cache keys.
fn spec(name: &str, loads: &[f64]) -> CampaignSpec {
    let mut s = CampaignSpec::new(name);
    s.setups = vec![SetupSpec::new("sn54")];
    s.patterns = vec![TrafficPattern::Random];
    s.loads = loads.to_vec();
    s.warmup = 150;
    s.measure = 500;
    s
}

/// Submits a spec and returns the outcome plus every streamed line.
fn run_client(addr: &str, spec: &CampaignSpec) -> (SubmitOutcome, Vec<String>) {
    let mut lines = Vec::new();
    let outcome = submit(addr, &spec.to_json(), |line| lines.push(line.to_string()))
        .expect("submit succeeds");
    (outcome, lines)
}

#[test]
fn concurrent_clients_share_one_warm_cache() {
    let dir = tmp("overlap");
    let server =
        Server::bind("127.0.0.1:0", Some(dir.to_str().expect("utf-8 path")), 2).expect("bind");
    let addr = server.local_addr().expect("bound").to_string();
    thread::spawn(move || server.run());

    // Overlap: both specs share loads 0.02 and 0.05; spec B adds 0.08.
    // Whichever job the FIFO queue runs first simulates its own points;
    // the other replays the overlap — so across both jobs exactly the
    // 3-point union is simulated and exactly the 2-point overlap hits,
    // regardless of arrival order.
    let spec_a = spec("client-a", &[0.02, 0.05]);
    let spec_b = spec("client-b", &[0.02, 0.05, 0.08]);
    let (addr_a, addr_b) = (addr.clone(), addr.clone());
    let a = thread::spawn(move || run_client(&addr_a, &spec_a));
    let b = thread::spawn(move || run_client(&addr_b, &spec_b));
    let (outcome_a, lines_a) = a.join().expect("client a");
    let (outcome_b, lines_b) = b.join().expect("client b");

    assert_eq!(outcome_a.points, 2, "spec A streams one event per point");
    assert_eq!(outcome_b.points, 3, "spec B streams one event per point");
    assert_eq!(
        outcome_a.cache_hits + outcome_b.cache_hits,
        2,
        "the overlap is computed once and replayed once"
    );
    assert_eq!(
        outcome_a.cache_misses + outcome_b.cache_misses,
        3,
        "exactly the union of loads is simulated"
    );

    // Every streamed line is well-formed single-line JSON with the
    // protocol's event shape, ending in exactly one done event.
    for lines in [&lines_a, &lines_b] {
        for line in lines {
            let v =
                json::parse(line.as_str()).unwrap_or_else(|e| panic!("bad JSONL `{line}`: {e}"));
            match v.get("event").and_then(JsonValue::as_str) {
                Some("point") => {
                    let p = v.get("point").expect("point payload");
                    assert!(p.get("load").is_some() && p.get("latency").is_some());
                }
                Some("done") => {
                    assert!(v.get("result").is_some());
                }
                other => panic!("unknown event {other:?} in `{line}`"),
            }
        }
        let done_count = lines.iter().filter(|l| l.contains("\"done\"")).count();
        assert_eq!(done_count, 1);
        assert!(lines
            .last()
            .expect("nonempty")
            .contains("\"event\": \"done\""));
    }

    // A resubmission of spec A replays fully from the warm cache.
    let (again, _) = run_client(&addr, &spec("client-a-again", &[0.02, 0.05]));
    assert_eq!(again.cache_misses, 0, "identical rerun simulates nothing");
    assert_eq!(again.cache_hits, 2);

    // Lifetime server stats aggregate across all three jobs.
    let stats = fetch_stats(&addr).expect("stats");
    let v = json::parse(&stats).expect("stats is JSON");
    assert_eq!(v.get("jobs_done").and_then(JsonValue::as_u64), Some(3));
    assert_eq!(v.get("cache_entries").and_then(JsonValue::as_u64), Some(3));
    assert_eq!(v.get("cache_hits").and_then(JsonValue::as_u64), Some(4));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_specs_get_a_400_not_a_hang() {
    let server = Server::bind("127.0.0.1:0", None, 1).expect("bind");
    let addr = server.local_addr().expect("bound").to_string();
    thread::spawn(move || server.run());

    let err = submit(&addr, "{\"schema\": \"nope\"}", |_| {}).expect_err("must fail");
    assert!(
        err.to_string().contains("schema"),
        "server error is forwarded: {err}"
    );
}

#[test]
fn huge_content_length_gets_a_413_without_allocation() {
    let server = Server::bind("127.0.0.1:0", None, 1).expect("bind");
    let addr = server.local_addr().expect("bound").to_string();
    thread::spawn(move || server.run());

    // An unauthenticated client claiming a terabyte body must get a
    // clean 413 — the server sizes no buffer from the header.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    write!(
        stream,
        "POST /campaign HTTP/1.1\r\nHost: {addr}\r\n\
         Content-Length: 1000000000000\r\n\r\n"
    )
    .unwrap();
    stream.flush().unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    assert!(response.starts_with("HTTP/1.1 413"), "{response}");
    assert!(response.contains("4 MiB limit"), "{response}");
}

#[test]
fn endless_header_line_gets_a_431_not_unbounded_memory() {
    let server = Server::bind("127.0.0.1:0", None, 1).expect("bind");
    let addr = server.local_addr().expect("bound").to_string();
    thread::spawn(move || server.run());

    // Exactly the line cap with no newline: the server must stop
    // buffering there and reject, instead of growing a String forever.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    write!(stream, "GET /stats HTTP/1.1\r\n").unwrap();
    stream.write_all(&vec![b'a'; 8 << 10]).unwrap();
    stream.flush().unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    assert!(response.starts_with("HTTP/1.1 431"), "{response}");
}

#[test]
fn stalled_clients_are_disconnected_not_leaked() {
    let server = Server::bind("127.0.0.1:0", None, 1)
        .expect("bind")
        .with_client_timeout(Duration::from_millis(200));
    let addr = server.local_addr().expect("bound").to_string();
    thread::spawn(move || server.run());

    // A client that promises a body and then goes silent: the read
    // timeout must fail the pending read and close the socket instead
    // of pinning a handler thread on it forever.
    let start = Instant::now();
    let mut stream = TcpStream::connect(&addr).expect("connect");
    write!(
        stream,
        "POST /campaign HTTP/1.1\r\nHost: {addr}\r\nContent-Length: 64\r\n\r\n"
    )
    .unwrap();
    stream.flush().unwrap();
    let mut response = String::new();
    // Returns (closed socket or reset) once the server gives up; a
    // hang here would trip the harness timeout instead.
    let _ = stream.read_to_string(&mut response);
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "stalled client held the connection for {:?}",
        start.elapsed()
    );

    // Same for a half-written header line with no newline in sight.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    write!(stream, "GET /sta").unwrap();
    stream.flush().unwrap();
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);

    // The server stayed serviceable throughout.
    let (outcome, _) = run_client(&addr, &spec("after-stall", &[0.02]));
    assert_eq!(outcome.points, 1);
}

#[test]
fn stats_surface_corrupt_cache_lines() {
    let dir = tmp("corrupt_stats");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("points.jsonl"), b"{\"key\": \"to\xffrn").unwrap();
    let server =
        Server::bind("127.0.0.1:0", Some(dir.to_str().expect("utf-8 path")), 1).expect("bind");
    let addr = server.local_addr().expect("bound").to_string();
    thread::spawn(move || server.run());

    let stats = fetch_stats(&addr).expect("stats");
    let v = json::parse(&stats).expect("stats is JSON");
    assert_eq!(v.get("corrupt_lines").and_then(JsonValue::as_u64), Some(1));
    assert_eq!(v.get("cache_entries").and_then(JsonValue::as_u64), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn server_without_cache_still_serves() {
    let server = Server::bind("127.0.0.1:0", None, 1).expect("bind");
    let addr = server.local_addr().expect("bound").to_string();
    thread::spawn(move || server.run());

    let (outcome, _) = run_client(&addr, &spec("uncached", &[0.02]));
    assert_eq!(outcome.points, 1);
    assert_eq!((outcome.cache_hits, outcome.cache_misses), (0, 0));
}
