//! Integration test for the spec-driven CLI path: any repro binary
//! given `--spec FILE` runs that spec instead of its built-in figure,
//! prints the sweep JSON on stdout, and reports cache statistics on
//! stderr. Because the spec fully determines the campaign, two
//! different binaries fed the same spec must emit identical bytes.

use snoc_core::{CampaignSpec, SetupSpec};
use snoc_traffic::TrafficPattern;
use std::path::PathBuf;
use std::process::{Command, Output};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("snoc_spec_cli_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// A tiny two-point spec: 1 setup × 1 pattern × 2 loads.
fn tiny_spec() -> CampaignSpec {
    let mut s = CampaignSpec::new("spec-cli");
    s.setups = vec![SetupSpec::new("sn54")];
    s.patterns = vec![TrafficPattern::Random];
    s.loads = vec![0.02, 0.05];
    s.warmup = 150;
    s.measure = 500;
    s
}

fn run(exe: &str, args: &[&str]) -> Output {
    Command::new(exe)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {exe}: {e}"))
}

fn stats_line(out: &Output) -> String {
    let stderr = String::from_utf8_lossy(&out.stderr);
    stderr
        .lines()
        .find(|l| l.starts_with("snoc-cache-stats:"))
        .unwrap_or_else(|| panic!("no snoc-cache-stats line in stderr: {stderr}"))
        .to_string()
}

#[test]
fn spec_flag_runs_the_spec_and_warms_the_cache() {
    let dir = tmp("warm");
    let spec_path = dir.join("campaign.json");
    std::fs::write(&spec_path, tiny_spec().to_json()).expect("write spec");
    let cache_dir = dir.join("cache");
    let args = [
        "--spec",
        spec_path.to_str().expect("utf-8"),
        "--cache-dir",
        cache_dir.to_str().expect("utf-8"),
    ];

    // Cold run: every point simulates, stdout is the sweep JSON.
    let cold = run(env!("CARGO_BIN_EXE_repro_fig1"), &args);
    assert!(
        cold.status.success(),
        "cold run failed: {}",
        String::from_utf8_lossy(&cold.stderr)
    );
    let json = String::from_utf8_lossy(&cold.stdout);
    assert!(
        json.starts_with('{') && json.contains("\"points\""),
        "stdout is the campaign JSON, got: {json}"
    );
    assert_eq!(
        stats_line(&cold),
        "snoc-cache-stats: hits=0 misses=2 entries=2"
    );

    // Warm run: zero simulations, byte-identical output.
    let warm = run(env!("CARGO_BIN_EXE_repro_fig1"), &args);
    assert!(warm.status.success());
    assert_eq!(
        stats_line(&warm),
        "snoc-cache-stats: hits=2 misses=0 entries=2"
    );
    assert_eq!(warm.stdout, cold.stdout, "warm replay is byte-identical");

    // The spec — not the binary — determines the campaign: a different
    // repro binary fed the same spec emits the same bytes (and shares
    // the same cache entries).
    let other = run(env!("CARGO_BIN_EXE_repro_table5"), &args);
    assert!(other.status.success());
    assert_eq!(
        other.stdout, cold.stdout,
        "spec output is binary-independent"
    );
    assert_eq!(
        stats_line(&other),
        "snoc-cache-stats: hits=2 misses=0 entries=2"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shipped_example_spec_parses_and_runs() {
    // `examples/campaign_quick.json` is what the README and the CI
    // serve/cache smoke step feed to the server; keep it parseable.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/campaign_quick.json"
    );
    let text = std::fs::read_to_string(path).expect("example spec exists");
    let spec = CampaignSpec::from_json(&text).expect("example spec parses");
    assert_eq!(spec.name, "campaign-quick");
    assert_eq!(spec.setups.len(), 2);
    assert!(!spec.loads.is_empty());

    // `--smoke` shrinks the windows, so actually running it is cheap.
    let out = run(
        env!("CARGO_BIN_EXE_repro_fig1"),
        &["--spec", path, "--smoke"],
    );
    assert!(
        out.status.success(),
        "example spec failed to run: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"points\""));
}

#[test]
fn shipped_fault_example_spec_parses_and_runs() {
    // `examples/campaign_faults.json` is the README's degraded-mode
    // recipe and feeds the CI faulted-determinism step; keep it
    // parseable and runnable. It exercises both recipe forms: a
    // seeded storm and explicit link_down/link_up/router_down events.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/campaign_faults.json"
    );
    let text = std::fs::read_to_string(path).expect("example spec exists");
    let spec = CampaignSpec::from_json(&text).expect("example spec parses");
    assert_eq!(spec.name, "campaign-faults");
    assert_eq!(spec.setups.len(), 3);
    assert!(
        spec.setups.iter().all(|s| s.faults.is_some()),
        "every setup in the fault example carries a fault recipe"
    );

    // Run it twice at the spec's own windows (the faults land inside
    // them) with different worker counts: faulted setups pin the
    // monolithic engine, so the sweep JSON must be byte-identical.
    let one = run(env!("CARGO_BIN_EXE_repro_fig1"), &["--spec", path]);
    assert!(
        one.status.success(),
        "fault example spec failed to run: {}",
        String::from_utf8_lossy(&one.stderr)
    );
    assert!(String::from_utf8_lossy(&one.stdout).contains("\"points\""));
    let two = run(
        env!("CARGO_BIN_EXE_repro_fig1"),
        &["--spec", path, "--threads", "2"],
    );
    assert!(two.status.success());
    assert_eq!(
        one.stdout, two.stdout,
        "faulted campaign is byte-deterministic across thread counts"
    );
}

#[test]
fn invalid_specs_exit_nonzero_with_a_diagnostic() {
    let dir = tmp("invalid");
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{\"schema\": \"nope\"}").expect("write spec");

    let out = run(
        env!("CARGO_BIN_EXE_repro_fig1"),
        &["--spec", bad.to_str().expect("utf-8")],
    );
    assert_eq!(out.status.code(), Some(2), "bad spec is a usage error");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("schema"),
        "diagnostic names the problem: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let missing = run(
        env!("CARGO_BIN_EXE_repro_fig1"),
        &["--spec", dir.join("nope.json").to_str().expect("utf-8")],
    );
    assert_eq!(
        missing.status.code(),
        Some(2),
        "missing file is a usage error"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
