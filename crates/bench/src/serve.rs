//! Long-running campaign server: `snoc serve`.
//!
//! A std-only HTTP/JSONL server (no async runtime — the build is
//! offline) that accepts campaign specs and streams results back as
//! they are simulated. All jobs share one warm
//! [`PointCache`], so concurrent clients reuse each other's points and
//! a resubmitted spec replays entirely from cache.
//!
//! # Protocol
//!
//! Plain HTTP/1.1, one request per connection (`Connection: close`):
//!
//! - `POST /campaign` with a `slim_noc-spec-v1` JSON body starts a job.
//!   The response body is JSON-lines, flushed per event:
//!   - `{"event": "point", "point": {…}}` for every finished point
//!     (the object is exactly a [`SweepPoint`] line of the sweep
//!     schema), in completion order;
//!   - `{"event": "done", "cache_hits": H, "cache_misses": M,
//!     "result": {…}}` last, with the full `slim_noc-sweep-v1`/`-v2`
//!     result compacted to one line.
//! - `GET /stats` returns one JSON line of lifetime server counters.
//! - `GET /health` returns `{"ok": true}`.
//!
//! Jobs execute one at a time under a FIFO queue while each job's
//! points still fan out over the sweep engine's worker threads. That
//! keeps cache accounting deterministic — a given point is simulated by
//! exactly one job and every later job hits it — without giving up
//! point-level parallelism.
//!
//! [`PointCache`]: snoc_core::PointCache
//! [`SweepPoint`]: snoc_core::SweepPoint

use snoc_core::json::{self, JsonValue};
use snoc_core::{Campaign, CampaignSpec, PointCache};
use std::io::{self, BufRead as _, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// Default per-operation socket timeout on accepted client
/// connections. A client that connects and then goes silent (or stops
/// reading its response) holds a handler thread; the timeout fails the
/// pending read/write and releases the thread instead of pinning it
/// forever. Applies per blocking operation, not per connection — a
/// long job streaming points for minutes is fine as long as the client
/// keeps consuming them.
const CLIENT_IO_TIMEOUT: Duration = Duration::from_secs(10);

/// A bound campaign server, ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    client_timeout: Duration,
}

struct ServerState {
    /// The shared warm cache (`None` = in-memory-less server: every job
    /// simulates everything).
    cache: Option<Arc<PointCache>>,
    /// Worker threads per job (0 = one per core).
    threads: usize,
    /// FIFO job queue (ticket lock): jobs run one at a time, in arrival
    /// order.
    queue: JobQueue,
    jobs_done: AtomicU64,
}

/// A ticket lock: `enter` takes the next ticket and blocks until it is
/// served, so jobs run strictly in arrival order (a plain `Mutex` may
/// hand off unfairly).
struct JobQueue {
    next_ticket: AtomicU64,
    serving: Mutex<u64>,
    turn: Condvar,
}

impl JobQueue {
    fn new() -> Self {
        JobQueue {
            next_ticket: AtomicU64::new(0),
            serving: Mutex::new(0),
            turn: Condvar::new(),
        }
    }

    fn enter(&self) -> JobTicket<'_> {
        let ticket = self.next_ticket.fetch_add(1, Ordering::SeqCst);
        let mut serving = self.serving.lock().expect("job queue");
        while *serving != ticket {
            serving = self.turn.wait(serving).expect("job queue");
        }
        JobTicket { queue: self }
    }
}

struct JobTicket<'a> {
    queue: &'a JobQueue,
}

impl Drop for JobTicket<'_> {
    fn drop(&mut self) {
        let mut serving = self.queue.serving.lock().expect("job queue");
        *serving += 1;
        self.queue.turn.notify_all();
    }
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) and opens the
    /// shared cache when `cache_dir` is given.
    ///
    /// # Errors
    ///
    /// Propagates bind and cache-open failures.
    pub fn bind(addr: &str, cache_dir: Option<&str>, threads: usize) -> io::Result<Server> {
        let cache = match cache_dir {
            Some(dir) => Some(Arc::new(PointCache::open(dir)?)),
            None => None,
        };
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            state: Arc::new(ServerState {
                cache,
                threads,
                queue: JobQueue::new(),
                jobs_done: AtomicU64::new(0),
            }),
            client_timeout: CLIENT_IO_TIMEOUT,
        })
    }

    /// Overrides the per-operation client socket timeout (default 10 s;
    /// tests shrink it to exercise the stalled-client path quickly).
    #[must_use]
    pub fn with_client_timeout(mut self, timeout: Duration) -> Self {
        self.client_timeout = timeout;
        self
    }

    /// The bound address (the actual port when bound ephemeral).
    ///
    /// # Errors
    ///
    /// Propagates the OS query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves forever: accepts connections, one handler thread each.
    /// Returns only if the listener itself fails.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop failures.
    pub fn run(self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            let stream = stream?;
            // Best-effort: a socket that rejects timeouts still gets
            // served, it just keeps the old pin-forever behavior.
            let _ = stream.set_read_timeout(Some(self.client_timeout));
            let _ = stream.set_write_timeout(Some(self.client_timeout));
            let state = Arc::clone(&self.state);
            thread::spawn(move || {
                // A dropped (or timed-out) client connection only
                // cancels that reply.
                let _ = handle(stream, &state);
            });
        }
        Ok(())
    }
}

/// Largest accepted `POST /campaign` body. The `Content-Length` header
/// is client-controlled, so it is checked against this cap *before* any
/// buffer is sized from it.
const MAX_BODY: u64 = 4 << 20;

/// Largest accepted request/header line. Reads go through
/// [`read_line_bounded`] so a client that never sends a newline cannot
/// grow a `String` without bound.
const MAX_LINE: u64 = 8 << 10;

/// Reads one HTTP line into `buf`. Returns the byte count, or `None`
/// when the client sent [`MAX_LINE`] bytes without a newline.
fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    buf: &mut String,
) -> io::Result<Option<usize>> {
    let n = reader.by_ref().take(MAX_LINE).read_line(buf)?;
    if n as u64 == MAX_LINE && !buf.ends_with('\n') {
        return Ok(None);
    }
    Ok(Some(n))
}

/// Reads one HTTP request, dispatches, writes one response.
fn handle(mut stream: TcpStream, state: &ServerState) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let too_long = "{\"error\": \"header line too long\"}";
    let mut request = String::new();
    if read_line_bounded(&mut reader, &mut request)?.is_none() {
        return respond(
            &mut stream,
            431,
            "Request Header Fields Too Large",
            too_long,
        );
    }
    let mut parts = request.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    let mut content_length = 0u64;
    loop {
        let mut header = String::new();
        match read_line_bounded(&mut reader, &mut header)? {
            None => {
                return respond(
                    &mut stream,
                    431,
                    "Request Header Fields Too Large",
                    too_long,
                )
            }
            Some(0) => break,
            Some(_) if header.trim().is_empty() => break,
            Some(_) => {}
        }
        if let Some(v) = header.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap_or(0);
        }
    }
    match (method.as_str(), path.as_str()) {
        ("POST", "/campaign") => {
            if content_length > MAX_BODY {
                return respond(
                    &mut stream,
                    413,
                    "Payload Too Large",
                    "{\"error\": \"body exceeds the 4 MiB limit\"}",
                );
            }
            let mut body = vec![0u8; content_length as usize];
            reader.read_exact(&mut body)?;
            run_job(&mut stream, state, &String::from_utf8_lossy(&body))
        }
        ("GET", "/stats") => respond(&mut stream, 200, "OK", &stats_json(state)),
        ("GET", "/health") => respond(&mut stream, 200, "OK", "{\"ok\": true}"),
        _ => respond(
            &mut stream,
            404,
            "Not Found",
            "{\"error\": \"unknown endpoint\"}",
        ),
    }
}

/// Parses a spec, queues it, streams its points, reports the result.
fn run_job(stream: &mut TcpStream, state: &ServerState, body: &str) -> io::Result<()> {
    let mut spec = match CampaignSpec::from_json(body) {
        Ok(spec) => spec,
        Err(e) => {
            let msg = format!("{{\"error\": \"{}\"}}", json::escape(&e.to_string()));
            return respond(stream, 400, "Bad Request", &msg);
        }
    };
    // The server's cache is authoritative: every client shares it.
    if state.cache.is_some() {
        spec.cache_dir = None;
    }
    let mut campaign = match Campaign::from_spec(&spec) {
        Ok(c) => c,
        Err(e) => {
            let msg = format!("{{\"error\": \"{}\"}}", json::escape(&e.to_string()));
            return respond(stream, 400, "Bad Request", &msg);
        }
    };
    if let Some(cache) = &state.cache {
        campaign = campaign.with_cache(Arc::clone(cache));
    }
    if spec.threads == 0 && state.threads != 0 {
        campaign = campaign.with_threads(state.threads);
    }
    write_head(stream, 200, "OK")?;
    let out = Mutex::new(stream.try_clone()?);
    let result = {
        let _turn = state.queue.enter();
        campaign.run_observed(|point| {
            let mut w = out.lock().expect("stream lock");
            let _ = writeln!(
                w,
                "{{\"event\": \"point\", \"point\": {}}}",
                point.to_json_line()
            );
            let _ = w.flush();
        })
    };
    state.jobs_done.fetch_add(1, Ordering::Relaxed);
    writeln!(
        stream,
        "{{\"event\": \"done\", \"cache_hits\": {}, \"cache_misses\": {}, \"result\": {}}}",
        result.cache_hits,
        result.cache_misses,
        json::compact(&result.to_json()),
    )?;
    stream.flush()
}

fn stats_json(state: &ServerState) -> String {
    let (hits, misses, entries, corrupt) = state.cache.as_ref().map_or((0, 0, 0, 0), |c| {
        (c.hits(), c.misses(), c.len() as u64, c.corrupt_lines())
    });
    format!(
        "{{\"jobs_done\": {}, \"cache_hits\": {hits}, \"cache_misses\": {misses}, \
         \"cache_entries\": {entries}, \"corrupt_lines\": {corrupt}}}",
        state.jobs_done.load(Ordering::Relaxed),
    )
}

fn write_head(stream: &mut TcpStream, status: u16, reason: &str) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/x-ndjson\r\n\
         Connection: close\r\n\r\n"
    )
}

fn respond(stream: &mut TcpStream, status: u16, reason: &str, body: &str) -> io::Result<()> {
    write_head(stream, status, reason)?;
    writeln!(stream, "{body}")?;
    stream.flush()
}

/// What a completed [`submit`] observed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubmitOutcome {
    /// Streamed `point` events.
    pub points: u64,
    /// Points the server replayed from its cache.
    pub cache_hits: u64,
    /// Points the server simulated.
    pub cache_misses: u64,
}

/// Submits a spec to a running server and streams the response:
/// `on_line` sees every JSONL event line as it arrives.
///
/// # Errors
///
/// Fails on connection errors, non-200 responses (including the
/// server's `{"error": …}` body in the message), a malformed stream, or
/// a stream that ends without a `done` event.
pub fn submit(
    addr: &str,
    spec_json: &str,
    mut on_line: impl FnMut(&str),
) -> io::Result<SubmitOutcome> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "POST /campaign HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{spec_json}",
        spec_json.len()
    )?;
    stream.flush()?;
    let reader = BufReader::new(stream);
    let mut lines = reader.lines();
    let status = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "no response"))??;
    let ok = status.split_whitespace().nth(1) == Some("200");
    // Skip response headers.
    for line in lines.by_ref() {
        if line?.is_empty() {
            break;
        }
    }
    let mut outcome = SubmitOutcome::default();
    let mut done = false;
    for line in lines {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        if !ok {
            return Err(io::Error::other(format!("server: {status}: {line}")));
        }
        on_line(&line);
        let event = json::parse(&line)
            .map_err(|e| io::Error::other(format!("bad stream line: {e}: {line}")))?;
        match event.get("event").and_then(JsonValue::as_str) {
            Some("point") => outcome.points += 1,
            Some("done") => {
                let count = |field: &str| event.get(field).and_then(JsonValue::as_u64).unwrap_or(0);
                outcome.cache_hits = count("cache_hits");
                outcome.cache_misses = count("cache_misses");
                done = true;
            }
            _ => {}
        }
    }
    if !ok {
        return Err(io::Error::other(format!("server: {status}")));
    }
    if !done {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "stream ended before the done event",
        ));
    }
    Ok(outcome)
}

/// Fetches the server's lifetime `/stats` line.
///
/// # Errors
///
/// Fails on connection errors or a non-200 response.
pub fn fetch_stats(addr: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "GET /stats HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let reader = BufReader::new(stream);
    let mut lines = reader.lines();
    let status = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "no response"))??;
    if status.split_whitespace().nth(1) != Some("200") {
        return Err(io::Error::other(format!("server: {status}")));
    }
    for line in lines.by_ref() {
        if line?.is_empty() {
            break;
        }
    }
    lines
        .next()
        .transpose()?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "empty stats body"))
}
