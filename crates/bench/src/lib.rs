//! Shared helpers for the reproduction binaries (`repro_*`).
//!
//! Every binary regenerates one table or figure of the paper. All accept:
//!
//! - `--csv` — emit CSV instead of aligned text;
//! - `--json` — emit the structured sweep-campaign JSON (figures built
//!   on [`Campaign`]; see `snoc_core::sweep` for the schema);
//! - `--quick` — shorter warmup/measurement windows (for quick local
//!   runs and CI; the default windows match the shapes reported in
//!   `EXPERIMENTS.md`);
//! - `--smoke` — minimal windows (statistically meaningless numbers);
//!   used by the `repro_smoke` test suite to exercise every binary;
//! - `--threads N` — worker threads for campaign fan-out (0 = one per
//!   core; results are identical for every thread count);
//! - `--shards N` — simulation-engine shards per point (sharded runs of
//!   deterministic-routing configs are bit-identical to `--shards 1`;
//!   see the README's "Sharded engine" section);
//! - `--cache-dir DIR` — attach the content-addressed point cache at
//!   `DIR` to the binary's campaigns: already-simulated points replay
//!   from disk, new ones are stored for next time;
//! - `--spec FILE` — ignore the binary's built-in figure and instead
//!   run the `slim_noc-spec-v1` campaign spec in `FILE`, printing its
//!   sweep JSON to stdout and a `snoc-cache-stats:` line to stderr.
//!   Identical across every `repro_*` binary.
//!
//! The latency–load figures all run through the sweep-campaign engine:
//! a binary declares its campaign (setups × patterns × the standard
//! load grid) via [`figure_campaign`] and only formats the result.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault_storm;
pub mod serve;

use snoc_core::{
    format_float, Campaign, CampaignResult, CampaignSpec, PointCache, Series, Setup, TextTable,
};
use snoc_power::TechNode;
use snoc_traffic::TrafficPattern;
use std::sync::Arc;

/// The usage line shared by every reproduction binary.
pub const USAGE: &str = "usage: repro_* [--csv] [--json] [--quick] [--smoke] \
                         [--threads N] [--shards N] [--spec FILE] [--cache-dir DIR]";

/// Command-line options shared by all reproduction binaries.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// Emit CSV instead of aligned text tables.
    pub csv: bool,
    /// Emit the sweep campaign's structured JSON instead of tables
    /// (campaign-based figures only; others ignore it).
    pub json: bool,
    /// Use short simulation windows.
    pub quick: bool,
    /// Use minimal simulation windows: every experiment still builds and
    /// runs end-to-end, but the numbers are statistically meaningless.
    /// Exists so the test suite can smoke-run all the binaries cheaply.
    pub smoke: bool,
    /// Campaign worker threads (0 = one per core).
    pub threads: usize,
    /// Simulation-engine shards per point (0 = leave the campaign or
    /// spec default in place).
    pub shards: usize,
    /// Run this `slim_noc-spec-v1` file instead of the binary's figure.
    pub spec: Option<String>,
    /// Attach the content-addressed point cache at this directory.
    pub cache_dir: Option<String>,
}

impl Args {
    /// Parses `std::env::args`. Unknown flags abort with a usage hint;
    /// `--spec` runs the spec campaign and exits (see [`USAGE`]).
    #[must_use]
    pub fn parse() -> Self {
        let args = match Self::parse_from(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("{msg} (try --help)");
                std::process::exit(2);
            }
        };
        if args.spec.is_some() {
            args.run_spec_and_exit();
        }
        args
    }

    /// Parses an explicit argument list. `--help` prints [`USAGE`] and
    /// exits; everything else reports errors instead of aborting, so
    /// tests can exercise the parser.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown flags, missing values, or
    /// malformed numbers.
    pub fn parse_from(raw: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut args = Args::default();
        let mut raw = raw;
        while let Some(a) = raw.next() {
            // Accept both `--flag value` and `--flag=value`.
            let (flag, mut inline) = match a.split_once('=') {
                Some((f, v)) => (f.to_string(), Some(v.to_string())),
                None => (a, None),
            };
            let mut next_value = || -> Result<String, String> {
                inline
                    .take()
                    .or_else(|| raw.next())
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match flag.as_str() {
                "--csv" => args.csv = true,
                "--json" => args.json = true,
                "--quick" => args.quick = true,
                "--smoke" => args.smoke = true,
                "--threads" => {
                    args.threads = next_value()?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?;
                }
                "--shards" => {
                    args.shards = next_value()?
                        .parse()
                        .map_err(|e| format!("--shards: {e}"))?;
                }
                "--spec" => args.spec = Some(next_value()?),
                "--cache-dir" => args.cache_dir = Some(next_value()?),
                "--help" | "-h" => {
                    eprintln!("{USAGE}");
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(args)
    }

    /// Applies the execution-environment flags (`--threads`,
    /// `--cache-dir`) to a campaign. An unopenable cache directory
    /// degrades to an uncached run with a warning — a figure must never
    /// fail because a cache is unavailable.
    #[must_use]
    pub fn configure(&self, mut campaign: Campaign) -> Campaign {
        if self.threads != 0 {
            campaign = campaign.with_threads(self.threads);
        }
        if self.shards != 0 {
            campaign = campaign.with_shards(self.shards);
        }
        if let Some(dir) = &self.cache_dir {
            match PointCache::open(dir) {
                Ok(cache) => campaign = campaign.with_cache(Arc::new(cache)),
                Err(e) => eprintln!("warning: cache dir `{dir}`: {e}; running uncached"),
            }
        }
        campaign
    }

    /// Folds the window/thread/cache overrides into a parsed spec
    /// (`--smoke`/`--quick` replace the spec's windows; `--threads` and
    /// `--cache-dir` replace its execution settings).
    pub fn apply_to_spec(&self, spec: &mut CampaignSpec) {
        if self.smoke || self.quick {
            spec.warmup = self.warmup();
            spec.measure = self.measure();
        }
        if self.threads != 0 {
            spec.threads = self.threads;
        }
        if self.shards != 0 {
            spec.shards = self.shards;
        }
        if let Some(dir) = &self.cache_dir {
            spec.cache_dir = Some(dir.clone());
        }
    }

    /// Runs the `--spec` campaign — sweep JSON to stdout, a
    /// [`cache_stats_line`] to stderr — then exits. Never returns.
    fn run_spec_and_exit(&self) -> ! {
        let path = self.spec.as_deref().expect("--spec is set");
        let campaign = match campaign_from_spec_file(path, self) {
            Ok(campaign) => campaign,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        };
        let result = campaign.run();
        print!("{}", result.to_json());
        eprintln!(
            "{}",
            cache_stats_line(&result, campaign.cache().map(AsRef::as_ref))
        );
        std::process::exit(0);
    }

    /// Simulation warmup window in cycles.
    #[must_use]
    pub fn warmup(&self) -> u64 {
        if self.smoke {
            20
        } else if self.quick {
            300
        } else {
            2_000
        }
    }

    /// Simulation measurement window in cycles.
    #[must_use]
    pub fn measure(&self) -> u64 {
        if self.smoke {
            60
        } else if self.quick {
            1_200
        } else {
            10_000
        }
    }

    /// Trace length in cycles.
    #[must_use]
    pub fn trace_cycles(&self) -> u64 {
        if self.smoke {
            150
        } else if self.quick {
            3_000
        } else {
            20_000
        }
    }
}

/// Loads a `slim_noc-spec-v1` file, folds in the CLI overrides
/// ([`Args::apply_to_spec`]), and builds the runnable campaign.
///
/// # Errors
///
/// Returns a printable message for unreadable files, malformed specs,
/// unknown setup recipes, or an unopenable cache directory.
pub fn campaign_from_spec_file(path: &str, args: &Args) -> Result<Campaign, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("--spec: read `{path}`: {e}"))?;
    let mut spec = CampaignSpec::from_json(&text).map_err(|e| format!("--spec: `{path}`: {e}"))?;
    args.apply_to_spec(&mut spec);
    Campaign::from_spec(&spec).map_err(|e| format!("--spec: `{path}`: {e}"))
}

/// The machine-greppable cache summary every spec run prints to
/// stderr (and CI uploads as an artifact):
/// `snoc-cache-stats: hits=H misses=M entries=E`.
#[must_use]
pub fn cache_stats_line(result: &CampaignResult, cache: Option<&PointCache>) -> String {
    format!(
        "snoc-cache-stats: hits={} misses={} entries={}",
        result.cache_hits,
        result.cache_misses,
        cache.map_or(0, PointCache::len),
    )
}

/// The standard load grid of the paper's latency–load figures
/// (log-spaced from 0.008 to 0.4 flits/node/cycle).
#[must_use]
pub fn load_grid() -> Vec<f64> {
    vec![0.008, 0.016, 0.03, 0.06, 0.1, 0.16, 0.24, 0.4]
}

/// The declarative sweep campaign behind one latency–load figure: the
/// given setups × patterns over the standard load grid with the
/// window sizes selected by `args`.
#[must_use]
pub fn figure_campaign(
    name: &str,
    setups: Vec<Setup>,
    patterns: Vec<TrafficPattern>,
    args: &Args,
) -> Campaign {
    args.configure(
        Campaign::new(name)
            .with_setups(setups)
            .with_patterns(patterns)
            .with_loads(load_grid())
            .with_windows(args.warmup(), args.measure()),
    )
}

/// Runs one latency–load curve for a setup and returns it as a series
/// (stops at saturation, like the figures). Runs through the sweep
/// engine, so points carry deterministic spec-derived seeds.
#[must_use]
pub fn latency_curve(setup: &Setup, pattern: TrafficPattern, args: &Args) -> Series {
    latency_curves(std::slice::from_ref(setup), pattern, args)
        .pop()
        .expect("one series per setup")
}

/// Runs latency curves for several setups in parallel via the sweep
/// engine.
#[must_use]
pub fn latency_curves(setups: &[Setup], pattern: TrafficPattern, args: &Args) -> Vec<Series> {
    figure_campaign("latency_curves", setups.to_vec(), vec![pattern], args)
        .run()
        .series(pattern.short_name())
}

/// Formats a class-comparison latency figure from a campaign result:
/// one latency-vs-load table per pattern plus the paper's SN/baseline
/// latency-ratio annotations at the lowest load. With `--json` the raw
/// campaign result is emitted instead.
pub fn print_class_figure(
    result: &CampaignResult,
    figure: &str,
    subtitle: &str,
    sn: &str,
    baselines: &[&str],
    args: &Args,
) {
    if args.json {
        print!("{}", result.to_json());
        return;
    }
    for pattern in &result.patterns {
        let curves = result.series(pattern);
        Series::tabulate(format!("{figure} ({pattern}): {subtitle}"), "load", &curves)
            .print(args.csv);
        let at_low = |name: &str| -> Option<f64> {
            curves
                .iter()
                .find(|s| s.name == name)?
                .points
                .first()
                .map(|&(_, y)| y)
        };
        if let Some(sn_lat) = at_low(sn) {
            let mut table = TextTable::new(
                format!("{figure} ({pattern}): SN latency ratio at load 0.008"),
                &["baseline", "SN/baseline"],
            );
            for base in baselines {
                if let Some(b) = at_low(base) {
                    table.push_row(vec![
                        (*base).to_string(),
                        format!("{:.0}%", 100.0 * sn_lat / b),
                    ]);
                }
            }
            table.print(args.csv);
        }
    }
}

/// The load grid of the energy figures: from low load through well past
/// the mesh/torus saturation knee (≈0.07–0.1 flits/node/cycle on the
/// N ≈ 200 class), so matched-load comparisons expose the low-diameter
/// networks' acceptance advantage, not just their power draw.
#[must_use]
pub fn energy_load_grid() -> Vec<f64> {
    vec![0.05, 0.15, 0.30]
}

/// The energy-efficiency comparison class: the paper's matched-cost
/// N ∈ {192, 200} mesh/torus/Slim NoC plus the nearest balanced
/// Dragonfly (df3, N = 342; balanced DFs only exist at N = 2h²(2h²+1)).
/// All four sit in comparable bisection-per-node classes; metrics are
/// normalized per delivered flit, so the size mismatch washes out.
///
/// # Panics
///
/// Panics if a paper configuration fails to build (they never do).
#[must_use]
pub fn energy_class_setups() -> Vec<Setup> {
    ["cm4", "t2d4", "df3", "sn_s"]
        .iter()
        .map(|n| Setup::paper(n).expect("paper config"))
        .collect()
}

/// The declarative power-aware campaign behind one energy figure: the
/// given setups under uniform random traffic over [`energy_load_grid`]
/// at 45 nm, with measured-activity power evaluation at every point.
/// Saturated points are kept (matched-load comparison needs every
/// setup evaluated at every load).
#[must_use]
pub fn energy_campaign(name: &str, setups: Vec<Setup>, args: &Args) -> Campaign {
    args.configure(
        Campaign::new(name)
            .with_setups(setups)
            .with_patterns(vec![TrafficPattern::Random])
            .with_loads(energy_load_grid())
            .with_windows(args.warmup(), args.measure())
            .with_power(TechNode::N45)
            .with_stop_at_saturation(false),
    )
}

/// Formats an energy figure from a power-aware campaign result: one
/// power/efficiency table per load, plus SN-vs-baseline ratios of
/// throughput/Watt and EDP at the highest load. With `--json` the raw
/// `slim_noc-sweep-v2` campaign result is emitted instead.
///
/// # Panics
///
/// Panics if the result was produced without [`Campaign::with_power`].
pub fn print_energy_figure(result: &CampaignResult, figure: &str, baseline: &str, args: &Args) {
    if args.json {
        print!("{}", result.to_json());
        return;
    }
    let pattern = &result.patterns[0];
    let loads: Vec<f64> = {
        let mut l: Vec<f64> = result.points.iter().map(|p| p.load).collect();
        l.sort_by(f64::total_cmp);
        l.dedup();
        l
    };
    for &load in &loads {
        let mut table = TextTable::new(
            format!("{figure} ({pattern}): offered load {load} flits/node/cycle"),
            &[
                "setup",
                "thpt",
                "latency",
                "power[W]",
                "area[mm2]",
                "thpt/W[flits/J]",
                "E/flit[pJ]",
                "EDP[J*s]",
            ],
        );
        for name in &result.setups {
            let Some(p) = result
                .curve(name, pattern)
                .find(|p| (p.load - load).abs() < 1e-12)
            else {
                continue;
            };
            let pw = p.power.expect("power-aware campaign");
            table.push_row(vec![
                name.clone(),
                format_float(p.throughput, 3),
                format_float(p.latency, 1),
                format_float(pw.power_w, 2),
                format_float(pw.area_mm2, 1),
                format_float(pw.throughput_per_watt, 3),
                format_float(pw.energy_per_flit_j * 1e12, 2),
                format_float(pw.edp_js, 3),
            ]);
        }
        table.print(args.csv);
    }
    // Matched-load efficiency ratios at the top of the grid, the
    // figure's headline comparison.
    if let Some(&top) = loads.last() {
        let at_top = |name: &str| {
            result
                .curve(name, pattern)
                .find(|p| (p.load - top).abs() < 1e-12)
                .and_then(|p| p.power)
        };
        if let Some(base) = at_top(baseline) {
            let mut table = TextTable::new(
                format!("{figure}: efficiency vs {baseline} at load {top}"),
                &["setup", "thpt/W ratio", "EDP ratio"],
            );
            for name in &result.setups {
                if let Some(pw) = at_top(name) {
                    table.push_row(vec![
                        name.clone(),
                        format!("{:.2}x", pw.throughput_per_watt / base.throughput_per_watt),
                        format!("{:.2}x", pw.edp_js / base.edp_js),
                    ]);
                }
            }
            table.print(args.csv);
        }
    }
}

/// The paper's small-class comparison set (N ∈ {192, 200}).
///
/// # Panics
///
/// Panics if a paper configuration fails to build (they never do).
#[must_use]
pub fn small_class_setups() -> Vec<Setup> {
    ["cm3", "t2d3", "pfbf3", "pfbf4", "sn_s", "fbf3"]
        .iter()
        .map(|n| Setup::paper(n).expect("paper config"))
        .collect()
}

/// The paper's large-class comparison set (N = 1296).
///
/// # Panics
///
/// Panics if a paper configuration fails to build (they never do).
#[must_use]
pub fn large_class_setups() -> Vec<Setup> {
    ["cm9", "t2d9", "pfbf9", "sn_l", "fbf9"]
        .iter()
        .map(|n| Setup::paper(n).expect("paper config"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_grid_is_increasing() {
        let g = load_grid();
        for w in g.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(g[0], 0.008);
    }

    #[test]
    fn setup_lists_build() {
        assert_eq!(small_class_setups().len(), 6);
        assert_eq!(large_class_setups().len(), 5);
    }

    #[test]
    fn quick_windows_are_shorter() {
        let quick = Args {
            quick: true,
            ..Args::default()
        };
        let smoke = Args {
            smoke: true,
            ..quick.clone()
        };
        let full = Args::default();
        assert!(quick.warmup() < full.warmup());
        assert!(quick.measure() < full.measure());
        assert!(smoke.warmup() < quick.warmup());
        assert!(smoke.measure() < quick.measure());
        assert!(smoke.trace_cycles() < quick.trace_cycles());
    }

    #[test]
    fn figure_campaign_reflects_args() {
        let args = Args {
            quick: true,
            ..Args::default()
        };
        let c = figure_campaign(
            "t",
            vec![Setup::paper("sn54").unwrap()],
            vec![TrafficPattern::Random],
            &args,
        );
        assert_eq!(c.warmup, args.warmup());
        assert_eq!(c.measure, args.measure());
        assert_eq!(c.loads, load_grid());
    }

    #[test]
    fn latency_curve_matches_campaign_series() {
        let args = Args {
            smoke: true,
            ..Args::default()
        };
        let setup = Setup::paper("sn54").unwrap();
        let direct = latency_curve(&setup, TrafficPattern::Random, &args);
        let via_campaign = figure_campaign(
            "latency_curves",
            vec![setup],
            vec![TrafficPattern::Random],
            &args,
        )
        .run()
        .series("RND")
        .remove(0);
        assert_eq!(direct, via_campaign);
    }
}
