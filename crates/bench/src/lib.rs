//! Shared helpers for the reproduction binaries (`repro_*`).
//!
//! Every binary regenerates one table or figure of the paper. All accept:
//!
//! - `--csv` — emit CSV instead of aligned text;
//! - `--quick` — shorter warmup/measurement windows (for quick local
//!   runs and CI; the default windows match the shapes reported in
//!   `EXPERIMENTS.md`);
//! - `--smoke` — minimal windows (statistically meaningless numbers);
//!   used by the `repro_smoke` test suite to exercise every binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use snoc_core::{parallel_map, Series, Setup};
use snoc_traffic::TrafficPattern;

/// Command-line options shared by all reproduction binaries.
#[derive(Debug, Clone, Copy, Default)]
pub struct Args {
    /// Emit CSV instead of aligned text tables.
    pub csv: bool,
    /// Use short simulation windows.
    pub quick: bool,
    /// Use minimal simulation windows: every experiment still builds and
    /// runs end-to-end, but the numbers are statistically meaningless.
    /// Exists so the test suite can smoke-run all 23 binaries cheaply.
    pub smoke: bool,
}

impl Args {
    /// Parses `std::env::args`. Unknown flags abort with a usage hint.
    #[must_use]
    pub fn parse() -> Self {
        let mut args = Args::default();
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--csv" => args.csv = true,
                "--quick" => args.quick = true,
                "--smoke" => args.smoke = true,
                "--help" | "-h" => {
                    eprintln!("usage: repro_* [--csv] [--quick] [--smoke]");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag `{other}` (try --help)");
                    std::process::exit(2);
                }
            }
        }
        args
    }

    /// Simulation warmup window in cycles.
    #[must_use]
    pub fn warmup(&self) -> u64 {
        if self.smoke {
            20
        } else if self.quick {
            300
        } else {
            2_000
        }
    }

    /// Simulation measurement window in cycles.
    #[must_use]
    pub fn measure(&self) -> u64 {
        if self.smoke {
            60
        } else if self.quick {
            1_200
        } else {
            10_000
        }
    }

    /// Trace length in cycles.
    #[must_use]
    pub fn trace_cycles(&self) -> u64 {
        if self.smoke {
            150
        } else if self.quick {
            3_000
        } else {
            20_000
        }
    }
}

/// The standard load grid of the paper's latency–load figures
/// (log-spaced from 0.008 to 0.4 flits/node/cycle).
#[must_use]
pub fn load_grid() -> Vec<f64> {
    vec![0.008, 0.016, 0.03, 0.06, 0.1, 0.16, 0.24, 0.4]
}

/// Runs one latency–load curve for a setup and returns it as a series
/// (stops at saturation, like the figures).
#[must_use]
pub fn latency_curve(setup: &Setup, pattern: TrafficPattern, args: &Args) -> Series {
    let mut series = Series::new(setup.name.clone());
    for p in setup.latency_load_curve(pattern, &load_grid(), args.warmup(), args.measure()) {
        if p.saturated {
            break;
        }
        series.push(p.load, p.latency);
    }
    series
}

/// Runs latency curves for several setups in parallel.
#[must_use]
pub fn latency_curves(setups: &[Setup], pattern: TrafficPattern, args: &Args) -> Vec<Series> {
    parallel_map(setups.to_vec(), |s| latency_curve(&s, pattern, args))
}

/// The paper's small-class comparison set (N ∈ {192, 200}).
///
/// # Panics
///
/// Panics if a paper configuration fails to build (they never do).
#[must_use]
pub fn small_class_setups() -> Vec<Setup> {
    ["cm3", "t2d3", "pfbf3", "pfbf4", "sn_s", "fbf3"]
        .iter()
        .map(|n| Setup::paper(n).expect("paper config"))
        .collect()
}

/// The paper's large-class comparison set (N = 1296).
///
/// # Panics
///
/// Panics if a paper configuration fails to build (they never do).
#[must_use]
pub fn large_class_setups() -> Vec<Setup> {
    ["cm9", "t2d9", "pfbf9", "sn_l", "fbf9"]
        .iter()
        .map(|n| Setup::paper(n).expect("paper config"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_grid_is_increasing() {
        let g = load_grid();
        for w in g.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(g[0], 0.008);
    }

    #[test]
    fn setup_lists_build() {
        assert_eq!(small_class_setups().len(), 6);
        assert_eq!(large_class_setups().len(), 5);
    }

    #[test]
    fn quick_windows_are_shorter() {
        let quick = Args {
            csv: false,
            quick: true,
            smoke: false,
        };
        let smoke = Args {
            smoke: true,
            ..quick
        };
        let full = Args::default();
        assert!(quick.warmup() < full.warmup());
        assert!(quick.measure() < full.measure());
        assert!(smoke.warmup() < quick.warmup());
        assert!(smoke.measure() < quick.measure());
        assert!(smoke.trace_cycles() < quick.trace_cycles());
    }
}
