//! Shared logic of the `repro_fault_storm` figure: delivered-throughput
//! retention under live link-failure storms.
//!
//! §2.1 credits MMS graphs with "high resilience to link failures". The
//! static half of that claim (connectivity, diameter inflation) is
//! `repro_resilience`; this module tests it *dynamically*: each network
//! runs with a seeded storm that severs a fraction of its links mid-run
//! (routing self-heals, severed pairs quiesce, in-flight casualties are
//! dropped), and the figure reports how much delivered throughput each
//! network retains relative to its own fault-free run. The e2e pin in
//! `tests/fault_retention.rs` asserts Slim NoC retains strictly more
//! than the mesh at every fraction ≥ 10%.
//!
//! Everything here is deterministic: storms are seeded, per-point seeds
//! are spec-derived, and results are identical across thread counts.

use crate::Args;
use snoc_core::{Campaign, CampaignResult, FaultsSpec, Setup, StormSpec};
use snoc_traffic::TrafficPattern;

/// Offered load of every run, in flits/node/cycle — below each healthy
/// network's saturation knee, so fault-free runs deliver comparably and
/// retention isolates the degradation.
pub const LOAD: f64 = 0.05;

/// Offered load of the deadlock-hunt sweep — past every network's
/// saturation knee, so buffers stay full and any channel-dependency
/// cycle in a degraded routing table would actually wedge rather than
/// hide behind slack credits.
pub const SATURATION_LOAD: f64 = 0.60;

/// Failed-link fractions swept (0 is the per-network baseline).
pub const FRACTIONS: [f64; 4] = [0.0, 0.05, 0.10, 0.20];

/// The networks compared, at the paper's N ∈ {192, 200} scale, all on
/// minimal routing (the fault-injection envelope).
pub const NETWORKS: [&str; 4] = ["sn_s", "fbf3", "t2d4", "cm4"];

/// The storm seed; fixed so the figure and its e2e pin are exactly
/// reproducible.
pub const STORM_SEED: u64 = 0xFA17;

/// Campaign setup name of one (network, fraction) cell, e.g. `cm4@10`.
#[must_use]
pub fn setup_name(network: &str, fraction: f64) -> String {
    format!("{network}@{:.0}", fraction * 100.0)
}

/// Number of links a storm severs on `network` at `fraction` (rounded
/// to the nearest whole link).
///
/// # Panics
///
/// Panics if `network` is not a paper configuration.
#[must_use]
pub fn failed_links(network: &str, fraction: f64) -> usize {
    let setup = Setup::paper(network).expect("paper config");
    let total = setup.topology.links().count();
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
    #[allow(clippy::cast_sign_loss)]
    let links = (fraction * total as f64).round() as usize;
    links
}

/// The declarative campaign behind the figure: every network × failure
/// fraction at [`LOAD`], with each faulted setup carrying a seeded
/// storm that strikes just after measurement opens — the measured
/// window watches the network lose links live, so in-flight casualties
/// show up in the `dropped_packets` column and the throughput average
/// is dominated by the degraded steady state.
#[must_use]
pub fn storm_campaign(args: &Args) -> Campaign {
    storm_campaign_at("fault_storm", LOAD, args)
}

/// The deadlock-hunt variant: the same network × fraction storm grid
/// driven at [`SATURATION_LOAD`]. Every simulator runs with its
/// no-progress watchdog armed (the default), and `Setup::run_load`
/// panics with the full diagnostic on a watchdog abort — so merely
/// completing this campaign is evidence that every degraded table kept
/// flits moving under maximal backpressure. Throughput retention from
/// this sweep is not a figure; liveness is the product.
#[must_use]
pub fn saturation_storm_campaign(args: &Args) -> Campaign {
    storm_campaign_at("fault_storm_saturation", SATURATION_LOAD, args)
}

fn storm_campaign_at(name: &str, load: f64, args: &Args) -> Campaign {
    let warmup = args.warmup();
    let measure = args.measure();
    // All failures land in the first tenth of the measured window.
    let storm_start = warmup + (measure / 20).max(1);
    let storm_window = (measure / 20).max(1);
    let mut setups = Vec::new();
    for network in NETWORKS {
        for fraction in FRACTIONS {
            let mut setup = Setup::paper(network).expect("paper config");
            setup.name = setup_name(network, fraction);
            let links = failed_links(network, fraction);
            if links > 0 {
                setup = setup.with_faults(FaultsSpec {
                    events: Vec::new(),
                    storm: Some(StormSpec {
                        links,
                        start: storm_start,
                        window: storm_window,
                        seed: STORM_SEED,
                    }),
                });
            }
            setups.push(setup);
        }
    }
    args.configure(
        Campaign::new(name)
            .with_setups(setups)
            .with_patterns(vec![TrafficPattern::Random])
            .with_loads(vec![load])
            .with_windows(warmup, args.measure())
            .with_stop_at_saturation(false),
    )
}

/// One cell of the retention figure.
#[derive(Debug, Clone, PartialEq)]
pub struct RetentionRow {
    /// Paper network name (`sn_s`, `cm4`, …).
    pub network: &'static str,
    /// Failed-link fraction of this cell.
    pub fraction: f64,
    /// Links the storm severed.
    pub links_failed: usize,
    /// Measured delivered throughput in flits/node/cycle.
    pub throughput: f64,
    /// Packets dropped by the storm (in-flight casualties).
    pub dropped: u64,
    /// `throughput` relative to the network's own fault-free run.
    pub retention: f64,
}

/// Condenses a [`storm_campaign`] result into retention rows, one per
/// network × fraction in sweep order.
///
/// # Panics
///
/// Panics if `result` is missing a campaign point (it never is for a
/// result produced by [`storm_campaign`]).
#[must_use]
pub fn retention_rows(result: &CampaignResult) -> Vec<RetentionRow> {
    let mut rows = Vec::new();
    for network in NETWORKS {
        let point = |fraction: f64| {
            let name = setup_name(network, fraction);
            let p = result
                .curve(&name, "RND")
                .next()
                .unwrap_or_else(|| panic!("missing point {network}@{fraction}"))
                .clone();
            p
        };
        let baseline = point(0.0).throughput;
        for fraction in FRACTIONS {
            let p = point(fraction);
            rows.push(RetentionRow {
                network,
                fraction,
                links_failed: failed_links(network, fraction),
                throughput: p.throughput,
                dropped: p.dropped_packets,
                retention: if baseline > 0.0 {
                    p.throughput / baseline
                } else {
                    0.0
                },
            });
        }
    }
    rows
}

/// Looks up one retention cell.
///
/// # Panics
///
/// Panics if the (network, fraction) cell is not in `rows`.
#[must_use]
pub fn retention_at<'a>(
    rows: &'a [RetentionRow],
    network: &str,
    fraction: f64,
) -> &'a RetentionRow {
    rows.iter()
        .find(|r| r.network == network && (r.fraction - fraction).abs() < 1e-12)
        .unwrap_or_else(|| panic!("no retention row {network}@{fraction}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_shape_covers_every_cell() {
        let args = Args {
            smoke: true,
            ..Args::default()
        };
        let c = storm_campaign(&args);
        assert_eq!(c.setups.len(), NETWORKS.len() * FRACTIONS.len());
        assert_eq!(c.loads, vec![LOAD]);
        // Baselines are fault-free; every other cell severs links.
        for network in NETWORKS {
            assert_eq!(failed_links(network, 0.0), 0);
            assert!(failed_links(network, 0.10) > 0, "{network}");
        }
    }

    #[test]
    fn saturation_campaign_mirrors_the_storm_grid_at_high_load() {
        let args = Args {
            smoke: true,
            ..Args::default()
        };
        let c = saturation_storm_campaign(&args);
        assert_eq!(c.setups.len(), NETWORKS.len() * FRACTIONS.len());
        assert_eq!(c.loads, vec![SATURATION_LOAD]);
        let names: Vec<_> = c.setups.iter().map(|s| s.name.clone()).collect();
        let base: Vec<_> = storm_campaign(&args)
            .setups
            .iter()
            .map(|s| s.name.clone())
            .collect();
        assert_eq!(names, base, "same cells, only the load differs");
    }

    #[test]
    fn storm_lands_early_in_the_measured_window() {
        for args in [
            Args::default(),
            Args {
                quick: true,
                ..Args::default()
            },
            Args {
                smoke: true,
                ..Args::default()
            },
        ] {
            let (warmup, measure) = (args.warmup(), args.measure());
            let start = warmup + (measure / 20).max(1);
            let window = (measure / 20).max(1);
            assert!(start > warmup, "strikes after measurement opens");
            assert!(
                start + window < warmup + measure / 5,
                "fully degraded for at least 80% of the measured window"
            );
        }
    }
}
