//! Energy-efficiency sweep of the mesh baseline (cm4, the N = 200
//! concentrated mesh): a power-aware campaign whose dynamic power is
//! driven by the activity factors the simulator measured. Emits the
//! `slim_noc-sweep-v2` JSON with `--json`.

use snoc_bench::{energy_campaign, print_energy_figure, Args};
use snoc_core::Setup;

fn main() {
    let args = Args::parse();
    let setups = vec![Setup::paper("cm4").expect("paper config")];
    let result = energy_campaign("energy_mesh", setups, &args).run();
    print_energy_figure(&result, "Energy: mesh (cm4)", "cm4", &args);
}
