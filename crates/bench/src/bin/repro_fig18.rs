//! Reproduces Figure 18: energy–delay product on the PARSEC/SPLASH-like
//! workloads, normalized to FBF, for fbf3 / pfbf3 / cm3 / sn_subgr
//! (SMART links on, 45 nm).

use snoc_bench::Args;
use snoc_core::{format_float, parallel_map, BufferPreset, Setup, TextTable};
use snoc_power::TechNode;
use snoc_traffic::benchmark_workloads;

fn main() {
    let args = Args::parse();
    let nets = ["fbf3", "pfbf3", "cm3", "sn_s"];
    let rows = parallel_map(benchmark_workloads(), |w| {
        let edp = |name: &str| -> f64 {
            let s = Setup::paper(name)
                .expect("config")
                .with_smart(true)
                .with_buffers(BufferPreset::EbVar);
            let report = s.run_trace_workload(&w, args.trace_cycles());
            let model = s.power_model(TechNode::N45);
            model
                .evaluate(&s.topology, &s.layout, s.buffer_flits_per_router(), &report)
                .energy_delay()
        };
        let values: Vec<f64> = nets.iter().map(|n| edp(n)).collect();
        (w.name, values)
    });
    let mut table = TextTable::new(
        "Fig 18: energy-delay product normalized to FBF (SMART, 45nm)",
        &["benchmark", "fbf3", "pfbf3", "cm3", "sn_subgr"],
    );
    let mut geo: Vec<f64> = vec![1.0; nets.len()];
    let mut count = 0u32;
    for (name, values) in rows {
        let base = values[0];
        let mut cells = vec![name.to_string()];
        for (i, v) in values.iter().enumerate() {
            let norm = v / base;
            geo[i] *= norm;
            cells.push(format_float(norm, 3));
        }
        count += 1;
        table.push_row(cells);
    }
    table.print(args.csv);
    let mut summary = TextTable::new(
        "Fig 18 summary: geometric-mean EDP vs FBF (paper: SN 55% better)",
        &["network", "geomean EDP / FBF"],
    );
    for (i, n) in nets.iter().enumerate() {
        summary.push_row(vec![
            n.to_string(),
            format_float(geo[i].powf(1.0 / f64::from(count.max(1))), 3),
        ]);
    }
    summary.print(args.csv);
}
