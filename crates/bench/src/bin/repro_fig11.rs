//! Reproduces Figure 11: the impact of buffering strategies (edge
//! buffers, elastic links, central buffers) on Slim NoC latency, with
//! and without SMART links, for N = 200 and N = 1296.

use snoc_bench::{latency_curve, Args};
use snoc_core::{parallel_map, BufferPreset, Series, Setup};
use snoc_traffic::TrafficPattern;

fn presets() -> Vec<(&'static str, BufferPreset)> {
    vec![
        ("EB-Small", BufferPreset::EbSmall),
        ("EB-Var", BufferPreset::EbVar),
        ("EB-Large", BufferPreset::EbLarge),
        ("EL-Links", BufferPreset::ElLinks),
        ("CBR-40", BufferPreset::Cbr(40)),
        ("CBR-6", BufferPreset::Cbr(6)),
    ]
}

fn main() {
    let args = Args::parse();
    for (size_label, cfg_name) in [("200", "sn_s"), ("1296", "sn_l")] {
        for smart in [false, true] {
            let smart_label = if smart { "SMART" } else { "No-SMART" };
            let setups: Vec<(String, Setup)> = presets()
                .into_iter()
                .map(|(name, preset)| {
                    let mut s = Setup::paper(cfg_name)
                        .expect("config")
                        .with_buffers(preset)
                        .with_smart(smart);
                    s.name = name.to_string();
                    (name.to_string(), s)
                })
                .collect();
            let curves = parallel_map(setups, |(_, s)| {
                latency_curve(&s, TrafficPattern::Random, &args)
            });
            Series::tabulate(
                format!("Fig 11 (N={size_label}, {smart_label}): latency vs load, RND"),
                "load",
                &curves,
            )
            .print(args.csv);
        }
    }
}
