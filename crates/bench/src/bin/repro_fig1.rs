//! Reproduces Figure 1: the headline comparison at N = 1296.
//!
//! - (a) latency vs. load under the adversarial pattern (ADV1) for
//!   Slim NoC, torus, mesh, and bisection-matched Flattened Butterflies;
//! - (b)/(c) throughput per power at 45 nm and 22 nm under random
//!   traffic near each network's operating load.
//!
//! All networks use the paper's shared microarchitecture (SMART links +
//! CBR-20, per §1's "all using the same microarchitectural schemes").

use snoc_bench::{latency_curves, Args};
use snoc_core::{format_float, parallel_map, BufferPreset, Series, Setup, TextTable};
use snoc_power::TechNode;
use snoc_traffic::TrafficPattern;

fn setups() -> Vec<Setup> {
    ["t2d9", "cm9", "pfbf9", "sn_l", "fbf9"]
        .iter()
        .map(|n| {
            Setup::paper(n)
                .expect("paper config")
                .with_smart(true)
                .with_buffers(BufferPreset::Cbr(20))
        })
        .collect()
}

fn main() {
    let args = Args::parse();

    // (a) ADV1 latency-load curves.
    let curves = latency_curves(&setups(), TrafficPattern::Adversarial1, &args);
    Series::tabulate(
        "Fig 1a: latency [cycles] vs load, ADV1, N=1296 (SMART + CBR-20)",
        "load",
        &curves,
    )
    .print(args.csv);

    // (b)/(c) Throughput per power at a heavy common offered load (0.4
    // flits/node/cycle of random traffic): every network delivers its
    // saturated throughput, and the metric divides flits delivered per
    // second by the power consumed during delivery.
    for tech in [TechNode::N45, TechNode::N22] {
        let rows = parallel_map(setups(), |s| {
            let r = s.evaluate_power(
                tech,
                TrafficPattern::Random,
                0.40,
                args.warmup(),
                args.measure(),
            );
            (s.name.clone(), r.throughput_per_power())
        });
        let mut table = TextTable::new(
            format!("Fig 1b/c: throughput per power ({tech}), RND @ 0.4 offered"),
            &["network", "throughput/power [flits/J]"],
        );
        for (name, tpp) in rows {
            table.push_row(vec![name, format_float(tpp, 3)]);
        }
        table.print(args.csv);
    }
}
