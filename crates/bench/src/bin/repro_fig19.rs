//! Reproduces Figure 19: today's small-scale designs (N = 54, the KNL
//! scale of §5.6) — latency, per-node area and per-node dynamic power
//! at 45 nm with SMART links.

use snoc_bench::{latency_curves, Args};
use snoc_core::{format_float, parallel_map, BufferPreset, Series, Setup, TextTable};
use snoc_power::TechNode;
use snoc_traffic::TrafficPattern;

fn setups() -> Vec<Setup> {
    ["fbf54", "pfbf54", "sn54", "t2d54"]
        .iter()
        .map(|n| {
            Setup::paper(n)
                .expect("config")
                .with_smart(true)
                .with_buffers(BufferPreset::EbVar)
        })
        .collect()
}

fn main() {
    let args = Args::parse();

    // (a) Latency-load.
    let curves = latency_curves(&setups(), TrafficPattern::Random, &args);
    Series::tabulate(
        "Fig 19a: latency vs load, N=54, SMART, RND",
        "load",
        &curves,
    )
    .print(args.csv);

    // (b)+(c) Area and dynamic power per node.
    let rows = parallel_map(setups(), |s| {
        let r = s.evaluate_power(
            TechNode::N45,
            TrafficPattern::Random,
            0.10,
            args.warmup(),
            args.measure(),
        );
        (
            s.name.clone(),
            r.area.per_node_cm2(),
            r.dynamic_power.per_node_w(),
        )
    });
    let mut table = TextTable::new(
        "Fig 19b/c: per-node area and dynamic power, N=54 (45nm, SMART)",
        &["network", "area/node [cm^2]", "dynamic/node [W]"],
    );
    for (name, a, dp) in rows {
        table.push_row(vec![name, format_float(a, 5), format_float(dp, 5)]);
    }
    table.print(args.csv);
}
