//! Reproduces Figure 6: the distribution of link Manhattan distances in
//! Slim NoCs with N ∈ {200, 1024, 1296} for the two best layouts
//! (sn_gr and sn_subgr), binned in ranges of 2 as in the paper.

use snoc_bench::Args;
use snoc_core::{format_float, TextTable};
use snoc_layout::{Layout, SnLayout};
use snoc_topology::Topology;

fn main() {
    let args = Args::parse();
    let configs = [
        ("N=200", 5usize, 4usize),
        ("N=1024", 8, 8),
        ("N=1296", 9, 8),
    ];
    for (label, q, p) in configs {
        let t = Topology::slim_noc(q, p).expect("sn");
        let gr = Layout::slim_noc(&t, SnLayout::Group).expect("group");
        let sub = Layout::slim_noc(&t, SnLayout::Subgroup).expect("subgroup");
        let d_gr = gr.link_distance_density(&t, 2);
        let d_sub = sub.link_distance_density(&t, 2);
        let bins = d_gr.len().max(d_sub.len());
        let mut table = TextTable::new(
            format!("Fig 6 ({label}): link distance probability density"),
            &["distance range", "sn_gr", "sn_subgr"],
        );
        for b in 0..bins {
            table.push_row(vec![
                format!("{}-{}", 2 * b + 1, 2 * b + 2),
                format_float(d_gr.get(b).copied().unwrap_or(0.0), 3),
                format_float(d_sub.get(b).copied().unwrap_or(0.0), 3),
            ]);
        }
        table.print(args.csv);
    }
}
