//! Energy-efficiency sweep of the Slim NoC (sn_s, N = 200): a
//! power-aware campaign whose dynamic power is driven by the activity
//! factors the simulator measured. Emits the `slim_noc-sweep-v2` JSON
//! with `--json`.

use snoc_bench::{energy_campaign, print_energy_figure, Args};
use snoc_core::Setup;

fn main() {
    let args = Args::parse();
    let setups = vec![Setup::paper("sn_s").expect("paper config")];
    let result = energy_campaign("energy_sn", setups, &args).run();
    print_energy_figure(&result, "Energy: Slim NoC (sn_s)", "sn_s", &args);
}
