//! Reproduces Figure 14: synthetic-traffic performance *without* SMART
//! links for the small network class — the case where Slim NoC's longer
//! wires cost latency against FBF.
//!
//! Declared as a sweep campaign (setups × paper pattern set × the
//! standard load grid); `--json` emits the raw campaign result.

use snoc_bench::{figure_campaign, print_class_figure, small_class_setups, Args};
use snoc_traffic::TrafficPattern;

fn main() {
    let args = Args::parse();
    let setups = small_class_setups(); // SMART off by default
    let result = figure_campaign("fig14", setups, TrafficPattern::paper_set(), &args).run();
    print_class_figure(
        &result,
        "Fig 14",
        "latency vs load, no SMART, N in {192,200}",
        "sn_s",
        &["cm3", "t2d3", "pfbf3", "fbf3"],
        &args,
    );
}
