//! Reproduces Figure 14: synthetic-traffic performance *without* SMART
//! links for the small network class — the case where Slim NoC's longer
//! wires cost latency against FBF.

use snoc_bench::{latency_curves, small_class_setups, Args};
use snoc_core::{Series, TextTable};
use snoc_traffic::TrafficPattern;

fn main() {
    let args = Args::parse();
    let setups = small_class_setups(); // SMART off by default
    for pattern in TrafficPattern::paper_set() {
        let curves = latency_curves(&setups, pattern, &args);
        Series::tabulate(
            format!("Fig 14 ({pattern}): latency vs load, no SMART, N in {{192,200}}"),
            "load",
            &curves,
        )
        .print(args.csv);
        let at_low = |name: &str| -> Option<f64> {
            curves
                .iter()
                .find(|s| s.name == name)?
                .points
                .first()
                .map(|&(_, y)| y)
        };
        if let Some(sn) = at_low("sn_s") {
            let mut table = TextTable::new(
                format!("Fig 14 ({pattern}): SN latency ratio at load 0.008"),
                &["baseline", "SN/baseline"],
            );
            for base in ["cm3", "t2d3", "pfbf3", "fbf3"] {
                if let Some(b) = at_low(base) {
                    table.push_row(vec![base.to_string(), format!("{:.0}%", 100.0 * sn / b)]);
                }
            }
            table.print(args.csv);
        }
    }
}
