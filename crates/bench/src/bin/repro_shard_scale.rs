//! Shard-scaling study: the sharded parallel engine
//! (`snoc_sim::ShardedSimulator`) against the monolithic simulator on a
//! single Slim NoC instance, one row per shard count.
//!
//! Each row reports construction time, simulation wall-clock, the
//! speedup over the single-shard row, and whether the report is
//! byte-identical to the single-shard run (minimal routing is the
//! exact-determinism tier, so it must be). The full run uses the
//! paper-scale `slim_noc(47, 24)` instance — 4418 routers, 106 032
//! endpoints — which is the workload the sharded engine exists for;
//! `--quick` drops to the 1296-endpoint class and `--smoke` to the
//! 54-endpoint pipeline check.
//!
//! Wall-clock speedups only mean something on an otherwise idle
//! multi-core machine; on a loaded or single-core host the table still
//! verifies determinism, and the ratios just document the overhead.

use snoc_bench::Args;
use snoc_core::{format_float, TextTable};
use snoc_sim::{ShardedSimulator, SimConfig};
use snoc_topology::Topology;
use snoc_traffic::TrafficPattern;
use std::time::Instant;

/// One measured shard-count row.
struct Row {
    shards: usize,
    build_ms: f64,
    run_ms: f64,
    delivered: u64,
    latency: f64,
    identical: bool,
}

fn main() {
    let args = Args::parse();
    // Instance sizes: --smoke proves the pipeline end-to-end, --quick
    // is a seconds-scale study, and the full run is the >=100k-endpoint
    // instance the engine was built for. Full windows on 106k endpoints
    // would take hours single-threaded; the scaling signal saturates
    // long before that, so the full tier uses trimmed windows.
    let (topo, rate, warmup, measure) = if args.smoke {
        (
            Topology::slim_noc(3, 3),
            0.05,
            args.warmup(),
            args.measure(),
        )
    } else if args.quick {
        (
            Topology::slim_noc(9, 8),
            0.05,
            args.warmup(),
            args.measure(),
        )
    } else {
        (Topology::slim_noc(47, 24), 0.02, 500, 2_500)
    };
    let topo = topo.expect("valid Slim NoC parameters");
    // An explicit --shards N studies just {1, N}; otherwise sweep the
    // standard ladder.
    let shard_counts: Vec<usize> = match args.shards {
        0 if args.smoke => vec![1, 2, 4],
        0 => vec![1, 2, 4, 8],
        1 => vec![1],
        n => vec![1, n],
    };
    let cfg = SimConfig::default().with_seed(0xBEEF);

    let mut rows: Vec<Row> = Vec::new();
    let mut baseline_json: Option<String> = None;
    for &shards in &shard_counts {
        let t = Instant::now();
        let mut sim = ShardedSimulator::build(&topo, &cfg, shards).expect("engine builds");
        let build_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let report = sim.run_synthetic(TrafficPattern::Random, rate, warmup, measure);
        let run_ms = t.elapsed().as_secs_f64() * 1e3;
        let json = report.to_json();
        let identical = match &baseline_json {
            None => {
                baseline_json = Some(json);
                true
            }
            Some(base) => *base == json,
        };
        rows.push(Row {
            shards: sim.shard_count(),
            build_ms,
            run_ms,
            delivered: report.delivered_packets,
            latency: report.avg_packet_latency(),
            identical,
        });
    }

    let base_run_ms = rows[0].run_ms;
    if args.json {
        println!("[");
        for (i, r) in rows.iter().enumerate() {
            println!(
                "  {{\"shards\": {}, \"build_ms\": {}, \"run_ms\": {}, \
                 \"speedup\": {}, \"delivered\": {}, \"identical\": {}}}{}",
                r.shards,
                format_float(r.build_ms, 1),
                format_float(r.run_ms, 1),
                format_float(base_run_ms / r.run_ms.max(1e-9), 2),
                r.delivered,
                r.identical,
                if i + 1 < rows.len() { "," } else { "" }
            );
        }
        println!("]");
    } else {
        let mut table = TextTable::new(
            format!(
                "Shard scaling: {} ({} endpoints), RND load {rate}, \
                 warmup {warmup} + measure {measure} cycles",
                topo.name(),
                topo.node_count(),
            ),
            &[
                "shards",
                "build[ms]",
                "run[ms]",
                "speedup",
                "delivered",
                "latency",
                "identical",
            ],
        );
        for r in &rows {
            table.push_row(vec![
                r.shards.to_string(),
                format_float(r.build_ms, 1),
                format_float(r.run_ms, 1),
                format!("{:.2}x", base_run_ms / r.run_ms.max(1e-9)),
                r.delivered.to_string(),
                format_float(r.latency, 1),
                if r.identical { "yes" } else { "NO" }.to_string(),
            ]);
        }
        table.print(args.csv);
    }

    // Minimal routing is the exact tier: any shard count must reproduce
    // the single-shard report byte for byte.
    if let Some(bad) = rows.iter().find(|r| !r.identical) {
        eprintln!(
            "repro_shard_scale: {}-shard report diverged from the single-shard run",
            bad.shards
        );
        std::process::exit(1);
    }
}
