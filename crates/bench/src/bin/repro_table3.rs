//! Reproduces Table 3: addition, product and inverse-element tables for
//! GF(9) and GF(8), plus the generator element ξ and the generator sets
//! X and X′ of §3.5.2.
//!
//! GF(9) uses the canonical first irreducible modulus (x² + 1), which is
//! exactly the field printed in the paper. The paper's GF(8) table
//! corresponds to the modulus x³ + x² + 1, which we pass explicitly.

use snoc_bench::Args;
use snoc_core::TextTable;
use snoc_field::{GeneratorSets, Gf};

fn print_field(name: &str, field: &Gf, csv: bool) {
    let names: Vec<String> = field.elements().map(|e| field.element_name(e)).collect();
    let mut header: Vec<&str> = vec!["+"];
    header.extend(names.iter().map(String::as_str));

    let mut add = TextTable::new(format!("{name}: addition"), &header);
    for (i, row) in field.addition_table().into_iter().enumerate() {
        let mut cells = vec![names[i].clone()];
        cells.extend(row);
        add.push_row(cells);
    }
    add.print(csv);

    header[0] = "x";
    let mut mul = TextTable::new(format!("{name}: product"), &header);
    for (i, row) in field.multiplication_table().into_iter().enumerate() {
        let mut cells = vec![names[i].clone()];
        cells.extend(row);
        mul.push_row(cells);
    }
    mul.print(csv);

    let mut neg = TextTable::new(format!("{name}: inverse elements"), &["e", "-e"]);
    for (e, ne) in field.negation_table() {
        neg.push_row(vec![e, ne]);
    }
    neg.print(csv);

    let sets = GeneratorSets::generate(field).expect("paper fields have generator sets");
    let fmt = |set: &[snoc_field::Elem]| {
        set.iter()
            .map(|&e| field.element_name(e))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut meta = TextTable::new(format!("{name}: generators"), &["item", "value"]);
    meta.push_row(vec![
        "xi (smallest)".into(),
        field.element_name(field.generator()),
    ]);
    meta.push_row(vec![
        "all generators".into(),
        field
            .all_generators()
            .iter()
            .map(|&g| field.element_name(g))
            .collect::<Vec<_>>()
            .join(", "),
    ]);
    meta.push_row(vec!["X".into(), fmt(sets.x())]);
    meta.push_row(vec!["X'".into(), fmt(sets.x_prime())]);
    meta.print(csv);
}

fn main() {
    let args = Args::parse();
    let f9 = Gf::new(9).expect("GF(9)");
    print_field("GF(9) [modulus x^2 + 1]", &f9, args.csv);
    let f8 = Gf::with_modulus(8, &[1, 0, 1, 1]).expect("GF(8) with x^3 + x^2 + 1");
    print_field("GF(8) [modulus x^3 + x^2 + 1]", &f8, args.csv);
}
