//! Reproduces Figure 20: preliminary adaptive-routing analysis at
//! N = 200 in simple input-queued routers (no CBR / SMART / elastic
//! links): SN with MIN / UGAL-L / UGAL-G vs. FBF with MIN / UGAL-L /
//! XY-adaptive, under uniform random and the asymmetric pattern of §6.

use snoc_bench::{load_grid, Args};
use snoc_core::{parallel_map, Series, Setup};
use snoc_sim::RoutingKind;
use snoc_traffic::TrafficPattern;

fn setups() -> Vec<(String, Setup)> {
    let sn = || Setup::paper("sn_s").expect("sn_s");
    let fbf = || Setup::paper("fbf4").expect("fbf4");
    vec![
        ("SN_MIN".to_string(), sn()),
        (
            "SN_UGAL-L".to_string(),
            sn().with_routing(RoutingKind::UgalL),
        ),
        (
            "SN_UGAL-G".to_string(),
            sn().with_routing(RoutingKind::UgalG),
        ),
        ("FBF_MIN".to_string(), fbf()),
        (
            "FBF_UGAL-L".to_string(),
            fbf().with_routing(RoutingKind::UgalL),
        ),
        (
            "FBF_XY-ADAPT".to_string(),
            fbf().with_routing(RoutingKind::XyAdaptive),
        ),
    ]
}

fn main() {
    let args = Args::parse();
    for pattern in [TrafficPattern::Random, TrafficPattern::Asymmetric] {
        let curves = parallel_map(setups(), |(name, setup)| {
            let mut series = Series::new(name);
            for p in setup.latency_load_curve(pattern, &load_grid(), args.warmup(), args.measure())
            {
                if p.saturated {
                    break;
                }
                series.push(p.load, p.latency);
            }
            series
        });
        Series::tabulate(
            format!("Fig 20 ({pattern}): adaptive routing, N=200, input-queued routers"),
            "load",
            &curves,
        )
        .print(args.csv);
    }
}
