//! Reproduces Table 2: all Slim NoC configurations with N ≤ 1300 nodes,
//! split into non-prime and prime finite fields, with the paper's
//! highlight columns (power-of-two N; equal groups per die side).

use snoc_bench::Args;
use snoc_core::TextTable;
use snoc_topology::table2_rows;

fn main() {
    let args = Args::parse();
    let rows = table2_rows(1300);
    for prime in [false, true] {
        let title = if prime {
            "Table 2 (lower half): prime finite fields"
        } else {
            "Table 2 (upper half): non-prime finite fields"
        };
        let mut table = TextTable::new(
            title,
            &[
                "k'",
                "p",
                "p_ideal",
                "sub%",
                "N",
                "N_r",
                "q",
                "pow2(N)",
                "eq.groups",
                "square(N)",
            ],
        );
        for r in rows.iter().filter(|r| r.prime_field == prime) {
            table.push_row(vec![
                r.network_radix.to_string(),
                r.concentration.to_string(),
                r.ideal_concentration.to_string(),
                format!("{}%", r.subscription_percent),
                r.network_size.to_string(),
                r.router_count.to_string(),
                r.q.to_string(),
                if r.n_power_of_two { "bold" } else { "" }.to_string(),
                if r.equal_groups_per_side { "grey" } else { "" }.to_string(),
                if r.n_perfect_square { "dark" } else { "" }.to_string(),
            ]);
        }
        table.print(args.csv);
    }
}
