//! Reproduces Figure 17: per-node area, static power and dynamic power
//! with SMART links for the large class (N = 1296) at 45 nm and 22 nm.

use snoc_bench::Args;
use snoc_core::{format_float, parallel_map, BufferPreset, Setup, TextTable};
use snoc_power::TechNode;
use snoc_traffic::TrafficPattern;

fn main() {
    let args = Args::parse();
    let names = ["fbf8", "fbf9", "pfbf9", "sn_l", "t2d9", "cm9"];
    for tech in [TechNode::N45, TechNode::N22] {
        let rows = parallel_map(names.to_vec(), |name| {
            let s = Setup::paper(name)
                .expect("config")
                .with_smart(true)
                .with_buffers(BufferPreset::EbVar);
            let r = s.evaluate_power(
                tech,
                TrafficPattern::Random,
                0.10,
                args.warmup(),
                args.measure(),
            );
            (
                name.to_string(),
                r.area.per_node_cm2(),
                r.static_power.per_node_w(),
                r.dynamic_power.per_node_w(),
            )
        });
        let mut table = TextTable::new(
            format!("Fig 17 ({tech}): per-node area/power, SMART, N=1296"),
            &[
                "network",
                "area/node [cm^2]",
                "static/node [W]",
                "dynamic/node [W]",
            ],
        );
        for (name, a, sp, dp) in rows {
            table.push_row(vec![
                name,
                format_float(a, 5),
                format_float(sp, 5),
                format_float(dp, 5),
            ]);
        }
        table.print(args.csv);
    }
}
