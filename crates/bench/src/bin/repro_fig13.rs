//! Reproduces Figure 13: synthetic-traffic performance with SMART links
//! for the large network class (N = 1296).

use snoc_bench::{large_class_setups, latency_curves, Args};
use snoc_core::{Series, TextTable};
use snoc_traffic::TrafficPattern;

fn main() {
    let args = Args::parse();
    let setups: Vec<_> = large_class_setups()
        .into_iter()
        .map(|s| s.with_smart(true))
        .collect();
    for pattern in TrafficPattern::paper_set() {
        let curves = latency_curves(&setups, pattern, &args);
        Series::tabulate(
            format!("Fig 13 ({pattern}): latency vs load, SMART, N=1296"),
            "load",
            &curves,
        )
        .print(args.csv);
        let at_low = |name: &str| -> Option<f64> {
            curves
                .iter()
                .find(|s| s.name == name)?
                .points
                .first()
                .map(|&(_, y)| y)
        };
        if let Some(sn) = at_low("sn_l") {
            let mut table = TextTable::new(
                format!("Fig 13 ({pattern}): SN latency ratio at load 0.008"),
                &["baseline", "SN/baseline"],
            );
            for base in ["cm9", "t2d9", "pfbf9", "fbf9"] {
                if let Some(b) = at_low(base) {
                    table.push_row(vec![base.to_string(), format!("{:.0}%", 100.0 * sn / b)]);
                }
            }
            table.print(args.csv);
        }
    }
}
