//! Reproduces Figure 13: synthetic-traffic performance with SMART links
//! for the large network class (N = 1296).
//!
//! Declared as a sweep campaign (setups × paper pattern set × the
//! standard load grid); `--json` emits the raw campaign result.

use snoc_bench::{figure_campaign, large_class_setups, print_class_figure, Args};
use snoc_traffic::TrafficPattern;

fn main() {
    let args = Args::parse();
    let setups: Vec<_> = large_class_setups()
        .into_iter()
        .map(|s| s.with_smart(true))
        .collect();
    let result = figure_campaign("fig13", setups, TrafficPattern::paper_set(), &args).run();
    print_class_figure(
        &result,
        "Fig 13",
        "latency vs load, SMART, N=1296",
        "sn_l",
        &["cm9", "t2d9", "pfbf9", "fbf9"],
        &args,
    );
}
