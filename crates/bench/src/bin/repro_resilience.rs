//! Extension study: link-failure resilience (static graph metrics).
//!
//! §2.1 credits MMS graphs with "high resilience to link failures
//! because the considered graphs are good expanders". This binary
//! quantifies the static half of that claim: random link failures vs.
//! connectivity, diameter and average path length, for Slim NoC against
//! the paper's baselines at the 200-node scale — reporting mean ± std
//! across seeds per failure fraction, so a lucky draw can't masquerade
//! as robustness. (The dynamic half — delivered throughput under live
//! storms — is `repro_fault_storm`.)
//!
//! `--json` emits the same study as one structured object instead of
//! tables; `--csv` renders the tables as CSV.

use snoc_bench::Args;
use snoc_core::{format_float, TextTable};
use snoc_topology::Topology;
use std::fmt::Write as _;

/// Mean and population standard deviation of a sample.
fn mean_std(values: &[f64]) -> (f64, f64) {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// One aggregated (network, fraction) cell.
struct Cell {
    network: &'static str,
    fraction: f64,
    connected: usize,
    diameter: (f64, f64),
    path: (f64, f64),
    component: (f64, f64),
}

const FRACTIONS: [f64; 4] = [0.05, 0.10, 0.20, 0.30];

fn study(seeds: &[u64]) -> Vec<Cell> {
    let nets: Vec<(&'static str, Topology)> = vec![
        ("sn_s", Topology::slim_noc(5, 4).expect("sn")),
        ("fbf4", Topology::flattened_butterfly(10, 5, 4)),
        ("pfbf4", Topology::partitioned_fbf(2, 1, 5, 5, 4)),
        ("t2d4", Topology::torus(10, 5, 4)),
        ("cm4", Topology::mesh(10, 5, 4)),
    ];
    let mut cells = Vec::new();
    for fraction in FRACTIONS {
        for (name, topo) in &nets {
            let mut connected = 0usize;
            let (mut diam, mut path, mut comp) = (Vec::new(), Vec::new(), Vec::new());
            for &seed in seeds {
                let r = topo.link_failure_report(fraction, seed);
                connected += usize::from(r.connected);
                diam.push(r.diameter as f64);
                path.push(r.average_path);
                comp.push(r.largest_component as f64);
            }
            cells.push(Cell {
                network: name,
                fraction,
                connected,
                diameter: mean_std(&diam),
                path: mean_std(&path),
                component: mean_std(&comp),
            });
        }
    }
    cells
}

fn json_report(cells: &[Cell], seeds: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\n  \"schema\": \"slim_noc-resilience-v1\",\n  \"seeds\": {seeds},\n  \"rows\": ["
    );
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"network\": \"{}\", \"fraction\": {}, \"connected\": {}, \
             \"diameter_mean\": {}, \"diameter_std\": {}, \
             \"path_mean\": {}, \"path_std\": {}, \
             \"component_mean\": {}, \"component_std\": {}}}{}",
            c.network,
            c.fraction,
            c.connected,
            format_float(c.diameter.0, 4),
            format_float(c.diameter.1, 4),
            format_float(c.path.0, 4),
            format_float(c.path.1, 4),
            format_float(c.component.0, 4),
            format_float(c.component.1, 4),
            if i + 1 < cells.len() { "," } else { "" },
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args = Args::parse();
    // Smoke runs keep the study end-to-end but shrink the seed pool.
    let seeds: Vec<u64> = if args.smoke {
        (0..2).collect()
    } else {
        (0..8).collect()
    };
    let cells = study(&seeds);
    if args.json {
        print!("{}", json_report(&cells, seeds.len()));
        return;
    }
    for fraction in FRACTIONS {
        let mut table = TextTable::new(
            format!(
                "Resilience under {:.0}% random link failures ({} seeds, mean±std)",
                fraction * 100.0,
                seeds.len()
            ),
            &[
                "network",
                "connected runs",
                "diameter",
                "avg path",
                "largest component",
            ],
        );
        for c in cells.iter().filter(|c| c.fraction == fraction) {
            table.push_row(vec![
                c.network.to_string(),
                format!("{}/{}", c.connected, seeds.len()),
                format!(
                    "{}±{}",
                    format_float(c.diameter.0, 2),
                    format_float(c.diameter.1, 2)
                ),
                format!(
                    "{}±{}",
                    format_float(c.path.0, 3),
                    format_float(c.path.1, 3)
                ),
                format!(
                    "{}±{}",
                    format_float(c.component.0, 1),
                    format_float(c.component.1, 1)
                ),
            ]);
        }
        table.print(args.csv);
    }
}
