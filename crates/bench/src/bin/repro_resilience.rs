//! Extension study: link-failure resilience.
//!
//! §2.1 credits MMS graphs with "high resilience to link failures
//! because the considered graphs are good expanders". This binary
//! quantifies that claim: random link failures vs. connectivity,
//! diameter and average path length, for Slim NoC against the paper's
//! baselines at the 200-node scale.

use snoc_bench::Args;
use snoc_core::{format_float, TextTable};
use snoc_topology::Topology;

fn main() {
    let args = Args::parse();
    let nets: Vec<(&str, Topology)> = vec![
        ("sn_s", Topology::slim_noc(5, 4).expect("sn")),
        ("fbf4", Topology::flattened_butterfly(10, 5, 4)),
        ("pfbf4", Topology::partitioned_fbf(2, 1, 5, 5, 4)),
        ("t2d4", Topology::torus(10, 5, 4)),
        ("cm4", Topology::mesh(10, 5, 4)),
    ];
    let seeds: Vec<u64> = (0..8).collect();
    for fraction in [0.05, 0.10, 0.20, 0.30] {
        let mut table = TextTable::new(
            format!(
                "Resilience under {:.0}% random link failures (8 seeds)",
                fraction * 100.0
            ),
            &[
                "network",
                "connected runs",
                "avg diameter",
                "avg path",
                "avg largest component",
            ],
        );
        for (name, topo) in &nets {
            let mut connected = 0usize;
            let mut diam = 0.0;
            let mut path = 0.0;
            let mut comp = 0.0;
            for &seed in &seeds {
                let r = topo.link_failure_report(fraction, seed);
                connected += usize::from(r.connected);
                diam += r.diameter as f64;
                path += r.average_path;
                comp += r.largest_component as f64;
            }
            let n = seeds.len() as f64;
            table.push_row(vec![
                name.to_string(),
                format!("{connected}/{}", seeds.len()),
                format_float(diam / n, 2),
                format_float(path / n, 3),
                format_float(comp / n, 1),
            ]);
        }
        table.print(args.csv);
    }
}
