//! Extension study: delivered-throughput retention under live
//! link-failure storms.
//!
//! The dynamic half of §2.1's resilience claim: each network of the
//! N ∈ {192, 200} class runs with a seeded storm severing 0/5/10/20%
//! of its links mid-run — routing self-heals around the failures,
//! severed pairs quiesce, in-flight casualties are dropped — and the
//! figure reports delivered throughput relative to each network's own
//! fault-free run. Slim NoC (an expander) should retain strictly more
//! than the mesh once ≥ 10% of links are gone; the e2e test in
//! `tests/fault_retention.rs` pins exactly that.
//!
//! Shared flags per `snoc_bench::Args`; `--json` emits the raw sweep
//! campaign JSON (degraded points carry a `dropped_packets` column).

use snoc_bench::fault_storm::{retention_rows, storm_campaign, LOAD};
use snoc_bench::Args;
use snoc_core::{format_float, TextTable};

fn main() {
    let args = Args::parse();
    let result = storm_campaign(&args).run();
    if args.json {
        print!("{}", result.to_json());
        return;
    }
    let mut table = TextTable::new(
        format!("Delivered-throughput retention under live link storms (load {LOAD})"),
        &[
            "network",
            "failed links",
            "thpt",
            "dropped pkts",
            "retention",
        ],
    );
    for row in retention_rows(&result) {
        table.push_row(vec![
            format!("{}@{:.0}%", row.network, row.fraction * 100.0),
            row.links_failed.to_string(),
            format_float(row.throughput, 4),
            row.dropped.to_string(),
            format!("{:.0}%", row.retention * 100.0),
        ]);
    }
    table.print(args.csv);
}
