//! Reproduces Figure 15: area and static power without SMART links at
//! N = 200.
//!
//! - (a) total area of the four Slim NoC layouts;
//! - (b) total area per network (fbf4, pfbf4, sn_subgr, t2d4, cm4);
//! - (c) total static power per network.

use snoc_bench::Args;
use snoc_core::{format_float, BufferPreset, Setup, TextTable};
use snoc_layout::SnLayout;
use snoc_power::TechNode;

fn main() {
    let args = Args::parse();
    let tech = TechNode::N45;

    // (a) SN layouts (RTT-sized buffers make layout quality visible).
    let mut table = TextTable::new(
        "Fig 15a: total area of SN layouts (N=200, no SMART, EB-Var)",
        &["layout", "area [cm^2]"],
    );
    for (name, l) in [
        ("sn_rand", SnLayout::Random(1)),
        ("sn_basic", SnLayout::Basic),
        ("sn_gr", SnLayout::Group),
        ("sn_subgr", SnLayout::Subgroup),
    ] {
        let s = Setup::paper("sn_s")
            .expect("sn_s")
            .with_sn_layout(l)
            .expect("layout")
            .with_buffers(BufferPreset::EbVar);
        let model = s.power_model(tech);
        let area = model.area(&s.topology, &s.layout, s.buffer_flits_per_router());
        table.push_row(vec![
            name.to_string(),
            format_float(area.total_mm2() / 100.0, 4),
        ]);
    }
    table.print(args.csv);

    // (b) + (c) per network.
    let mut table = TextTable::new(
        "Fig 15b/c: area and static power per network (N=200, no SMART)",
        &[
            "network",
            "area routers [cm^2]",
            "area wires [cm^2]",
            "area total [cm^2]",
            "static power [W]",
        ],
    );
    for name in ["fbf4", "pfbf4", "sn_s", "t2d4", "cm4"] {
        let s = Setup::paper(name)
            .expect("config")
            .with_buffers(BufferPreset::EbVar);
        let model = s.power_model(tech);
        let area = model.area(&s.topology, &s.layout, s.buffer_flits_per_router());
        let stat = model.static_power(&s.topology, &s.layout, &area);
        table.push_row(vec![
            s.name.clone(),
            format_float(area.routers_mm2() / 100.0, 4),
            format_float(area.wires_mm2() / 100.0, 4),
            format_float(area.total_mm2() / 100.0, 4),
            format_float(stat.total_w(), 3),
        ]);
    }
    table.print(args.csv);
}
