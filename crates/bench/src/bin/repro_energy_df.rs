//! Energy-efficiency sweep of the Dragonfly baseline (df3, the
//! N = 342 balanced Dragonfly — the size nearest the N ∈ {192, 200}
//! class): a power-aware campaign whose dynamic power is driven by the
//! activity factors the simulator measured. Emits the
//! `slim_noc-sweep-v2` JSON with `--json`.

use snoc_bench::{energy_campaign, print_energy_figure, Args};
use snoc_core::Setup;

fn main() {
    let args = Args::parse();
    let setups = vec![Setup::paper("df3").expect("paper config")];
    let result = energy_campaign("energy_df", setups, &args).run();
    print_energy_figure(&result, "Energy: dragonfly (df3)", "df3", &args);
}
