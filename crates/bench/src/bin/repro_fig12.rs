//! Reproduces Figure 12: synthetic-traffic performance with SMART links
//! for the small network class (N ∈ {192, 200}) across all topologies,
//! with the paper's latency-ratio annotations at load 0.008.
//!
//! Declared as a sweep campaign (setups × paper pattern set × the
//! standard load grid); `--json` emits the raw campaign result.

use snoc_bench::{figure_campaign, print_class_figure, small_class_setups, Args};
use snoc_traffic::TrafficPattern;

fn main() {
    let args = Args::parse();
    let setups: Vec<_> = small_class_setups()
        .into_iter()
        .map(|s| s.with_smart(true))
        .collect();
    let result = figure_campaign("fig12", setups, TrafficPattern::paper_set(), &args).run();
    print_class_figure(
        &result,
        "Fig 12",
        "latency vs load, SMART, N in {192,200}",
        "sn_s",
        &["cm3", "t2d3", "pfbf3", "pfbf4", "fbf3"],
        &args,
    );
}
