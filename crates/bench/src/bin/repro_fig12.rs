//! Reproduces Figure 12: synthetic-traffic performance with SMART links
//! for the small network class (N ∈ {192, 200}) across all topologies,
//! with the paper's latency-ratio annotations at load 0.008.

use snoc_bench::{latency_curves, small_class_setups, Args};
use snoc_core::{Series, TextTable};
use snoc_traffic::TrafficPattern;

fn main() {
    let args = Args::parse();
    let setups: Vec<_> = small_class_setups()
        .into_iter()
        .map(|s| s.with_smart(true))
        .collect();
    for pattern in TrafficPattern::paper_set() {
        let curves = latency_curves(&setups, pattern, &args);
        Series::tabulate(
            format!("Fig 12 ({pattern}): latency vs load, SMART, N in {{192,200}}"),
            "load",
            &curves,
        )
        .print(args.csv);
        // Ratio annotations: SN latency / baseline latency at 0.008.
        let at_low = |name: &str| -> Option<f64> {
            curves
                .iter()
                .find(|s| s.name == name)?
                .points
                .first()
                .map(|&(_, y)| y)
        };
        if let Some(sn) = at_low("sn_s") {
            let mut table = TextTable::new(
                format!("Fig 12 ({pattern}): SN latency ratio at load 0.008"),
                &["baseline", "SN/baseline"],
            );
            for base in ["cm3", "t2d3", "pfbf3", "pfbf4", "fbf3"] {
                if let Some(b) = at_low(base) {
                    table.push_row(vec![base.to_string(), format!("{:.0}%", 100.0 * sn / b)]);
                }
            }
            table.print(args.csv);
        }
    }
}
