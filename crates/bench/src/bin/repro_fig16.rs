//! Reproduces Figure 16: per-node area, static power and dynamic power
//! with SMART links for the small class (N ∈ {192, 200}) at 45 nm and
//! 22 nm.

use snoc_bench::Args;
use snoc_core::{format_float, parallel_map, BufferPreset, Setup, TextTable};
use snoc_power::TechNode;
use snoc_traffic::TrafficPattern;

fn main() {
    let args = Args::parse();
    let names = ["fbf3", "fbf4", "pfbf3", "sn_s", "t2d4", "cm4"];
    for tech in [TechNode::N45, TechNode::N22] {
        let rows = parallel_map(names.to_vec(), |name| {
            let s = Setup::paper(name)
                .expect("config")
                .with_smart(true)
                .with_buffers(BufferPreset::EbVar);
            let r = s.evaluate_power(
                tech,
                TrafficPattern::Random,
                0.10,
                args.warmup(),
                args.measure(),
            );
            (
                name.to_string(),
                r.area.per_node_cm2(),
                r.static_power.per_node_w(),
                r.dynamic_power.per_node_w(),
            )
        });
        let mut table = TextTable::new(
            format!("Fig 16 ({tech}): per-node area/power, SMART, N in {{192,200}}"),
            &[
                "network",
                "area/node [cm^2]",
                "static/node [W]",
                "dynamic/node [W]",
            ],
        );
        for (name, a, sp, dp) in rows {
            table.push_row(vec![
                name,
                format_float(a, 5),
                format_float(sp, 5),
                format_float(dp, 5),
            ]);
        }
        table.print(args.csv);
    }
}
