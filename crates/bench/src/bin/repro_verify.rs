//! Differential verification driver: runs the optimized
//! event-accelerated simulator and the golden reference model
//! (`snoc_refsim`) over a deterministic matrix of topology × routing ×
//! pattern × rate, checks conservation laws and cross-engine agreement
//! on every case, and exits non-zero on the first class of divergence.
//!
//! Three check tiers per case (see `crates/refsim/tests/differential.rs`
//! for the fuzzed version of the same contract):
//!
//! - `conserve` — each engine's snapshot satisfies the activity-counter
//!   conservation laws;
//! - `stats` — injected/delivered counts within binomial tolerance,
//!   mean hops/latency within relative tolerance (skipped below a
//!   minimum sample, e.g. in `--smoke` windows);
//! - `exact` — workload-driven minimal-routing cases must produce
//!   byte-identical snapshots.
//!
//! A shard-equivalence block then holds the sharded parallel engine to
//! the monolithic engine over the same matrix: exact byte identity for
//! deterministic routing at 2 and 4 shards, the statistical tier for
//! UGAL-L (whose shards re-seed independently).
//!
//! A degraded-mode block reruns each topology's workload under a seeded
//! mid-run link storm, holding both engines to byte-exact agreement —
//! including the dropped-packet accounting and self-healed routing.
//!
//! A deadlock-freedom tier closes the run: fuzzed fault scenarios
//! (seeded link storms, downed routers) across the topology pool, each
//! survivor graph's up*/down* repair table run through the
//! channel-dependency-graph cycle checker at 1 VC and at the family's
//! configured VC count, plus a rebuild-determinism check. Any cycle or
//! nondeterministic rebuild fails the run. The storm rows above also
//! fail on a no-progress watchdog abort, so a wedged drain phase is a
//! first-class divergence, not a silent truncation.
//!
//! `--smoke` shrinks windows to prove the pipeline end-to-end; `--json`
//! emits one JSON object per case instead of the table.

use snoc_bench::Args;
use snoc_core::{format_float, TextTable};
use snoc_refsim::check::{compare_statistics, workload};
use snoc_refsim::{RefConfig, RefSimulator};
use snoc_sim::{
    verify_deadlock_free, Conformance, FaultKind, FaultPlan, RoutingKind, RoutingTable,
    ShardedSimulator, SimConfig, Simulator, Snapshot,
};
use snoc_topology::{RouterId, Topology};
use snoc_traffic::TrafficPattern;

/// One differential case of the matrix.
struct Case {
    topo: Topology,
    vcs: usize,
    routing: RoutingKind,
    pattern: TrafficPattern,
    rate: f64,
    exact: bool,
}

/// One evaluated row.
struct Outcome {
    label: String,
    optimized: Snapshot,
    reference: Snapshot,
    verdict: Result<&'static str, String>,
}

fn topologies() -> Vec<(Topology, usize)> {
    vec![
        (Topology::slim_noc(3, 3).unwrap(), 2),
        (Topology::mesh(4, 3, 2), 2),
        (Topology::torus(4, 4, 2), 2),
        (Topology::dragonfly(2), 4),
        (Topology::flattened_butterfly(3, 3, 2), 2),
    ]
}

fn matrix(args: &Args) -> Vec<Case> {
    let rates: &[f64] = if args.smoke {
        &[0.05]
    } else if args.quick {
        &[0.03, 0.10]
    } else {
        &[0.03, 0.08, 0.15]
    };
    let patterns = [
        TrafficPattern::Random,
        TrafficPattern::BitShuffle,
        TrafficPattern::Adversarial1,
        TrafficPattern::BitReversal,
    ];
    let mut cases = Vec::new();
    for (topo, vcs) in topologies() {
        for &pattern in &patterns {
            for &rate in rates {
                cases.push(Case {
                    topo: topo.clone(),
                    vcs,
                    routing: RoutingKind::Minimal,
                    pattern,
                    rate,
                    exact: false,
                });
            }
        }
        // One workload-driven exact-equality case per topology.
        cases.push(Case {
            topo: topo.clone(),
            vcs,
            routing: RoutingKind::Minimal,
            pattern: TrafficPattern::Random,
            rate: rates[0],
            exact: true,
        });
    }
    // Adaptive routing on the diameter-2 Slim NoC (4 VCs cover the
    // longest Valiant detour).
    let sn = Topology::slim_noc(3, 3).unwrap();
    for routing in [RoutingKind::UgalL, RoutingKind::UgalG] {
        cases.push(Case {
            topo: sn.clone(),
            vcs: 4,
            routing,
            pattern: TrafficPattern::Adversarial1,
            rate: rates[0],
            exact: false,
        });
    }
    cases
}

fn run_case(case: &Case, args: &Args) -> Outcome {
    let sim_cfg = SimConfig::default()
        .with_vcs(case.vcs)
        .with_routing(case.routing)
        .with_seed(0xBEEF);
    let ref_cfg = RefConfig::try_from_sim(&sim_cfg)
        .expect("matrix uses edge/credited configs")
        .with_seed(0xBEEF ^ 0x5EED_5EED);
    let mut sim = Simulator::build(&case.topo, &sim_cfg).expect("sim builds");
    let mut rsim = RefSimulator::build(&case.topo, &ref_cfg).expect("refsim builds");
    let (optimized, reference, mode) = if case.exact {
        let trace = workload(
            &case.topo,
            case.pattern,
            case.rate,
            args.trace_cycles(),
            0xD1FF,
        );
        let warmup = args.trace_cycles() / 4;
        (
            sim.run_trace(&trace, warmup).snapshot(),
            rsim.run_workload(&trace, warmup),
            "exact",
        )
    } else {
        (
            sim.run_synthetic(case.pattern, case.rate, args.warmup(), args.measure())
                .snapshot(),
            rsim.run_synthetic(case.pattern, case.rate, args.warmup(), args.measure()),
            "stats",
        )
    };
    let label = format!(
        "{} {} {:?} {}{}",
        case.topo.name(),
        case.pattern,
        case.routing,
        format_float(case.rate, 2),
        if case.exact { " [exact]" } else { "" },
    );
    let verdict = evaluate(&optimized, &reference, mode);
    Outcome {
        label,
        optimized,
        reference,
        verdict,
    }
}

/// Shard-equivalence rows: the sharded parallel engine against the
/// monolithic engine on the same seed, across the full topology pool.
/// Deterministic routing is the exact tier — byte identity at any
/// shard count; UGAL-L derives per-shard seeds, so it is held to the
/// same statistical contract as the reference model instead.
fn shard_outcomes(args: &Args) -> Vec<Outcome> {
    let rate = 0.05;
    let mut outcomes = Vec::new();
    for (topo, vcs) in topologies() {
        let cfg = SimConfig::default().with_vcs(vcs).with_seed(0xBEEF);
        let mut mono = Simulator::build(&topo, &cfg).expect("sim builds");
        let reference = mono
            .run_synthetic(TrafficPattern::Random, rate, args.warmup(), args.measure())
            .snapshot();
        for shards in [2usize, 4] {
            let mut sim = ShardedSimulator::build(&topo, &cfg, shards).expect("sharded builds");
            let optimized = sim
                .run_synthetic(TrafficPattern::Random, rate, args.warmup(), args.measure())
                .snapshot();
            let label = format!(
                "{} Random Minimal {} [{}sh exact]",
                topo.name(),
                format_float(rate, 2),
                sim.shard_count(),
            );
            let verdict = evaluate(&optimized, &reference, "exact");
            outcomes.push(Outcome {
                label,
                optimized,
                reference: reference.clone(),
                verdict,
            });
        }
    }
    // Locally-adaptive routing: stall-history gating makes lockstep RNG
    // replication impossible, so shards re-seed independently and the
    // agreement tier is statistical.
    let topo = Topology::slim_noc(3, 3).unwrap();
    let cfg = SimConfig::default()
        .with_vcs(4)
        .with_routing(RoutingKind::UgalL)
        .with_seed(0xBEEF);
    let mut mono = Simulator::build(&topo, &cfg).expect("sim builds");
    let reference = mono
        .run_synthetic(
            TrafficPattern::Adversarial1,
            rate,
            args.warmup(),
            args.measure(),
        )
        .snapshot();
    let mut sim = ShardedSimulator::build(&topo, &cfg, 4).expect("sharded builds");
    let optimized = sim
        .run_synthetic(
            TrafficPattern::Adversarial1,
            rate,
            args.warmup(),
            args.measure(),
        )
        .snapshot();
    let verdict = evaluate(&optimized, &reference, "stats");
    outcomes.push(Outcome {
        label: format!(
            "{} ADV1 UgalL {} [4sh stats]",
            topo.name(),
            format_float(rate, 2)
        ),
        optimized,
        reference,
        verdict,
    });
    outcomes
}

/// Degraded-mode rows: both engines run the same workload under the
/// same seeded mid-run link storm, per topology. The verdict tier is
/// exact — byte-identical snapshots including drop accounting — so a
/// divergence in fault repair (doomed-packet selection, credit
/// recounts, degraded routing) fails loudly here, not just in the
/// fuzzed differential suite.
fn fault_outcomes(args: &Args) -> Vec<Outcome> {
    let cycles = args.trace_cycles();
    let mut outcomes = Vec::new();
    for (topo, vcs) in topologies() {
        let plan = FaultPlan::storm(&topo, 4, cycles / 3, cycles / 3, 0xFA17);
        let sim_cfg = SimConfig::default().with_vcs(vcs).with_seed(0xBEEF);
        let ref_cfg = RefConfig::try_from_sim(&sim_cfg)
            .expect("matrix uses edge/credited configs")
            .with_seed(0xBEEF ^ 0x5EED_5EED);
        let mut sim = Simulator::build(&topo, &sim_cfg).expect("sim builds");
        sim.set_fault_plan(&plan).expect("minimal routing");
        let mut rsim = RefSimulator::build(&topo, &ref_cfg).expect("refsim builds");
        rsim.set_fault_plan(&plan).expect("minimal routing");
        let trace = workload(&topo, TrafficPattern::Random, 0.05, cycles, 0xD1FF);
        let warmup = cycles / 4;
        let report = sim.run_trace(&trace, warmup);
        let deadlock = report.deadlock.clone();
        let optimized = report.snapshot();
        let reference = rsim.run_workload(&trace, warmup);
        // A watchdog abort under the storm is a routing-liveness bug in
        // its own right, even if both engines abort identically.
        let verdict = match deadlock {
            Some(d) => Err(format!("watchdog abort under storm: {d}")),
            None => evaluate(&optimized, &reference, "exact"),
        };
        outcomes.push(Outcome {
            label: format!("{} Random Minimal 0.05 [storm exact]", topo.name()),
            optimized,
            reference,
            verdict,
        });
    }
    outcomes
}

/// A probe flit bound for `dst`'s router, for exercising
/// [`RoutingTable::route`] outside a simulator.
fn probe_flit(dst: RouterId) -> snoc_sim::Flit {
    snoc_sim::Flit::packet(
        snoc_sim::PacketId(0),
        snoc_topology::NodeId(0),
        snoc_topology::NodeId(dst.index()),
        dst,
        1,
        0,
        true,
        false,
    )[0]
}

/// Deadlock-freedom tier: fuzzes seeded fault scenarios (link storms
/// plus, on odd seeds, one downed router) across the topology pool,
/// builds the up*/down* repair table for each survivor graph, and runs
/// the channel-dependency-graph cycle checker at 1 VC and at the
/// family's configured VC count. 1 VC is the adversarial setting: a
/// table that leans on VC transitions for cycle breaking fails there.
/// Each table is also rebuilt from scratch and held to decision-level
/// determinism, since both engines must derive identical tables
/// independently for the exact differential tiers to hold.
///
/// Returns `(tables_checked, failures)`.
fn cdg_failures(args: &Args) -> (usize, Vec<String>) {
    let mut pool = topologies();
    // The irregular 2-column Slim NoC is absent from the differential
    // matrix (too small for stable statistics) but is the family whose
    // minimal tables deadlock soonest; keep it in the CDG sweep.
    pool.push((Topology::slim_noc(3, 2).unwrap(), 2));
    let seeds: u64 = if args.smoke || args.quick { 8 } else { 64 };
    let mut checked = 0usize;
    let mut failures = Vec::new();
    for (topo, vcs) in &pool {
        let nr = topo.router_count();
        for seed in 0..seeds {
            let storm_links = 1 + (seed as usize) % 6;
            let plan = FaultPlan::storm(topo, storm_links, 0, 100, 0xCD6 ^ (seed * 7919));
            let mut dead_links: Vec<(usize, usize)> = Vec::new();
            for event in plan.events() {
                if let FaultKind::LinkDown { a, b } = event.kind {
                    dead_links.push((a.index(), b.index()));
                }
            }
            let mut alive = vec![true; nr];
            if seed % 2 == 1 {
                alive[(seed as usize * 131) % nr] = false;
            }
            let link_alive = |a: RouterId, b: RouterId| {
                let key = (a.index().min(b.index()), a.index().max(b.index()));
                !dead_links.contains(&key)
            };
            let table = RoutingTable::degraded(topo, &alive, link_alive);
            checked += 1;
            let label = format!("{} seed {seed}", topo.name());
            for check_vcs in [1usize, *vcs] {
                if let Err(e) = verify_deadlock_free(&table, topo, check_vcs) {
                    failures.push(format!("{label} vcs {check_vcs}: {e}"));
                }
            }
            // Rebuild determinism: identical distances and identical
            // first-hop decisions for every reachable pair.
            let rebuilt = RoutingTable::degraded(topo, &alive, link_alive);
            'pairs: for s in 0..nr {
                for d in 0..nr {
                    let (src, dst) = (RouterId(s), RouterId(d));
                    if table.distance(src, dst) != rebuilt.distance(src, dst) {
                        failures.push(format!("{label}: rebuild changed distance {s}->{d}"));
                        break 'pairs;
                    }
                    if s == d || !alive[s] || !alive[d] || !table.reachable(src, dst) {
                        continue;
                    }
                    let flit = probe_flit(dst);
                    let (a, b) = (
                        table.route(src, &flit, 0, *vcs),
                        rebuilt.route(src, &flit, 0, *vcs),
                    );
                    if a != b {
                        failures.push(format!("{label}: rebuild changed route {s}->{d}"));
                        break 'pairs;
                    }
                }
            }
        }
    }
    (checked, failures)
}

fn evaluate(
    optimized: &Snapshot,
    reference: &Snapshot,
    mode: &str,
) -> Result<&'static str, String> {
    optimized
        .check_conservation()
        .map_err(|e| format!("optimized conservation: {e}"))?;
    reference
        .check_conservation()
        .map_err(|e| format!("reference conservation: {e}"))?;
    if mode == "exact" {
        if optimized != reference {
            return Err("exact-mode snapshots diverged".to_string());
        }
        return Ok("exact match");
    }
    // The agreement tier is the shared contract in `snoc_refsim::check`
    // — the same one the fuzzed differential suite enforces.
    compare_statistics(optimized, reference, 50)
}

fn main() {
    let args = Args::parse();
    let cases = matrix(&args);
    let mut outcomes: Vec<Outcome> = cases.iter().map(|c| run_case(c, &args)).collect();
    outcomes.extend(shard_outcomes(&args));
    outcomes.extend(fault_outcomes(&args));
    let failures: Vec<&Outcome> = outcomes.iter().filter(|o| o.verdict.is_err()).collect();
    let (cdg_checked, cdg_failures) = cdg_failures(&args);

    if args.json {
        println!("[");
        for (i, o) in outcomes.iter().enumerate() {
            let (ok, detail) = match &o.verdict {
                Ok(d) => (true, (*d).to_string()),
                Err(e) => (false, e.clone()),
            };
            println!(
                "  {{\"case\": \"{}\", \"pass\": {ok}, \"detail\": \"{}\", \
                 \"injected\": [{}, {}], \"delivered\": [{}, {}], \
                 \"latency\": [{}, {}]}}{}",
                o.label,
                detail.replace('"', "'"),
                o.optimized.injected_packets,
                o.reference.injected_packets,
                o.optimized.delivered_packets,
                o.reference.delivered_packets,
                format_float(o.optimized.mean_latency(), 2),
                format_float(o.reference.mean_latency(), 2),
                if i + 1 < outcomes.len() { "," } else { "" }
            );
        }
        println!("]");
    } else {
        let mut table = TextTable::new(
            "Differential verification: optimized engine vs. golden reference".to_string(),
            &[
                "case",
                "inj(opt)",
                "inj(ref)",
                "del(opt)",
                "del(ref)",
                "lat(opt)",
                "lat(ref)",
                "hops(opt)",
                "hops(ref)",
                "verdict",
            ],
        );
        for o in &outcomes {
            table.push_row(vec![
                o.label.clone(),
                o.optimized.injected_packets.to_string(),
                o.reference.injected_packets.to_string(),
                o.optimized.delivered_packets.to_string(),
                o.reference.delivered_packets.to_string(),
                format_float(o.optimized.mean_latency(), 1),
                format_float(o.reference.mean_latency(), 1),
                format_float(o.optimized.mean_hops(), 2),
                format_float(o.reference.mean_hops(), 2),
                match &o.verdict {
                    Ok(d) => (*d).to_string(),
                    Err(e) => format!("FAIL: {e}"),
                },
            ]);
        }
        table.print(args.csv);
        println!(
            "deadlock freedom: {cdg_checked} degraded tables CDG-checked, {} cycle(s) found",
            cdg_failures.len()
        );
    }
    if !failures.is_empty() || !cdg_failures.is_empty() {
        eprintln!(
            "repro_verify: {} of {} cases failed, {} deadlock-freedom violations:",
            failures.len(),
            outcomes.len(),
            cdg_failures.len()
        );
        for o in &failures {
            eprintln!("  REPRO {}: {}", o.label, o.verdict.as_ref().unwrap_err());
        }
        for f in &cdg_failures {
            eprintln!("  REPRO cdg {f}");
        }
        std::process::exit(1);
    }
}
