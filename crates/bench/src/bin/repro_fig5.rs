//! Reproduces Figure 5: layout cost analysis over the Slim NoC
//! configuration space.
//!
//! - (a) average wire length `M` vs. N for the four layouts;
//! - (b) per-router total buffer size without SMART (+ CBR-20/40 lines);
//! - (c) the same with SMART links;
//! - (d) maximum wire crossings `W` vs. the 22 nm technology bound.

use snoc_bench::Args;
use snoc_core::{Series, TextTable};
use snoc_layout::{
    max_wires_per_tile, per_router_central_buffers, BufferModel, BufferSpec, Layout, SnLayout,
    TechNode,
};
use snoc_topology::Topology;

fn layouts() -> Vec<(&'static str, SnLayout)> {
    vec![
        ("sn_rand", SnLayout::Random(1)),
        ("sn_basic", SnLayout::Basic),
        ("sn_gr", SnLayout::Group),
        ("sn_subgr", SnLayout::Subgroup),
    ]
}

fn main() {
    let args = Args::parse();
    let qs = [3usize, 4, 5, 7, 8, 9, 11];

    // (a) Average wire length M.
    let mut m_series: Vec<Series> = layouts().iter().map(|(n, _)| Series::new(*n)).collect();
    for &q in &qs {
        let p = (3 * q).div_ceil(4);
        let t = Topology::slim_noc(q, p).expect("sn");
        if t.node_count() > 2000 {
            continue;
        }
        for (i, (_, kind)) in layouts().into_iter().enumerate() {
            let l = Layout::slim_noc(&t, kind).expect("layout");
            m_series[i].push(t.node_count() as f64, l.average_wire_length(&t));
        }
    }
    Series::tabulate("Fig 5a: average wire length M [hops]", "N", &m_series).print(args.csv);

    // (b)+(c) Per-router buffer totals.
    for (title, spec) in [
        (
            "Fig 5b: buffer flits per router (no SMART)",
            BufferSpec::standard(),
        ),
        (
            "Fig 5c: buffer flits per router (SMART, H=9)",
            BufferSpec::smart(),
        ),
    ] {
        let mut series: Vec<Series> = layouts().iter().map(|(n, _)| Series::new(*n)).collect();
        let mut cbr20 = Series::new("CBR20");
        let mut cbr40 = Series::new("CBR40");
        for &q in &qs {
            let p = (3 * q).div_ceil(4);
            let t = Topology::slim_noc(q, p).expect("sn");
            if t.node_count() > 2000 {
                continue;
            }
            for (i, (_, kind)) in layouts().into_iter().enumerate() {
                let l = Layout::slim_noc(&t, kind).expect("layout");
                let model = BufferModel::edge_buffers(&t, &l, spec);
                series[i].push(t.node_count() as f64, model.average_per_router());
            }
            cbr20.push(
                t.node_count() as f64,
                per_router_central_buffers(&t, 20, spec.vcs) as f64,
            );
            cbr40.push(
                t.node_count() as f64,
                per_router_central_buffers(&t, 40, spec.vcs) as f64,
            );
        }
        series.push(cbr20);
        series.push(cbr40);
        Series::tabulate(title, "N", &series).print(args.csv);
    }

    // (d) Max wire crossings vs. the 22nm bound.
    let mut table = TextTable::new(
        "Fig 5d: max wires over one tile vs the technology bound",
        &["N", "layout", "max W", "bound(22nm)", "ok"],
    );
    for &q in &qs {
        let p = (3 * q).div_ceil(4);
        let t = Topology::slim_noc(q, p).expect("sn");
        if t.node_count() > 2500 {
            continue;
        }
        let bound = max_wires_per_tile(TechNode::N22, p);
        for (name, kind) in layouts() {
            let l = Layout::slim_noc(&t, kind).expect("layout");
            let stats = l.wire_stats(&t);
            table.push_row(vec![
                t.node_count().to_string(),
                name.to_string(),
                stats.max_crossings.to_string(),
                bound.to_string(),
                if stats.satisfies_limit(bound) {
                    "yes"
                } else {
                    "VIOLATED"
                }
                .to_string(),
            ]);
        }
    }
    table.print(args.csv);
}
