//! Reproduces Figure 3: the cost of using Slim Fly and Dragonfly
//! *straightforwardly* as NoCs.
//!
//! - (a) average wire length (hops) vs. core count for SF (naive basic
//!   layout), DF, FBF (fixed radix and full bandwidth) and T2D;
//! - (b) area per node at N ≈ 200 for FBF, PFBF, T2D, CM, SF, DF;
//! - (c) static power per node for the same set.

use snoc_bench::Args;
use snoc_core::{format_float, Series, TextTable};
use snoc_layout::{BufferModel, BufferSpec, Layout, SnLayout};
use snoc_power::{PowerModel, TechNode};
use snoc_topology::Topology;

fn main() {
    let args = Args::parse();

    // (a) Average wire length vs. core count.
    let mut sf = Series::new("slim-fly (naive)");
    for q in [3usize, 5, 7, 8, 9, 11, 13] {
        let p = (3 * q).div_ceil(4); // near-ideal concentration
        let t = Topology::slim_noc(q, p).expect("slim noc");
        let l = Layout::slim_noc(&t, SnLayout::Basic).expect("basic layout");
        if t.node_count() <= 2500 {
            sf.push(t.node_count() as f64, l.average_wire_length(&t));
        }
    }
    let mut df = Series::new("dragonfly");
    for h in [1usize, 2, 3, 4] {
        let t = Topology::dragonfly(h);
        let l = Layout::natural(&t);
        if t.node_count() <= 2500 {
            df.push(t.node_count() as f64, l.average_wire_length(&t));
        }
    }
    let mut fbf_full = Series::new("fbf (full bandwidth)");
    let mut t2d = Series::new("t2d");
    for side in [6usize, 8, 10, 12, 14, 16] {
        let p = 4;
        let fb = Topology::flattened_butterfly(side, side, p);
        let to = Topology::torus(side, side, p);
        if fb.node_count() <= 2500 {
            fbf_full.push(
                fb.node_count() as f64,
                Layout::natural(&fb).average_wire_length(&fb),
            );
            t2d.push(
                to.node_count() as f64,
                Layout::natural(&to).average_wire_length(&to),
            );
        }
    }
    let mut fbf_fixed = Series::new("fbf (fixed radix)");
    for (side, p) in [
        (4usize, 4usize),
        (4, 8),
        (4, 16),
        (4, 32),
        (4, 64),
        (4, 128),
    ] {
        let t = Topology::flattened_butterfly(side, side, p);
        if t.node_count() <= 2500 {
            fbf_fixed.push(
                t.node_count() as f64,
                Layout::natural(&t).average_wire_length(&t),
            );
        }
    }
    Series::tabulate(
        "Fig 3a: average wire length [tile hops] vs cores",
        "N",
        &[sf, df, fbf_fixed, fbf_full, t2d],
    )
    .print(args.csv);

    // (b) + (c): area and static power per node at N ≈ 200.
    let model = PowerModel::new(TechNode::N45);
    let spec = BufferSpec::standard();
    let nets: Vec<(&str, Topology, Layout)> = vec![
        {
            let t = Topology::flattened_butterfly(10, 5, 4);
            let l = Layout::natural(&t);
            ("FBF", t, l)
        },
        {
            let t = Topology::partitioned_fbf(2, 1, 5, 5, 4);
            let l = Layout::natural(&t);
            ("PFBF", t, l)
        },
        {
            let t = Topology::torus(10, 5, 4);
            let l = Layout::natural(&t);
            ("T2D", t, l)
        },
        {
            let t = Topology::mesh(10, 5, 4);
            let l = Layout::natural(&t);
            ("CM", t, l)
        },
        {
            // Naive Slim Fly: basic layout, RTT-sized buffers.
            let t = Topology::slim_noc(5, 4).expect("sn");
            let l = Layout::slim_noc(&t, SnLayout::Basic).expect("layout");
            ("SF", t, l)
        },
        {
            let t = Topology::dragonfly(3); // 342 nodes, nearest DF size
            let l = Layout::natural(&t);
            ("DF", t, l)
        },
    ];
    let mut table = TextTable::new(
        "Fig 3b/3c: naive off-chip topologies on-chip (≈200 cores, 45nm)",
        &["network", "N", "area/node [cm^2]", "static power/node [W]"],
    );
    for (name, t, l) in &nets {
        let flits = BufferModel::edge_buffers(t, l, spec).average_per_router() as usize;
        let area = model.area(t, l, flits);
        let stat = model.static_power(t, l, &area);
        table.push_row(vec![
            name.to_string(),
            t.node_count().to_string(),
            format_float(area.per_node_cm2(), 5),
            format_float(stat.per_node_w(), 5),
        ]);
    }
    table.print(args.csv);
}
