//! Ablation study of Slim NoC's design ingredients (the DESIGN.md
//! ablation index): starting from the naive design (basic layout, small
//! edge buffers, no SMART) and adding one mechanism at a time —
//! layout → RTT-sized buffers → SMART links → central-buffer routers —
//! measuring latency, saturation throughput, buffer area and
//! throughput/power at each step.

use snoc_bench::Args;
use snoc_core::{format_float, BufferPreset, Setup, TextTable};
use snoc_layout::SnLayout;
use snoc_power::TechNode;
use snoc_traffic::TrafficPattern;

struct Step {
    name: &'static str,
    layout: SnLayout,
    buffers: BufferPreset,
    smart: bool,
}

fn main() {
    let args = Args::parse();
    let steps = [
        Step {
            name: "naive (basic, EB-Small)",
            layout: SnLayout::Basic,
            buffers: BufferPreset::EbSmall,
            smart: false,
        },
        Step {
            name: "+ subgroup layout",
            layout: SnLayout::Subgroup,
            buffers: BufferPreset::EbSmall,
            smart: false,
        },
        Step {
            name: "+ RTT-sized buffers",
            layout: SnLayout::Subgroup,
            buffers: BufferPreset::EbVar,
            smart: false,
        },
        Step {
            name: "+ SMART links",
            layout: SnLayout::Subgroup,
            buffers: BufferPreset::EbVar,
            smart: true,
        },
        Step {
            name: "+ CBR-20 (full design)",
            layout: SnLayout::Subgroup,
            buffers: BufferPreset::Cbr(20),
            smart: true,
        },
    ];
    let mut table = TextTable::new(
        "Ablation: Slim NoC design ingredients (SN-S, RND)",
        &[
            "configuration",
            "latency @0.05",
            "sat thpt",
            "buf flits/rtr",
            "thpt/power [flits/J]",
        ],
    );
    for step in &steps {
        let setup = Setup::paper("sn_s")
            .expect("sn_s")
            .with_sn_layout(step.layout)
            .expect("layout")
            .with_buffers(step.buffers)
            .with_smart(step.smart);
        let lat = setup
            .run_load(TrafficPattern::Random, 0.05, args.warmup(), args.measure())
            .avg_packet_latency();
        let sat = setup.saturation_throughput(
            TrafficPattern::Random,
            args.warmup() / 2,
            args.measure() / 2,
        );
        let tpp = setup
            .evaluate_power(
                TechNode::N45,
                TrafficPattern::Random,
                0.2,
                args.warmup(),
                args.measure(),
            )
            .throughput_per_power();
        table.push_row(vec![
            step.name.to_string(),
            format_float(lat, 2),
            format_float(sat, 3),
            setup.buffer_flits_per_router().to_string(),
            format_float(tpp, 3),
        ]);
    }
    table.print(args.csv);
}
