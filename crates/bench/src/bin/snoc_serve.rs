//! Long-running campaign server: accepts `slim_noc-spec-v1` specs over
//! HTTP and streams simulated points back as JSONL, sharing one warm
//! content-addressed cache across all clients.

use snoc_bench::serve::Server;
use std::process::ExitCode;

const USAGE: &str = "usage: snoc_serve [--addr HOST:PORT] [--cache-dir DIR] [--threads N]";

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7077".to_string();
    let mut cache_dir: Option<String> = None;
    let mut threads = 0usize;
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        let (flag, mut inline) = match a.split_once('=') {
            Some((f, v)) => (f.to_string(), Some(v.to_string())),
            None => (a, None),
        };
        let mut next_value = || inline.take().or_else(|| raw.next());
        match flag.as_str() {
            "--addr" => match next_value() {
                Some(v) => addr = v,
                None => return fail("--addr needs a value"),
            },
            "--cache-dir" => match next_value() {
                Some(v) => cache_dir = Some(v),
                None => return fail("--cache-dir needs a value"),
            },
            "--threads" => match next_value().and_then(|v| v.parse().ok()) {
                Some(v) => threads = v,
                None => return fail("--threads needs a number"),
            },
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown flag `{other}`")),
        }
    }
    let server = match Server::bind(&addr, cache_dir.as_deref(), threads) {
        Ok(s) => s,
        Err(e) => return fail(&format!("bind {addr}: {e}")),
    };
    match server.local_addr() {
        Ok(bound) => eprintln!("snoc_serve: listening on {bound}"),
        Err(_) => eprintln!("snoc_serve: listening on {addr}"),
    }
    if let Some(dir) = &cache_dir {
        eprintln!("snoc_serve: shared cache at {dir}");
    }
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&format!("serve: {e}")),
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("snoc_serve: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}
