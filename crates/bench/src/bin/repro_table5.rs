//! Reproduces Table 5: Slim NoC's relative throughput-per-power gains
//! over every other topology under random traffic, at 45 nm and 22 nm,
//! for both size classes.
//!
//! Each network runs near its own saturating load (the paper divides
//! delivered flits per cycle by the power consumed during delivery).

use snoc_bench::Args;
use snoc_core::{parallel_map, BufferPreset, Setup, TextTable};
use snoc_power::TechNode;
use snoc_traffic::TrafficPattern;

fn tpp(s: &Setup, tech: TechNode, args: &Args) -> f64 {
    // A heavy common offered load: every network delivers its saturated
    // throughput while consuming its own saturated power.
    s.evaluate_power(
        tech,
        TrafficPattern::Random,
        0.40,
        args.warmup(),
        args.measure(),
    )
    .throughput_per_power()
}

fn main() {
    let args = Args::parse();
    for (class, sn_name, baselines) in [
        (
            "N in {192,200}",
            "sn_s",
            vec!["t2d4", "cm4", "pfbf3", "fbf3", "fbf4"],
        ),
        (
            "N = 1296",
            "sn_l",
            vec!["t2d9", "cm9", "pfbf9", "fbf8", "fbf9"],
        ),
    ] {
        for tech in [TechNode::N45, TechNode::N22] {
            let mut names = vec![sn_name];
            names.extend(baselines.iter().copied());
            let values = parallel_map(names.clone(), |n| {
                let s = Setup::paper(n)
                    .expect("config")
                    .with_smart(true)
                    .with_buffers(BufferPreset::EbVar);
                tpp(&s, tech, &args)
            });
            let sn_tpp = values[0];
            let mut table = TextTable::new(
                format!("Table 5 ({class}, {tech}): SN throughput/power advantage, RND"),
                &["baseline", "SN gain"],
            );
            for (n, v) in names.iter().zip(values.iter()).skip(1) {
                table.push_row(vec![
                    n.to_string(),
                    format!("{:+.0}%", 100.0 * (sn_tpp / v - 1.0)),
                ]);
            }
            table.print(args.csv);
        }
    }
}
