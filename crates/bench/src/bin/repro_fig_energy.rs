//! The energy-efficiency comparison figure: throughput/Watt and
//! energy–delay product across mesh, torus, Dragonfly and Slim NoC at
//! matched offered load (§5.4's power-performance methodology).
//!
//! Every point feeds the activity factors *measured* by the simulator
//! (buffer reads/writes, crossbar traversals, allocator grants, link
//! flit·tiles) into the 45 nm power model — no analytic activity
//! defaults. The headline: past the mesh/torus saturation knee the
//! low-diameter Slim NoC keeps accepting traffic at ~2 hops/packet, so
//! its delivered flits per joule pull ahead of the mesh baseline.
//! Emits the `slim_noc-sweep-v2` JSON with `--json`.

use snoc_bench::{energy_campaign, energy_class_setups, print_energy_figure, Args};

fn main() {
    let args = Args::parse();
    let result = energy_campaign("fig_energy", energy_class_setups(), &args).run();
    print_energy_figure(
        &result,
        "Energy figure: matched-load efficiency, N~200 class + df3",
        "cm4",
        &args,
    );
}
