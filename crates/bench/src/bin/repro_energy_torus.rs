//! Energy-efficiency sweep of the torus baseline (t2d4, the N = 200
//! concentrated torus): a power-aware campaign whose dynamic power is
//! driven by the activity factors the simulator measured. Emits the
//! `slim_noc-sweep-v2` JSON with `--json`.

use snoc_bench::{energy_campaign, print_energy_figure, Args};
use snoc_core::Setup;

fn main() {
    let args = Args::parse();
    let setups = vec![Setup::paper("t2d4").expect("paper config")];
    let result = energy_campaign("energy_torus", setups, &args).run();
    print_energy_figure(&result, "Energy: torus (t2d4)", "t2d4", &args);
}
