//! Reproduces Table 6: the percentage decrease in average packet latency
//! due to SMART links, per topology, per PARSEC/SPLASH-like benchmark
//! (N = 192/200 class).

use snoc_bench::Args;
use snoc_core::{parallel_map, BufferPreset, Setup, TextTable};
use snoc_traffic::benchmark_workloads;

fn main() {
    let args = Args::parse();
    let nets = ["fbf3", "pfbf3", "cm3", "sn_s"];
    let rows = parallel_map(benchmark_workloads(), |w| {
        let gains: Vec<f64> = nets
            .iter()
            .map(|name| {
                let lat = |smart: bool| {
                    let s = Setup::paper(name)
                        .expect("config")
                        .with_smart(smart)
                        .with_buffers(BufferPreset::EbVar);
                    s.run_trace_workload(&w, args.trace_cycles())
                        .avg_packet_latency()
                };
                let no = lat(false);
                let yes = lat(true);
                if no > 0.0 {
                    100.0 * (1.0 - yes / no)
                } else {
                    0.0
                }
            })
            .collect();
        (w.name, gains)
    });
    let mut table = TextTable::new(
        "Table 6: % latency decrease due to SMART links",
        &["benchmark", "fbf3", "pfbf3", "cm3", "sn"],
    );
    let mut sums = vec![0.0f64; nets.len()];
    let mut count = 0u32;
    for (name, gains) in rows {
        let mut cells = vec![name.to_string()];
        for (i, g) in gains.iter().enumerate() {
            sums[i] += g;
            cells.push(format!("{g:.1}"));
        }
        count += 1;
        table.push_row(cells);
    }
    table.print(args.csv);
    let mut avg = TextTable::new(
        "Table 6 summary: mean latency gain from SMART (paper: SN largest at ~11%)",
        &["network", "mean gain %"],
    );
    for (i, n) in nets.iter().enumerate() {
        avg.push_row(vec![
            n.to_string(),
            format!("{:.1}", sums[i] / f64::from(count.max(1))),
        ]);
    }
    avg.print(args.csv);
}
