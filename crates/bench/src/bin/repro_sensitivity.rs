//! Reproduces the §5.5 sensitivity summary: Slim NoC's advantages under
//! varying concentration, injection rate, technology node, network size
//! and traffic pattern.
//!
//! Each sub-study prints SN next to its strongest competitor so the
//! robustness claim ("SN's benefits are robust") can be checked row by
//! row.

use snoc_bench::Args;
use snoc_core::{format_float, BufferPreset, Setup, TextTable};
use snoc_power::TechNode;
use snoc_topology::Topology;
use snoc_traffic::TrafficPattern;

fn main() {
    let args = Args::parse();

    // (1) Concentration sweep: SN with p in {3, 4, 5} at q = 5.
    let mut table = TextTable::new(
        "Sensitivity: concentration p (q = 5, RND)",
        &["p", "N", "latency @0.05", "saturation thpt"],
    );
    for p in [3usize, 4, 5] {
        let topo = Topology::slim_noc(5, p).expect("sn");
        let setup = Setup::from_topology(&format!("sn p={p}"), topo, 0.5).expect("setup");
        let lat = setup
            .run_load(TrafficPattern::Random, 0.05, args.warmup(), args.measure())
            .avg_packet_latency();
        let sat = setup.saturation_throughput(
            TrafficPattern::Random,
            args.warmup() / 2,
            args.measure() / 2,
        );
        table.push_row(vec![
            p.to_string(),
            setup.topology.node_count().to_string(),
            format_float(lat, 2),
            format_float(sat, 3),
        ]);
    }
    table.print(args.csv);

    // (2) Injection-rate sweep: SN vs FBF advantage across loads.
    let mut table = TextTable::new(
        "Sensitivity: injection rate (SN-S vs fbf3, SMART, RND latency)",
        &["load", "sn_s", "fbf3"],
    );
    let sn = Setup::paper("sn_s").expect("sn").with_smart(true);
    let fbf = Setup::paper("fbf3").expect("fbf").with_smart(true);
    for load in [0.01, 0.05, 0.1, 0.2] {
        let l1 = sn
            .run_load(TrafficPattern::Random, load, args.warmup(), args.measure())
            .avg_packet_latency();
        let l2 = fbf
            .run_load(TrafficPattern::Random, load, args.warmup(), args.measure())
            .avg_packet_latency();
        table.push_row(vec![
            format_float(load, 2),
            format_float(l1, 2),
            format_float(l2, 2),
        ]);
    }
    table.print(args.csv);

    // (3) Technology node: area/static-power advantage at 45/22/11 nm.
    let mut table = TextTable::new(
        "Sensitivity: technology node (SN-S vs fbf3, EB-Var)",
        &["tech", "SN area/FBF area", "SN static/FBF static"],
    );
    for tech in [TechNode::N45, TechNode::N22, TechNode::N11] {
        let eval = |s: &Setup| {
            let m = s.power_model(tech);
            let a = m.area(&s.topology, &s.layout, s.buffer_flits_per_router());
            let p = m.static_power(&s.topology, &s.layout, &a);
            (a.total_mm2(), p.total_w())
        };
        let sn_e = Setup::paper("sn_s")
            .expect("sn")
            .with_buffers(BufferPreset::EbVar);
        let fbf_e = Setup::paper("fbf3")
            .expect("fbf")
            .with_buffers(BufferPreset::EbVar);
        let (a1, p1) = eval(&sn_e);
        let (a2, p2) = eval(&fbf_e);
        table.push_row(vec![
            tech.to_string(),
            format_float(a1 / a2, 3),
            format_float(p1 / p2, 3),
        ]);
    }
    table.print(args.csv);

    // (4) Other network sizes (§5.5 lists 588, 686, 1024).
    let mut table = TextTable::new(
        "Sensitivity: network size (SN vs torus of equal N, RND saturation)",
        &["N", "sn thpt", "t2d thpt", "gain"],
    );
    for (q, p, tx, ty, tp) in [(7usize, 6usize, 14usize, 7usize, 6usize), (8, 8, 16, 8, 8)] {
        let sn_t = Topology::slim_noc(q, p).expect("sn");
        let n = sn_t.node_count();
        let sn_s = Setup::from_topology("sn", sn_t, 0.5).expect("setup");
        let t2d_s = Setup::from_topology("t2d", Topology::torus(tx, ty, tp), 0.4).expect("setup");
        let s1 = sn_s.saturation_throughput(
            TrafficPattern::Random,
            args.warmup() / 2,
            args.measure() / 2,
        );
        let s2 = t2d_s.saturation_throughput(
            TrafficPattern::Random,
            args.warmup() / 2,
            args.measure() / 2,
        );
        table.push_row(vec![
            n.to_string(),
            format_float(s1, 3),
            format_float(s2, 3),
            format!("{:.1}x", s1 / s2),
        ]);
    }
    table.print(args.csv);

    // (5) Traffic patterns: SN latency across all patterns at one load.
    let mut table = TextTable::new(
        "Sensitivity: traffic pattern (SN-S, SMART, load 0.05)",
        &["pattern", "latency", "avg hops"],
    );
    for pattern in [
        TrafficPattern::Random,
        TrafficPattern::BitShuffle,
        TrafficPattern::BitReversal,
        TrafficPattern::Transpose,
        TrafficPattern::Adversarial1,
        TrafficPattern::Adversarial2,
        TrafficPattern::Asymmetric,
    ] {
        let r = sn.run_load(pattern, 0.05, args.warmup(), args.measure());
        table.push_row(vec![
            pattern.to_string(),
            format_float(r.avg_packet_latency(), 2),
            format_float(r.avg_hops(), 3),
        ]);
    }
    table.print(args.csv);
}
