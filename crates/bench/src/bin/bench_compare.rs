//! Compares `cargo bench` output against a recorded baseline, or
//! records a new baseline — the tool behind the `bench-regression` CI
//! job, equally usable locally:
//!
//! ```text
//! cargo bench -p snoc_bench | tee bench.out
//! cargo run --release -p snoc_bench --bin bench_compare -- \
//!     --baseline BENCH_baseline.json --results bench.out
//! ```
//!
//! The vendored criterion stand-in prints one `CRITERION_JSONL:` line
//! per benchmark; this tool scrapes those from the raw bench output.
//! In compare mode, benchmarks whose names start with the `--pattern`
//! prefix (default `simulation/`) are checked against the baseline and
//! the run **fails on calibrated ratios above `--max-ratio`** (default
//! 2.0 — a deliberately generous tolerance: CI machines are noisy, and
//! the job should only catch real hot-path regressions, not jitter).
//! Ratios are divided by a machine-speed calibration factor — the
//! median ratio of the benchmarks *outside* the pattern — so a
//! uniformly slower or faster machine than the one that recorded the
//! baseline does not shift the verdict (trends, not absolutes).
//! Matched baseline entries missing from the results also fail, so a
//! regression cannot hide behind a renamed or deleted benchmark.
//!
//! Beyond the regression gate, `--min-speedup N` asserts that every
//! benchmark matching `--speedup-pattern` (default
//! `simulation/lowload_`) runs at least `N`x *faster* than its baseline
//! entry (after the same machine-speed calibration) — the gate that
//! keeps the event-accelerated cycle loop's low-load win from silently
//! eroding. The baseline's lowload entries were deliberately recorded
//! just before that optimization landed, so the speedup is measured
//! against the pre-event cycle loop.
//!
//! `--gate 'GLOB>=N'` (repeatable) asserts a per-pattern minimum
//! calibrated speedup: every baseline benchmark whose name matches the
//! glob (`*` matches any substring; the glob is tried against the full
//! name and against the part after the last `/`, so
//! `--gate 'satload_*>=1.5'` covers `simulation/satload_sn_s_rnd`)
//! must run at least `N`x faster than its baseline entry. A gate that
//! matches nothing fails — a misspelled pattern must not pass silently.
//!
//! `--table-out FILE` additionally writes the rendered before/after
//! ratio table to a file (pass or fail) so CI can upload it as an
//! artifact.
//!
//! In record mode (`--record out.json`) the scraped results are
//! written in the `BENCH_baseline.json` schema; re-record after an
//! intentional perf change and commit the file.

#![forbid(unsafe_code)]

use std::process::ExitCode;

/// One scraped or parsed benchmark measurement.
#[derive(Debug, Clone, PartialEq)]
struct Measurement {
    name: String,
    mean_ns: f64,
    iters: u64,
}

fn main() -> ExitCode {
    let mut baseline_path = "BENCH_baseline.json".to_string();
    let mut results_path = None;
    let mut record_path = None;
    let mut pattern = "simulation/".to_string();
    let mut max_ratio = 2.0f64;
    let mut min_speedup = 0.0f64;
    let mut speedup_pattern = "simulation/lowload_".to_string();
    let mut pattern_gates: Vec<SpeedupGate> = Vec::new();
    let mut table_out = None;
    let mut notes = String::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--baseline" => baseline_path = value("--baseline"),
            "--results" => results_path = Some(value("--results")),
            "--record" => record_path = Some(value("--record")),
            "--pattern" => pattern = value("--pattern"),
            "--max-ratio" => {
                max_ratio = value("--max-ratio").parse().unwrap_or_else(|e| {
                    eprintln!("--max-ratio: {e}");
                    std::process::exit(2);
                });
            }
            "--min-speedup" => {
                min_speedup = value("--min-speedup").parse().unwrap_or_else(|e| {
                    eprintln!("--min-speedup: {e}");
                    std::process::exit(2);
                });
            }
            "--speedup-pattern" => speedup_pattern = value("--speedup-pattern"),
            "--gate" => {
                let spec = value("--gate");
                match parse_gate(&spec) {
                    Ok(g) => pattern_gates.push(g),
                    Err(e) => {
                        eprintln!("--gate {spec}: {e}");
                        std::process::exit(2);
                    }
                }
            }
            "--table-out" => table_out = Some(value("--table-out")),
            "--notes" => notes = value("--notes"),
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_compare --results BENCH_OUT \
                     [--baseline BENCH_baseline.json] [--pattern simulation/] \
                     [--max-ratio 2.0] [--min-speedup 5.0] \
                     [--speedup-pattern simulation/lowload_] \
                     [--gate 'GLOB>=N']... [--table-out FILE] \
                     [--record NEW_BASELINE.json] [--notes TEXT]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let Some(results_path) = results_path else {
        eprintln!("--results is required (raw `cargo bench` output)");
        return ExitCode::from(2);
    };
    let raw = match std::fs::read_to_string(&results_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {results_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let results = scrape_jsonl(&raw);
    if results.is_empty() {
        eprintln!("{results_path}: no CRITERION_JSONL lines found");
        return ExitCode::from(2);
    }

    if let Some(record_path) = record_path {
        let json = render_baseline(&results, &notes);
        if let Err(e) = std::fs::write(&record_path, json) {
            eprintln!("cannot write {record_path}: {e}");
            return ExitCode::from(2);
        }
        println!("recorded {} benchmarks to {record_path}", results.len());
        return ExitCode::SUCCESS;
    }

    let baseline_raw = match std::fs::read_to_string(&baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline = parse_measurements(&baseline_raw);
    let gates = Gates {
        pattern: &pattern,
        max_ratio,
        min_speedup,
        speedup_pattern: &speedup_pattern,
        pattern_gates: &pattern_gates,
    };
    let outcome = compare(&baseline, &results, &gates);
    let report = match &outcome {
        Ok(report) | Err(report) => report.as_str(),
    };
    // Print the report before attempting the table write: a failed
    // write must not swallow an already-computed gate verdict.
    print!("{report}");
    let mut table_failed = false;
    if let Some(path) = table_out {
        if let Err(e) = std::fs::write(&path, report) {
            eprintln!("cannot write {path}: {e}");
            table_failed = true;
        }
    }
    if outcome.is_err() {
        eprintln!(
            "bench-regression check FAILED (tolerance {max_ratio}x, min speedup {min_speedup}x)"
        );
        return ExitCode::FAILURE;
    }
    if table_failed {
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

/// The comparison thresholds and name filters of one `compare` run.
struct Gates<'a> {
    /// Prefix of the benchmarks gated against `max_ratio`.
    pattern: &'a str,
    /// Fail when a calibrated current/baseline ratio exceeds this.
    max_ratio: f64,
    /// Fail when a `speedup_pattern` benchmark's calibrated speedup
    /// (baseline/current) falls below this (`<= 0` disables the gate).
    min_speedup: f64,
    /// Prefix of the benchmarks gated against `min_speedup`.
    speedup_pattern: &'a str,
    /// Per-pattern minimum-speedup gates (`--gate 'GLOB>=N'`).
    pattern_gates: &'a [SpeedupGate],
}

/// One `--gate 'GLOB>=N'` assertion: every baseline benchmark matching
/// the glob must show at least this calibrated speedup.
#[derive(Debug, Clone, PartialEq)]
struct SpeedupGate {
    /// Glob over benchmark names; `*` matches any substring. Tried
    /// against the full name and against the part after the last `/`.
    glob: String,
    /// Minimum calibrated speedup (baseline / current).
    min_speedup: f64,
}

/// Parses a `GLOB>=N` gate specification.
fn parse_gate(spec: &str) -> Result<SpeedupGate, String> {
    let (glob, threshold) = spec
        .split_once(">=")
        .ok_or_else(|| "expected `GLOB>=N`".to_string())?;
    let glob = glob.trim();
    if glob.is_empty() {
        return Err("empty glob".to_string());
    }
    let min_speedup: f64 = threshold
        .trim()
        .parse()
        .map_err(|e| format!("bad threshold `{}`: {e}", threshold.trim()))?;
    if !min_speedup.is_finite() || min_speedup <= 0.0 {
        return Err(format!("threshold must be positive, got {min_speedup}"));
    }
    Ok(SpeedupGate {
        glob: glob.to_string(),
        min_speedup,
    })
}

/// Whether `name` matches `glob`, where `*` matches any (possibly
/// empty) substring and everything else is literal. Anchored at both
/// ends: `satload_*` matches `satload_x` but not `x_satload_y`.
fn glob_match(glob: &str, name: &str) -> bool {
    let mut segments = glob.split('*');
    // The first segment is anchored at the start.
    let Some(first) = segments.next() else {
        return glob == name; // unreachable: split always yields one
    };
    let Some(rest) = name.strip_prefix(first) else {
        return false;
    };
    let mut rest = rest;
    let mut last: Option<&str> = None;
    for seg in segments {
        // Place the previously deferred segment at the earliest match;
        // the final segment is instead anchored at the end below.
        if let Some(prev) = last {
            match rest.find(prev) {
                Some(pos) => rest = &rest[pos + prev.len()..],
                None => return false,
            }
        }
        last = Some(seg);
    }
    match last {
        // No `*` in the glob at all: exact match required.
        None => rest.is_empty(),
        Some(tail) => rest.ends_with(tail),
    }
}

/// Whether a gate covers a benchmark: the glob is tried against the
/// full name and, for convenience (`satload_*` instead of
/// `simulation/satload_*`), against the part after the last `/`.
fn gate_matches(gate: &SpeedupGate, name: &str) -> bool {
    glob_match(&gate.glob, name)
        || name
            .rsplit_once('/')
            .is_some_and(|(_, base)| glob_match(&gate.glob, base))
}

/// Extracts `CRITERION_JSONL: {...}` lines from raw bench output.
fn scrape_jsonl(raw: &str) -> Vec<Measurement> {
    raw.lines()
        .filter_map(|l| l.strip_prefix("CRITERION_JSONL: "))
        .filter_map(parse_measurement_object)
        .collect()
}

/// Parses every `{"name": ..., "mean_ns": ..., "iters": ...}` object in
/// a JSON document. Not a general JSON parser — just enough for the two
/// schemas this workspace produces (the build is offline, no serde).
fn parse_measurements(json: &str) -> Vec<Measurement> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find("\"name\"") {
        let chunk = &rest[pos..];
        let end = chunk.find('}').map_or(chunk.len(), |e| e + 1);
        if let Some(m) = parse_measurement_object(&chunk[..end]) {
            out.push(m);
        }
        rest = &rest[pos + 6..];
    }
    out
}

/// Parses one benchmark object from its JSON text.
fn parse_measurement_object(obj: &str) -> Option<Measurement> {
    let name = string_field(obj, "name")?;
    let mean_ns = number_field(obj, "mean_ns")?;
    let iters = number_field(obj, "iters")? as u64;
    Some(Measurement {
        name,
        mean_ns,
        iters,
    })
}

/// Extracts a string field value (`"key": "value"` or `"key":"value"`).
fn string_field(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\"");
    let after = &obj[obj.find(&pat)? + pat.len()..];
    let after = after.trim_start().strip_prefix(':')?.trim_start();
    let after = after.strip_prefix('"')?;
    Some(after[..after.find('"')?].to_string())
}

/// Extracts a numeric field value.
fn number_field(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\"");
    let after = &obj[obj.find(&pat)? + pat.len()..];
    let after = after.trim_start().strip_prefix(':')?.trim_start();
    let end = after
        .find(|c: char| !(c.is_ascii_digit() || ".eE+-".contains(c)))
        .unwrap_or(after.len());
    after[..end].parse().ok()
}

/// JSON string escaping for recorded notes (quotes, backslashes,
/// control characters — a multi-line `--notes` must still produce a
/// parseable baseline file).
fn escape_json(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders measurements in the `BENCH_baseline.json` schema.
fn render_baseline(results: &[Measurement], notes: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"slim_noc-bench-baseline-v1\",\n");
    let _ = writeln!(out, "  \"recorded\": \"{}\",", today_utc());
    let _ = writeln!(out, "  \"notes\": \"{}\",", escape_json(notes));
    out.push_str("  \"command\": \"cargo bench -p snoc_bench\",\n  \"benchmarks\": [\n");
    for (i, m) in results.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\n      \"name\": \"{}\",\n      \"mean_ns\": {:.1},\n      \"iters\": {}\n    }}",
            m.name, m.mean_ns, m.iters
        );
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Today's UTC date as `YYYY-MM-DD` (civil-from-days; no chrono in the
/// offline build).
fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let days = (secs / 86_400) as i64;
    // Howard Hinnant's civil_from_days algorithm.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// The machine-speed calibration factor: the median current/baseline
/// ratio over benchmarks **outside** the gated pattern that exist on
/// both sides. The baseline's own notes say "compare trends, not
/// absolutes, across machines" — a CI runner 2x slower than the
/// recording machine shifts *every* benchmark by ~2x, and dividing by
/// this factor cancels that shift so the gate only sees relative
/// hot-path regressions. Falls back to 1.0 when nothing is available
/// to calibrate against.
fn calibration_factor(baseline: &[Measurement], results: &[Measurement], pattern: &str) -> f64 {
    let mut ratios: Vec<f64> = baseline
        .iter()
        .filter(|b| !b.name.starts_with(pattern) && b.mean_ns > 0.0)
        .filter_map(|b| {
            results
                .iter()
                .find(|m| m.name == b.name)
                .map(|cur| cur.mean_ns / b.mean_ns)
        })
        .collect();
    if ratios.is_empty() {
        return 1.0;
    }
    ratios.sort_by(f64::total_cmp);
    ratios[ratios.len() / 2]
}

/// Compares results to the baseline for names starting with
/// `gates.pattern`, after machine-speed calibration (see
/// [`calibration_factor`]); with `gates.min_speedup > 0`, additionally
/// asserts the calibrated speedup of every `gates.speedup_pattern`
/// benchmark. Returns the rendered report; `Err` when any calibrated
/// ratio exceeds `max_ratio`, a gated speedup falls short, or a matched
/// baseline benchmark is missing.
fn compare(
    baseline: &[Measurement],
    results: &[Measurement],
    gates: &Gates,
) -> Result<String, String> {
    use std::fmt::Write as _;
    let pattern = gates.pattern;
    let max_ratio = gates.max_ratio;
    let mut out = String::new();
    let mut failed = false;
    let matched: Vec<&Measurement> = baseline
        .iter()
        .filter(|m| m.name.starts_with(pattern))
        .collect();
    let calibration = calibration_factor(baseline, results, pattern);
    let _ = writeln!(
        out,
        "comparing {} `{pattern}*` benchmarks (tolerance {max_ratio}x, \
         machine-speed calibration {calibration:.2}x from non-matched benchmarks)",
        matched.len()
    );
    let _ = writeln!(
        out,
        "{:<44} {:>14} {:>14} {:>7}  verdict",
        "benchmark", "baseline ns", "current ns", "ratio"
    );
    for base in &matched {
        match results.iter().find(|m| m.name == base.name) {
            Some(cur) => {
                let ratio = cur.mean_ns / base.mean_ns / calibration;
                let verdict = if ratio > max_ratio {
                    failed = true;
                    "REGRESSED"
                } else if ratio < 1.0 / max_ratio {
                    "improved"
                } else {
                    "ok"
                };
                let _ = writeln!(
                    out,
                    "{:<44} {:>14.1} {:>14.1} {:>6.2}x  {verdict}",
                    base.name, base.mean_ns, cur.mean_ns, ratio
                );
            }
            None => {
                failed = true;
                let _ = writeln!(
                    out,
                    "{:<44} {:>14.1} {:>14} {:>7}  MISSING",
                    base.name, base.mean_ns, "-", "-"
                );
            }
        }
    }
    if matched.is_empty() {
        return Err(format!(
            "{out}no baseline benchmarks match `{pattern}` — wrong pattern or empty baseline\n"
        ));
    }
    if gates.min_speedup > 0.0 {
        let speedup_pattern = gates.speedup_pattern;
        let gated: Vec<&Measurement> = baseline
            .iter()
            .filter(|m| m.name.starts_with(speedup_pattern))
            .collect();
        let _ = writeln!(
            out,
            "asserting >= {:.2}x calibrated speedup on {} `{speedup_pattern}*` benchmarks",
            gates.min_speedup,
            gated.len()
        );
        if gated.is_empty() {
            return Err(format!(
                "{out}no baseline benchmarks match `{speedup_pattern}` — the speedup \
                 gate has nothing to assert\n"
            ));
        }
        for base in &gated {
            match results.iter().find(|m| m.name == base.name) {
                Some(cur) if cur.mean_ns > 0.0 => {
                    let speedup = base.mean_ns * calibration / cur.mean_ns;
                    let verdict = if speedup < gates.min_speedup {
                        failed = true;
                        "TOO SLOW"
                    } else {
                        "ok"
                    };
                    let _ = writeln!(
                        out,
                        "{:<44} {:>14.1} {:>14.1} {:>6.2}x  {verdict}",
                        base.name, base.mean_ns, cur.mean_ns, speedup
                    );
                }
                _ => {
                    failed = true;
                    let _ = writeln!(
                        out,
                        "{:<44} {:>14.1} {:>14} {:>7}  MISSING",
                        base.name, base.mean_ns, "-", "-"
                    );
                }
            }
        }
    }
    for gate in gates.pattern_gates {
        let gated: Vec<&Measurement> = baseline
            .iter()
            .filter(|m| gate_matches(gate, &m.name))
            .collect();
        let _ = writeln!(
            out,
            "gate `{}`: asserting >= {:.2}x calibrated speedup on {} benchmarks",
            gate.glob,
            gate.min_speedup,
            gated.len()
        );
        if gated.is_empty() {
            return Err(format!(
                "{out}gate `{}` matches no baseline benchmarks — misspelled glob?\n",
                gate.glob
            ));
        }
        for base in &gated {
            match results.iter().find(|m| m.name == base.name) {
                Some(cur) if cur.mean_ns > 0.0 => {
                    let speedup = base.mean_ns * calibration / cur.mean_ns;
                    let verdict = if speedup < gate.min_speedup {
                        failed = true;
                        "TOO SLOW"
                    } else {
                        "ok"
                    };
                    let _ = writeln!(
                        out,
                        "{:<44} {:>14.1} {:>14.1} {:>6.2}x  {verdict}",
                        base.name, base.mean_ns, cur.mean_ns, speedup
                    );
                }
                _ => {
                    failed = true;
                    let _ = writeln!(
                        out,
                        "{:<44} {:>14.1} {:>14} {:>7}  MISSING",
                        base.name, base.mean_ns, "-", "-"
                    );
                }
            }
        }
    }
    if failed {
        Err(out)
    } else {
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OUT: &str = "\
bench: simulation/a      1.0 ms/iter [10 iters]
CRITERION_JSONL: {\"name\":\"simulation/a\",\"mean_ns\":1000000.0,\"iters\":10}
noise line
CRITERION_JSONL: {\"name\":\"simulation/b\",\"mean_ns\":500.5,\"iters\":50}
CRITERION_JSONL: {\"name\":\"other/c\",\"mean_ns\":3.0,\"iters\":50}
";

    fn m(name: &str, mean_ns: f64) -> Measurement {
        Measurement {
            name: name.to_string(),
            mean_ns,
            iters: 10,
        }
    }

    /// The regression-only gate configuration used by most tests.
    fn regression_gates(max_ratio: f64) -> Gates<'static> {
        Gates {
            pattern: "simulation/",
            max_ratio,
            min_speedup: 0.0,
            speedup_pattern: "simulation/lowload_",
            pattern_gates: &[],
        }
    }

    /// Regression gate plus the lowload speedup gate.
    fn speedup_gates(min_speedup: f64) -> Gates<'static> {
        Gates {
            min_speedup,
            ..regression_gates(2.0)
        }
    }

    #[test]
    fn scrapes_jsonl_lines() {
        let out = scrape_jsonl(OUT);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], m("simulation/a", 1_000_000.0));
        assert_eq!(out[1].mean_ns, 500.5);
        assert_eq!(out[1].iters, 50);
    }

    #[test]
    fn baseline_roundtrip() {
        let results = scrape_jsonl(OUT);
        let rendered = render_baseline(&results, "unit test");
        let parsed = parse_measurements(&rendered);
        assert_eq!(parsed, results);
        assert!(rendered.contains("slim_noc-bench-baseline-v1"));
    }

    #[test]
    fn notes_with_newlines_and_quotes_stay_valid_json() {
        let rendered = render_baseline(&scrape_jsonl(OUT), "line one\nline \"two\"\t\\end");
        assert!(
            rendered.contains(r#"line one\u000aline \"two\"\u0009\\end"#),
            "{rendered}"
        );
        assert!(
            !rendered.contains("one\nline"),
            "no raw newline inside the notes string"
        );
    }

    #[test]
    fn compare_passes_within_tolerance() {
        let base = vec![m("simulation/a", 100.0), m("other/c", 1.0)];
        let cur = vec![m("simulation/a", 180.0), m("other/c", 1.0)];
        let report = compare(&base, &cur, &regression_gates(2.0)).expect("within tolerance");
        assert!(report.contains("ok"));
        assert!(!report.contains("other/c"), "non-matched bench not gated");
    }

    #[test]
    fn calibration_cancels_uniform_machine_slowdown() {
        let base = vec![
            m("simulation/a", 100.0),
            m("other/c", 10.0),
            m("other/d", 20.0),
        ];
        // A uniformly 3x slower machine (e.g. a CI runner) is not a
        // regression: the non-matched benchmarks calibrate it away.
        let slower_machine = vec![
            m("simulation/a", 300.0),
            m("other/c", 30.0),
            m("other/d", 60.0),
        ];
        assert!(compare(&base, &slower_machine, &regression_gates(2.0)).is_ok());
        // A 3x slowdown of only the hot path still fails.
        let hot_path_regressed = vec![
            m("simulation/a", 300.0),
            m("other/c", 10.0),
            m("other/d", 20.0),
        ];
        assert!(compare(&base, &hot_path_regressed, &regression_gates(2.0)).is_err());
    }

    #[test]
    fn calibration_defaults_to_unity() {
        let base = vec![m("simulation/a", 100.0)];
        let cur = vec![m("simulation/a", 150.0)];
        assert_eq!(calibration_factor(&base, &cur, "simulation/"), 1.0);
    }

    #[test]
    fn compare_fails_on_regression_and_missing() {
        let base = vec![m("simulation/a", 100.0), m("simulation/b", 100.0)];
        let cur = vec![m("simulation/a", 250.0)];
        let report = compare(&base, &cur, &regression_gates(2.0)).expect_err("must fail");
        assert!(report.contains("REGRESSED"));
        assert!(report.contains("MISSING"));
    }

    #[test]
    fn compare_fails_on_empty_match() {
        let base = vec![m("other/c", 1.0)];
        let cur = vec![m("other/c", 1.0)];
        assert!(compare(&base, &cur, &regression_gates(2.0)).is_err());
    }

    #[test]
    fn speedup_gate_passes_fast_and_fails_slow() {
        let base = vec![
            m("simulation/lowload_a", 10_000.0),
            m("simulation/sat_b", 100.0),
            m("other/c", 10.0),
        ];
        // 10x faster on the gated bench, unchanged elsewhere: passes 5x.
        let fast = vec![
            m("simulation/lowload_a", 1_000.0),
            m("simulation/sat_b", 100.0),
            m("other/c", 10.0),
        ];
        let report = compare(&base, &fast, &speedup_gates(5.0)).expect("10x beats 5x");
        assert!(report.contains("asserting >= 5.00x"));
        assert!(report.contains("10.00x  ok"), "{report}");
        // Only 2x faster: the speedup gate fails even though the
        // regression gate is happy.
        let slow = vec![
            m("simulation/lowload_a", 5_000.0),
            m("simulation/sat_b", 100.0),
            m("other/c", 10.0),
        ];
        let report = compare(&base, &slow, &speedup_gates(5.0)).expect_err("2x misses 5x");
        assert!(report.contains("TOO SLOW"), "{report}");
        // min_speedup 0 disables the gate entirely.
        assert!(compare(&base, &slow, &speedup_gates(0.0)).is_ok());
    }

    #[test]
    fn speedup_gate_is_machine_calibrated() {
        let base = vec![
            m("simulation/lowload_a", 10_000.0),
            m("other/c", 10.0),
            m("other/d", 20.0),
        ];
        // A 2x slower machine shows only a 5x raw speedup for a true
        // 10x win; the calibration factor restores it.
        let slower_machine = vec![
            m("simulation/lowload_a", 2_000.0),
            m("other/c", 20.0),
            m("other/d", 40.0),
        ];
        let report = compare(&base, &slower_machine, &speedup_gates(8.0)).expect("calibrated 10x");
        assert!(report.contains("10.00x  ok"), "{report}");
    }

    #[test]
    fn speedup_gate_fails_on_missing_or_empty() {
        let base = vec![m("simulation/lowload_a", 100.0), m("simulation/x", 1.0)];
        let cur = vec![m("simulation/x", 1.0)];
        let report = compare(&base, &cur, &speedup_gates(5.0)).expect_err("missing gated bench");
        assert!(report.contains("MISSING"));
        // No baseline entries match the speedup pattern at all: that is
        // a configuration error, not a pass.
        let base = vec![m("simulation/x", 1.0)];
        let cur = vec![m("simulation/x", 1.0)];
        let report = compare(&base, &cur, &speedup_gates(5.0)).expect_err("nothing to assert");
        assert!(report.contains("nothing to assert"), "{report}");
    }

    #[test]
    fn gate_spec_parsing() {
        assert_eq!(
            parse_gate("satload_*>=1.5"),
            Ok(SpeedupGate {
                glob: "satload_*".to_string(),
                min_speedup: 1.5,
            })
        );
        assert_eq!(
            parse_gate(" lowload_* >= 5 "),
            Ok(SpeedupGate {
                glob: "lowload_*".to_string(),
                min_speedup: 5.0,
            })
        );
        assert!(parse_gate("no_threshold").is_err(), "missing >=");
        assert!(parse_gate(">=2.0").is_err(), "empty glob");
        assert!(parse_gate("x>=abc").is_err(), "non-numeric threshold");
        assert!(parse_gate("x>=0").is_err(), "zero threshold");
        assert!(parse_gate("x>=-1").is_err(), "negative threshold");
    }

    #[test]
    fn glob_matching() {
        assert!(glob_match("satload_*", "satload_sn_s_rnd"));
        assert!(glob_match("satload_*", "satload_"), "* matches empty");
        assert!(!glob_match("satload_*", "x_satload_y"), "start-anchored");
        assert!(glob_match("*_cbr", "satload_sn54_cbr"));
        assert!(!glob_match("*_cbr", "satload_cbr_rnd"), "end-anchored");
        assert!(glob_match("sn_*_cbr*", "sn_s_cbr_elastic"));
        assert!(glob_match("exact", "exact"));
        assert!(!glob_match("exact", "exactly"), "no * means exact");
        assert!(glob_match("*", "anything"));
        let gate = SpeedupGate {
            glob: "satload_*".to_string(),
            min_speedup: 1.5,
        };
        assert!(
            gate_matches(&gate, "simulation/satload_df3_rnd"),
            "glob also tried against the name after the last `/`"
        );
        assert!(!gate_matches(&gate, "simulation/lowload_a"));
    }

    #[test]
    fn pattern_gates_pass_and_fail() {
        let base = vec![
            m("simulation/satload_a", 1_500.0),
            m("simulation/satload_b", 1_500.0),
            m("simulation/other", 100.0),
            m("other/c", 10.0),
        ];
        let gates_15 = [SpeedupGate {
            glob: "satload_*".to_string(),
            min_speedup: 1.5,
        }];
        let cfg = Gates {
            pattern_gates: &gates_15,
            ..regression_gates(2.0)
        };
        // Both gated benches 2x faster, ungated ones unchanged: passes.
        let fast = vec![
            m("simulation/satload_a", 750.0),
            m("simulation/satload_b", 750.0),
            m("simulation/other", 100.0),
            m("other/c", 10.0),
        ];
        let report = compare(&base, &fast, &cfg).expect("2x beats 1.5x");
        assert!(report.contains("gate `satload_*`"), "{report}");
        assert!(report.contains("2.00x  ok"), "{report}");
        // One gated bench only 1.2x faster: that gate fails.
        let slow = vec![
            m("simulation/satload_a", 750.0),
            m("simulation/satload_b", 1_250.0),
            m("simulation/other", 100.0),
            m("other/c", 10.0),
        ];
        let report = compare(&base, &slow, &cfg).expect_err("1.2x misses 1.5x");
        assert!(report.contains("TOO SLOW"), "{report}");
        // A gated bench missing from the results fails.
        let missing = vec![
            m("simulation/satload_a", 750.0),
            m("simulation/other", 100.0),
            m("other/c", 10.0),
        ];
        let report = compare(&base, &missing, &cfg).expect_err("missing gated bench");
        assert!(report.contains("MISSING"), "{report}");
    }

    #[test]
    fn pattern_gate_is_machine_calibrated_and_rejects_empty_match() {
        let base = vec![
            m("simulation/satload_a", 1_500.0),
            m("other/c", 10.0),
            m("other/d", 20.0),
        ];
        let gates_15 = [SpeedupGate {
            glob: "satload_*".to_string(),
            min_speedup: 1.5,
        }];
        let cfg = Gates {
            pattern_gates: &gates_15,
            ..regression_gates(2.0)
        };
        // A 2x slower machine shows only a 1x raw speedup for a true 2x
        // win; calibration restores it above the 1.5x bar.
        let slower_machine = vec![
            m("simulation/satload_a", 1_500.0),
            m("other/c", 20.0),
            m("other/d", 40.0),
        ];
        let report = compare(&base, &slower_machine, &cfg).expect("calibrated 2x");
        assert!(report.contains("2.00x  ok"), "{report}");
        // A glob matching nothing is a configuration error, not a pass.
        let gates_typo = [SpeedupGate {
            glob: "saltoad_*".to_string(),
            min_speedup: 1.5,
        }];
        let cfg = Gates {
            pattern_gates: &gates_typo,
            ..regression_gates(2.0)
        };
        let report = compare(&base, &base.clone(), &cfg).expect_err("typo glob");
        assert!(
            report.contains("matches no baseline benchmarks"),
            "{report}"
        );
    }

    #[test]
    fn civil_date_is_plausible() {
        let d = today_utc();
        assert_eq!(d.len(), 10);
        assert!(d.starts_with("20"), "{d}");
    }

    #[test]
    fn parses_repo_baseline_schema() {
        let doc = r#"{
  "schema": "slim_noc-bench-baseline-v1",
  "benchmarks": [
    { "name": "simulation/x", "mean_ns": 305.3, "iters": 50 },
    { "name": "simulation/y", "mean_ns": 1.5e3, "iters": 10 }
  ]
}"#;
        let got = parse_measurements(doc);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], m("simulation/x", 305.3).clone_with_iters(50));
        assert_eq!(got[1].mean_ns, 1500.0);
    }

    impl Measurement {
        fn clone_with_iters(mut self, iters: u64) -> Self {
            self.iters = iters;
            self
        }
    }
}
