//! Submits a campaign spec to a running `snoc_serve` and streams the
//! JSONL events to stdout; prints a `snoc-cache-stats:`-style summary
//! to stderr when the job completes.

use snoc_bench::serve::submit;
use std::process::ExitCode;

const USAGE: &str = "usage: snoc_submit --spec FILE [--addr HOST:PORT]";

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7077".to_string();
    let mut spec_path: Option<String> = None;
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        let (flag, mut inline) = match a.split_once('=') {
            Some((f, v)) => (f.to_string(), Some(v.to_string())),
            None => (a, None),
        };
        let mut next_value = || inline.take().or_else(|| raw.next());
        match flag.as_str() {
            "--addr" => match next_value() {
                Some(v) => addr = v,
                None => return fail("--addr needs a value"),
            },
            "--spec" => match next_value() {
                Some(v) => spec_path = Some(v),
                None => return fail("--spec needs a value"),
            },
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown flag `{other}`")),
        }
    }
    let Some(path) = spec_path else {
        return fail("--spec is required");
    };
    let spec_json = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => return fail(&format!("read `{path}`: {e}")),
    };
    match submit(&addr, &spec_json, |line| println!("{line}")) {
        Ok(outcome) => {
            eprintln!(
                "snoc-submit-stats: points={} hits={} misses={}",
                outcome.points, outcome.cache_hits, outcome.cache_misses
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(&format!("submit to {addr}: {e}")),
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("snoc_submit: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}
