//! Reproduces Table 4: the evaluated network configurations for both
//! size classes, with derived parameters (p, k', k, router grid, N) and
//! measured structural properties (diameter, bisection links).

use snoc_bench::Args;
use snoc_core::TextTable;
use snoc_layout::Layout;
use snoc_topology::paper_config;

fn main() {
    let args = Args::parse();
    let mut table = TextTable::new(
        "Table 4: considered configurations",
        &[
            "sym",
            "D",
            "p",
            "k'",
            "k",
            "routers",
            "N",
            "bisection links",
        ],
    );
    let names = [
        "t2d3", "t2d4", "cm3", "cm4", "fbf3", "fbf4", "pfbf3", "pfbf4", "sn_s", "t2d9", "t2d8",
        "cm9", "cm8", "fbf9", "fbf8", "pfbf9", "pfbf8", "sn_l",
    ];
    for name in names {
        let cfg = paper_config(name).expect("paper config");
        let t = &cfg.topology;
        let layout = Layout::natural(t);
        table.push_row(vec![
            name.to_string(),
            t.diameter().to_string(),
            t.concentration().to_string(),
            t.network_radix().to_string(),
            t.router_radix().to_string(),
            format!("{}x{}", layout.grid().0, layout.grid().1),
            t.node_count().to_string(),
            layout.bisection_links(t).to_string(),
        ]);
    }
    table.print(args.csv);
}
