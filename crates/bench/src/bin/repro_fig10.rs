//! Reproduces Figure 10: the effect of Slim NoC layouts on performance
//! at N = 200 without SMART links.
//!
//! - (a) latency vs. load for REV / RND / SHF under each layout;
//! - (b) average latency on the 14 PARSEC/SPLASH-like workloads per
//!   layout.

use snoc_bench::{latency_curve, Args};
use snoc_core::{format_float, parallel_map, Series, Setup, TextTable};
use snoc_layout::SnLayout;
use snoc_traffic::{benchmark_workloads, TrafficPattern};

fn layout_setups() -> Vec<(String, Setup)> {
    [
        ("sn_basic", SnLayout::Basic),
        ("sn_gr", SnLayout::Group),
        ("sn_rand", SnLayout::Random(1)),
        ("sn_subgr", SnLayout::Subgroup),
    ]
    .into_iter()
    .map(|(name, l)| {
        let mut s = Setup::paper("sn_s")
            .expect("sn_s")
            .with_sn_layout(l)
            .expect("layout");
        s.name = name.to_string();
        (name.to_string(), s)
    })
    .collect()
}

fn main() {
    let args = Args::parse();

    // (a) Synthetic patterns.
    for pattern in [
        TrafficPattern::BitReversal,
        TrafficPattern::Random,
        TrafficPattern::BitShuffle,
    ] {
        let curves = parallel_map(layout_setups(), |(_, s)| latency_curve(&s, pattern, &args));
        Series::tabulate(
            format!("Fig 10a ({pattern}): latency vs load per SN layout, N=200, no SMART"),
            "load",
            &curves,
        )
        .print(args.csv);
    }

    // (b) Trace workloads.
    let mut table = TextTable::new(
        "Fig 10b: PARSEC/SPLASH-like latency [cycles] per SN layout",
        &["benchmark", "sn_basic", "sn_gr", "sn_subgr"],
    );
    let rows = parallel_map(benchmark_workloads(), |w| {
        let lat = |layout: SnLayout| {
            let s = Setup::paper("sn_s")
                .expect("sn_s")
                .with_sn_layout(layout)
                .expect("layout");
            s.run_trace_workload(&w, args.trace_cycles())
                .avg_packet_latency()
        };
        (
            w.name,
            lat(SnLayout::Basic),
            lat(SnLayout::Group),
            lat(SnLayout::Subgroup),
        )
    });
    let mut geo_basic = 1.0f64;
    let mut geo_sub = 1.0f64;
    let mut count = 0u32;
    for (name, basic, gr, sub) in rows {
        geo_basic *= basic;
        geo_sub *= sub;
        count += 1;
        table.push_row(vec![
            name.to_string(),
            format_float(basic, 2),
            format_float(gr, 2),
            format_float(sub, 2),
        ]);
    }
    table.print(args.csv);
    let gain = 100.0 * (1.0 - (geo_sub / geo_basic).powf(1.0 / f64::from(count.max(1))));
    println!(
        "sn_subgr vs sn_basic (geometric mean latency): {:.1}% lower (paper: ~5%)\n",
        gain
    );
}
