//! Technology-node constants for the wiring constraint (§3.3.2).

use std::fmt;

/// A manufacturing technology node.
///
/// The paper evaluates 45 nm (1.0 V) and 22 nm (0.8 V), and checks wiring
/// feasibility additionally at 11 nm. Constants follow §3.3.2: wiring
/// densities of 3.5k / 7k / 14k wires/mm and processing-core areas of
/// 4 / 1 / 0.25 mm².
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TechNode {
    /// 45 nm, 1.0 V.
    N45,
    /// 22 nm, 0.8 V.
    N22,
    /// 11 nm (wiring-feasibility analysis only).
    N11,
}

impl TechNode {
    /// Wiring density of one intermediate metal layer, in wires per mm.
    #[must_use]
    pub fn wiring_density_per_mm(self) -> f64 {
        match self {
            TechNode::N45 => 3_500.0,
            TechNode::N22 => 7_000.0,
            TechNode::N11 => 14_000.0,
        }
    }

    /// Processing-core area in mm².
    #[must_use]
    pub fn core_area_mm2(self) -> f64 {
        match self {
            TechNode::N45 => 4.0,
            TechNode::N22 => 1.0,
            TechNode::N11 => 0.25,
        }
    }

    /// Side length of one processing core in mm.
    #[must_use]
    pub fn core_side_mm(self) -> f64 {
        self.core_area_mm2().sqrt()
    }

    /// Supply voltage in volts.
    #[must_use]
    pub fn voltage(self) -> f64 {
        match self {
            TechNode::N45 => 1.0,
            TechNode::N22 => 0.8,
            TechNode::N11 => 0.7,
        }
    }

    /// Feature size in nanometres.
    #[must_use]
    pub fn nanometres(self) -> f64 {
        match self {
            TechNode::N45 => 45.0,
            TechNode::N22 => 22.0,
            TechNode::N11 => 11.0,
        }
    }
}

impl fmt::Display for TechNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}nm", self.nanometres() as u64)
    }
}

impl TechNode {
    /// Parses the [`fmt::Display`] form (`45nm`), as used by the
    /// campaign-spec wire format; the bare number is accepted too for
    /// CLI convenience.
    #[must_use]
    pub fn from_name(name: &str) -> Option<TechNode> {
        Some(match name {
            "45nm" | "45" => TechNode::N45,
            "22nm" | "22" => TechNode::N22,
            "11nm" | "11" => TechNode::N11,
            _ => return None,
        })
    }
}

/// The maximum number of wires `W` that may be routed over one tile
/// (a router plus its `concentration` attached cores) in a single metal
/// layer — the right-hand side of Eq. (3).
///
/// `W` is the wiring density times the tile side; the tile side grows
/// with the square root of the number of cores in the tile.
#[must_use]
pub fn max_wires_per_tile(tech: TechNode, concentration: usize) -> usize {
    let tile_area = tech.core_area_mm2() * concentration.max(1) as f64;
    (tech.wiring_density_per_mm() * tile_area.sqrt()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_core_limit_is_constant_across_nodes() {
        // 3.5k/mm × 2mm = 7k/mm × 1mm = 14k/mm × 0.5mm = 7000 — density
        // doubles as the core side halves, so the per-core W is constant.
        for t in [TechNode::N45, TechNode::N22, TechNode::N11] {
            assert_eq!(max_wires_per_tile(t, 1), 7_000, "{t}");
        }
    }

    #[test]
    fn limit_grows_with_concentration() {
        assert!(max_wires_per_tile(TechNode::N45, 4) > max_wires_per_tile(TechNode::N45, 1));
        assert_eq!(max_wires_per_tile(TechNode::N45, 4), 14_000);
    }

    #[test]
    fn displays() {
        assert_eq!(TechNode::N45.to_string(), "45nm");
        assert_eq!(TechNode::N22.to_string(), "22nm");
    }

    #[test]
    fn voltages_match_paper() {
        assert_eq!(TechNode::N45.voltage(), 1.0);
        assert_eq!(TechNode::N22.voltage(), 0.8);
    }
}
