//! Manhattan wire paths and the Eq. (3) wire-crossing constraint.
//!
//! Wires run along one of the two L-shaped Manhattan paths between the
//! connected routers. The paper's tie-breaking rule (§3.2.1): the first
//! segment (leaving router `i`) runs vertically when the vertical distance
//! is the larger one, horizontally otherwise — formally, the path bends at
//! `(x_i, y_j)` if `|x_i − x_j| > |y_i − y_j|` ("bottom-left" path `ϕ`),
//! else at `(x_j, y_i)` ("top-right" path `ψ`).

use crate::Layout;
use snoc_topology::Topology;

/// The L-shaped path of one wire: endpoints plus the bend tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WirePath {
    /// Source tile.
    pub from: (usize, usize),
    /// Bend tile (equals an endpoint for straight wires).
    pub bend: (usize, usize),
    /// Destination tile.
    pub to: (usize, usize),
}

impl WirePath {
    /// All tiles covered by the wire, including both endpoints and the
    /// bend, each exactly once.
    #[must_use]
    pub fn tiles(&self) -> Vec<(usize, usize)> {
        let mut tiles = Vec::new();
        push_segment(&mut tiles, self.from, self.bend);
        push_segment(&mut tiles, self.bend, self.to);
        tiles.dedup();
        // The two segments share only the bend; dedup on the joined list
        // removes that single duplicate because it is adjacent.
        tiles
    }

    /// Manhattan length of the path in tile hops.
    #[must_use]
    pub fn length(&self) -> usize {
        self.from.0.abs_diff(self.to.0) + self.from.1.abs_diff(self.to.1)
    }
}

fn push_segment(out: &mut Vec<(usize, usize)>, a: (usize, usize), b: (usize, usize)) {
    if a.0 == b.0 {
        let (lo, hi) = (a.1.min(b.1), a.1.max(b.1));
        if a.1 <= b.1 {
            out.extend((lo..=hi).map(|y| (a.0, y)));
        } else {
            out.extend((lo..=hi).rev().map(|y| (a.0, y)));
        }
    } else {
        debug_assert_eq!(a.1, b.1, "segment must be axis-aligned");
        let (lo, hi) = (a.0.min(b.0), a.0.max(b.0));
        if a.0 <= b.0 {
            out.extend((lo..=hi).map(|x| (x, a.1)));
        } else {
            out.extend((lo..=hi).rev().map(|x| (x, a.1)));
        }
    }
}

/// Computes the wire path between two tiles using the paper's
/// tie-breaking rule.
#[must_use]
pub(crate) fn wire_path(from: (usize, usize), to: (usize, usize)) -> WirePath {
    let dx = from.0.abs_diff(to.0);
    let dy = from.1.abs_diff(to.1);
    // Φ = 1 (bend at (x_i, y_j), vertical first) when |Δx| > |Δy|;
    // Ψ = 1 (bend at (x_j, y_i), horizontal first) when |Δx| ≤ |Δy|.
    let bend = if dx > dy {
        (from.0, to.1)
    } else {
        (to.0, from.1)
    };
    WirePath { from, bend, to }
}

/// Wire statistics for a layout: per-tile crossing counts and the Eq. (3)
/// check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireStats {
    /// Grid extent `(X, Y)`.
    pub grid: (usize, usize),
    /// `crossings[y * X + x]` = number of wires over tile `(x, y)`
    /// (endpoints and bends included, as in the paper's ϕ/ψ formulation).
    pub crossings: Vec<usize>,
    /// Maximum crossing count over all tiles — the layout's `max W`
    /// plotted in Fig. 5d.
    pub max_crossings: usize,
    /// Total wire length in tile hops (the sum in Eq. 4's numerator).
    pub total_wire_length: usize,
}

impl WireStats {
    /// Crossing count at a tile.
    ///
    /// # Panics
    ///
    /// Panics if the tile is outside the grid.
    #[must_use]
    pub fn at(&self, x: usize, y: usize) -> usize {
        assert!(x < self.grid.0 && y < self.grid.1, "tile out of grid");
        self.crossings[y * self.grid.0 + x]
    }

    /// Verifies the technology constraint of Eq. (3): every tile's
    /// crossing count is at most `w_limit`.
    #[must_use]
    pub fn satisfies_limit(&self, w_limit: usize) -> bool {
        self.max_crossings <= w_limit
    }
}

pub(crate) fn wire_stats(layout: &Layout, topo: &Topology) -> WireStats {
    let grid = layout.grid();
    let mut crossings = vec![0usize; grid.0 * grid.1];
    let mut total = 0usize;
    for (a, b) in topo.links() {
        let path = wire_path(layout.coord(a), layout.coord(b));
        total += path.length();
        for (x, y) in path.tiles() {
            crossings[y * grid.0 + x] += 1;
        }
    }
    let max_crossings = crossings.iter().copied().max().unwrap_or(0);
    WireStats {
        grid,
        crossings,
        max_crossings,
        total_wire_length: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Layout, SnLayout};
    use snoc_topology::Topology;

    #[test]
    fn straight_wire_tiles() {
        let p = wire_path((1, 1), (4, 1));
        assert_eq!(p.length(), 3);
        assert_eq!(p.tiles(), vec![(1, 1), (2, 1), (3, 1), (4, 1)]);
    }

    #[test]
    fn vertical_first_when_dx_larger() {
        // |Δx| = 3 > |Δy| = 1 → bend at (x_i, y_j): vertical first.
        let p = wire_path((0, 0), (3, 1));
        assert_eq!(p.bend, (0, 1));
        let tiles = p.tiles();
        assert_eq!(tiles.first(), Some(&(0, 0)));
        assert_eq!(tiles[1], (0, 1), "first move is vertical");
        assert_eq!(tiles.last(), Some(&(3, 1)));
        assert_eq!(tiles.len(), p.length() + 1);
    }

    #[test]
    fn horizontal_first_when_dy_larger_or_equal() {
        // |Δx| = 1 ≤ |Δy| = 3 → bend at (x_j, y_i): horizontal first.
        let p = wire_path((0, 0), (1, 3));
        assert_eq!(p.bend, (1, 0));
        let tiles = p.tiles();
        assert_eq!(tiles[1], (1, 0), "first move is horizontal");
        assert_eq!(tiles.len(), p.length() + 1);
    }

    #[test]
    fn paper_example_wire_placement() {
        // §3.2.1 worked example: routers A, B with |x_A − x_B| > |y_A − y_B|
        // place the wire over the tile (x_A, y_B).
        let a = (2, 5);
        let b = (7, 3);
        let p = wire_path(a, b);
        assert!(p.tiles().contains(&(2, 3)));
    }

    #[test]
    fn path_tiles_are_unique_and_contiguous() {
        let p = wire_path((5, 2), (1, 7));
        let tiles = p.tiles();
        let mut sorted = tiles.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), tiles.len(), "no duplicate tiles");
        for w in tiles.windows(2) {
            let d = w[0].0.abs_diff(w[1].0) + w[0].1.abs_diff(w[1].1);
            assert_eq!(d, 1, "tiles are grid-adjacent");
        }
    }

    #[test]
    fn zero_length_wire() {
        let p = wire_path((3, 3), (3, 3));
        assert_eq!(p.length(), 0);
        assert_eq!(p.tiles(), vec![(3, 3)]);
    }

    #[test]
    fn crossing_counts_mesh() {
        // 3x1 mesh: link (0,1) covers tiles 0,1; link (1,2) covers 1,2.
        let m = Topology::mesh(3, 1, 1);
        let l = Layout::natural(&m);
        let s = l.wire_stats(&m);
        assert_eq!(s.at(0, 0), 1);
        assert_eq!(s.at(1, 0), 2);
        assert_eq!(s.at(2, 0), 1);
        assert_eq!(s.max_crossings, 2);
        assert_eq!(s.total_wire_length, 2);
    }

    #[test]
    fn total_wire_length_matches_average() {
        let t = Topology::slim_noc(5, 1).unwrap();
        let l = Layout::slim_noc(&t, SnLayout::Subgroup).unwrap();
        let s = l.wire_stats(&t);
        let m = l.average_wire_length(&t);
        assert!((m - s.total_wire_length as f64 / t.link_count() as f64).abs() < 1e-12);
    }

    #[test]
    fn better_layouts_do_not_increase_max_crossings_wildly() {
        // Sanity: subgroup layout's max W stays within the same order of
        // magnitude as basic (Fig. 5d shows all layouts far below the
        // bound).
        let t = Topology::slim_noc(9, 1).unwrap();
        let basic = Layout::slim_noc(&t, SnLayout::Basic)
            .unwrap()
            .wire_stats(&t);
        let subgr = Layout::slim_noc(&t, SnLayout::Subgroup)
            .unwrap()
            .wire_stats(&t);
        assert!(subgr.max_crossings <= 2 * basic.max_crossings);
    }
}
