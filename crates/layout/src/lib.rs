//! On-chip placement, wire, buffer and cost models (§3.2–§3.3).
//!
//! A [`Layout`] assigns each router of a topology a coordinate on a 2D
//! grid of tiles (a tile = one router plus its attached nodes). From the
//! layout this crate derives everything the paper's cost analysis needs:
//!
//! - **wires**: the Manhattan L-shaped path of every link, with the
//!   paper's tie-breaking rule, plus the per-tile wire-crossing counts and
//!   the technology constraint of Eq. (3);
//! - **average wire length** `M` (Eq. 4) and link-distance histograms
//!   (Fig. 6);
//! - **buffer sizes**: round-trip times, per-link edge-buffer sizes
//!   `δ_ij = T_ij·|VC|` flits (Eq. 5's `δ_ij = T_ij·b·|VC|/L` with one
//!   flit per link cycle), central-buffer totals (Eq. 6), and SMART-link
//!   variants;
//! - **bisection** link counts for layout-defined cuts.
//!
//! # Example
//!
//! ```
//! use snoc_topology::Topology;
//! use snoc_layout::{Layout, SnLayout};
//!
//! let sn = Topology::slim_noc(5, 4)?;
//! let subgr = Layout::slim_noc(&sn, SnLayout::Subgroup)?;
//! let basic = Layout::slim_noc(&sn, SnLayout::Basic)?;
//! // The subgroup layout shortens average wires versus the basic layout.
//! assert!(subgr.average_wire_length(&sn) <= basic.average_wire_length(&sn));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffers;
mod place;
mod tech;
mod wires;

pub use buffers::{per_router_central_buffers, total_central_buffers, BufferModel, BufferSpec};
pub use tech::{max_wires_per_tile, TechNode};
pub use wires::{WirePath, WireStats};

use snoc_topology::{RouterId, Topology};
use std::fmt;

/// Which Slim NoC layout family to use (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SnLayout {
    /// `sn_basic`: subgroups of the same type stacked together;
    /// `[G|a,b] → (b, a + G·q)`.
    Basic,
    /// `sn_subgr`: subgroups of different types interleaved pairwise;
    /// `[G|a,b] → (b, 2a + G)`.
    Subgroup,
    /// `sn_gr`: subgroups merged pairwise into groups placed as
    /// near-square blocks tiled in a near-square grid (the layout of the
    /// paper's SN-L, 3×3 groups of 6×3 routers).
    Group,
    /// `sn_rand`: routers shuffled uniformly over the `q × 2q` slots with
    /// the given seed (the paper's randomized baseline).
    Random(u64),
}

impl fmt::Display for SnLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnLayout::Basic => write!(f, "sn_basic"),
            SnLayout::Subgroup => write!(f, "sn_subgr"),
            SnLayout::Group => write!(f, "sn_gr"),
            SnLayout::Random(_) => write!(f, "sn_rand"),
        }
    }
}

impl SnLayout {
    /// The stable name used by the `snoc` CLI and the campaign-spec
    /// wire format: `basic`, `subgr`, `gr`, or `rand:<seed>` (the
    /// randomized baseline carries its shuffle seed).
    #[must_use]
    pub fn spec_name(&self) -> String {
        match self {
            SnLayout::Basic => "basic".to_string(),
            SnLayout::Subgroup => "subgr".to_string(),
            SnLayout::Group => "gr".to_string(),
            SnLayout::Random(seed) => format!("rand:{seed}"),
        }
    }

    /// The inverse of [`SnLayout::spec_name`]. Bare `rand` defaults to
    /// seed 1 (the CLI's historical default).
    #[must_use]
    pub fn from_spec_name(name: &str) -> Option<SnLayout> {
        Some(match name {
            "basic" => SnLayout::Basic,
            "subgr" => SnLayout::Subgroup,
            "gr" => SnLayout::Group,
            "rand" => SnLayout::Random(1),
            other => SnLayout::Random(other.strip_prefix("rand:")?.parse().ok()?),
        })
    }
}

/// Describes which concrete layout a [`Layout`] instance uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum LayoutKind {
    /// One of the Slim NoC layouts of §3.3.
    SlimNoc(SnLayout),
    /// Natural row-major grid placement (meshes, FBF, PFBF).
    Grid,
    /// Folded placement (tori): wrap links become length-2 hops.
    Folded,
    /// Block placement for group-structured topologies (Dragonfly, Clos).
    Blocks,
}

/// A placement of routers on a 2D grid of tiles.
///
/// Coordinates are 0-based; the paper's formulas are 1-based, and the
/// translation is documented on each constructor. Multiple routers never
/// share a tile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    coords: Vec<(usize, usize)>,
    grid: (usize, usize),
    kind: LayoutKind,
}

/// Errors produced by layout construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LayoutError {
    /// A Slim NoC layout was requested for a non-Slim-NoC topology.
    NotSlimNoc,
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::NotSlimNoc => {
                write!(f, "slim-noc layout requested for a non-slim-noc topology")
            }
        }
    }
}

impl std::error::Error for LayoutError {}

impl Layout {
    pub(crate) fn from_coords(coords: Vec<(usize, usize)>, kind: LayoutKind) -> Self {
        let grid_x = coords.iter().map(|c| c.0).max().map_or(0, |m| m + 1);
        let grid_y = coords.iter().map(|c| c.1).max().map_or(0, |m| m + 1);
        // Placement invariant: one router per tile.
        let mut seen = vec![false; grid_x * grid_y];
        for &(x, y) in &coords {
            let slot = y * grid_x + x;
            assert!(!seen[slot], "two routers share tile ({x}, {y})");
            seen[slot] = true;
        }
        Layout {
            coords,
            grid: (grid_x, grid_y),
            kind,
        }
    }

    /// Builds one of the §3.3 Slim NoC layouts.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::NotSlimNoc`] if the topology is not a Slim
    /// NoC.
    pub fn slim_noc(topo: &Topology, which: SnLayout) -> Result<Self, LayoutError> {
        place::slim_noc(topo, which)
    }

    /// Builds the natural layout for any topology: the paper's layouts for
    /// Slim NoC (subgroup by default), row-major grids for meshes and
    /// butterflies, folded grids for tori, block placements for Dragonfly
    /// and Clos.
    #[must_use]
    pub fn natural(topo: &Topology) -> Self {
        place::natural(topo)
    }

    /// The grid extent `(X, Y)` in tiles.
    #[must_use]
    pub fn grid(&self) -> (usize, usize) {
        self.grid
    }

    /// Which layout this is.
    #[must_use]
    pub fn kind(&self) -> LayoutKind {
        self.kind
    }

    /// Coordinate of a router.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn coord(&self, r: RouterId) -> (usize, usize) {
        self.coords[r.index()]
    }

    /// Number of placed routers.
    #[must_use]
    pub fn router_count(&self) -> usize {
        self.coords.len()
    }

    /// Manhattan distance between two routers, in tile hops.
    #[must_use]
    pub fn manhattan(&self, a: RouterId, b: RouterId) -> usize {
        let (xa, ya) = self.coord(a);
        let (xb, yb) = self.coord(b);
        xa.abs_diff(xb) + ya.abs_diff(yb)
    }

    /// Average router–router wire length `M` over all links (Eq. 4).
    #[must_use]
    pub fn average_wire_length(&self, topo: &Topology) -> f64 {
        let mut total = 0usize;
        let mut links = 0usize;
        for (a, b) in topo.links() {
            total += self.manhattan(a, b);
            links += 1;
        }
        if links == 0 {
            0.0
        } else {
            total as f64 / links as f64
        }
    }

    /// Histogram of link Manhattan distances, `hist[d]` = number of links
    /// of length `d` (Fig. 6 uses this binned by 2).
    #[must_use]
    pub fn link_distance_histogram(&self, topo: &Topology) -> Vec<usize> {
        let mut hist = Vec::new();
        for (a, b) in topo.links() {
            let d = self.manhattan(a, b);
            if d >= hist.len() {
                hist.resize(d + 1, 0);
            }
            hist[d] += 1;
        }
        hist
    }

    /// Probability density over distance ranges `[1,2], [3,4], …` as
    /// plotted in Fig. 6.
    #[must_use]
    pub fn link_distance_density(&self, topo: &Topology, bin: usize) -> Vec<f64> {
        assert!(bin > 0, "bin width must be positive");
        let hist = self.link_distance_histogram(topo);
        let links: usize = hist.iter().sum();
        if links == 0 {
            return Vec::new();
        }
        // Distance 0 never occurs (no self-links); bins start at 1.
        let bins = hist.len().div_ceil(bin);
        let mut density = vec![0.0; bins];
        for (d, &count) in hist.iter().enumerate() {
            if d == 0 {
                continue;
            }
            density[(d - 1) / bin] += count as f64 / links as f64;
        }
        density
    }

    /// The maximum Manhattan link length in this layout.
    #[must_use]
    pub fn max_wire_length(&self, topo: &Topology) -> usize {
        topo.links()
            .map(|(a, b)| self.manhattan(a, b))
            .max()
            .unwrap_or(0)
    }

    /// Counts links crossing the vertical midline of the die — the layout
    /// bisection used to match PFBF to Slim NoC's bisection bandwidth.
    #[must_use]
    pub fn bisection_links(&self, topo: &Topology) -> usize {
        let half = self.grid.0 / 2;
        topo.cut_links(|r| self.coord(r).0 < half)
    }

    /// Full wire statistics: per-tile crossing counts, maximum crossing
    /// count, and Eq. (3) verification. See [`WireStats`].
    #[must_use]
    pub fn wire_stats(&self, topo: &Topology) -> WireStats {
        wires::wire_stats(self, topo)
    }

    /// The L-shaped wire path for a link per the §3.2.1 tie-breaking rule.
    #[must_use]
    pub fn wire_path(&self, a: RouterId, b: RouterId) -> WirePath {
        wires::wire_path(self.coord(a), self.coord(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoc_topology::Topology;

    #[test]
    fn natural_layouts_place_all_routers_uniquely() {
        let topos = [
            Topology::slim_noc(5, 4).unwrap(),
            Topology::mesh(8, 8, 3),
            Topology::torus(10, 5, 4),
            Topology::flattened_butterfly(10, 5, 4),
            Topology::partitioned_fbf(2, 2, 4, 4, 3),
            Topology::dragonfly(2),
            Topology::folded_clos(10, 5, 4),
        ];
        for t in &topos {
            let l = Layout::natural(t);
            assert_eq!(l.router_count(), t.router_count(), "{}", t.name());
        }
    }

    #[test]
    fn average_wire_length_of_mesh_is_one() {
        let m = Topology::mesh(6, 6, 1);
        let l = Layout::natural(&m);
        assert_eq!(l.average_wire_length(&m), 1.0);
        assert_eq!(l.max_wire_length(&m), 1);
    }

    #[test]
    fn folded_torus_wires_are_at_most_two() {
        let t = Topology::torus(8, 8, 1);
        let l = Layout::natural(&t);
        assert!(matches!(l.kind(), LayoutKind::Folded));
        assert!(l.max_wire_length(&t) <= 2, "max {}", l.max_wire_length(&t));
    }

    #[test]
    fn distance_density_sums_to_one() {
        let sn = Topology::slim_noc(5, 4).unwrap();
        let l = Layout::slim_noc(&sn, SnLayout::Subgroup).unwrap();
        let d = l.link_distance_density(&sn, 2);
        let sum: f64 = d.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
    }

    #[test]
    fn bisection_of_fbf_exceeds_sn() {
        // PFBF exists because FBF's bisection is much higher than SN's.
        let sn = Topology::slim_noc(5, 4).unwrap();
        let sn_l = Layout::slim_noc(&sn, SnLayout::Subgroup).unwrap();
        let fbf = Topology::flattened_butterfly(10, 5, 4);
        let fbf_l = Layout::natural(&fbf);
        assert!(fbf_l.bisection_links(&fbf) > sn_l.bisection_links(&sn));
    }

    #[test]
    fn layout_error_for_non_sn() {
        let m = Topology::mesh(4, 4, 1);
        assert_eq!(
            Layout::slim_noc(&m, SnLayout::Basic).unwrap_err(),
            LayoutError::NotSlimNoc
        );
    }
}
