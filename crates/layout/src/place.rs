//! Router placement: the four Slim NoC layouts of §3.3 plus natural
//! placements for all baseline topologies.

use crate::{Layout, LayoutError, LayoutKind, SnLayout};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use snoc_topology::{Topology, TopologyKind};

/// Builds a Slim NoC layout from the router labels.
pub(crate) fn slim_noc(topo: &Topology, which: SnLayout) -> Result<Layout, LayoutError> {
    let TopologyKind::SlimNoc { q, labels } = topo.kind() else {
        return Err(LayoutError::NotSlimNoc);
    };
    let q = *q;
    let coords: Vec<(usize, usize)> = match which {
        // Paper (1-based): [G|a,b] → (b, a + G·q). 0-based below.
        SnLayout::Basic => labels.iter().map(|l| (l.b, l.a + l.g * q)).collect(),
        // Paper (1-based): [G|a,b] → (b, 2a − (1 − G)). 0-based: (b, 2a + G).
        SnLayout::Subgroup => labels.iter().map(|l| (l.b, 2 * l.a + l.g)).collect(),
        // Groups (subgroup pairs, 2q routers each) as near-square blocks
        // tiled in a near-square grid. For q = 9 this yields 3×3 groups of
        // 6×3 routers — exactly the paper's SN-L arrangement (Fig. 7b).
        SnLayout::Group => {
            let (bw, bh) = group_block_dims(q);
            let gw = (q as f64).sqrt().ceil() as usize; // groups per row
            labels
                .iter()
                .map(|l| {
                    let group = l.a;
                    let t = l.b + l.g * q; // 0..2q within the group
                    let (gx, gy) = (group % gw, group / gw);
                    (gx * bw + t % bw, gy * bh + t / bw)
                })
                .collect()
        }
        // Uniform shuffle over the q × 2q slot grid.
        SnLayout::Random(seed) => {
            let mut slots: Vec<(usize, usize)> = (0..2 * q)
                .flat_map(|y| (0..q).map(move |x| (x, y)))
                .collect();
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            slots.shuffle(&mut rng);
            slots.truncate(topo.router_count());
            slots
        }
    };
    Ok(Layout::from_coords(coords, LayoutKind::SlimNoc(which)))
}

/// Block dimensions `(width, height)` holding the `2q` routers of one
/// group, chosen near-square with `width · height = 2q` when possible.
fn group_block_dims(q: usize) -> (usize, usize) {
    let total = 2 * q;
    // Prefer an exact factorization close to sqrt; fall back to a ceil.
    let target = (total as f64).sqrt();
    let mut best = (total, 1);
    for h in 1..=total {
        if h as f64 > target + 0.5 {
            break;
        }
        if total.is_multiple_of(h) {
            best = (total / h, h);
        }
    }
    best
}

/// Natural layout dispatch for any topology.
pub(crate) fn natural(topo: &Topology) -> Layout {
    match topo.kind() {
        TopologyKind::SlimNoc { .. } => slim_noc(topo, SnLayout::Subgroup).expect("kind checked"),
        TopologyKind::Mesh { x, .. } | TopologyKind::FlattenedButterfly { x, .. } => {
            grid(topo.router_count(), *x)
        }
        TopologyKind::Torus { x, y } => folded_torus(*x, *y),
        TopologyKind::PartitionedFbf { parts_x, sub_x, .. } => {
            grid(topo.router_count(), parts_x * sub_x)
        }
        TopologyKind::Dragonfly { h } => dragonfly_blocks(*h),
        TopologyKind::FoldedClos { leaves, spines } => clos_blocks(*leaves, *spines),
        _ => {
            // Future topology kinds: fall back to a near-square grid.
            let x = (topo.router_count() as f64).sqrt().ceil() as usize;
            grid(topo.router_count(), x.max(1))
        }
    }
}

/// Row-major grid placement with `x_dim` routers per row.
fn grid(count: usize, x_dim: usize) -> Layout {
    let coords = (0..count).map(|i| (i % x_dim, i / x_dim)).collect();
    Layout::from_coords(coords, LayoutKind::Grid)
}

/// Folded torus placement: dimension order 0, 2, 4, …, 5, 3, 1 turns wrap
/// links into length-2 physical wires (standard practice; the paper's T2D
/// "mostly uses single-cycle wires").
fn folded_torus(x_dim: usize, y_dim: usize) -> Layout {
    let fold = |i: usize, dim: usize| -> usize {
        // Physical position of logical ring index i in the interleaved
        // ordering 0, n−1, 1, n−2, 2, …: every ring link (including the
        // wrap link) spans at most 2 tiles.
        if i < dim.div_ceil(2) {
            2 * i
        } else {
            2 * (dim - 1 - i) + 1
        }
    };
    let coords = (0..x_dim * y_dim)
        .map(|r| {
            let (x, y) = (r % x_dim, r / x_dim);
            (fold(x, x_dim), fold(y, y_dim))
        })
        .collect();
    Layout::from_coords(coords, LayoutKind::Folded)
}

/// Dragonfly: each group occupies a contiguous block; groups tile a
/// near-square grid of blocks.
fn dragonfly_blocks(h: usize) -> Layout {
    let a = 2 * h;
    let groups = a * h + 1;
    let bw = (a as f64).sqrt().ceil() as usize;
    let bh = a.div_ceil(bw);
    let gw = (groups as f64).sqrt().ceil() as usize;
    let coords = (0..a * groups)
        .map(|r| {
            let (g, t) = (r / a, r % a);
            let (gx, gy) = (g % gw, g / gw);
            (gx * bw + t % bw, gy * bh + t / bw)
        })
        .collect();
    Layout::from_coords(coords, LayoutKind::Blocks)
}

/// Folded Clos: leaves tile a near-square grid; spines occupy extra rows
/// below (approximating a center-spine floorplan).
fn clos_blocks(leaves: usize, spines: usize) -> Layout {
    let lw = (leaves as f64).sqrt().ceil() as usize;
    let leaf_rows = leaves.div_ceil(lw);
    let mut coords: Vec<(usize, usize)> = (0..leaves).map(|i| (i % lw, i / lw)).collect();
    let sw = lw.max(1);
    coords.extend((0..spines).map(|i| (i % sw, leaf_rows + i / sw)));
    Layout::from_coords(coords, LayoutKind::Blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoc_topology::RouterId;

    fn sn(q: usize) -> Topology {
        Topology::slim_noc(q, 1).unwrap()
    }

    #[test]
    fn basic_layout_is_rectangular_q_by_2q() {
        for q in [3, 5, 9] {
            let t = sn(q);
            let l = Layout::slim_noc(&t, SnLayout::Basic).unwrap();
            assert_eq!(l.grid(), (q, 2 * q), "q = {q}");
        }
    }

    #[test]
    fn subgroup_layout_is_rectangular_q_by_2q() {
        for q in [3, 5, 9] {
            let t = sn(q);
            let l = Layout::slim_noc(&t, SnLayout::Subgroup).unwrap();
            assert_eq!(l.grid(), (q, 2 * q), "q = {q}");
        }
    }

    #[test]
    fn subgroup_layout_interleaves_types() {
        // Rows alternate subgroup types: row y holds type (y mod 2).
        let t = sn(5);
        let l = Layout::slim_noc(&t, SnLayout::Subgroup).unwrap();
        let labels = t.slim_noc_labels().unwrap().to_vec();
        for r in t.routers() {
            let (_, y) = l.coord(r);
            assert_eq!(y % 2, labels[r.index()].g);
        }
    }

    #[test]
    fn group_layout_for_q9_is_paper_die() {
        // SN-L: 9 groups of 6×3 routers in a 3×3 arrangement = 18×9 die.
        let t = sn(9);
        let l = Layout::slim_noc(&t, SnLayout::Group).unwrap();
        assert_eq!(l.grid(), (18, 9));
    }

    #[test]
    fn group_block_dims_are_exact_factorizations() {
        assert_eq!(group_block_dims(9), (6, 3));
        assert_eq!(group_block_dims(5), (5, 2));
        assert_eq!(group_block_dims(8), (4, 4));
        assert_eq!(group_block_dims(2), (2, 2));
    }

    #[test]
    fn group_layout_keeps_groups_contiguous() {
        let t = sn(9);
        let l = Layout::slim_noc(&t, SnLayout::Group).unwrap();
        let labels = t.slim_noc_labels().unwrap().to_vec();
        for r in t.routers() {
            let (x, y) = l.coord(r);
            let group = labels[r.index()].a;
            assert_eq!((x / 6, y / 3), (group % 3, group / 3));
        }
    }

    #[test]
    fn random_layout_is_deterministic_per_seed() {
        let t = sn(5);
        let a = Layout::slim_noc(&t, SnLayout::Random(7)).unwrap();
        let b = Layout::slim_noc(&t, SnLayout::Random(7)).unwrap();
        let c = Layout::slim_noc(&t, SnLayout::Random(8)).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn folded_torus_neighbors() {
        // In a folded 4-ring the physical order is 0, 3, 1, 2; every ring
        // link (including the wrap link 3-0) spans at most 2 tiles.
        let l = folded_torus(4, 1);
        let xs: Vec<usize> = (0..4).map(|i| l.coord(RouterId(i)).0).collect();
        assert_eq!(xs, vec![0, 2, 3, 1]);
        for i in 0..4usize {
            let j = (i + 1) % 4;
            assert!(xs[i].abs_diff(xs[j]) <= 2, "link {i}-{j}");
        }
    }

    #[test]
    fn layouts_reduce_wire_length_as_paper_orders_them() {
        // Fig. 5a ordering: sn_subgr and sn_gr shorten wires by roughly a
        // quarter versus sn_basic and sn_rand.
        for q in [5, 9] {
            let t = sn(q);
            let m_basic = Layout::slim_noc(&t, SnLayout::Basic)
                .unwrap()
                .average_wire_length(&t);
            let m_rand = Layout::slim_noc(&t, SnLayout::Random(1))
                .unwrap()
                .average_wire_length(&t);
            let m_subgr = Layout::slim_noc(&t, SnLayout::Subgroup)
                .unwrap()
                .average_wire_length(&t);
            let m_gr = Layout::slim_noc(&t, SnLayout::Group)
                .unwrap()
                .average_wire_length(&t);
            assert!(m_subgr < m_basic, "q = {q}: {m_subgr} vs {m_basic}");
            assert!(m_subgr < m_rand, "q = {q}: {m_subgr} vs {m_rand}");
            assert!(m_gr < m_rand, "q = {q}: {m_gr} vs {m_rand}");
        }
    }

    #[test]
    fn theoretical_bound_on_max_distance() {
        // §3.3.3: same-subgroup routers are at distance ≤ q − 1; any two
        // routers at distance ≤ 2q − 1 + (q − 1) in the subgroup layout
        // (bounded by the die semi-perimeter).
        let t = sn(7);
        let l = Layout::slim_noc(&t, SnLayout::Subgroup).unwrap();
        let (gx, gy) = l.grid();
        assert!(l.max_wire_length(&t) < gx - 1 + gy);
    }

    #[test]
    fn dragonfly_and_clos_blocks_cover_all_routers() {
        let df = Topology::dragonfly(2);
        assert_eq!(natural(&df).router_count(), df.router_count());
        let clos = Topology::folded_clos(10, 5, 4);
        assert_eq!(natural(&clos).router_count(), clos.router_count());
    }
}
