//! Buffer-size models (§3.2.2): edge buffers sized by round-trip time,
//! and central buffers of fixed size.

use crate::Layout;
use snoc_topology::{RouterId, Topology};

/// Parameters of the buffer-size model.
///
/// The paper's edge-buffer size is `δ_ij = T_ij · b · |VC| / L` flits,
/// with round-trip time `T_ij = 2⌈(|Δx| + |Δy|)/H⌉ + 3` (two cycles of
/// router processing plus one of serialization). Links deliver one flit
/// per link cycle (`b / L = 1` flit/cycle), so `δ_ij = T_ij · |VC|`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferSpec {
    /// Virtual channels per physical link (`|VC|`).
    pub vcs: usize,
    /// Tile hops traversed in one link cycle (`H`): 1 without SMART
    /// links, typically 9 with SMART at 1 GHz in 45 nm (§5.1).
    pub smart_hops: usize,
}

impl BufferSpec {
    /// The paper's standard configuration: 2 VCs, no SMART.
    #[must_use]
    pub fn standard() -> Self {
        BufferSpec {
            vcs: 2,
            smart_hops: 1,
        }
    }

    /// The paper's SMART configuration: 2 VCs, `H = 9`.
    #[must_use]
    pub fn smart() -> Self {
        BufferSpec {
            vcs: 2,
            smart_hops: 9,
        }
    }

    /// Link traversal time in cycles for a wire of `dist` tile hops
    /// (`⌈dist/H⌉`, minimum 1).
    #[must_use]
    pub fn link_cycles(&self, dist: usize) -> usize {
        debug_assert!(self.smart_hops >= 1);
        dist.div_ceil(self.smart_hops).max(1)
    }

    /// Round-trip time `T_ij = 2⌈dist/H⌉ + 3` in cycles.
    #[must_use]
    pub fn round_trip(&self, dist: usize) -> usize {
        2 * self.link_cycles(dist) + 3
    }

    /// Edge-buffer size `δ_ij` in flits for a wire of `dist` tile hops.
    #[must_use]
    pub fn edge_buffer_flits(&self, dist: usize) -> usize {
        self.round_trip(dist) * self.vcs
    }
}

impl Default for BufferSpec {
    fn default() -> Self {
        Self::standard()
    }
}

/// Aggregated buffer-size results for one (topology, layout) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferModel {
    per_router: Vec<usize>,
    min_edge: usize,
    max_edge: usize,
}

impl BufferModel {
    /// Evaluates the edge-buffer model over all links (Eq. 5).
    ///
    /// Each undirected link contributes one buffer at each endpoint
    /// (matching the paper's double sum over ordered pairs).
    #[must_use]
    pub fn edge_buffers(topo: &Topology, layout: &Layout, spec: BufferSpec) -> Self {
        let mut per_router = vec![0usize; topo.router_count()];
        let mut min_edge = usize::MAX;
        let mut max_edge = 0usize;
        for (a, b) in topo.links() {
            let dist = layout.manhattan(a, b);
            let flits = spec.edge_buffer_flits(dist);
            per_router[a.index()] += flits;
            per_router[b.index()] += flits;
            min_edge = min_edge.min(flits);
            max_edge = max_edge.max(flits);
        }
        if min_edge == usize::MAX {
            min_edge = 0;
        }
        BufferModel {
            per_router,
            min_edge,
            max_edge,
        }
    }

    /// Total buffer flits in the network (`Δ_eb`, Eq. 5).
    #[must_use]
    pub fn total(&self) -> usize {
        self.per_router.iter().sum()
    }

    /// Average buffer flits per router — the quantity plotted in
    /// Figs. 5b–5c ("total size of all buffers in one router").
    #[must_use]
    pub fn average_per_router(&self) -> f64 {
        if self.per_router.is_empty() {
            0.0
        } else {
            self.total() as f64 / self.per_router.len() as f64
        }
    }

    /// Buffer flits at one router.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn at(&self, r: RouterId) -> usize {
        self.per_router[r.index()]
    }

    /// The smallest single edge buffer in the network (§3.2.2's uniform
    /// manufacturing option 1).
    #[must_use]
    pub fn min_edge_buffer(&self) -> usize {
        self.min_edge
    }

    /// The largest single edge buffer in the network (§3.2.2's uniform
    /// manufacturing option 2).
    #[must_use]
    pub fn max_edge_buffer(&self) -> usize {
        self.max_edge
    }
}

/// Total central-buffer flits (`Δ_cb`, Eq. 6): every router holds one
/// central buffer of `cb_flits` plus per-VC I/O staging buffers,
/// `Δ_cb = N_r · (δ_cb + 2·k'·|VC|)`. Independent of wire lengths and of
/// SMART links.
#[must_use]
pub fn total_central_buffers(topo: &Topology, cb_flits: usize, vcs: usize) -> usize {
    topo.router_count() * per_router_central_buffers(topo, cb_flits, vcs)
}

/// Central-buffer flits in one router: `δ_cb + 2·k'·|VC|`.
#[must_use]
pub fn per_router_central_buffers(topo: &Topology, cb_flits: usize, vcs: usize) -> usize {
    cb_flits + 2 * topo.network_radix() * vcs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SnLayout;
    use snoc_topology::Topology;

    #[test]
    fn rtt_formula() {
        let s = BufferSpec::standard();
        // T = 2·dist + 3 without SMART.
        assert_eq!(s.round_trip(1), 5);
        assert_eq!(s.round_trip(4), 11);
        // Zero-distance links still take one cycle.
        assert_eq!(s.round_trip(0), 5);
    }

    #[test]
    fn smart_divides_link_cycles() {
        let s = BufferSpec::smart();
        assert_eq!(s.link_cycles(9), 1);
        assert_eq!(s.link_cycles(10), 2);
        assert_eq!(s.link_cycles(18), 2);
        assert_eq!(s.round_trip(9), 5);
    }

    #[test]
    fn edge_buffer_scales_with_vcs() {
        let one = BufferSpec {
            vcs: 1,
            smart_hops: 1,
        };
        let two = BufferSpec {
            vcs: 2,
            smart_hops: 1,
        };
        assert_eq!(two.edge_buffer_flits(5), 2 * one.edge_buffer_flits(5));
    }

    #[test]
    fn mesh_buffer_totals() {
        // 3x1 mesh, 2 links of length 1: δ = (2+3)·2 = 10 per endpoint.
        let m = Topology::mesh(3, 1, 1);
        let l = Layout::natural(&m);
        let model = BufferModel::edge_buffers(&m, &l, BufferSpec::standard());
        assert_eq!(model.total(), 4 * 10);
        assert_eq!(model.at(snoc_topology::RouterId(1)), 20);
        assert_eq!(model.min_edge_buffer(), 10);
        assert_eq!(model.max_edge_buffer(), 10);
    }

    #[test]
    fn smart_reduces_total_edge_buffers() {
        let t = Topology::slim_noc(9, 8).unwrap();
        let l = Layout::slim_noc(&t, SnLayout::Subgroup).unwrap();
        let plain = BufferModel::edge_buffers(&t, &l, BufferSpec::standard());
        let smart = BufferModel::edge_buffers(&t, &l, BufferSpec::smart());
        assert!(smart.total() < plain.total());
        // With H = 9 most SN-L wires become single-cycle, so buffers
        // approach the minimum 5·|VC| = 10 per port.
        assert!(smart.average_per_router() < plain.average_per_router());
    }

    #[test]
    fn better_layouts_reduce_edge_buffers() {
        // Fig. 5b: sn_subgr/sn_gr cut Δ_eb versus sn_basic/sn_rand.
        let t = Topology::slim_noc(9, 8).unwrap();
        let spec = BufferSpec::standard();
        let total = |k: SnLayout| {
            let l = Layout::slim_noc(&t, k).unwrap();
            BufferModel::edge_buffers(&t, &l, spec).total()
        };
        assert!(total(SnLayout::Subgroup) < total(SnLayout::Basic));
        assert!(total(SnLayout::Group) < total(SnLayout::Random(1)));
    }

    #[test]
    fn central_buffer_total_matches_eq6() {
        // SN-L: N_r = 162, k' = 13, |VC| = 2, δ_cb = 20:
        // Δ_cb = 162 · (20 + 2·13·2) = 162 · 72.
        let t = Topology::slim_noc(9, 8).unwrap();
        assert_eq!(per_router_central_buffers(&t, 20, 2), 72);
        assert_eq!(total_central_buffers(&t, 20, 2), 162 * 72);
    }

    #[test]
    fn central_buffers_beat_edge_buffers_for_large_networks() {
        // Figs. 5b-5c: CBs give the lowest total buffer size because δ_cb
        // is independent of radix and RTT.
        let t = Topology::slim_noc(9, 8).unwrap();
        let l = Layout::slim_noc(&t, SnLayout::Group).unwrap();
        let eb = BufferModel::edge_buffers(&t, &l, BufferSpec::standard());
        let cb = total_central_buffers(&t, 40, 2);
        assert!(cb < eb.total());
    }
}
