//! Statistical tests for the event-driven injection sampler
//! ([`InjectionProcess::next_arrival`]): the geometric inter-arrival
//! draws must reproduce the configured *flit rate* (mean check) and the
//! exact geometric gap distribution (chi-squared check) for both the
//! plain Bernoulli process and bursty [`BurstModel`] processes — the
//! distributions the cycle-accurate `tick` driver produces.
//!
//! All RNGs are seeded, so the statistics are deterministic: the
//! thresholds are generous for honest sampling but far below any
//! systematic bias (e.g. an off-by-one in the gap support shifts the
//! mean by a whole cycle and fails the rate checks immediately).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use snoc_traffic::{geometric_failures, BurstModel, InjectionProcess};

/// Counts arrivals up to `horizon` cycles via `next_arrival`.
fn arrivals_until(p: &mut InjectionProcess, horizon: u64, seed: u64) -> Vec<u64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = Vec::new();
    while let Some(cycle) = p.next_arrival(0, &mut rng) {
        if cycle >= horizon {
            break;
        }
        out.push(cycle);
    }
    out
}

#[test]
fn geometric_failures_edge_cases_and_mean() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    assert_eq!(geometric_failures(1.0, &mut rng), 0, "certain success");
    assert_eq!(geometric_failures(1.5, &mut rng), 0, "clamped above 1");
    assert_eq!(geometric_failures(0.0, &mut rng), u64::MAX, "never");
    assert_eq!(geometric_failures(-0.5, &mut rng), u64::MAX, "never");
    assert_eq!(geometric_failures(f64::NAN, &mut rng), u64::MAX, "never");
    // Mean of Geom(p) on {0, 1, …} is (1 − p) / p.
    let p = 0.2;
    let n = 200_000;
    let sum: f64 = (0..n).map(|_| geometric_failures(p, &mut rng) as f64).sum();
    let mean = sum / f64::from(n);
    let expect = (1.0 - p) / p;
    assert!(
        (mean - expect).abs() < 0.05,
        "mean {mean} vs expected {expect}"
    );
}

#[test]
fn uniform_sampler_matches_configured_flit_rate() {
    for (rate, pkt_len) in [(0.12, 6), (0.05, 2), (0.4, 1)] {
        let mut p = InjectionProcess::new(1, rate, pkt_len, BurstModel::uniform());
        let horizon = 400_000;
        let packets = arrivals_until(&mut p, horizon, 7).len();
        let flit_rate = packets as f64 * pkt_len as f64 / horizon as f64;
        assert!(
            (flit_rate - rate).abs() < rate * 0.05,
            "rate {rate} x{pkt_len}: measured {flit_rate}"
        );
    }
}

#[test]
fn bursty_sampler_preserves_long_run_rate() {
    for burst in [
        BurstModel {
            off_to_on: 0.02,
            on_to_off: 0.02,
        },
        BurstModel {
            off_to_on: 0.01,
            on_to_off: 0.05,
        },
    ] {
        let rate = 0.10;
        let mut p = InjectionProcess::new(1, rate, 2, burst);
        let horizon = 2_000_000;
        let packets = arrivals_until(&mut p, horizon, 11).len();
        let flit_rate = packets as f64 * 2.0 / horizon as f64;
        assert!(
            (flit_rate - rate).abs() < rate * 0.08,
            "burst {burst:?}: measured {flit_rate} vs {rate}"
        );
    }
}

#[test]
fn bursty_sampler_matches_tick_driver_rate() {
    // The event-driven sampler and the cycle-accurate tick driver are
    // two implementations of the same process: their long-run packet
    // rates must agree (independent seeds, so only distribution-level
    // agreement is expected).
    let burst = BurstModel {
        off_to_on: 0.03,
        on_to_off: 0.06,
    };
    let horizon = 1_000_000u64;
    let mut event = InjectionProcess::new(1, 0.12, 3, burst);
    let by_events = arrivals_until(&mut event, horizon, 13).len() as f64;
    let mut ticked = InjectionProcess::new(1, 0.12, 3, burst);
    let mut rng = ChaCha8Rng::seed_from_u64(14);
    let by_ticks = (0..horizon).filter(|_| ticked.tick(0, &mut rng)).count() as f64;
    let rel = (by_events - by_ticks).abs() / by_ticks;
    assert!(
        rel < 0.03,
        "event-driven {by_events} vs tick-driven {by_ticks} packets"
    );
}

#[test]
fn uniform_inter_arrival_gaps_are_geometric_chi_squared() {
    // Single-flit packets at rate p: the failure count between
    // consecutive arrivals is exactly Geom(p) on {0, 1, …}. Bin the
    // observed gaps, compare to expectation with a chi-squared
    // statistic. 12 tail-merged bins ⇒ 11 degrees of freedom; the
    // χ²(11) 0.1% critical value is 31.3 — a generous bound for an
    // honest sampler, far below any systematic support/offset bug
    // (an off-by-one shifts every bin and scores in the thousands).
    let p = 0.25;
    let mut proc = InjectionProcess::new(1, p, 1, BurstModel::uniform());
    let arrivals = arrivals_until(&mut proc, 2_000_000, 17);
    let n = arrivals.len() - 1;
    const BINS: usize = 12;
    let mut observed = [0u64; BINS]; // last bin = tail (gap >= BINS-1)
    for w in arrivals.windows(2) {
        let gap = (w[1] - w[0] - 1) as usize;
        observed[gap.min(BINS - 1)] += 1;
    }
    let mut chi2 = 0.0;
    for (k, &obs) in observed.iter().enumerate() {
        let prob = if k < BINS - 1 {
            (1.0 - p).powi(k as i32) * p
        } else {
            (1.0 - p).powi((BINS - 1) as i32) // tail mass
        };
        let expect = prob * n as f64;
        assert!(expect > 5.0, "bin {k} too thin for chi-squared");
        chi2 += (obs as f64 - expect).powi(2) / expect;
    }
    assert!(chi2 < 31.3, "chi-squared {chi2} over {BINS} bins (n = {n})");
}

#[test]
fn burst_phases_produce_long_gaps() {
    // A bursty process must show gaps far longer than the uniform
    // process at the same rate ever produces (the off phases).
    let burst = BurstModel {
        off_to_on: 0.01,
        on_to_off: 0.05,
    };
    let mut p = InjectionProcess::new(1, 0.05, 1, burst);
    let arrivals = arrivals_until(&mut p, 200_000, 19);
    let longest = arrivals.windows(2).map(|w| w[1] - w[0]).max().unwrap();
    assert!(longest > 200, "longest gap {longest}");
}

#[test]
fn absorbing_states_terminate_the_schedule() {
    // Zero rate: never injects.
    let mut p = InjectionProcess::new(1, 0.0, 1, BurstModel::uniform());
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    assert_eq!(p.next_arrival(0, &mut rng), None);
    // Absorbing off state: once the node switches off it never returns.
    let burst = BurstModel {
        off_to_on: 0.0,
        on_to_off: 0.5,
    };
    let mut p = InjectionProcess::new(1, 0.4, 1, burst);
    let mut seen = 0;
    while p.next_arrival(0, &mut rng).is_some() {
        seen += 1;
        assert!(seen < 10_000, "absorbing off state must end the stream");
    }
}

#[test]
fn saturated_draws_end_the_schedule_instead_of_repeating() {
    // An astronomically small rate saturates the geometric draw; the
    // sampler must return None (schedule over) rather than
    // Some(u64::MAX) forever, which would violate the
    // strictly-increasing contract and spin callers without a horizon.
    let mut p = InjectionProcess::new(1, 1e-300, 1, BurstModel::uniform());
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    assert_eq!(p.next_arrival(0, &mut rng), None);
    assert_eq!(p.next_arrival(0, &mut rng), None, "stays terminated");
    // A tiny-but-representable rate stays finite and strictly
    // increasing (ln_1p keeps the inversion accurate where
    // `(1.0 - p).ln()` would round to zero and inject every cycle).
    let mut p = InjectionProcess::new(1, 1e-18, 1, BurstModel::uniform());
    let a = p.next_arrival(0, &mut rng);
    assert!(
        a.is_none_or(|c| c > 1_000_000_000),
        "rate 1e-18 must not produce a near-term arrival: {a:?}"
    );
}

#[test]
fn arrivals_are_strictly_increasing_and_deterministic() {
    let burst = BurstModel {
        off_to_on: 0.1,
        on_to_off: 0.1,
    };
    let mut a = InjectionProcess::new(2, 0.2, 2, burst);
    let mut b = InjectionProcess::new(2, 0.2, 2, burst);
    let seq_a = arrivals_until(&mut a, 50_000, 29);
    let seq_b = arrivals_until(&mut b, 50_000, 29);
    assert_eq!(seq_a, seq_b, "same seed, same schedule");
    assert!(
        seq_a.windows(2).all(|w| w[1] > w[0]),
        "strictly increasing arrivals"
    );
}
