//! Synthetic traffic patterns (§5.1 and §6).

use rand::{Rng, RngExt};
use snoc_topology::{NodeId, Topology};
use std::fmt;

/// A synthetic traffic pattern.
///
/// Bit-permutation patterns operate on `⌈log₂ N⌉`-bit node identifiers
/// and wrap out-of-range results modulo `N` (needed for the paper's
/// non-power-of-two sizes such as `N = 200`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum TrafficPattern {
    /// RND: each source picks a uniformly random destination (≠ itself).
    Random,
    /// SHF: destination is the source ID with its bits rotated left by
    /// one position.
    BitShuffle,
    /// REV: destination is the source ID with its bits reversed.
    BitReversal,
    /// ADV1: adversarial half-offset pattern `d = (s + N/2) mod N`.
    /// Every router's nodes all target one fixed victim router, so the
    /// whole router's traffic fights for a single deterministic minimal
    /// path (the paper's "maximize load on single-link paths"); on
    /// meshes and tori the same offset forces every packet across half
    /// the die.
    Adversarial1,
    /// ADV2: adversarial bit-complement pattern `d = N − 1 − s`.
    /// Paths cross the center of the die (maximal Manhattan distance on
    /// grids) and concentrate on multi-link routes in low-diameter
    /// networks (the paper's "maximize load on multi-link paths").
    Adversarial2,
    /// The asymmetric pattern of §6: destination is
    /// `(s mod N/2) + N/2` or `(s mod N/2)`, each with probability ½.
    Asymmetric,
    /// TRANSPOSE-like permutation: swap the high and low halves of the ID
    /// bits (a classic supplement used in the sensitivity analysis).
    Transpose,
}

impl TrafficPattern {
    /// All patterns used in the paper's main evaluation figures.
    #[must_use]
    pub fn paper_set() -> Vec<TrafficPattern> {
        vec![
            TrafficPattern::Adversarial1,
            TrafficPattern::BitReversal,
            TrafficPattern::Random,
            TrafficPattern::BitShuffle,
        ]
    }

    /// Short name as used in the paper's figures.
    #[must_use]
    pub fn short_name(&self) -> &'static str {
        match self {
            TrafficPattern::Random => "RND",
            TrafficPattern::BitShuffle => "SHF",
            TrafficPattern::BitReversal => "REV",
            TrafficPattern::Adversarial1 => "ADV1",
            TrafficPattern::Adversarial2 => "ADV2",
            TrafficPattern::Asymmetric => "ASYM",
            TrafficPattern::Transpose => "TRN",
        }
    }

    /// The inverse of [`TrafficPattern::short_name`] (case-sensitive):
    /// the campaign-spec wire format names patterns by their figure
    /// abbreviations.
    #[must_use]
    pub fn from_short_name(name: &str) -> Option<TrafficPattern> {
        Some(match name {
            "RND" => TrafficPattern::Random,
            "SHF" => TrafficPattern::BitShuffle,
            "REV" => TrafficPattern::BitReversal,
            "ADV1" => TrafficPattern::Adversarial1,
            "ADV2" => TrafficPattern::Adversarial2,
            "ASYM" => TrafficPattern::Asymmetric,
            "TRN" => TrafficPattern::Transpose,
            _ => return None,
        })
    }
}

impl fmt::Display for TrafficPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// A pattern compiled against a concrete topology, ready to sample
/// destinations.
///
/// Deterministic patterns are precomputed per source; random patterns
/// draw from the supplied RNG. `sample` returns `None` when the pattern
/// maps a source onto itself (no packet is injected — such "traffic"
/// never enters the network).
#[derive(Debug, Clone)]
pub struct PatternSampler {
    pattern: TrafficPattern,
    n: usize,
    /// Precomputed destination per source for deterministic patterns.
    fixed: Option<Vec<NodeId>>,
}

impl PatternSampler {
    /// Compiles `pattern` for `topo`.
    #[must_use]
    pub fn new(pattern: TrafficPattern, topo: &Topology) -> Self {
        let n = topo.node_count();
        let bits = n.next_power_of_two().trailing_zeros() as usize;
        let fixed = match pattern {
            TrafficPattern::Random | TrafficPattern::Asymmetric => None,
            TrafficPattern::BitShuffle => {
                Some((0..n).map(|s| NodeId(rotate_left(s, bits) % n)).collect())
            }
            TrafficPattern::BitReversal => {
                Some((0..n).map(|s| NodeId(reverse_bits(s, bits) % n)).collect())
            }
            TrafficPattern::Transpose => Some(
                (0..n)
                    .map(|s| NodeId(transpose_bits(s, bits) % n))
                    .collect(),
            ),
            TrafficPattern::Adversarial1 => Some((0..n).map(|s| NodeId((s + n / 2) % n)).collect()),
            TrafficPattern::Adversarial2 => Some((0..n).map(|s| NodeId(n - 1 - s)).collect()),
        };
        PatternSampler { pattern, n, fixed }
    }

    /// The compiled pattern.
    #[must_use]
    pub fn pattern(&self) -> TrafficPattern {
        self.pattern
    }

    /// Samples the destination for a packet from `src`. Returns `None`
    /// when the pattern sends `src` to itself.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    pub fn sample<R: Rng + ?Sized>(&self, src: NodeId, rng: &mut R) -> Option<NodeId> {
        assert!(src.index() < self.n, "source out of range");
        let dst = match self.pattern {
            TrafficPattern::Random => {
                if self.n < 2 {
                    return None;
                }
                // Uniform over all nodes except src.
                let mut d = rng.random_range(0..self.n - 1);
                if d >= src.index() {
                    d += 1;
                }
                NodeId(d)
            }
            TrafficPattern::Asymmetric => {
                let half = self.n / 2;
                if half == 0 {
                    return None;
                }
                let base = src.index() % half;
                if rng.random_bool(0.5) {
                    NodeId(base + half)
                } else {
                    NodeId(base)
                }
            }
            _ => self.fixed.as_ref().expect("precomputed")[src.index()],
        };
        (dst != src).then_some(dst)
    }
}

fn rotate_left(v: usize, bits: usize) -> usize {
    if bits <= 1 {
        return v;
    }
    let mask = (1usize << bits) - 1;
    ((v << 1) & mask) | ((v >> (bits - 1)) & 1)
}

fn reverse_bits(v: usize, bits: usize) -> usize {
    let mut out = 0;
    for i in 0..bits {
        if v >> i & 1 == 1 {
            out |= 1 << (bits - 1 - i);
        }
    }
    out
}

fn transpose_bits(v: usize, bits: usize) -> usize {
    let half = bits / 2;
    if half == 0 {
        return v;
    }
    let low_mask = (1usize << half) - 1;
    let low = v & low_mask;
    let high = v >> half;
    (low << (bits - half)) | high
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use snoc_topology::{RouterId, Topology};

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn bit_helpers() {
        assert_eq!(rotate_left(0b1011, 4), 0b0111);
        assert_eq!(reverse_bits(0b1000, 4), 0b0001);
        assert_eq!(reverse_bits(0b1100, 4), 0b0011);
        assert_eq!(transpose_bits(0b1100, 4), 0b0011);
        assert_eq!(transpose_bits(0b0110, 4), 0b1001);
    }

    #[test]
    fn random_pattern_never_self_and_in_range() {
        let t = Topology::mesh(4, 4, 2);
        let s = PatternSampler::new(TrafficPattern::Random, &t);
        let mut r = rng();
        for src in t.nodes() {
            for _ in 0..20 {
                let d = s.sample(src, &mut r).expect("random never self");
                assert_ne!(d, src);
                assert!(d.index() < t.node_count());
            }
        }
    }

    #[test]
    fn random_pattern_is_roughly_uniform() {
        let t = Topology::mesh(4, 4, 1);
        let s = PatternSampler::new(TrafficPattern::Random, &t);
        let mut r = rng();
        let mut counts = [0usize; 16];
        for _ in 0..16_000 {
            counts[s.sample(NodeId(3), &mut r).unwrap().index()] += 1;
        }
        assert_eq!(counts[3], 0);
        for (i, &c) in counts.iter().enumerate() {
            if i != 3 {
                assert!((800..1400).contains(&c), "node {i}: {c}");
            }
        }
    }

    #[test]
    fn deterministic_patterns_are_permutation_like_on_power_of_two() {
        // On power-of-two N the bit patterns are true permutations.
        let t = Topology::mesh(4, 4, 1); // N = 16
        for p in [
            TrafficPattern::BitShuffle,
            TrafficPattern::BitReversal,
            TrafficPattern::Transpose,
        ] {
            let s = PatternSampler::new(p, &t);
            let mut seen = [false; 16];
            let mut r = rng();
            for src in t.nodes() {
                let d = s.sample(src, &mut r).map_or(src.index(), |d| d.index());
                seen[d] = true;
            }
            let covered = seen.iter().filter(|&&s| s).count();
            assert_eq!(covered, 16, "{p} must be a permutation");
        }
    }

    #[test]
    fn shuffle_matches_definition() {
        let t = Topology::mesh(4, 4, 1);
        let s = PatternSampler::new(TrafficPattern::BitShuffle, &t);
        let mut r = rng();
        // 0b0101 -> 0b1010.
        assert_eq!(s.sample(NodeId(0b0101), &mut r), Some(NodeId(0b1010)));
        // 0b1000 -> 0b0001.
        assert_eq!(s.sample(NodeId(0b1000), &mut r), Some(NodeId(0b0001)));
    }

    #[test]
    fn reversal_matches_definition() {
        let t = Topology::mesh(4, 4, 1);
        let s = PatternSampler::new(TrafficPattern::BitReversal, &t);
        let mut r = rng();
        assert_eq!(s.sample(NodeId(0b0001), &mut r), Some(NodeId(0b1000)));
        // 0b0110 is a bit-palindrome: reversal maps it to itself -> None.
        assert_eq!(s.sample(NodeId(0b0110), &mut r), None);
    }

    #[test]
    fn self_mapping_sources_inject_nothing() {
        let t = Topology::mesh(4, 4, 1);
        let s = PatternSampler::new(TrafficPattern::BitReversal, &t);
        let mut r = rng();
        // 0 reverses to 0: no packet.
        assert_eq!(s.sample(NodeId(0), &mut r), None);
    }

    #[test]
    fn patterns_wrap_on_non_power_of_two() {
        let t = Topology::slim_noc(5, 4).unwrap(); // N = 200
        for p in [TrafficPattern::BitShuffle, TrafficPattern::BitReversal] {
            let s = PatternSampler::new(p, &t);
            let mut r = rng();
            for src in t.nodes() {
                if let Some(d) = s.sample(src, &mut r) {
                    assert!(d.index() < 200, "{p}: {d}");
                }
            }
        }
    }

    #[test]
    fn adv1_is_half_offset() {
        let t = Topology::slim_noc(5, 4).unwrap(); // N = 200
        let s = PatternSampler::new(TrafficPattern::Adversarial1, &t);
        let mut r = rng();
        assert_eq!(s.sample(NodeId(0), &mut r), Some(NodeId(100)));
        assert_eq!(s.sample(NodeId(150), &mut r), Some(NodeId(50)));
    }

    #[test]
    fn adv1_concentrates_per_router_traffic_on_one_victim() {
        // All nodes of a router share a single victim router, so the
        // router's whole load fights for one deterministic minimal path.
        let t = Topology::slim_noc(5, 4).unwrap();
        let s = PatternSampler::new(TrafficPattern::Adversarial1, &t);
        let mut r = rng();
        for router in t.routers() {
            let mut targets: Vec<RouterId> = t
                .nodes_of(router)
                .into_iter()
                .filter_map(|n| s.sample(n, &mut r))
                .map(|d| t.router_of(d))
                .collect();
            targets.dedup();
            assert_eq!(targets.len(), 1, "all nodes of {router} share a victim");
        }
    }

    #[test]
    fn adv2_is_complement_and_crosses_the_die_on_meshes() {
        let t = Topology::mesh(4, 4, 1);
        let s = PatternSampler::new(TrafficPattern::Adversarial2, &t);
        let mut r = rng();
        assert_eq!(s.sample(NodeId(0), &mut r), Some(NodeId(15)));
        // Corner-to-corner: maximal Manhattan distance on the grid.
        let dist = t.distances_from(RouterId(0))[15];
        assert_eq!(dist, 6);
    }

    #[test]
    fn asymmetric_pattern_halves() {
        let t = Topology::mesh(4, 4, 1);
        let s = PatternSampler::new(TrafficPattern::Asymmetric, &t);
        let mut r = rng();
        for _ in 0..100 {
            if let Some(d) = s.sample(NodeId(3), &mut r) {
                assert!(d.index() == 3 + 8 || d.index() == 3);
            }
        }
        // From the upper half, destinations map down or stay shifted.
        for _ in 0..100 {
            if let Some(d) = s.sample(NodeId(13), &mut r) {
                assert!(d.index() == 5 || d.index() == 13);
            }
        }
    }

    #[test]
    fn paper_set_and_names() {
        let set = TrafficPattern::paper_set();
        assert_eq!(set.len(), 4);
        assert_eq!(TrafficPattern::Random.to_string(), "RND");
        assert_eq!(TrafficPattern::Adversarial1.to_string(), "ADV1");
    }

    #[test]
    fn short_names_round_trip() {
        for p in [
            TrafficPattern::Random,
            TrafficPattern::BitShuffle,
            TrafficPattern::BitReversal,
            TrafficPattern::Adversarial1,
            TrafficPattern::Adversarial2,
            TrafficPattern::Asymmetric,
            TrafficPattern::Transpose,
        ] {
            assert_eq!(TrafficPattern::from_short_name(p.short_name()), Some(p));
        }
        assert_eq!(TrafficPattern::from_short_name("rnd"), None);
        assert_eq!(TrafficPattern::from_short_name("HOT"), None);
    }
}
