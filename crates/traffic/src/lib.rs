//! Traffic generation for the Slim NoC reproduction.
//!
//! Two families of workloads drive the paper's evaluation (§5.1):
//!
//! 1. **Synthetic patterns** — uniform random (RND), bit shuffle (SHF),
//!    bit reversal (REV), two adversarial patterns (ADV1 stressing
//!    single-link paths, ADV2 stressing multi-link paths), and the
//!    asymmetric pattern of §6 — implemented in [`TrafficPattern`].
//! 2. **PARSEC/SPLASH-like traces** — the paper records L1-backside
//!    traces with Manifold + DRAMSim2. We do not have those proprietary
//!    traces, so [`TraceWorkload`] generates synthetic equivalents that
//!    preserve the properties the evaluation depends on: per-benchmark
//!    load intensity, the 2-flit read / 6-flit write / 2-flit coherence
//!    message mix, 6-flit replies to every read, hotspot skew, and
//!    bursty injection (see `DESIGN.md` §4 for the substitution
//!    rationale).
//!
//! # Example
//!
//! ```
//! use snoc_topology::Topology;
//! use snoc_traffic::{PatternSampler, TrafficPattern};
//! use rand::SeedableRng;
//!
//! let topo = Topology::slim_noc(5, 4)?;
//! let sampler = PatternSampler::new(TrafficPattern::Random, &topo);
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let dst = sampler.sample(snoc_topology::NodeId(0), &mut rng);
//! assert!(dst.map_or(true, |d| d.index() < topo.node_count()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod injection;
mod patterns;
mod trace;

pub use injection::{geometric_failures, BurstModel, InjectionProcess};
pub use patterns::{PatternSampler, TrafficPattern};
pub use trace::{
    benchmark_names, benchmark_workloads, MessageKind, TraceMessage, TraceWorkload, WorkloadParams,
};
