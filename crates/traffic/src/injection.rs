//! Injection processes: Bernoulli flit-rate injection with optional
//! Markov-modulated burstiness.
//!
//! Two equivalent drivers are provided. [`InjectionProcess::tick`] is the
//! cycle-accurate form: one call per node per cycle, each performing the
//! Markov state transition and a Bernoulli trial. For event-driven
//! simulators [`InjectionProcess::next_arrival`] samples the *cycle of
//! the next packet* directly from geometric inter-arrival (and phase
//! length) draws — distribution-identical to iterating `tick`, at a cost
//! proportional to the number of arrivals instead of the number of
//! cycles.

use rand::{Rng, RngExt};

/// Samples the number of failed Bernoulli(`p`) trials before the first
/// success — the geometric distribution on `{0, 1, 2, …}` with
/// `P(k) = (1 − p)^k · p` — using one uniform draw (inversion).
///
/// Degenerate probabilities are total: `p >= 1` always succeeds
/// immediately (returns 0) and `p <= 0` (or NaN) never succeeds
/// (returns `u64::MAX` as "never").
pub fn geometric_failures<R: Rng + ?Sized>(p: f64, rng: &mut R) -> u64 {
    if p >= 1.0 {
        return 0;
    }
    if p.is_nan() || p <= 0.0 {
        return u64::MAX;
    }
    // Inversion with a uniform draw from [0, 1):
    // k = ⌊ln(1 − u) / ln(1 − p)⌋. `1 − u` is in (0, 1], so the
    // numerator is finite and ≤ 0; the denominator is computed as
    // `ln_1p(−p)`, which stays accurate (≈ −p) for tiny p where
    // `(1.0 − p).ln()` would round to zero and collapse the gap to 0 —
    // turning a near-zero rate into one arrival per cycle. The as-cast
    // saturates on overflow (huge k for tiny p), which reads as
    // "never" downstream.
    let u: f64 = rng.random();
    ((1.0 - u).ln() / (-p).ln_1p()) as u64
}

/// Per-node state of the event-driven sampler (see
/// [`InjectionProcess::next_arrival`]).
#[derive(Debug, Clone, Copy)]
struct NodeSchedule {
    /// First cycle whose Bernoulli trial has not been examined yet.
    clock: u64,
    /// Exclusive end of the current on/off phase (`u64::MAX` = forever).
    phase_end: u64,
    /// Whether the current phase is the injecting (on) phase.
    on: bool,
    /// Whether the initial phase length has been drawn.
    primed: bool,
}

impl Default for NodeSchedule {
    fn default() -> Self {
        NodeSchedule {
            clock: 0,
            phase_end: u64::MAX,
            on: true,
            primed: false,
        }
    }
}

/// A two-state (on/off) Markov burst model.
///
/// While *on*, a node injects at the full configured rate; while *off* it
/// injects nothing. Transition probabilities control burst and gap
/// lengths. The stationary on-fraction is
/// `p_on = off_to_on / (off_to_on + on_to_off)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstModel {
    /// Probability of switching off → on each cycle.
    pub off_to_on: f64,
    /// Probability of switching on → off each cycle.
    pub on_to_off: f64,
}

impl BurstModel {
    /// A model that is always on (no burstiness).
    #[must_use]
    pub fn uniform() -> Self {
        BurstModel {
            off_to_on: 1.0,
            on_to_off: 0.0,
        }
    }

    /// Stationary fraction of time spent in the on state.
    #[must_use]
    pub fn on_fraction(&self) -> f64 {
        if self.off_to_on + self.on_to_off == 0.0 {
            1.0
        } else {
            self.off_to_on / (self.off_to_on + self.on_to_off)
        }
    }
}

/// A per-node Bernoulli injection process at a target *flit* rate.
///
/// The paper reports load in flits/node/cycle; a packet of `packet_flits`
/// flits is injected with probability `rate / packet_flits` per cycle so
/// the offered flit rate matches. With a [`BurstModel`], the on-state rate
/// is scaled by `1 / on_fraction` to keep the long-run offered load equal
/// to `rate`.
#[derive(Debug, Clone)]
pub struct InjectionProcess {
    rate: f64,
    packet_flits: usize,
    burst: BurstModel,
    /// Per-node on/off state (cycle-accurate [`InjectionProcess::tick`]
    /// driver).
    on: Vec<bool>,
    /// Per-node event-driven state ([`InjectionProcess::next_arrival`]
    /// driver; independent of `on`, so the two drivers never interfere).
    sched: Vec<NodeSchedule>,
    on_rate: f64,
}

impl InjectionProcess {
    /// Creates a process for `nodes` endpoints at `rate` flits/node/cycle
    /// with fixed `packet_flits`-flit packets.
    ///
    /// # Panics
    ///
    /// Panics if `packet_flits == 0`, `rate < 0`, or the burst model's
    /// probabilities are outside `[0, 1]`.
    #[must_use]
    pub fn new(nodes: usize, rate: f64, packet_flits: usize, burst: BurstModel) -> Self {
        assert!(packet_flits > 0, "packets need at least one flit");
        assert!(rate >= 0.0, "rate must be non-negative");
        assert!(
            (0.0..=1.0).contains(&burst.off_to_on) && (0.0..=1.0).contains(&burst.on_to_off),
            "burst probabilities must be in [0, 1]"
        );
        let on_fraction = burst.on_fraction().max(1e-9);
        let on_rate = (rate / packet_flits as f64 / on_fraction).min(1.0);
        InjectionProcess {
            rate,
            packet_flits,
            burst,
            on: vec![true; nodes],
            sched: vec![NodeSchedule::default(); nodes],
            on_rate,
        }
    }

    /// Offered load in flits/node/cycle.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Packet size in flits.
    #[must_use]
    pub fn packet_flits(&self) -> usize {
        self.packet_flits
    }

    /// Advances node `node` by one cycle; returns `true` if a new packet
    /// should be injected this cycle.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn tick<R: Rng + ?Sized>(&mut self, node: usize, rng: &mut R) -> bool {
        let state = &mut self.on[node];
        if *state {
            if self.burst.on_to_off > 0.0 && rng.random_bool(self.burst.on_to_off) {
                *state = false;
            }
        } else if self.burst.off_to_on >= 1.0 || rng.random_bool(self.burst.off_to_on) {
            *state = true;
        }
        *state && self.on_rate > 0.0 && rng.random_bool(self.on_rate)
    }

    /// Samples the absolute cycle of node `node`'s next packet injection,
    /// advancing the node's event-driven schedule. Successive calls
    /// return strictly increasing cycles; the first call returns the
    /// node's first arrival counting from cycle 0.
    ///
    /// Distribution-identical to driving [`InjectionProcess::tick`] once
    /// per cycle: arrivals within an on phase are geometric
    /// inter-arrival draws at the on-state rate, and phase lengths are
    /// geometric draws with the burst transition probabilities (the
    /// Markov sojourn-time distribution). Draws that overshoot a phase
    /// boundary are discarded and resampled in the next on phase, which
    /// is exact by memorylessness of the geometric distribution.
    ///
    /// Returns `None` when the node can never inject again (zero rate,
    /// or an absorbing off state with `off_to_on == 0`).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn next_arrival<R: Rng + ?Sized>(&mut self, node: usize, rng: &mut R) -> Option<u64> {
        if self.on_rate <= 0.0 {
            return None;
        }
        if !self.sched[node].primed {
            // The process starts on, but `tick` applies the on→off check
            // already at cycle 0 — the initial on phase has no guaranteed
            // first cycle.
            let len = geometric_failures(self.burst.on_to_off, rng);
            let s = &mut self.sched[node];
            s.primed = true;
            s.phase_end = s.clock.saturating_add(len);
        }
        loop {
            let s = self.sched[node];
            if s.clock == u64::MAX {
                return None; // schedule exhausted by a saturated draw
            }
            if s.on {
                let gap = geometric_failures(self.on_rate, rng);
                let arrival = s.clock.saturating_add(gap);
                if arrival == u64::MAX {
                    // The draw saturated (astronomically small rate):
                    // the next arrival is beyond any representable
                    // cycle. Ending the schedule here keeps the
                    // strictly-increasing contract.
                    self.sched[node].clock = u64::MAX;
                    return None;
                }
                if arrival < s.phase_end || s.phase_end == u64::MAX {
                    self.sched[node].clock = arrival.saturating_add(1);
                    return Some(arrival);
                }
                // Every trial left in this on phase failed: switch off at
                // `phase_end`. The switch cycle itself is ineligible, and
                // each later cycle returns on with probability
                // `off_to_on` — an off sojourn of `1 + Geom(off_to_on)`.
                if self.burst.off_to_on <= 0.0 {
                    return None; // absorbing off state
                }
                let len = 1u64.saturating_add(geometric_failures(self.burst.off_to_on, rng));
                let s = &mut self.sched[node];
                s.on = false;
                s.clock = s.phase_end;
                s.phase_end = s.clock.saturating_add(len);
            } else {
                // Jump to the cycle the node switches back on; that cycle
                // is eligible, and each later cycle stays on with
                // probability `1 − on_to_off` — an on sojourn of
                // `1 + Geom(on_to_off)`.
                let len = 1u64.saturating_add(geometric_failures(self.burst.on_to_off, rng));
                let s = &mut self.sched[node];
                s.on = true;
                s.clock = s.phase_end;
                s.phase_end = s.clock.saturating_add(len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn uniform_injection_hits_target_rate() {
        let mut p = InjectionProcess::new(1, 0.12, 6, BurstModel::uniform());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let cycles = 200_000;
        let mut packets = 0usize;
        for _ in 0..cycles {
            if p.tick(0, &mut rng) {
                packets += 1;
            }
        }
        let flit_rate = packets as f64 * 6.0 / cycles as f64;
        assert!((flit_rate - 0.12).abs() < 0.01, "measured {flit_rate}");
    }

    #[test]
    fn bursty_injection_preserves_long_run_rate() {
        let burst = BurstModel {
            off_to_on: 0.02,
            on_to_off: 0.02,
        };
        assert!((burst.on_fraction() - 0.5).abs() < 1e-12);
        let mut p = InjectionProcess::new(1, 0.10, 2, burst);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let cycles = 400_000;
        let mut packets = 0usize;
        for _ in 0..cycles {
            if p.tick(0, &mut rng) {
                packets += 1;
            }
        }
        let flit_rate = packets as f64 * 2.0 / cycles as f64;
        assert!((flit_rate - 0.10).abs() < 0.01, "measured {flit_rate}");
    }

    #[test]
    fn burstiness_creates_gaps() {
        let burst = BurstModel {
            off_to_on: 0.01,
            on_to_off: 0.05,
        };
        let mut p = InjectionProcess::new(1, 0.05, 1, burst);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        // Measure the longest idle gap; bursty traffic shows long gaps.
        let mut longest_gap = 0usize;
        let mut gap = 0usize;
        for _ in 0..100_000 {
            if p.tick(0, &mut rng) {
                longest_gap = longest_gap.max(gap);
                gap = 0;
            } else {
                gap += 1;
            }
        }
        assert!(longest_gap > 200, "longest gap {longest_gap}");
    }

    #[test]
    fn zero_rate_never_injects() {
        let mut p = InjectionProcess::new(2, 0.0, 6, BurstModel::uniform());
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(!p.tick(0, &mut rng));
            assert!(!p.tick(1, &mut rng));
        }
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_flit_packets_rejected() {
        let _ = InjectionProcess::new(1, 0.1, 0, BurstModel::uniform());
    }
}
