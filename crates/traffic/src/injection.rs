//! Injection processes: Bernoulli flit-rate injection with optional
//! Markov-modulated burstiness.

use rand::{Rng, RngExt};

/// A two-state (on/off) Markov burst model.
///
/// While *on*, a node injects at the full configured rate; while *off* it
/// injects nothing. Transition probabilities control burst and gap
/// lengths. The stationary on-fraction is
/// `p_on = off_to_on / (off_to_on + on_to_off)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstModel {
    /// Probability of switching off → on each cycle.
    pub off_to_on: f64,
    /// Probability of switching on → off each cycle.
    pub on_to_off: f64,
}

impl BurstModel {
    /// A model that is always on (no burstiness).
    #[must_use]
    pub fn uniform() -> Self {
        BurstModel {
            off_to_on: 1.0,
            on_to_off: 0.0,
        }
    }

    /// Stationary fraction of time spent in the on state.
    #[must_use]
    pub fn on_fraction(&self) -> f64 {
        if self.off_to_on + self.on_to_off == 0.0 {
            1.0
        } else {
            self.off_to_on / (self.off_to_on + self.on_to_off)
        }
    }
}

/// A per-node Bernoulli injection process at a target *flit* rate.
///
/// The paper reports load in flits/node/cycle; a packet of `packet_flits`
/// flits is injected with probability `rate / packet_flits` per cycle so
/// the offered flit rate matches. With a [`BurstModel`], the on-state rate
/// is scaled by `1 / on_fraction` to keep the long-run offered load equal
/// to `rate`.
#[derive(Debug, Clone)]
pub struct InjectionProcess {
    rate: f64,
    packet_flits: usize,
    burst: BurstModel,
    /// Per-node on/off state.
    on: Vec<bool>,
    on_rate: f64,
}

impl InjectionProcess {
    /// Creates a process for `nodes` endpoints at `rate` flits/node/cycle
    /// with fixed `packet_flits`-flit packets.
    ///
    /// # Panics
    ///
    /// Panics if `packet_flits == 0`, `rate < 0`, or the burst model's
    /// probabilities are outside `[0, 1]`.
    #[must_use]
    pub fn new(nodes: usize, rate: f64, packet_flits: usize, burst: BurstModel) -> Self {
        assert!(packet_flits > 0, "packets need at least one flit");
        assert!(rate >= 0.0, "rate must be non-negative");
        assert!(
            (0.0..=1.0).contains(&burst.off_to_on) && (0.0..=1.0).contains(&burst.on_to_off),
            "burst probabilities must be in [0, 1]"
        );
        let on_fraction = burst.on_fraction().max(1e-9);
        let on_rate = (rate / packet_flits as f64 / on_fraction).min(1.0);
        InjectionProcess {
            rate,
            packet_flits,
            burst,
            on: vec![true; nodes],
            on_rate,
        }
    }

    /// Offered load in flits/node/cycle.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Packet size in flits.
    #[must_use]
    pub fn packet_flits(&self) -> usize {
        self.packet_flits
    }

    /// Advances node `node` by one cycle; returns `true` if a new packet
    /// should be injected this cycle.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn tick<R: Rng + ?Sized>(&mut self, node: usize, rng: &mut R) -> bool {
        let state = &mut self.on[node];
        if *state {
            if self.burst.on_to_off > 0.0 && rng.random_bool(self.burst.on_to_off) {
                *state = false;
            }
        } else if self.burst.off_to_on >= 1.0 || rng.random_bool(self.burst.off_to_on) {
            *state = true;
        }
        *state && self.on_rate > 0.0 && rng.random_bool(self.on_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn uniform_injection_hits_target_rate() {
        let mut p = InjectionProcess::new(1, 0.12, 6, BurstModel::uniform());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let cycles = 200_000;
        let mut packets = 0usize;
        for _ in 0..cycles {
            if p.tick(0, &mut rng) {
                packets += 1;
            }
        }
        let flit_rate = packets as f64 * 6.0 / cycles as f64;
        assert!((flit_rate - 0.12).abs() < 0.01, "measured {flit_rate}");
    }

    #[test]
    fn bursty_injection_preserves_long_run_rate() {
        let burst = BurstModel {
            off_to_on: 0.02,
            on_to_off: 0.02,
        };
        assert!((burst.on_fraction() - 0.5).abs() < 1e-12);
        let mut p = InjectionProcess::new(1, 0.10, 2, burst);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let cycles = 400_000;
        let mut packets = 0usize;
        for _ in 0..cycles {
            if p.tick(0, &mut rng) {
                packets += 1;
            }
        }
        let flit_rate = packets as f64 * 2.0 / cycles as f64;
        assert!((flit_rate - 0.10).abs() < 0.01, "measured {flit_rate}");
    }

    #[test]
    fn burstiness_creates_gaps() {
        let burst = BurstModel {
            off_to_on: 0.01,
            on_to_off: 0.05,
        };
        let mut p = InjectionProcess::new(1, 0.05, 1, burst);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        // Measure the longest idle gap; bursty traffic shows long gaps.
        let mut longest_gap = 0usize;
        let mut gap = 0usize;
        for _ in 0..100_000 {
            if p.tick(0, &mut rng) {
                longest_gap = longest_gap.max(gap);
                gap = 0;
            } else {
                gap += 1;
            }
        }
        assert!(longest_gap > 200, "longest gap {longest_gap}");
    }

    #[test]
    fn zero_rate_never_injects() {
        let mut p = InjectionProcess::new(2, 0.0, 6, BurstModel::uniform());
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(!p.tick(0, &mut rng));
            assert!(!p.tick(1, &mut rng));
        }
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_flit_packets_rejected() {
        let _ = InjectionProcess::new(1, 0.1, 0, BurstModel::uniform());
    }
}
