//! Error type for topology construction.

use snoc_field::FieldError;
use std::error::Error;
use std::fmt;

/// Errors produced when constructing topologies.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// The underlying finite-field machinery rejected the parameters.
    Field(FieldError),
    /// The concentration (nodes per router) must be positive.
    ZeroConcentration,
    /// An unknown named configuration was requested.
    UnknownConfig {
        /// The requested configuration name.
        name: String,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::Field(e) => write!(f, "field error: {e}"),
            TopologyError::ZeroConcentration => {
                write!(f, "concentration must be at least 1")
            }
            TopologyError::UnknownConfig { name } => {
                write!(f, "unknown paper configuration `{name}`")
            }
        }
    }
}

impl Error for TopologyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TopologyError::Field(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FieldError> for TopologyError {
    fn from(e: FieldError) -> Self {
        TopologyError::Field(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = TopologyError::Field(FieldError::NotPrimePower { q: 6 });
        assert!(e.to_string().contains("prime power"));
        assert!(e.source().is_some());
        assert!(TopologyError::ZeroConcentration.source().is_none());
    }
}
