//! Link-failure resilience analysis.
//!
//! The paper credits Slim Fly's underlying degree-diameter graphs with
//! "high resilience to link failures because the considered graphs are
//! good expanders" (§2.1, citing Pippenger & Lin). This module makes
//! that claim testable: remove a random subset of links and measure how
//! connectivity and path lengths degrade.

use crate::{bfs_distances, bfs_from, BfsControl, RouterId, Topology};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Result of one link-failure experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceReport {
    /// Fraction of links removed.
    pub failed_fraction: f64,
    /// Number of links removed.
    pub failed_links: usize,
    /// `true` if all routers remain mutually reachable.
    pub connected: bool,
    /// Diameter of the largest connected component after failures.
    pub diameter: usize,
    /// Average shortest-path length within the largest component.
    pub average_path: f64,
    /// Size of the largest connected component (routers).
    pub largest_component: usize,
}

impl Topology {
    /// Simulates random link failures: removes `⌊fraction · links⌋`
    /// links chosen uniformly with `seed`, then reports connectivity and
    /// path-length degradation.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `[0, 1]`.
    #[must_use]
    pub fn link_failure_report(&self, fraction: f64, seed: u64) -> ResilienceReport {
        assert!((0.0..=1.0).contains(&fraction), "fraction in [0, 1]");
        let mut links: Vec<(RouterId, RouterId)> = self.links().collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        links.shuffle(&mut rng);
        let fail_count = (fraction * links.len() as f64).floor() as usize;
        let surviving = &links[fail_count..];

        // Rebuild adjacency for the degraded graph (sorted, so the
        // shared BFS helper's documented tie-break applies unchanged).
        let nr = self.router_count();
        let mut adj: Vec<Vec<RouterId>> = vec![Vec::new(); nr];
        for &(a, b) in surviving {
            adj[a.index()].push(b);
            adj[b.index()].push(a);
        }
        for list in &mut adj {
            list.sort_unstable();
        }

        // Largest component + BFS path stats inside it.
        let mut component = vec![usize::MAX; nr];
        let mut comp_sizes = Vec::new();
        for start in 0..nr {
            if component[start] != usize::MAX {
                continue;
            }
            let id = comp_sizes.len();
            let mut size = 0;
            bfs_from(
                nr,
                RouterId(start),
                |r| &adj[r.index()],
                |r, _| {
                    component[r.index()] = id;
                    size += 1;
                    BfsControl::Descend
                },
            );
            comp_sizes.push(size);
        }
        let (largest_id, &largest) = comp_sizes
            .iter()
            .enumerate()
            .max_by_key(|(_, &s)| s)
            .expect("at least one component");

        let mut diameter = 0usize;
        let mut total = 0usize;
        let mut pairs = 0usize;
        for src in 0..nr {
            if component[src] != largest_id {
                continue;
            }
            let dist = bfs_distances(nr, RouterId(src), |r| &adj[r.index()]);
            for (j, &d) in dist.iter().enumerate() {
                if j > src && component[j] == largest_id {
                    diameter = diameter.max(d);
                    total += d;
                    pairs += 1;
                }
            }
        }
        ResilienceReport {
            failed_fraction: fraction,
            failed_links: fail_count,
            connected: largest == nr,
            diameter,
            average_path: if pairs == 0 {
                0.0
            } else {
                total as f64 / pairs as f64
            },
            largest_component: largest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_failures_match_path_stats() {
        let t = Topology::slim_noc(5, 1).unwrap();
        let r = t.link_failure_report(0.0, 1);
        assert!(r.connected);
        assert_eq!(r.failed_links, 0);
        assert_eq!(r.diameter, t.diameter());
        let stats = t.path_stats();
        assert!((r.average_path - stats.average).abs() < 1e-12);
    }

    #[test]
    fn slim_noc_survives_moderate_failures() {
        // Expander-like behaviour: 10% random link failures leave the
        // network connected with a small diameter increase.
        let t = Topology::slim_noc(7, 1).unwrap();
        for seed in 0..5 {
            let r = t.link_failure_report(0.10, seed);
            assert!(r.connected, "seed {seed}: {r:?}");
            assert!(r.diameter <= 4, "seed {seed}: diameter {}", r.diameter);
        }
    }

    #[test]
    fn slim_noc_more_resilient_than_torus() {
        // At 20% failures, SN (high-degree expander) should keep a larger
        // connected component and a smaller diameter than a torus of
        // similar router count.
        let sn = Topology::slim_noc(5, 1).unwrap(); // 50 routers, k' = 7
        let t2d = Topology::torus(10, 5, 1); // 50 routers, k' = 4
        let mut sn_diam = 0usize;
        let mut t2d_diam = 0usize;
        let mut sn_comp = 0usize;
        let mut t2d_comp = 0usize;
        for seed in 0..8 {
            let a = sn.link_failure_report(0.20, seed);
            let b = t2d.link_failure_report(0.20, seed);
            sn_diam += a.diameter;
            t2d_diam += b.diameter;
            sn_comp += a.largest_component;
            t2d_comp += b.largest_component;
        }
        assert!(
            sn_diam < t2d_diam,
            "SN avg diameter {sn_diam} vs T2D {t2d_diam} (x8 runs)"
        );
        assert!(sn_comp >= t2d_comp, "SN components {sn_comp} vs {t2d_comp}");
    }

    #[test]
    fn heavy_failures_eventually_disconnect() {
        let t = Topology::mesh(4, 4, 1);
        // Removing 80% of a mesh's links disconnects it for most seeds.
        let disconnected = (0..10)
            .filter(|&s| !t.link_failure_report(0.8, s).connected)
            .count();
        assert!(disconnected >= 5, "only {disconnected}/10 disconnected");
    }

    #[test]
    fn deterministic_per_seed() {
        let t = Topology::slim_noc(5, 1).unwrap();
        assert_eq!(
            t.link_failure_report(0.15, 3),
            t.link_failure_report(0.15, 3)
        );
    }

    #[test]
    fn total_failure_yields_singleton_components() {
        // fraction = 1.0 is a legitimate point: every link fails and
        // every router becomes its own component.
        let t = Topology::mesh(3, 3, 1);
        let r = t.link_failure_report(1.0, 9);
        assert_eq!(r.failed_links, t.links().count());
        assert!(!r.connected);
        assert_eq!(r.largest_component, 1);
        assert_eq!(r.diameter, 0);
        assert_eq!(r.average_path, 0.0);
    }

    #[test]
    fn full_failure_is_deterministic_across_seeds() {
        // At the boundary the seed only permutes which links fail —
        // and all of them do — so every seed reports the same thing.
        let t = Topology::slim_noc(5, 1).unwrap();
        let reports: Vec<_> = (0..4).map(|s| t.link_failure_report(1.0, s)).collect();
        for r in &reports[1..] {
            assert_eq!(*r, reports[0]);
        }
        assert_eq!(reports[0].largest_component, 1);
    }

    #[test]
    fn disconnection_threshold_on_a_small_mesh() {
        // A 2x2 mesh has exactly 4 links. A fraction that floors to
        // zero removals keeps it intact; removing 3 of 4 leaves a
        // single surviving link, so the largest component is a pair.
        let t = Topology::mesh(2, 2, 1);
        let intact = t.link_failure_report(0.2, 0);
        assert_eq!(intact.failed_links, 0);
        assert!(intact.connected);
        let degraded = t.link_failure_report(0.75, 0);
        assert_eq!(degraded.failed_links, 3);
        assert!(!degraded.connected);
        assert_eq!(degraded.largest_component, 2);
        assert_eq!(degraded.diameter, 1);
    }
}
