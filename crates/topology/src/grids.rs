//! Grid-based baseline topologies: mesh/CM, torus, FBF, PFBF.

use crate::{Topology, TopologyKind};

fn grid_index(x: usize, _y_dim: usize, x_dim: usize, y: usize) -> usize {
    y * x_dim + x
}

/// 2D mesh (and, with `p > 1`, the paper's concentrated mesh CM).
pub(crate) fn mesh(x_dim: usize, y_dim: usize, concentration: usize) -> Topology {
    assert!(x_dim > 0 && y_dim > 0, "mesh dimensions must be positive");
    assert!(concentration > 0, "concentration must be positive");
    let mut edges = Vec::new();
    for y in 0..y_dim {
        for x in 0..x_dim {
            let i = grid_index(x, y_dim, x_dim, y);
            if x + 1 < x_dim {
                edges.push((i, grid_index(x + 1, y_dim, x_dim, y)));
            }
            if y + 1 < y_dim {
                edges.push((i, grid_index(x, y_dim, x_dim, y + 1)));
            }
        }
    }
    let name = if concentration > 1 {
        format!("cm {x_dim}x{y_dim}")
    } else {
        format!("mesh {x_dim}x{y_dim}")
    };
    Topology::from_edges(
        TopologyKind::Mesh { x: x_dim, y: y_dim },
        name,
        x_dim * y_dim,
        concentration,
        edges,
    )
}

/// 2D torus (T2D).
pub(crate) fn torus(x_dim: usize, y_dim: usize, concentration: usize) -> Topology {
    assert!(x_dim > 0 && y_dim > 0, "torus dimensions must be positive");
    assert!(concentration > 0, "concentration must be positive");
    let mut edges = Vec::new();
    for y in 0..y_dim {
        for x in 0..x_dim {
            let i = grid_index(x, y_dim, x_dim, y);
            // Wrap links; guard against duplicate edges in 2-long rings.
            if x_dim > 1 {
                let nx = (x + 1) % x_dim;
                let j = grid_index(nx, y_dim, x_dim, y);
                if i < j || (nx == 0 && x_dim > 2) || (x_dim == 2 && x == 0) {
                    edges.push((i, j));
                }
            }
            if y_dim > 1 {
                let ny = (y + 1) % y_dim;
                let j = grid_index(x, y_dim, x_dim, ny);
                if i < j || (ny == 0 && y_dim > 2) || (y_dim == 2 && y == 0) {
                    edges.push((i, j));
                }
            }
        }
    }
    Topology::from_edges(
        TopologyKind::Torus { x: x_dim, y: y_dim },
        format!("t2d {x_dim}x{y_dim}"),
        x_dim * y_dim,
        concentration,
        edges,
    )
}

/// Full-bandwidth Flattened Butterfly: complete connectivity along each
/// row and each column.
pub(crate) fn flattened_butterfly(x_dim: usize, y_dim: usize, concentration: usize) -> Topology {
    assert!(x_dim > 0 && y_dim > 0, "fbf dimensions must be positive");
    assert!(concentration > 0, "concentration must be positive");
    let mut edges = Vec::new();
    for y in 0..y_dim {
        for x in 0..x_dim {
            let i = grid_index(x, y_dim, x_dim, y);
            // Row peers to the right.
            for x2 in x + 1..x_dim {
                edges.push((i, grid_index(x2, y_dim, x_dim, y)));
            }
            // Column peers below.
            for y2 in y + 1..y_dim {
                edges.push((i, grid_index(x, y_dim, x_dim, y2)));
            }
        }
    }
    Topology::from_edges(
        TopologyKind::FlattenedButterfly { x: x_dim, y: y_dim },
        format!("fbf {x_dim}x{y_dim}"),
        x_dim * y_dim,
        concentration,
        edges,
    )
}

/// Partitioned FBF (paper Fig. 9): a `parts_x × parts_y` grid of identical
/// `sub_x × sub_y` FBFs. Each router has full FBF connectivity inside its
/// partition plus one link to the same-positioned router in each adjacent
/// partition (one port per partitioned dimension when there are two
/// partitions along it).
pub(crate) fn partitioned_fbf(
    parts_x: usize,
    parts_y: usize,
    sub_x: usize,
    sub_y: usize,
    concentration: usize,
) -> Topology {
    assert!(
        parts_x > 0 && parts_y > 0 && sub_x > 0 && sub_y > 0,
        "pfbf dimensions must be positive"
    );
    assert!(concentration > 0, "concentration must be positive");
    let x_dim = parts_x * sub_x;
    let y_dim = parts_y * sub_y;
    let gi = |x: usize, y: usize| y * x_dim + x;
    let mut edges = Vec::new();

    // Intra-partition FBF links.
    for py in 0..parts_y {
        for px in 0..parts_x {
            let ox = px * sub_x;
            let oy = py * sub_y;
            for y in 0..sub_y {
                for x in 0..sub_x {
                    let i = gi(ox + x, oy + y);
                    for x2 in x + 1..sub_x {
                        edges.push((i, gi(ox + x2, oy + y)));
                    }
                    for y2 in y + 1..sub_y {
                        edges.push((i, gi(ox + x, oy + y2)));
                    }
                }
            }
        }
    }

    // Inter-partition links: same-positioned router in the next partition
    // along each dimension.
    for py in 0..parts_y {
        for px in 0..parts_x {
            for y in 0..sub_y {
                for x in 0..sub_x {
                    let i = gi(px * sub_x + x, py * sub_y + y);
                    if px + 1 < parts_x {
                        edges.push((i, gi((px + 1) * sub_x + x, py * sub_y + y)));
                    }
                    if py + 1 < parts_y {
                        edges.push((i, gi(px * sub_x + x, (py + 1) * sub_y + y)));
                    }
                }
            }
        }
    }

    Topology::from_edges(
        TopologyKind::PartitionedFbf {
            parts_x,
            parts_y,
            sub_x,
            sub_y,
        },
        format!("pfbf {parts_x}x{parts_y} of {sub_x}x{sub_y}"),
        x_dim * y_dim,
        concentration,
        edges,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RouterId;

    #[test]
    fn mesh_degrees() {
        let m = mesh(4, 4, 1);
        assert_eq!(m.network_radix(), 4);
        assert_eq!(m.min_degree(), 2); // corners
        assert_eq!(m.link_count(), 2 * 4 * 3); // 24 links in a 4x4 mesh
        assert_eq!(m.diameter(), 6);
    }

    #[test]
    fn mesh_1d_is_a_line() {
        let m = mesh(5, 1, 1);
        assert_eq!(m.diameter(), 4);
        assert_eq!(m.link_count(), 4);
    }

    #[test]
    fn torus_is_4_regular() {
        let t = torus(4, 4, 1);
        assert!(t.is_regular());
        assert_eq!(t.network_radix(), 4);
        assert_eq!(t.diameter(), 4);
        assert_eq!(t.link_count(), 32);
    }

    #[test]
    fn torus_two_wide_has_no_duplicate_links() {
        // A 2-ring would naively create doubled edges; ensure dedup keeps
        // the graph simple and degree ≤ 4.
        let t = torus(2, 4, 1);
        assert!(t.network_radix() <= 4);
        for r in t.routers() {
            let n = t.neighbors(r);
            let mut d = n.to_vec();
            d.dedup();
            assert_eq!(d.len(), n.len());
        }
    }

    #[test]
    fn paper_torus_configs() {
        // Table 4: t2d4 = 10x5 grid, p = 4, k' = 4, N = 200.
        let t = torus(10, 5, 4);
        assert_eq!(t.node_count(), 200);
        assert_eq!(t.network_radix(), 4);
        assert_eq!(t.router_radix(), 8);
        // t2d9 = 12x12, p = 9, N = 1296, k = 13.
        let t = torus(12, 12, 9);
        assert_eq!(t.node_count(), 1296);
        assert_eq!(t.router_radix(), 13);
    }

    #[test]
    fn fbf_radix_matches_paper() {
        // Table 4: fbf3 = 8x8, k' = 14; fbf4 = 10x5, k' = 13;
        // fbf9 = 12x12, k' = 22; fbf8 = 18x9, k' = 25.
        assert_eq!(flattened_butterfly(8, 8, 3).network_radix(), 14);
        assert_eq!(flattened_butterfly(10, 5, 4).network_radix(), 13);
        assert_eq!(flattened_butterfly(12, 12, 9).network_radix(), 22);
        assert_eq!(flattened_butterfly(18, 9, 8).network_radix(), 25);
    }

    #[test]
    fn fbf_diameter_two() {
        let f = flattened_butterfly(8, 8, 3);
        assert_eq!(f.diameter(), 2);
        assert!(f.is_regular());
    }

    #[test]
    fn pfbf_radix_matches_paper() {
        // Table 4: pfbf3 = 4 FBFs (4x4 each), k' = 8;
        // pfbf4 = 2 FBFs (5x5), k' = 9; pfbf9 = 4 FBFs (6x6), k' = 12;
        // pfbf8 = 2 FBFs (9x9), k' = 17.
        assert_eq!(partitioned_fbf(2, 2, 4, 4, 3).network_radix(), 8);
        assert_eq!(partitioned_fbf(2, 1, 5, 5, 4).network_radix(), 9);
        assert_eq!(partitioned_fbf(2, 2, 6, 6, 9).network_radix(), 12);
        assert_eq!(partitioned_fbf(2, 1, 9, 9, 8).network_radix(), 17);
    }

    #[test]
    fn pfbf_diameter_four() {
        // Paper: PFBF has D = 4.
        assert_eq!(partitioned_fbf(2, 2, 4, 4, 3).diameter(), 4);
        assert_eq!(partitioned_fbf(2, 2, 6, 6, 9).diameter(), 4);
        // With a single partitioned dimension the diameter is 3.
        assert_eq!(partitioned_fbf(2, 1, 5, 5, 4).diameter(), 3);
    }

    #[test]
    fn pfbf_node_counts_match_paper() {
        assert_eq!(partitioned_fbf(2, 2, 4, 4, 3).node_count(), 192);
        assert_eq!(partitioned_fbf(2, 1, 5, 5, 4).node_count(), 200);
        assert_eq!(partitioned_fbf(2, 2, 6, 6, 9).node_count(), 1296);
        assert_eq!(partitioned_fbf(2, 1, 9, 9, 8).node_count(), 1296);
    }

    #[test]
    fn node_router_attachment() {
        let t = mesh(3, 3, 4);
        assert_eq!(t.node_count(), 36);
        assert_eq!(t.router_of(crate::NodeId(0)), RouterId(0));
        assert_eq!(t.router_of(crate::NodeId(35)), RouterId(8));
        assert_eq!(t.nodes_of(RouterId(2)).len(), 4);
    }
}
