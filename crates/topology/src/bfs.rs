//! The workspace's one seeded breadth-first traversal.
//!
//! Three subsystems previously hand-rolled BFS — resilience analysis
//! (components + path stats over degraded graphs), the shard
//! partitioner (greedy frontier growth), and the reference router's
//! distance tables — and each carried its own queue discipline. They
//! now share this helper, so the traversal order is pinned in exactly
//! one place.
//!
//! # Tie-break
//!
//! Traversal order is fully deterministic: routers are discovered in
//! first-parent order, and the neighbors of one parent are expanded in
//! adjacency-list order. Since every adjacency list in this crate is
//! sorted ascending, routers at equal distance are visited in the order
//! of `(discovery order of parent, neighbor index)` — the unique
//! lexicographically-smallest BFS order. `partition`, `resilience`,
//! the reference routing tables, and the optimized engine's degraded
//! rerouting all inherit this order, and
//! `tie_break_is_lowest_index_first` pins it.

use crate::RouterId;
use std::collections::VecDeque;

/// What to do with a router just reached by [`bfs_from`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BfsControl {
    /// Keep it: expand its neighbors onto the frontier.
    Descend,
    /// Skip it: counts as visited (never re-reached) but its neighbors
    /// are not expanded — e.g. a router already claimed by another
    /// partition part.
    Prune,
    /// Halt the whole traversal immediately.
    Stop,
}

/// Breadth-first traversal from `src` over an arbitrary adjacency view.
///
/// Calls `visit(router, hop_distance)` exactly once per reachable
/// router, in the deterministic order documented at the module level
/// (`src` first, at distance 0). `neighbors` supplies the adjacency
/// list of a router; pass a closure over [`crate::Topology::neighbors`]
/// or over any rebuilt (e.g. degraded) adjacency.
///
/// `router_count` bounds the visited-marker allocation; every router
/// index returned by `neighbors` must be below it.
pub fn bfs_from<'a, N, V>(router_count: usize, src: RouterId, mut neighbors: N, mut visit: V)
where
    N: FnMut(RouterId) -> &'a [RouterId],
    V: FnMut(RouterId, usize) -> BfsControl,
{
    let mut seen = vec![false; router_count];
    let mut queue = VecDeque::new();
    seen[src.index()] = true;
    queue.push_back((src, 0usize));
    while let Some((r, d)) = queue.pop_front() {
        match visit(r, d) {
            BfsControl::Stop => return,
            BfsControl::Prune => continue,
            BfsControl::Descend => {}
        }
        for &n in neighbors(r) {
            if !seen[n.index()] {
                seen[n.index()] = true;
                queue.push_back((n, d + 1));
            }
        }
    }
}

/// Hop distances from `src` to every router; unreachable routers get
/// `usize::MAX`. Built on [`bfs_from`], so it shares the documented
/// traversal order.
#[must_use]
pub fn bfs_distances<'a, N>(router_count: usize, src: RouterId, neighbors: N) -> Vec<usize>
where
    N: FnMut(RouterId) -> &'a [RouterId],
{
    let mut dist = vec![usize::MAX; router_count];
    bfs_from(router_count, src, neighbors, |r, d| {
        dist[r.index()] = d;
        BfsControl::Descend
    });
    dist
}

/// A BFS spanning forest over an adjacency view: per router, the root
/// of its tree and its depth below that root. Produced by
/// [`bfs_forest`]; the up*/down* degraded-routing tables are built on
/// it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsForest {
    /// `root[r]` — the root of `r`'s tree: the lowest router index in
    /// `r`'s connected component.
    pub root: Vec<RouterId>,
    /// `level[r]` — BFS depth of `r` below its root (0 at the root).
    pub level: Vec<usize>,
}

/// Builds the canonical BFS spanning forest of an adjacency view: the
/// lowest-index router not yet covered seeds each tree (so every root
/// is the minimum index of its component), and each tree is grown with
/// [`bfs_from`]'s pinned traversal order. Every router is covered — an
/// isolated router becomes a singleton tree rooted at itself.
///
/// Two properties the callers lean on: the forest is a pure function
/// of the adjacency view (deterministic across rebuilds), and adjacent
/// routers differ in `level` by at most 1 (BFS layering), so ordering
/// routers by `(level, index)` orients every surviving edge.
#[must_use]
pub fn bfs_forest<'a, N>(router_count: usize, mut neighbors: N) -> BfsForest
where
    N: FnMut(RouterId) -> &'a [RouterId],
{
    let mut root = vec![RouterId(0); router_count];
    let mut level = vec![usize::MAX; router_count];
    for s in 0..router_count {
        if level[s] != usize::MAX {
            continue; // already claimed by an earlier (lower-root) tree
        }
        bfs_from(router_count, RouterId(s), &mut neighbors, |r, d| {
            root[r.index()] = RouterId(s);
            level[r.index()] = d;
            BfsControl::Descend
        });
    }
    BfsForest { root, level }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;

    #[test]
    fn distances_match_topology_bfs() {
        for t in [
            Topology::slim_noc(5, 1).unwrap(),
            Topology::mesh(4, 4, 1),
            Topology::torus(4, 4, 1),
        ] {
            for src in t.routers() {
                let d = bfs_distances(t.router_count(), src, |r| t.neighbors(r));
                assert_eq!(d, t.distances_from(src), "{} from {src:?}", t.name());
            }
        }
    }

    #[test]
    fn tie_break_is_lowest_index_first() {
        // On a 3x3 mesh from the corner, routers at each distance must
        // appear in ascending index order: equal-distance candidates
        // are discovered through the lowest-index parent first, and a
        // parent's sorted adjacency list expands lowest index first.
        let t = Topology::mesh(3, 3, 1);
        let mut order = Vec::new();
        bfs_from(
            t.router_count(),
            RouterId(0),
            |r| t.neighbors(r),
            |r, d| {
                order.push((d, r.index()));
                BfsControl::Descend
            },
        );
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted, "BFS order must be (distance, index)-sorted");
        assert_eq!(order.len(), 9);
    }

    #[test]
    fn prune_stops_expansion_but_not_traversal() {
        // Line 0-1-2-3: pruning router 1 makes 2 and 3 unreachable.
        let t = Topology::mesh(4, 1, 1);
        let mut visited = Vec::new();
        bfs_from(
            t.router_count(),
            RouterId(0),
            |r| t.neighbors(r),
            |r, _| {
                visited.push(r.index());
                if r.index() == 1 {
                    BfsControl::Prune
                } else {
                    BfsControl::Descend
                }
            },
        );
        assert_eq!(visited, vec![0, 1]);
    }

    #[test]
    fn stop_halts_immediately() {
        let t = Topology::mesh(4, 4, 1);
        let mut count = 0;
        bfs_from(
            t.router_count(),
            RouterId(0),
            |r| t.neighbors(r),
            |_, _| {
                count += 1;
                if count == 3 {
                    BfsControl::Stop
                } else {
                    BfsControl::Descend
                }
            },
        );
        assert_eq!(count, 3);
    }

    #[test]
    fn forest_on_connected_graph_is_one_tree_with_bfs_levels() {
        let t = Topology::mesh(3, 3, 1);
        let f = bfs_forest(t.router_count(), |r| t.neighbors(r));
        assert!(f.root.iter().all(|&r| r == RouterId(0)));
        assert_eq!(f.level, t.distances_from(RouterId(0)));
        // Adjacent routers sit on adjacent (or equal) BFS layers.
        for r in t.routers() {
            for &n in t.neighbors(r) {
                assert!(f.level[r.index()].abs_diff(f.level[n.index()]) <= 1);
            }
        }
    }

    #[test]
    fn forest_roots_are_component_minima() {
        // Line 0-1-2-3 with the 1-2 link hidden: components {0,1} and
        // {2,3}, rooted at 0 and 2; isolated views root every router at
        // itself.
        let t = Topology::mesh(4, 1, 1);
        let cut: Vec<Vec<RouterId>> = t
            .routers()
            .map(|r| {
                t.neighbors(r)
                    .iter()
                    .copied()
                    .filter(|&n| {
                        let (a, b) = (r.index().min(n.index()), r.index().max(n.index()));
                        (a, b) != (1, 2)
                    })
                    .collect()
            })
            .collect();
        let f = bfs_forest(t.router_count(), |r| &cut[r.index()][..]);
        assert_eq!(
            f.root,
            vec![RouterId(0), RouterId(0), RouterId(2), RouterId(2)]
        );
        assert_eq!(f.level, vec![0, 1, 0, 1]);
        let isolated = bfs_forest(t.router_count(), |_| &[]);
        for r in t.routers() {
            assert_eq!(isolated.root[r.index()], r);
            assert_eq!(isolated.level[r.index()], 0);
        }
    }

    #[test]
    fn forest_is_deterministic_across_rebuilds() {
        let t = Topology::slim_noc(3, 2).unwrap();
        let a = bfs_forest(t.router_count(), |r| t.neighbors(r));
        let b = bfs_forest(t.router_count(), |r| t.neighbors(r));
        assert_eq!(a, b);
    }

    #[test]
    fn unreachable_routers_get_max_sentinel() {
        // An adjacency view that hides every link isolates the source.
        let t = Topology::mesh(3, 3, 1);
        let d = bfs_distances(t.router_count(), RouterId(4), |_| &[]);
        assert_eq!(d[4], 0);
        assert_eq!(d.iter().filter(|&&x| x == usize::MAX).count(), 8);
    }
}
